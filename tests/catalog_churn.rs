//! Catalog churn stress: multi-threaded close/reopen churn over ~10^5
//! distinct paths against a *small* bounded migrator catalog while the
//! `Background` worker re-homes misplaced files underneath. The run must
//! finish (no deadlock between closes, the catalog lock and the worker),
//! keep the resident set within `capacity + pinned`, and lose **zero**
//! misplaced files to eviction — every file parked on the wrong tier is
//! back on its routed tier after the final sweep.

use std::sync::Arc;

use nvcache_repro::nvcache::{MigrationPolicy, NvCache, NvCacheConfig, PathPrefixRouter};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{FileSystem, MemFs, OpenFlags};

/// Distinct churned paths: enough to roll the 512-entry catalog hundreds
/// of times over. Scaled down under `cfg(debug_assertions)` so the
/// unoptimized build stays in CI budget.
const PATHS: usize = if cfg!(debug_assertions) { 20_000 } else { 100_000 };
const CHURN_THREADS: usize = 6;
const CAPACITY: usize = 512;
/// Files deliberately moved to the wrong tier while the churn runs.
const MISPLACED: usize = 128;

/// Under `pmcheck`, audit the mount's post-mortem registries: lock-order
/// violations raised (and caught) on worker threads must surface here.
#[cfg(feature = "pmcheck")]
fn assert_checkers_clean(cache: &NvCache) {
    assert!(cache.pm_violations().is_empty(), "{:?}", cache.pm_violations());
    assert!(cache.lock_order_violations().is_empty(), "{:?}", cache.lock_order_violations());
    assert!(cache.lock_order_edges() > 0, "lock-order recorder saw no acquisitions");
}
#[cfg(not(feature = "pmcheck"))]
fn assert_checkers_clean(_cache: &NvCache) {}

fn churn_path(i: usize) -> String {
    // Half the namespace routes to the fast tier, half to the baseline,
    // so the catalog holds a mix of both placements.
    if i.is_multiple_of(2) {
        format!("/hot/churn/f{i}")
    } else {
        format!("/bulk/churn/f{i}")
    }
}

#[test]
fn bounded_catalog_survives_multithreaded_churn_without_losing_misplaced_files() {
    let clock = ActorClock::new();
    let cfg = NvCacheConfig {
        nb_entries: 1024,
        read_cache_pages: 128,
        batch_min: 1,
        batch_max: 64,
        fd_slots: 64,
        ..NvCacheConfig::default()
    }
    .with_backends(2)
    .with_migration(MigrationPolicy::Background)
    .with_catalog_capacity(CAPACITY);
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let tier0: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let tier1: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let router = Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0));
    let cache = Arc::new(
        NvCache::builder(NvRegion::whole(dimm))
            .backends(router, vec![Arc::clone(&tier0), Arc::clone(&tier1)])
            .config(cfg)
            .mount(&clock)
            .expect("tiered mount"),
    );

    // Seed the victim set on its routed tier (0) before the storm starts.
    for i in 0..MISPLACED {
        let path = format!("/mis/f{i}");
        let fd = cache.open(&path, OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        cache.pwrite(fd, &[i as u8; 64], 0, &clock).unwrap();
        cache.close(fd, &clock).unwrap();
    }
    cache.flush_log(&clock);

    let mut handles = Vec::new();
    for t in 0..CHURN_THREADS {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            let clock = ActorClock::new();
            let mut buf = [0u8; 64];
            for i in (t..PATHS).step_by(CHURN_THREADS) {
                let path = churn_path(i);
                let fd = cache.open(&path, OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
                cache.pwrite(fd, &[i as u8; 64], 0, &clock).unwrap();
                cache.close(fd, &clock).unwrap();
                // Reopen a recent neighbour: readmission traffic on paths
                // the clock hand may just have evicted.
                if i >= CHURN_THREADS {
                    let back = churn_path(i - CHURN_THREADS);
                    let fd = cache.open(&back, OpenFlags::RDONLY, &clock).unwrap();
                    cache.pread(fd, &mut buf, 0, &clock).unwrap();
                    cache.close(fd, &clock).unwrap();
                }
                // The memory bound, sampled under full contention: the
                // resident set may exceed capacity only by the pinned
                // (misplaced) population.
                if i % 1024 == 0 {
                    let resident = cache.catalog_resident();
                    assert!(
                        resident <= CAPACITY + MISPLACED,
                        "{resident} resident > capacity {CAPACITY} + pinned {MISPLACED}"
                    );
                }
            }
        }));
    }
    // One thread keeps shoving the victim set onto the wrong tier while
    // the background worker pulls in the other direction. Races with an
    // in-flight re-home are expected — the move may bounce with EBUSY —
    // but a *lost* file is not.
    {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            let clock = ActorClock::new();
            for round in 0..4 {
                for i in 0..MISPLACED {
                    let path = format!("/mis/f{i}");
                    let _ = cache.migrate(&path, 1, &clock);
                    if (i + round) % 16 == 0 {
                        std::thread::yield_now();
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    cache.flush_log(&clock);
    assert_eq!(cache.pending_entries(), 0, "drain barrier left entries behind");
    // Final sweep: whatever the background worker had not re-homed yet
    // goes home now. Run twice — the first sweep may race the last
    // wrong-way migration's catalog stamp.
    cache.rebalance(&clock).expect("final sweep");
    cache.rebalance(&clock).expect("settling sweep");

    // Zero lost misplaced files: every victim is back on its routed tier,
    // with its bytes, and the wrong-tier copy is gone.
    for i in 0..MISPLACED {
        let path = format!("/mis/f{i}");
        assert!(tier0.stat(&path, &clock).is_ok(), "{path} lost from its routed tier");
        assert!(tier1.stat(&path, &clock).is_err(), "{path} stranded on the wrong tier");
        let fd = cache.open(&path, OpenFlags::RDONLY, &clock).unwrap();
        let mut buf = [0u8; 64];
        cache.pread(fd, &mut buf, 0, &clock).unwrap();
        assert_eq!(buf, [i as u8; 64], "{path} lost its payload in transit");
        cache.close(fd, &clock).unwrap();
    }
    // Churned files all exist on their routed tiers (spot-check the full
    // namespace through the merged view, cheap stats on the tiers).
    for i in (0..PATHS).step_by(PATHS / 100) {
        let path = churn_path(i);
        let tier: &Arc<dyn FileSystem> = if i.is_multiple_of(2) { &tier1 } else { &tier0 };
        assert!(tier.stat(&path, &clock).is_ok(), "churned file {path} missing");
    }

    let resident = cache.catalog_resident();
    assert!(resident <= CAPACITY + MISPLACED, "final resident {resident} exceeds the bound");
    let snap = cache.stats().snapshot();
    assert!(
        snap.catalog_evictions as usize >= PATHS - CAPACITY - MISPLACED,
        "the bound never engaged: only {} evictions over {PATHS} paths",
        snap.catalog_evictions
    );
    assert_checkers_clean(&cache);
    cache.shutdown(&clock);
}
