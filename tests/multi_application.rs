//! Paper §III "Multi-application": two NVCache instances share one NVMM
//! module, split into two regions (the equivalent of two DAX files), each
//! in front of its own file system — and crash-recover independently.

use std::sync::Arc;

use nvcache_repro::nvcache::{Mount, NvCache, NvCacheConfig};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{FileSystem, MemFs, OpenFlags};

fn mount(
    region: NvRegion,
    inner: &Arc<dyn FileSystem>,
    cfg: &NvCacheConfig,
    clock: &ActorClock,
) -> NvCache {
    NvCache::builder(region)
        .backend(Arc::clone(inner))
        .config(cfg.clone())
        .mount(clock)
        .expect("mount")
}

fn remount(
    region: NvRegion,
    inner: &Arc<dyn FileSystem>,
    cfg: &NvCacheConfig,
    clock: &ActorClock,
) -> NvCache {
    NvCache::builder(region)
        .backend(Arc::clone(inner))
        .config(cfg.clone())
        .mode(Mount::Recover)
        .mount(clock)
        .expect("recover")
}

fn cfg() -> NvCacheConfig {
    NvCacheConfig {
        nb_entries: 128,
        batch_min: usize::MAX >> 1, // keep everything in the logs
        batch_max: usize::MAX >> 1,
        fd_slots: 8,
        ..NvCacheConfig::tiny()
    }
}

#[test]
fn two_instances_share_one_dimm() {
    let clock = ActorClock::new();
    let cfg = cfg();
    let per_instance = cfg.required_nvmm_bytes();
    let dimm = Arc::new(NvDimm::new(per_instance * 2, NvmmProfile::instant()));
    let region_a = NvRegion::new(Arc::clone(&dimm), 0, per_instance);
    let region_b = NvRegion::new(Arc::clone(&dimm), per_instance, per_instance);

    let inner_a: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let inner_b: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let app_a = mount(region_a.clone(), &inner_a, &cfg, &clock);
    let app_b = mount(region_b.clone(), &inner_b, &cfg, &clock);

    let fa = app_a.open("/a", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    let fb = app_b.open("/b", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    for i in 0..50u64 {
        app_a.pwrite(fa, &[0xAA; 100], i * 100, &clock).unwrap();
        app_b.pwrite(fb, &[0xBB; 100], i * 100, &clock).unwrap();
    }

    // Instances are isolated: A's content never appears in B.
    let mut buf = [0u8; 100];
    app_a.pread(fa, &mut buf, 0, &clock).unwrap();
    assert_eq!(buf, [0xAA; 100]);
    app_b.pread(fb, &mut buf, 0, &clock).unwrap();
    assert_eq!(buf, [0xBB; 100]);

    // Whole-machine power failure: both recover from their own region.
    app_a.abort();
    app_b.abort();
    drop((app_a, app_b));
    let restarted = Arc::new(dimm.crash_and_restart());
    let region_a = NvRegion::new(Arc::clone(&restarted), 0, per_instance);
    let region_b = NvRegion::new(Arc::clone(&restarted), per_instance, per_instance);
    let rec_a = remount(region_a, &inner_a, &cfg, &clock);
    let rec_b = remount(region_b, &inner_b, &cfg, &clock);
    assert_eq!(rec_a.recovery_report().unwrap().entries_replayed, 50);
    assert_eq!(rec_b.recovery_report().unwrap().entries_replayed, 50);

    let fa = rec_a.open("/a", OpenFlags::RDONLY, &clock).unwrap();
    let fb = rec_b.open("/b", OpenFlags::RDONLY, &clock).unwrap();
    rec_a.pread(fa, &mut buf, 49 * 100, &clock).unwrap();
    assert_eq!(buf, [0xAA; 100]);
    rec_b.pread(fb, &mut buf, 49 * 100, &clock).unwrap();
    assert_eq!(buf, [0xBB; 100]);
    rec_a.shutdown(&clock);
    rec_b.shutdown(&clock);
}

#[test]
fn crash_of_one_instance_does_not_disturb_the_other() {
    let clock = ActorClock::new();
    let cfg = cfg();
    let per_instance = cfg.required_nvmm_bytes();
    let dimm = Arc::new(NvDimm::new(per_instance * 2, NvmmProfile::instant()));
    let inner_a: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let inner_b: Arc<dyn FileSystem> = Arc::new(MemFs::new());

    let app_a = mount(NvRegion::new(Arc::clone(&dimm), 0, per_instance), &inner_a, &cfg, &clock);
    let app_b =
        mount(NvRegion::new(Arc::clone(&dimm), per_instance, per_instance), &inner_b, &cfg, &clock);

    let fa = app_a.open("/a", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    app_a.pwrite(fa, b"application A state", 0, &clock).unwrap();

    // Application B dies (process crash, machine stays up) and restarts via
    // recovery over its own region; A keeps running untouched.
    let fb = app_b.open("/b", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    app_b.pwrite(fb, b"application B state", 0, &clock).unwrap();
    app_b.abort();
    drop(app_b);
    let rec_b = remount(
        NvRegion::new(Arc::clone(&dimm), per_instance, per_instance),
        &inner_b,
        &cfg,
        &clock,
    );

    let mut buf = [0u8; 19];
    app_a.pread(fa, &mut buf, 0, &clock).unwrap();
    assert_eq!(&buf, b"application A state");
    let fb = rec_b.open("/b", OpenFlags::RDONLY, &clock).unwrap();
    rec_b.pread(fb, &mut buf, 0, &clock).unwrap();
    assert_eq!(&buf, b"application B state");
    app_a.shutdown(&clock);
    rec_b.shutdown(&clock);
}
