//! Conformance matrix for composable backend layers: every stack in
//! {bare, delay, fault-off, crypt, ram-cache, crypt∘delay} × backends
//! {MemFs, Ext4+SSD} must preserve POSIX semantics and the application's
//! byte-level view through an NvCache mount — and a mount whose every
//! layer is inert must be **byte- and virtual-time-identical** to an
//! unlayered mount (the inertness contract, `vfs::layer` docs).

use std::sync::Arc;

use nvcache_repro::blockdev::{SsdDevice, SsdProfile};
use nvcache_repro::nvcache::{Mount, NvCache, NvCacheConfig};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::{ActorClock, Bandwidth, SimTime};
use nvcache_repro::vfs::{
    self, CryptLayer, DelayLayer, DelayProfile, Ext4, Ext4Profile, FaultLayer, FileSystem, IoError,
    Layer, MemFs, OpenFlags, RamCacheLayer,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ext4_ssd() -> Arc<dyn FileSystem> {
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()))
}

fn active_delay_profile() -> DelayProfile {
    DelayProfile {
        open: SimTime::from_micros(8),
        pread: SimTime::from_micros(4),
        pwrite: SimTime::from_micros(6),
        fsync: SimTime::from_micros(30),
        read_bandwidth: Some(Bandwidth::mib_per_sec(800.0)),
        write_bandwidth: Some(Bandwidth::mib_per_sec(400.0)),
        ..DelayProfile::default()
    }
}

fn active_delay() -> Arc<dyn Layer> {
    Arc::new(DelayLayer::new(active_delay_profile()))
}

/// A fault layer carrying a live pwrite-fault schedule that is *disarmed*:
/// it must behave as a pure forwarder until armed.
fn fault_off() -> Arc<dyn Layer> {
    let fault = FaultLayer::failing_pwrites(0);
    fault.disarm();
    Arc::new(fault)
}

/// The named stack matrix of the ISSUE: each entry built fresh per call
/// (layer values carry state and must not be shared across mounts).
fn stack_matrix() -> Vec<(&'static str, Vec<Arc<dyn Layer>>)> {
    vec![
        ("bare", vec![]),
        ("delay", vec![active_delay()]),
        ("fault-off", vec![fault_off()]),
        ("crypt", vec![Arc::new(CryptLayer::new(0xFACE_0FFE))]),
        ("ram-cache", vec![Arc::new(RamCacheLayer::new(64))]),
        ("crypt∘delay", vec![Arc::new(CryptLayer::new(0xFACE_0FFE)), active_delay()]),
    ]
}

#[test]
fn every_stack_passes_posix_conformance_on_every_backend() {
    type MakeBackend = fn() -> Arc<dyn FileSystem>;
    let backends: Vec<(&str, MakeBackend)> =
        vec![("memfs", || Arc::new(MemFs::new())), ("ext4+ssd", ext4_ssd)];
    for (backend_name, make_backend) in &backends {
        for (stack_name, layers) in stack_matrix() {
            let fs = vfs::stack(&layers, make_backend()).expect("stack");
            // check_posix_semantics panics with context on violation; the
            // eyeball-greppable pair tells which cell of the matrix failed.
            eprintln!("conformance: {stack_name} over {backend_name}");
            vfs::check_posix_semantics(fs.as_ref());
        }
    }
}

/// The byte-level application view through an NvCache mount must be
/// identical for every stack: layers may change timing and at-rest
/// representation, never content.
#[test]
fn mounted_stacks_preserve_the_byte_oracle() {
    let workload = |cache: &NvCache, clock: &ActorClock| -> Vec<u8> {
        let fd = cache.open("/w", OpenFlags::RDWR | OpenFlags::CREATE, clock).expect("open");
        let mut rng = StdRng::seed_from_u64(20210621);
        let size = 32 * 1024u64;
        for i in 0..120 {
            let off = rng.gen_range(0..size - 4096);
            if rng.gen_bool(0.7) {
                let len = rng.gen_range(1..4096usize);
                cache.pwrite(fd, &vec![(i % 251 + 1) as u8; len], off, clock).expect("pwrite");
            } else {
                let mut buf = vec![0u8; rng.gen_range(1..4096usize)];
                cache.pread(fd, &mut buf, off, clock).expect("pread");
            }
        }
        cache.fsync(fd, clock).expect("fsync");
        // Drain the log so reads below cross the layered backend, then
        // evict nothing by rereading through the mount.
        cache.flush_log(clock);
        let total = cache.fstat(fd, clock).expect("fstat").size;
        let mut content = vec![0u8; total as usize];
        cache.pread(fd, &mut content, 0, clock).expect("read back");
        cache.close(fd, clock).expect("close");
        content
    };

    let cfg = NvCacheConfig { nb_entries: 256, fd_slots: 16, ..NvCacheConfig::tiny() };
    let mut reference: Option<Vec<u8>> = None;
    for (stack_name, layers) in stack_matrix() {
        let clock = ActorClock::new();
        let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
        let cache = NvCache::builder(NvRegion::whole(dimm))
            .backend_stack(layers, Arc::new(MemFs::new()))
            .config(cfg.clone())
            .mount(&clock)
            .expect("mount");
        let content = workload(&cache, &clock);
        cache.shutdown(&clock);
        match &reference {
            None => reference = Some(content),
            Some(r) => assert_eq!(r, &content, "stack {stack_name} diverged from bare content"),
        }
    }
}

fn region_bytes(dimm: &NvDimm) -> Vec<u8> {
    let mut buf = vec![0u8; dimm.len() as usize];
    dimm.read_cached(0, &mut buf);
    buf
}

/// The acceptance criterion: a mount whose every layer is in its inert
/// configuration is byte- and virtual-time-identical to an unlayered
/// mount — asserted on region bytes, the application clock, and the
/// deterministic stats snapshot.
#[test]
fn all_inert_stack_is_byte_and_time_identical_to_unlayered() {
    // Parked cleanup workers (huge batch window): the concurrent drain's
    // batch composition races the OS scheduler, so the deterministic
    // surfaces are the mount, the app-side write path, and the fully
    // drained persistent bytes (same discipline as the builder oracle).
    let cfg = NvCacheConfig {
        nb_entries: 64,
        batch_min: usize::MAX >> 1,
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::tiny()
    };

    let bare_clock = ActorClock::new();
    let bare_dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    let bare = NvCache::builder(NvRegion::whole(Arc::clone(&bare_dimm)))
        .backend(Arc::new(MemFs::new()))
        .config(cfg.clone())
        .mount(&bare_clock)
        .expect("bare mount");

    let delay = Arc::new(DelayLayer::inert());
    let fault = Arc::new(FaultLayer::inert());
    let crypt = Arc::new(CryptLayer::passthrough());
    let ram = Arc::new(RamCacheLayer::inert());
    let layered_clock = ActorClock::new();
    let layered_dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    let layered = NvCache::builder(NvRegion::whole(Arc::clone(&layered_dimm)))
        .backend_stack(
            vec![
                Arc::clone(&delay) as Arc<dyn Layer>,
                Arc::clone(&fault) as Arc<dyn Layer>,
                Arc::clone(&crypt) as Arc<dyn Layer>,
                Arc::clone(&ram) as Arc<dyn Layer>,
            ],
            Arc::new(MemFs::new()),
        )
        .config(cfg)
        .mount(&layered_clock)
        .expect("layered mount");

    assert_eq!(bare_clock.now(), layered_clock.now(), "mount timings diverged");
    assert_eq!(region_bytes(&bare_dimm), region_bytes(&layered_dimm), "format bytes diverged");

    let burst = |cache: &NvCache, clock: &ActorClock| {
        let fd = cache.open("/inert", OpenFlags::RDWR | OpenFlags::CREATE, clock).unwrap();
        for i in 0..24u64 {
            cache.pwrite(fd, &[i as u8 + 1; 300], i * 300, clock).unwrap();
        }
        let mut buf = [0u8; 600];
        cache.pread(fd, &mut buf, 150, clock).unwrap();
        fd
    };
    let bfd = burst(&bare, &bare_clock);
    let lfd = burst(&layered, &layered_clock);

    assert_eq!(bare_clock.now(), layered_clock.now(), "write-path virtual time diverged");
    assert_eq!(region_bytes(&bare_dimm), region_bytes(&layered_dimm), "logged bytes diverged");
    assert_eq!(bare.stats().snapshot(), layered.stats().snapshot(), "deterministic stats diverged");

    // Drain and settle: still byte-identical, and every inert layer's own
    // counters stayed at zero (they never acted).
    for (cache, fd, clock) in [(&bare, bfd, &bare_clock), (&layered, lfd, &layered_clock)] {
        cache.flush_log(clock);
        cache.close(fd, clock).unwrap();
        cache.shutdown(clock);
    }
    assert_eq!(region_bytes(&bare_dimm), region_bytes(&layered_dimm), "drained bytes diverged");
    assert_eq!(delay.stats(), Default::default(), "inert delay layer acted");
    assert_eq!(fault.faults_injected(), 0, "inert fault layer injected");
    assert_eq!(crypt.stats(), Default::default(), "passthrough crypt layer acted");
    assert_eq!(ram.stats(), Default::default(), "inert ram-cache layer acted");
}

/// Synchronous durability must hold through an active crypt∘delay stack
/// over Ext4+SSD: acknowledged writes survive a power failure and recover
/// through a freshly built stack (same key — the key is the only secret).
#[test]
fn acknowledged_writes_survive_crashes_through_crypt_delay_stacks() {
    const KEY: u64 = 0xD15C_C0DE;

    let cfg = NvCacheConfig {
        nb_entries: 256,
        batch_min: 20, // some entries propagate through the stack, some stay
        batch_max: 40,
        fd_slots: 16,
        ..NvCacheConfig::default()
    };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner = ext4_ssd();
    let make_stack =
        || -> Vec<Arc<dyn Layer>> { vec![Arc::new(CryptLayer::new(KEY)), active_delay()] };
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend_stack(make_stack(), Arc::clone(&inner))
        .config(cfg.clone())
        .mount(&clock)
        .expect("mount");

    let fd = cache
        .open("/sealed", OpenFlags::RDWR | OpenFlags::CREATE, &clock)
        .expect("open");
    let mut rng = StdRng::seed_from_u64(77);
    let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
    for i in 0..60usize {
        let off = rng.gen_range(0..48u64) * 512;
        let val = vec![(i % 251 + 1) as u8; rng.gen_range(1..2000)];
        cache.pwrite(fd, &val, off, &clock).expect("pwrite");
        acked.retain(|(o, v)| *o + v.len() as u64 <= off || *o >= off + val.len() as u64);
        acked.push((off, val));
    }

    // Pull the power mid-drain, then recover through a *rebuilt* stack.
    cache.abort();
    drop(cache);
    let crashed = Arc::new(dimm.crash_and_restart_seeded(13));
    inner.simulate_power_failure();
    let recovered = NvCache::builder(NvRegion::whole(crashed))
        .backend_stack(make_stack(), Arc::clone(&inner))
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("recover through the stack");
    let fd = recovered.open("/sealed", OpenFlags::RDONLY, &clock).expect("reopen");
    for (off, val) in &acked {
        let mut buf = vec![0u8; val.len()];
        recovered.pread(fd, &mut buf, *off, &clock).expect("pread");
        assert_eq!(&buf, val, "acknowledged write at {off} lost through the stack");
    }
    recovered.shutdown(&clock);
}

/// Bytes corrupted below the crypt layer (disk tampering / bit rot) must
/// surface as a read error through the mount, not as silent garbage.
#[test]
fn tampering_below_the_crypt_layer_is_detected_through_the_mount() {
    let cfg = NvCacheConfig::tiny().with_read_cache_pages(1);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let crypt = Arc::new(CryptLayer::new(0xBAD_CAB1E));
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend_stack(vec![Arc::clone(&crypt) as Arc<dyn Layer>], Arc::clone(&inner))
        .config(cfg.clone())
        .mount(&clock)
        .expect("mount");
    let fd = cache
        .open("/secret", OpenFlags::RDWR | OpenFlags::CREATE, &clock)
        .expect("open");
    cache.pwrite(fd, &[0x42; 8192], 0, &clock).expect("pwrite");
    cache.flush_log(&clock); // data now lives (encrypted) in the inner fs
    cache.close(fd, &clock).expect("close");
    cache.shutdown(&clock);

    // Flip one at-rest byte behind the layer's back.
    let raw = inner.open("/secret", OpenFlags::RDWR, &clock).expect("raw open");
    let mut b = [0u8; 1];
    inner.pread(raw, &mut b, 4200, &clock).expect("raw pread");
    inner.pwrite(raw, &[b[0] ^ 0xA5], 4200, &clock).expect("raw pwrite");
    inner.close(raw, &clock).expect("raw close");

    let remounted = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend_stack(vec![Arc::clone(&crypt) as Arc<dyn Layer>], Arc::clone(&inner))
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("remount");
    let fd = remounted.open("/secret", OpenFlags::RDONLY, &clock).expect("reopen");
    let mut buf = [0u8; 64];
    // Page 0 is untampered and still reads…
    remounted.pread(fd, &mut buf, 0, &clock).expect("clean page");
    assert_eq!(buf, [0x42; 64]);
    // …page 1 was tampered and must refuse.
    let res = remounted.pread(fd, &mut buf, 4096, &clock);
    assert!(
        matches!(res, Err(IoError::Other(_))),
        "tampered page must error through the mount, got {res:?}"
    );
    assert!(crypt.stats().tamper_detected >= 1, "the layer must count the detection");
    remounted.shutdown(&clock);
}

/// The RAM-cache layer serves repeat inner reads from DRAM: its hit/miss
/// counters must tick through a mount whose own read cache is too small to
/// absorb the traffic.
#[test]
fn ram_cache_layer_hits_through_a_mount() {
    let cfg = NvCacheConfig::tiny().with_read_cache_pages(1);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let ram = Arc::new(RamCacheLayer::new(32));
    let cache = NvCache::builder(NvRegion::whole(dimm))
        .backend_stack(vec![Arc::clone(&ram) as Arc<dyn Layer>], Arc::new(MemFs::new()))
        .config(cfg)
        .mount(&clock)
        .expect("mount");
    let fd = cache.open("/hot", OpenFlags::RDWR | OpenFlags::CREATE, &clock).expect("open");
    cache.pwrite(fd, &[9; 16 * 4096], 0, &clock).expect("pwrite");
    cache.flush_log(&clock); // push everything below, reads now miss the log
    let mut buf = vec![0u8; 4096];
    // Alternate between pages so the mount's one-page read cache keeps
    // evicting and the inner (layered) backend sees repeat reads.
    for round in 0..3 {
        for page in 0..8u64 {
            cache.pread(fd, &mut buf, page * 4096, &clock).expect("pread");
            assert_eq!(buf[0], 9, "round {round}: content must be served correctly");
        }
    }
    let stats = ram.stats();
    assert!(stats.misses >= 8, "first sweep must fill the layer cache: {stats:?}");
    assert!(stats.hits >= 8, "later sweeps must hit in DRAM: {stats:?}");
    cache.shutdown(&clock);
}

/// Two mounts with identical delay profiles must produce identical virtual
/// timelines (delays are deterministic), and the delay layer's charges
/// must be visible on the application clock for inner-touching ops.
#[test]
fn delay_layer_timelines_are_deterministic_through_mounts() {
    let run = || -> (SimTime, u64) {
        let delay = Arc::new(DelayLayer::new(active_delay_profile()));
        let handle = Arc::clone(&delay);
        let delay: Arc<dyn Layer> = delay;
        let cfg = NvCacheConfig::tiny().with_read_cache_pages(1);
        let clock = ActorClock::new();
        let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
        let cache = NvCache::builder(NvRegion::whole(dimm))
            .backend_stack(vec![delay], Arc::new(MemFs::new()))
            .config(cfg)
            .mount(&clock)
            .expect("mount");
        let fd = cache.open("/t", OpenFlags::RDWR | OpenFlags::CREATE, &clock).expect("open");
        cache.pwrite(fd, &[1; 8192], 0, &clock).expect("pwrite");
        cache.flush_log(&clock);
        let mut buf = [0u8; 4096];
        for page in 0..2u64 {
            cache.pread(fd, &mut buf, page * 4096, &clock).expect("pread");
        }
        cache.close(fd, &clock).expect("close");
        cache.shutdown(&clock);
        // Only the app-clock charges are deterministic (the drain worker
        // runs on its own clock), so compare the app clock and the fact
        // that delays happened at all.
        (clock.now(), handle.stats().ops_delayed)
    };
    let (t1, ops1) = run();
    let (t2, ops2) = run();
    assert_eq!(t1, t2, "identical delay mounts must have identical app timelines");
    assert!(ops1 > 0, "the delay layer must have charged inner-touching ops");
    assert_eq!(ops1, ops2);
}
