//! The multi-queue submission front-end: SQ/CQ equivalence oracles,
//! multi-threaded submitter stress, doorbell-batch amortization, fd-table
//! exhaustion, and crash-mid-burst recovery over `sq_pairs ∈ {0,1,4,8}`.

use std::collections::BTreeMap;
use std::sync::Arc;

use nvcache_repro::blockdev::{SsdDevice, SsdProfile};
use nvcache_repro::nvcache::{Mount, NvCache, NvCacheConfig};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{Ext4, Ext4Profile, FileSystem, IoError, MemFs, OpenFlags};
use proptest::prelude::*;

fn mount(cfg: NvCacheConfig) -> (ActorClock, Arc<dyn FileSystem>, Arc<NvCache>) {
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = Arc::new(
        NvCache::builder(NvRegion::whole(dimm))
            .backend(Arc::clone(&inner))
            .config(cfg)
            .mount(&clock)
            .expect("mount"),
    );
    (clock, inner, cache)
}

/// Under `pmcheck`, audit the mount's post-mortem registries: violations
/// panic at the offending site already, but an end-of-run sweep also
/// catches reports raised (and caught) on worker threads, and checks the
/// lock-order recorder actually observed acquisitions.
#[cfg(feature = "pmcheck")]
fn assert_checkers_clean(cache: &NvCache) {
    assert!(cache.pm_violations().is_empty(), "{:?}", cache.pm_violations());
    assert!(cache.lock_order_violations().is_empty(), "{:?}", cache.lock_order_violations());
}
#[cfg(not(feature = "pmcheck"))]
fn assert_checkers_clean(_cache: &NvCache) {}

fn small_cfg(shards: usize, sq_pairs: usize) -> NvCacheConfig {
    NvCacheConfig {
        nb_entries: 1024,
        read_cache_pages: 128,
        batch_min: 1,
        batch_max: 64,
        fd_slots: 16,
        ..NvCacheConfig::default()
    }
    .with_log_shards(shards)
    .with_sq_pairs(sq_pairs)
}

/// A synchronous workload must not notice the `sq_pairs` knob at all:
/// byte-identical content, *virtual-time*-identical clock, same log
/// counters whether the mount has 0 or 8 (unused) queue pairs. Cleanup is
/// parked (huge `batch_min`) so the write-path clock is fully
/// deterministic — cross-thread drain timing is not part of this oracle.
#[test]
fn unused_queue_pairs_leave_the_sync_path_identical() {
    let run = |sq_pairs: usize| {
        let cfg = NvCacheConfig {
            batch_min: usize::MAX >> 1, // park cleanup: deterministic clock
            batch_max: usize::MAX >> 1,
            ..small_cfg(2, sq_pairs)
        };
        let (clock, _inner, cache) = mount(cfg);
        let fd = cache.open("/id", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        for i in 0..40u64 {
            let len = 1 + (i as usize * 97) % 6000;
            cache.pwrite(fd, &vec![(i + 1) as u8; len], (i * 1337) % 16384, &clock).unwrap();
        }
        let elapsed = clock.now();
        let size = cache.fstat(fd, &clock).unwrap().size;
        let mut view = vec![0u8; size as usize];
        cache.pread(fd, &mut view, 0, &clock).unwrap();
        let snap = cache.stats().snapshot();
        cache.abort();
        (view, elapsed, snap.writes, snap.bytes_logged, snap.entries_logged)
    };
    let zero = run(0);
    let eight = run(8);
    assert_eq!(zero.0, eight.0, "bytes diverged");
    assert_eq!(zero.1, eight.1, "virtual time diverged");
    assert_eq!((zero.2, zero.3, zero.4), (eight.2, eight.3, eight.4), "counters diverged");
}

/// The same write sequence, submitted through a queue pair, must converge
/// to the same backend bytes as the synchronous oracle — overlapping,
/// page-straddling and multi-entry writes included.
#[test]
fn queued_writes_match_the_synchronous_oracle() {
    let writes: Vec<(u64, usize, u8)> = (0..48)
        .map(|i: u64| ((i * 2711) % 20000, 1 + ((i as usize * 131) % 9000), (i + 1) as u8))
        .collect();

    // Synchronous oracle.
    let (clock, inner, cache) = mount(small_cfg(4, 0));
    let fd = cache.open("/w", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    for &(off, len, byte) in &writes {
        cache.pwrite(fd, &vec![byte; len], off, &clock).unwrap();
    }
    cache.flush_log(&clock);
    let size = cache.fstat(fd, &clock).unwrap().size;
    let mut oracle = vec![0u8; size as usize];
    let ifd = inner.open("/w", OpenFlags::RDONLY, &clock).unwrap();
    inner.pread(ifd, &mut oracle, 0, &clock).unwrap();
    cache.shutdown(&clock);

    // Queued run: same writes, batched 6 per doorbell.
    let (clock, inner, cache) = mount(small_cfg(4, 1));
    let fd = cache.open("/w", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    let mut qp = cache.queue_pair(0, &clock).unwrap();
    let mut acked = 0usize;
    for (i, &(off, len, byte)) in writes.iter().enumerate() {
        qp.submit_pwrite(fd, &vec![byte; len], off, &clock).unwrap();
        if i % 6 == 5 {
            qp.ring_doorbell(&clock);
            for c in qp.reap(&clock) {
                assert!(c.result.is_ok());
                acked += 1;
            }
        }
    }
    qp.ring_doorbell(&clock);
    acked += qp.reap(&clock).len();
    assert_eq!(acked, writes.len(), "every submitted write must complete");
    drop(qp);
    cache.flush_log(&clock);
    assert_eq!(cache.fstat(fd, &clock).unwrap().size, size);
    let mut queued = vec![0u8; size as usize];
    let ifd = inner.open("/w", OpenFlags::RDONLY, &clock).unwrap();
    inner.pread(ifd, &mut queued, 0, &clock).unwrap();
    assert_eq!(queued, oracle, "queued path diverged from the synchronous oracle");

    // The per-queue counters observed the run.
    let snap = cache.stats().snapshot();
    assert_eq!(snap.per_queue.len(), 1);
    assert_eq!(snap.per_queue[0].sq_submitted, writes.len() as u64);
    // 48 writes ring exactly 8 in-loop doorbells; the final ring found an
    // empty SQ, which is free and uncounted.
    assert_eq!(snap.per_queue[0].sq_doorbells, 8);
    assert_eq!(snap.writes, writes.len() as u64);
    assert_checkers_clean(&cache);
    cache.shutdown(&clock);
}

/// Doorbell batching must amortize the per-write fixed costs (libc
/// crossing + fence pair): a 64-write burst of small writes through one
/// doorbell takes materially less virtual time than the same burst
/// synchronously.
#[test]
fn doorbell_batching_amortizes_fixed_costs() {
    let run = |queued: bool| {
        let cfg = small_cfg(1, 1);
        let clock = ActorClock::new();
        let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
        let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let cache = NvCache::builder(NvRegion::whole(dimm))
            .backend(inner)
            .config(cfg)
            .mount(&clock)
            .unwrap();
        let fd = cache.open("/amortize", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        let data = vec![7u8; 512];
        let t0 = clock.now();
        if queued {
            let mut qp = cache.queue_pair(0, &clock).unwrap();
            for i in 0..64u64 {
                qp.submit_pwrite(fd, &data, i * 4096, &clock).unwrap();
            }
            qp.ring_doorbell(&clock);
            assert_eq!(qp.reap(&clock).len(), 64);
        } else {
            for i in 0..64u64 {
                cache.pwrite(fd, &data, i * 4096, &clock).unwrap();
            }
        }
        let elapsed = clock.now() - t0;
        cache.shutdown(&clock);
        elapsed
    };
    let sync = run(false);
    let batched = run(true);
    assert!(
        batched.as_nanos() * 2 < sync.as_nanos(),
        "one doorbell for 64 small writes should cost < half of 64 sync writes \
         (sync {sync}, batched {batched})"
    );
}

/// N queue pairs driven by N threads, hammering one shared file with
/// overlapping page-straddling writes plus a private region each. After a
/// full drain the inner file system must agree byte-for-byte with
/// NVCache's own view — per-page propagation order held across queues and
/// stripes.
#[test]
fn concurrent_submitters_keep_per_page_order() {
    let (clock, inner, cache) = mount(small_cfg(4, 4));
    let fd = cache.open("/stress", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    let mut handles = Vec::new();
    for t in 0..4u8 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            let clock = ActorClock::new();
            let mut qp = cache.queue_pair(t as usize, &clock).unwrap();
            let mut completions = 0usize;
            for round in 0..48u64 {
                // Contended: unaligned overlapping ranges shared by all
                // threads (multi-page, multi-stripe).
                let off = (round % 4) * 2048;
                let len = if t % 2 == 0 { 8192 } else { 3000 };
                let byte = 1u8.wrapping_add(t).wrapping_add((round as u8) << 4);
                qp.submit_pwrite(fd, &vec![byte; len], off, &clock).unwrap();
                // Private: each thread owns a distinct far region.
                let private = 1 << 20 | u64::from(t) << 16;
                qp.submit_pwrite(fd, &[byte; 512], private + round * 512, &clock).unwrap();
                if round % 3 == 2 {
                    qp.ring_doorbell(&clock);
                    completions += qp.reap(&clock).iter().filter(|c| c.result.is_ok()).count();
                }
            }
            qp.ring_doorbell(&clock);
            completions += qp.reap(&clock).iter().filter(|c| c.result.is_ok()).count();
            assert_eq!(completions, 96, "every submitted write must be acked");
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    cache.flush_log(&clock);
    assert_eq!(cache.pending_entries(), 0);

    let size = cache.fstat(fd, &clock).unwrap().size;
    let mut cache_view = vec![0u8; size as usize];
    cache.pread(fd, &mut cache_view, 0, &clock).unwrap();
    let ifd = inner.open("/stress", OpenFlags::RDONLY, &clock).unwrap();
    let mut inner_view = vec![0u8; size as usize];
    inner.pread(ifd, &mut inner_view, 0, &clock).unwrap();
    if let Some(pos) = cache_view.iter().zip(&inner_view).position(|(a, b)| a != b) {
        panic!(
            "per-page ordering broke across queues: byte {pos} is {} in the cache \
             view but {} on the inner fs",
            cache_view[pos], inner_view[pos]
        );
    }
    let snap = cache.stats().snapshot();
    assert_eq!(snap.per_queue.iter().map(|q| q.sq_submitted).sum::<u64>(), 4 * 96);
    assert!(snap.per_queue.iter().all(|q| q.sq_doorbells >= 16));
    assert_checkers_clean(&cache);
    // Multi-page writes over four queues guarantee nested acquisitions: the
    // lock-order recorder must have seen real edges, not an empty graph.
    #[cfg(feature = "pmcheck")]
    assert!(cache.lock_order_edges() > 0, "lock-order recorder saw no acquisitions");
    cache.shutdown(&clock);
}

/// Queue-pair claiming: out-of-range and double claims fail cleanly,
/// dropping the handle releases the pair.
#[test]
fn queue_pair_claims_are_exclusive() {
    let (clock, _inner, cache) = mount(small_cfg(1, 2));
    assert!(matches!(cache.queue_pair(2, &clock), Err(IoError::InvalidArgument(_))));
    let qp = cache.queue_pair(0, &clock).unwrap();
    assert!(matches!(cache.queue_pair(0, &clock), Err(IoError::Busy(_))));
    drop(qp);
    let _qp = cache.queue_pair(0, &clock).unwrap();
    cache.shutdown(&clock);

    let (clock, _inner, cache) = mount(small_cfg(1, 0));
    assert!(matches!(cache.queue_pair(0, &clock), Err(IoError::InvalidArgument(_))));
    cache.shutdown(&clock);
}

/// Submission-time errors surface at submit (nothing queued); flush
/// barriers complete at the doorbell; unrung entries are discarded without
/// wedging close().
#[test]
fn submission_errors_flushes_and_discard() {
    let (clock, _inner, cache) = mount(small_cfg(1, 1));
    let fd = cache.open("/q", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    let rofd = cache.open("/q", OpenFlags::RDONLY, &clock).unwrap();
    let mut qp = cache.queue_pair(0, &clock).unwrap();
    assert!(matches!(qp.submit_pwrite(rofd, b"x", 0, &clock), Err(IoError::PermissionDenied(_))));
    let w = qp.submit_pwrite(fd, b"hello", 0, &clock).unwrap();
    let f = qp.submit_flush(fd).unwrap();
    qp.ring_doorbell(&clock);
    let done = qp.reap(&clock);
    assert_eq!(done.len(), 2);
    assert_eq!(done[0].user_data, w);
    assert_eq!(*done[0].result.as_ref().unwrap(), 5);
    assert_eq!(done[1].user_data, f);
    assert_eq!(*done[1].result.as_ref().unwrap(), 0);
    assert!(done[0].completed_at <= done[1].completed_at);

    // An unrung submission is silently discarded on drop (never acked) and
    // must not leave the descriptor's in-flight count behind.
    qp.submit_pwrite(fd, b"torn", 4096, &clock).unwrap();
    drop(qp);
    cache.close(rofd, &clock).unwrap();
    cache.close(fd, &clock).unwrap();
    cache.flush_log(&clock);
    let snap = cache.stats().snapshot();
    assert_eq!(snap.writes, 1, "the discarded submission must not count as a write");
    cache.shutdown(&clock);
}

/// fd-table exhaustion is a clean error (no busy-spin on an empty zombie
/// list) and is counted by `fd_slot_waits`; freeing a descriptor makes the
/// next open succeed again.
#[test]
fn fd_table_exhaustion_fails_cleanly_and_is_counted() {
    let cfg = NvCacheConfig { fd_slots: 4, ..small_cfg(1, 0) };
    let (clock, _inner, cache) = mount(cfg);
    let fds: Vec<_> = (0..4)
        .map(|i| {
            cache
                .open(&format!("/f{i}"), OpenFlags::RDWR | OpenFlags::CREATE, &clock)
                .expect("open within the table")
        })
        .collect();
    match cache.open("/f4", OpenFlags::RDWR | OpenFlags::CREATE, &clock) {
        Err(IoError::Other(msg)) => assert!(msg.contains("fd table"), "unexpected: {msg}"),
        other => panic!("expected a clean fd-table error, got {other:?}"),
    }
    assert_eq!(cache.stats().snapshot().fd_slot_waits, 1);
    cache.close(fds[0], &clock).unwrap();
    let fd = cache.open("/f4", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.close(fd, &clock).unwrap();
    cache.shutdown(&clock);
}

/// One crash-mid-burst scenario: writes are spread round-robin over the
/// pairs, doorbells ring at deterministic points, some submissions stay
/// unrung (a torn burst). Recovery must restore exactly the acknowledged
/// writes — in doorbell (commit) order — and nothing of the unrung tail.
fn run_sq_crash_scenario(
    ops: &[(u8, u16, u8, u16)],
    sq_pairs: usize,
    doorbell_every: usize,
    crash_seed: u64,
) {
    let cfg = NvCacheConfig {
        nb_entries: 512,
        batch_min: usize::MAX >> 1, // keep every entry in the log
        batch_max: usize::MAX >> 1,
        fd_slots: 8,
        read_cache_pages: 4,
        ..NvCacheConfig::default()
    }
    .with_log_shards(4)
    .with_sq_pairs(sq_pairs);
    let clock = ActorClock::new();
    let profile = NvmmProfile::instant().with_eviction_probability(0.3);
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), profile));
    // A journaled backend: the namespace survives the crash, un-synced page
    // cache does not (MemFs would lose the files themselves).
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    let inner: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend(Arc::clone(&inner))
        .config(cfg.clone())
        .mount(&clock)
        .expect("mount");

    let mut fds = BTreeMap::new();
    for f in 0..2u8 {
        let fd = cache
            .open(&format!("/f{f}"), OpenFlags::RDWR | OpenFlags::CREATE, &clock)
            .expect("open");
        fds.insert(f, fd);
    }

    // The model applies a pair's pending writes when its doorbell rings
    // (= commit order); unrung writes never reach it.
    let mut model: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
    let apply = |model: &mut BTreeMap<u8, Vec<u8>>, (f, off, byte, len): (u8, u16, u8, u16)| {
        let content = model.entry(f).or_default();
        let (off, len) = (off as usize, len as usize);
        if content.len() < off + len {
            content.resize(off + len, 0);
        }
        content[off..off + len].fill(byte);
    };

    if sq_pairs == 0 {
        for &op in ops {
            let (f, off, byte, len) = op;
            cache.pwrite(fds[&f], &vec![byte; len as usize], off as u64, &clock).unwrap();
            apply(&mut model, op);
        }
    } else {
        let mut qps: Vec<_> = (0..sq_pairs).map(|i| cache.queue_pair(i, &clock).unwrap()).collect();
        let mut pending: Vec<Vec<(u8, u16, u8, u16)>> = vec![Vec::new(); sq_pairs];
        for (i, &op) in ops.iter().enumerate() {
            let p = i % sq_pairs;
            let (f, off, byte, len) = op;
            qps[p]
                .submit_pwrite(fds[&f], &vec![byte; len as usize], off as u64, &clock)
                .unwrap();
            pending[p].push(op);
            if pending[p].len() >= doorbell_every {
                qps[p].ring_doorbell(&clock);
                for c in qps[p].reap(&clock) {
                    assert!(c.result.is_ok());
                }
                for op in pending[p].drain(..) {
                    apply(&mut model, op);
                }
            }
        }
        // The remaining submissions stay unrung: a torn burst the crash
        // discards (they were never acknowledged).
        drop(qps);
    }

    // Crash with everything still in the log, then recover.
    assert_checkers_clean(&cache);
    cache.abort();
    drop(cache);
    let crashed = Arc::new(dimm.crash_and_restart_seeded(crash_seed));
    inner.simulate_power_failure();
    let recovered = NvCache::builder(NvRegion::whole(crashed))
        .backend(Arc::clone(&inner))
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("recover");
    for (f, expect) in &model {
        let fd = recovered.open(&format!("/f{f}"), OpenFlags::RDONLY, &clock).expect("reopen");
        assert_eq!(
            recovered.fstat(fd, &clock).expect("fstat").size,
            expect.len() as u64,
            "file {f} size wrong after crash (sq_pairs={sq_pairs})"
        );
        let mut buf = vec![0u8; expect.len()];
        recovered.pread(fd, &mut buf, 0, &clock).expect("pread");
        assert_eq!(&buf, expect, "file {f} content wrong after crash (sq_pairs={sq_pairs})");
    }
    assert_checkers_clean(&recovered);
    recovered.shutdown(&clock);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn crash_mid_burst_recovers_exactly_the_acked_writes(
        ops in proptest::collection::vec(
            (0..2u8, 0..8192u16, 1..255u8, 1..2048u16), 1..48),
        sq_pairs in prop_oneof![Just(0usize), Just(1), Just(4), Just(8)],
        doorbell_every in 1..6usize,
        crash_seed in 0..1000u64,
    ) {
        run_sq_crash_scenario(&ops, sq_pairs, doorbell_every, crash_seed);
    }
}
