//! A real legacy engine over a tiered mount: the unmodified rocklet LSM
//! store runs on an NVCache stack whose [`Router`] pins WAL files to a NOVA
//! tier while SSTables and the manifest go to Ext4+SSD — the "hot files
//! over NOVA, cold bulk over ext4" deployment of the ROADMAP's multi-backend
//! item, crash-recovered end to end through the v3 fd table.

use std::sync::Arc;

use nvcache_repro::blockdev::{SsdDevice, SsdProfile};
use nvcache_repro::nvcache::{Mount, NvCache, NvCacheConfig, Router};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::rocklet::{RockletDb, RockletOptions, WriteOptions};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{Ext4, Ext4Profile, FileSystem, NovaFs, NovaProfile, OpenFlags};

/// Tier 1 for write-ahead logs (`…/wal-*`), tier 0 for everything else —
/// a policy a path prefix cannot express, showing the trait is the
/// extension point.
#[derive(Debug)]
struct WalRouter;

impl Router for WalRouter {
    fn route(&self, path: &str, _ino: u64) -> usize {
        usize::from(path.rsplit('/').next().is_some_and(|f| f.starts_with("wal-")))
    }

    fn fan_out(&self) -> usize {
        2
    }

    fn name(&self) -> &str {
        "wal-affinity"
    }
}

fn tiers() -> (Arc<dyn FileSystem>, Arc<dyn FileSystem>) {
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    let bulk: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));
    let dimm = Arc::new(NvDimm::new(64 << 20, NvmmProfile::optane()));
    let hot: Arc<dyn FileSystem> =
        Arc::new(NovaFs::new(NvRegion::whole(dimm), NovaProfile::default()));
    (bulk, hot)
}

#[test]
fn lsm_engine_runs_and_recovers_on_a_wal_tiered_mount() {
    let clock = ActorClock::new();
    let cfg = NvCacheConfig { nb_entries: 4096, fd_slots: 32, ..NvCacheConfig::tiny() };
    let (bulk, hot) = tiers();
    let log_dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cache = Arc::new(
        NvCache::builder(NvRegion::whole(Arc::clone(&log_dimm)))
            .backends(Arc::new(WalRouter), vec![Arc::clone(&bulk), Arc::clone(&hot)])
            .config(cfg.clone())
            .mount(&clock)
            .expect("tiered mount"),
    );

    // Small memtable so the run produces SSTables (bulk tier) and WAL
    // rotations (hot tier).
    let opts = RockletOptions {
        memtable_bytes: 4 << 10,
        target_table_bytes: 8 << 10,
        ..RockletOptions::default()
    };
    let db =
        RockletDb::open(Arc::clone(&cache) as Arc<dyn FileSystem>, "/db", opts.clone(), &clock)
            .expect("open db");
    let wo = WriteOptions { sync: true };
    for i in 0..200u64 {
        db.put(format!("key-{i:05}").as_bytes(), format!("value-{i}").as_bytes(), &wo, &clock)
            .expect("put");
    }
    cache.flush_log(&clock);

    // Placement assertions: every WAL file sits on the NOVA tier, every
    // SSTable / manifest on the Ext4 tier, and neither tier holds the
    // other's files.
    let hot_files = hot.list_dir("/db", &clock).expect("hot listing");
    let bulk_files = bulk.list_dir("/db", &clock).expect("bulk listing");
    assert!(!hot_files.is_empty(), "WAL tier must hold the write-ahead logs");
    assert!(
        hot_files.iter().all(|f| f.starts_with("/db/wal-")),
        "only WALs on the hot tier: {hot_files:?}"
    );
    assert!(
        bulk_files.iter().any(|f| f.ends_with(".sst")),
        "flushes must have produced SSTables on the bulk tier: {bulk_files:?}"
    );
    assert!(
        bulk_files.iter().all(|f| !f.starts_with("/db/wal-")),
        "no WALs on the bulk tier: {bulk_files:?}"
    );
    // The merged view the application sees covers both tiers.
    let merged = cache.list_dir("/db", &clock).expect("merged listing");
    assert_eq!(merged.len(), hot_files.len() + bulk_files.len());

    // Process crash: nothing volatile survives, the NVMM log replays every
    // acknowledged write back to its recorded tier, and the engine's own
    // WAL replay finds its files where it left them.
    drop(db);
    cache.abort();
    drop(cache);
    let restarted = Arc::new(log_dimm.crash_and_restart());
    let recovered = Arc::new(
        NvCache::builder(NvRegion::whole(restarted))
            .backends(Arc::new(WalRouter), vec![bulk, hot])
            .config(cfg)
            .mode(Mount::Recover)
            .mount(&clock)
            .expect("tiered recovery"),
    );
    let db = RockletDb::open(Arc::clone(&recovered) as Arc<dyn FileSystem>, "/db", opts, &clock)
        .expect("reopen db");
    for i in 0..200u64 {
        let got = db.get(format!("key-{i:05}").as_bytes(), &clock).expect("get");
        assert_eq!(
            got.as_deref(),
            Some(format!("value-{i}").as_bytes()),
            "key-{i:05} lost across the tiered crash"
        );
    }
    drop(db);
    recovered.shutdown(&clock);
}

#[test]
fn tiered_mount_is_posix_for_the_engine_paths() {
    // The conformance suite again, this time over the WAL-affinity router
    // (its `/conf/*` paths are non-WAL and land on the bulk tier, while the
    // mount still carries two backends).
    let clock = ActorClock::new();
    let cfg = NvCacheConfig::tiny();
    let (bulk, hot) = tiers();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cache = NvCache::builder(NvRegion::whole(dimm))
        .backends(Arc::new(WalRouter), vec![bulk, hot])
        .config(cfg)
        .mount(&clock)
        .expect("mount");
    nvcache_repro::vfs::check_posix_semantics(&cache);
    cache.shutdown(&clock);
}

#[test]
fn open_fds_keep_serving_reads_from_both_tiers() {
    let clock = ActorClock::new();
    let cfg = NvCacheConfig::tiny();
    let (bulk, hot) = tiers();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cache = NvCache::builder(NvRegion::whole(dimm))
        .backends(Arc::new(WalRouter), vec![Arc::clone(&bulk), Arc::clone(&hot)])
        .config(cfg)
        .mount(&clock)
        .expect("mount");
    let wal = cache.open("/wal-1", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    let sst = cache.open("/data.sst", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(wal, b"hot", 0, &clock).unwrap();
    cache.pwrite(sst, b"bulk", 0, &clock).unwrap();
    cache.flush_log(&clock);
    let mut buf = [0u8; 4];
    cache.pread(wal, &mut buf[..3], 0, &clock).unwrap();
    assert_eq!(&buf[..3], b"hot");
    cache.pread(sst, &mut buf, 0, &clock).unwrap();
    assert_eq!(&buf, b"bulk");
    // And the bytes physically live on their tiers.
    assert!(hot.stat("/wal-1", &clock).is_ok());
    assert!(bulk.stat("/data.sst", &clock).is_ok());
    assert!(hot.stat("/data.sst", &clock).is_err());
    cache.shutdown(&clock);
}
