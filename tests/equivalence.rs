//! Transparency tests: a legacy application must not be able to tell NVCache
//! apart from the kernel it wraps (paper §II: "works transparently with
//! unmodified legacy applications").

use std::sync::Arc;

use nvcache_bench::{build_system, SystemKind, SystemSpec};
use nvcache_repro::rocklet::{bench_key, RockletDb, RockletOptions, WriteOptions};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::sqlight::{SqlightDb, SqlightOptions};
use nvcache_repro::vfs::{self, FileSystem, OpenFlags};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs the same mixed byte-level workload on two file systems and demands
/// byte-identical results.
fn mixed_workload(fs: &Arc<dyn FileSystem>, clock: &ActorClock, seed: u64) -> Vec<u8> {
    let fd = fs.open("/w", OpenFlags::RDWR | OpenFlags::CREATE, clock).expect("open");
    let mut rng = StdRng::seed_from_u64(seed);
    let size = 64 * 1024u64;
    for _ in 0..500 {
        let off = rng.gen_range(0..size - 4096);
        if rng.gen_bool(0.7) {
            let len = rng.gen_range(1..4096usize);
            let val = vec![rng.gen::<u8>(); len];
            fs.pwrite(fd, &val, off, clock).expect("pwrite");
        } else {
            let mut buf = vec![0u8; rng.gen_range(1..4096usize)];
            fs.pread(fd, &mut buf, off, clock).expect("pread");
        }
    }
    fs.fsync(fd, clock).expect("fsync");
    let total = fs.fstat(fd, clock).expect("fstat").size;
    let mut content = vec![0u8; total as usize];
    fs.pread(fd, &mut content, 0, clock).expect("read back");
    fs.close(fd, clock).expect("close");
    content
}

#[test]
fn nvcache_is_byte_equivalent_to_the_inner_fs() {
    for seed in [1u64, 42, 99] {
        let clock = ActorClock::new();
        let plain = build_system(&SystemSpec::new(SystemKind::Ssd, 512), &clock);
        let reference = mixed_workload(&plain.fs, &clock, seed);

        let boosted = build_system(&SystemSpec::new(SystemKind::NvcacheSsd, 512), &clock);
        let observed = mixed_workload(&boosted.fs, &clock, seed);
        boosted.shutdown(&clock);

        assert_eq!(reference.len(), observed.len(), "seed {seed}: size diverged");
        assert_eq!(reference, observed, "seed {seed}: content diverged");
    }
}

#[test]
fn rocklet_runs_identically_on_every_system() {
    let mut reference: Option<Vec<(Vec<u8>, Vec<u8>)>> = None;
    for kind in SystemKind::all() {
        let clock = ActorClock::new();
        let sys = build_system(&SystemSpec::new(kind, 512), &clock);
        let db = RockletDb::open(
            Arc::clone(&sys.fs),
            "/db",
            RockletOptions::tiny(), // tiny => flushes + compactions happen
            &clock,
        )
        .expect("open");
        let wo = WriteOptions { sync: true };
        for i in 0..400u64 {
            db.put(&bench_key(i % 200), format!("v{i}").as_bytes(), &wo, &clock)
                .expect("put");
        }
        for i in (0..200u64).step_by(17) {
            db.delete(&bench_key(i), &wo, &clock).expect("delete");
        }
        let content = db.scan_all(&clock).expect("scan");
        match &reference {
            None => reference = Some(content),
            Some(r) => assert_eq!(r, &content, "{} diverged from the reference", sys.name),
        }
        sys.shutdown(&clock);
    }
}

#[test]
fn sqlight_runs_identically_on_every_system() {
    let mut reference: Option<Vec<(i64, Vec<u8>)>> = None;
    for kind in SystemKind::all() {
        let clock = ActorClock::new();
        let sys = build_system(&SystemSpec::new(kind, 512), &clock);
        let db = SqlightDb::open(Arc::clone(&sys.fs), "/app.db", SqlightOptions::default(), &clock)
            .expect("open");
        db.create_table("t", &clock).expect("create");
        for i in 0..150i64 {
            db.insert("t", i, format!("row{i}").as_bytes(), &clock).expect("insert");
        }
        // A rolled-back transaction must leave no trace anywhere.
        db.begin().expect("begin");
        db.insert("t", 999, b"phantom", &clock).expect("insert phantom");
        db.rollback(&clock).expect("rollback");
        let content = db.scan("t", &clock).expect("scan");
        match &reference {
            None => reference = Some(content),
            Some(r) => assert_eq!(r, &content, "{} diverged from the reference", sys.name),
        }
        db.close(&clock).expect("close");
        sys.shutdown(&clock);
    }
}

#[test]
fn posix_conformance_for_every_system() {
    let clock = ActorClock::new();
    for kind in SystemKind::all() {
        let sys = build_system(&SystemSpec::new(kind, 512), &clock);
        vfs::check_posix_semantics(sys.fs.as_ref());
        sys.shutdown(&clock);
    }
}
