//! Property-based crash testing: random operation sequences, random crash
//! points, random cache-line eviction draws, random log-stripe counts —
//! every acknowledged write must be recovered, byte for byte, and a striped
//! log must recover exactly the same state as the single-shard oracle.

use std::collections::BTreeMap;
use std::sync::Arc;

use nvcache_repro::blockdev::{SsdDevice, SsdProfile};
use nvcache_repro::nvcache::{Mount, NvCache, NvCacheConfig};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{Ext4, Ext4Profile, FileSystem, OpenFlags};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// (file index 0..3, offset, payload byte, length)
    Write(u8, u16, u8, u16),
    /// (file index, offset, length)
    Read(u8, u16, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..3u8, 0..8192u16, 1..255u8, 1..2048u16).prop_map(|(f, o, b, l)| Op::Write(f, o, b, l)),
        (0..3u8, 0..8192u16, 1..2048u16).prop_map(|(f, o, l)| Op::Read(f, o, l)),
    ]
}

/// An in-memory model of what the files must contain.
#[derive(Default)]
struct Model {
    files: BTreeMap<u8, Vec<u8>>,
}

impl Model {
    fn write(&mut self, f: u8, off: usize, byte: u8, len: usize) {
        let content = self.files.entry(f).or_default();
        if content.len() < off + len {
            content.resize(off + len, 0);
        }
        content[off..off + len].fill(byte);
    }
}

/// Runs `ops` against a fresh NVCache with `log_shards` stripes, crashes,
/// recovers, and returns the recovered content of every file the model
/// knows. Read-your-writes is asserted against `model` along the way.
fn run_crash_scenario(
    ops: &[Op],
    crash_seed: u64,
    eviction: f64,
    log_shards: usize,
    model: &mut Model,
) -> BTreeMap<u8, Vec<u8>> {
    let clock = ActorClock::new();
    let cfg = NvCacheConfig {
        nb_entries: 512,
        batch_min: usize::MAX >> 1, // keep everything in the log
        batch_max: usize::MAX >> 1,
        fd_slots: 8,
        read_cache_pages: 4,
        log_shards,
        ..NvCacheConfig::default()
    };
    let profile = NvmmProfile::instant().with_eviction_probability(eviction);
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), profile));
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    let inner: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend(Arc::clone(&inner))
        .config(cfg.clone())
        .mount(&clock)
        .expect("mount");

    let mut fds = BTreeMap::new();
    for f in 0..3u8 {
        let fd = cache
            .open(&format!("/f{f}"), OpenFlags::RDWR | OpenFlags::CREATE, &clock)
            .expect("open");
        fds.insert(f, fd);
    }
    for op in ops {
        match *op {
            Op::Write(f, off, byte, len) => {
                let buf = vec![byte; len as usize];
                cache.pwrite(fds[&f], &buf, off as u64, &clock).expect("pwrite");
                model.write(f, off as usize, byte, len as usize);
            }
            Op::Read(f, off, len) => {
                let mut buf = vec![0u8; len as usize];
                let n = cache.pread(fds[&f], &mut buf, off as u64, &clock).expect("pread");
                // Read-your-writes against the model.
                let expect = model.files.get(&f).cloned().unwrap_or_default();
                let lo = (off as usize).min(expect.len());
                let hi = (off as usize + len as usize).min(expect.len());
                assert_eq!(n, hi - lo, "short read mismatch ({log_shards} shards)");
                assert_eq!(
                    &buf[..n],
                    &expect[lo..hi],
                    "read-your-writes violated ({log_shards} shards)"
                );
            }
        }
    }

    // Crash + recover. Under `pmcheck`, first audit the run's post-mortem
    // registries: every random op sequence must leave both checkers silent.
    #[cfg(feature = "pmcheck")]
    {
        assert!(cache.pm_violations().is_empty(), "{:?}", cache.pm_violations());
        assert!(cache.lock_order_violations().is_empty(), "{:?}", cache.lock_order_violations());
    }
    cache.abort();
    drop(cache);
    let crashed = Arc::new(dimm.crash_and_restart_seeded(crash_seed));
    inner.simulate_power_failure();
    let recovered = NvCache::builder(NvRegion::whole(crashed))
        .backend(Arc::clone(&inner))
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("recover");

    let mut contents = BTreeMap::new();
    for (f, expect) in &model.files {
        let fd = recovered.open(&format!("/f{f}"), OpenFlags::RDONLY, &clock).expect("reopen");
        assert_eq!(
            recovered.fstat(fd, &clock).expect("fstat").size,
            expect.len() as u64,
            "file {f} size lost ({log_shards} shards)"
        );
        let mut buf = vec![0u8; expect.len()];
        recovered.pread(fd, &mut buf, 0, &clock).expect("pread");
        contents.insert(*f, buf);
    }
    #[cfg(feature = "pmcheck")]
    assert!(recovered.pm_violations().is_empty(), "{:?}", recovered.pm_violations());
    recovered.shutdown(&clock);
    contents
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn recovery_restores_every_acknowledged_write(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        crash_seed in 0..1000u64,
        eviction in prop_oneof![Just(0.0f64), Just(0.3), Just(0.9)],
        log_shards in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
    ) {
        let mut model = Model::default();
        let recovered =
            run_crash_scenario(&ops, crash_seed, eviction, log_shards, &mut model);
        for (f, expect) in &model.files {
            prop_assert_eq!(
                &recovered[f], expect,
                "file {} content lost ({} shards)", f, log_shards
            );
        }
    }

    #[test]
    fn sharded_recovery_equals_the_single_shard_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        crash_seed in 0..1000u64,
        log_shards in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        // The same operation sequence, crashed and recovered on a striped
        // log and on the paper's single log, must converge to identical
        // file contents: the k-way merge by global sequence number is
        // observationally equivalent to the seed's in-order replay.
        let mut model = Model::default();
        let sharded = run_crash_scenario(&ops, crash_seed, 0.3, log_shards, &mut model);
        let mut oracle_model = Model::default();
        let oracle = run_crash_scenario(&ops, crash_seed, 0.3, 1, &mut oracle_model);
        prop_assert_eq!(&sharded, &oracle, "{} shards diverged from oracle", log_shards);
    }
}
