//! Property tests on the core data structures, beyond the crash-recovery
//! properties in `recovery_proptest.rs`.

use std::sync::Arc;

use nvcache_repro::nvcache::Radix;
use nvcache_repro::simclock::{ActorClock, Bandwidth, Resource, SimTime};
use nvcache_repro::vfs::{FileSystem, MemFs, OpenFlags};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn radix_behaves_like_a_map(pages in proptest::collection::vec(0u64..1 << 20, 1..200)) {
        let radix = Radix::new();
        let mut model = std::collections::HashSet::new();
        for &p in &pages {
            let d = radix.get_or_create(p);
            prop_assert_eq!(d.page_no(), p);
            model.insert(p);
        }
        prop_assert_eq!(radix.len(), model.len());
        for &p in &model {
            let d = radix.get(p).expect("inserted page present");
            prop_assert_eq!(d.page_no(), p);
            // Idempotent: create again returns the same descriptor.
            prop_assert!(Arc::ptr_eq(&d, &radix.get_or_create(p)));
        }
        // A page never inserted is absent.
        prop_assert!(radix.get((1 << 21) + 1).is_none());
    }

    #[test]
    fn resource_conserves_service_time(services in proptest::collection::vec(1u64..10_000, 1..100)) {
        let r = Resource::new();
        for &s in &services {
            r.serve(SimTime::ZERO, SimTime::from_nanos(s));
        }
        // All requests arrive at t=0 on a serial device: the timeline must
        // extend to exactly the sum of service times.
        prop_assert_eq!(r.busy_until().as_nanos(), services.iter().sum::<u64>());
    }

    #[test]
    fn bandwidth_time_is_monotone(bytes_a in 0u64..1 << 30, bytes_b in 0u64..1 << 30) {
        let bw = Bandwidth::mib_per_sec(123.0);
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(bw.time_for(lo) <= bw.time_for(hi));
    }

    #[test]
    fn posix_file_model(ops in proptest::collection::vec(
        (0u64..20_000, proptest::collection::vec(any::<u8>(), 1..512)), 1..50))
    {
        // MemFs against a flat Vec<u8> model: positional writes/reads with
        // sparse extension must agree byte for byte.
        let clock = ActorClock::new();
        let fs = MemFs::new();
        let fd = fs.open("/m", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        let mut model: Vec<u8> = Vec::new();
        for (off, data) in &ops {
            fs.pwrite(fd, data, *off, &clock).unwrap();
            let end = *off as usize + data.len();
            if model.len() < end {
                model.resize(end, 0);
            }
            model[*off as usize..end].copy_from_slice(data);
        }
        prop_assert_eq!(fs.fstat(fd, &clock).unwrap().size, model.len() as u64);
        let mut content = vec![0u8; model.len()];
        fs.pread(fd, &mut content, 0, &clock).unwrap();
        prop_assert_eq!(content, model);
    }
}
