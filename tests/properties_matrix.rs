//! Table I / Table IV property matrix, asserted on the running systems
//! (these are the checks `table1`/`table4` print).

use nvcache_bench::{build_system, SystemKind, SystemSpec};
use nvcache_repro::simclock::{ActorClock, SimTime};
use nvcache_repro::vfs::OpenFlags;

#[test]
fn durability_matrix_matches_table_iv() {
    let clock = ActorClock::new();
    let expected = [
        (SystemKind::NvcacheSsd, true, true),
        (SystemKind::DmWritecacheSsd, false, false),
        (SystemKind::Ext4Dax, false, false),
        (SystemKind::Nova, true, true),
        (SystemKind::Ssd, false, false),
        (SystemKind::Tmpfs, false, false),
        (SystemKind::NvcacheNova, true, true),
    ];
    for (kind, sync_durability, durable_linearizability) in expected {
        let sys = build_system(&SystemSpec::new(kind, 512), &clock);
        assert_eq!(sys.fs.synchronous_durability(), sync_durability, "{}", sys.name);
        assert_eq!(sys.fs.durable_linearizability(), durable_linearizability, "{}", sys.name);
        sys.shutdown(&clock);
    }
}

#[test]
fn large_storage_nvcache_works_past_nvmm_capacity_where_nova_cannot() {
    // Table I row "Offer a large storage space": give NOVA and NVCache the
    // SAME small NVMM budget; write more data than the NVMM holds. NOVA must
    // hit ENOSPC, NVCache+SSD must complete (its NVMM is only a cache).
    let clock = ActorClock::new();
    let nvmm_budget = 48u64 << 20; // 48 MiB of "NVMM" for both systems
    let data = 96u64 << 20; // write 96 MiB

    let nova = build_system(
        &SystemSpec {
            nvmm_bytes_full: nvmm_budget * 512,
            ..SystemSpec::new(SystemKind::Nova, 512)
        },
        &clock,
    );
    let fd = nova.fs.open("/big", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    let mut nova_failed = false;
    for i in 0..data / 4096 {
        if nova.fs.pwrite(fd, &[1u8; 4096], i * 4096, &clock).is_err() {
            nova_failed = true;
            break;
        }
    }
    assert!(nova_failed, "NOVA must run out of NVMM");

    let cfg = nvcache_repro::nvcache::NvCacheConfig {
        nb_entries: nvmm_budget / 4160, // same NVMM budget for the log
        fd_slots: 16,
        read_cache_pages: 64,
        ..nvcache_repro::nvcache::NvCacheConfig::default()
    };
    let boosted = build_system(
        &SystemSpec::new(SystemKind::NvcacheSsd, 512).with_nvcache_cfg(cfg).timing_only(),
        &clock,
    );
    let fd = boosted.fs.open("/big", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    for i in 0..data / 4096 {
        boosted
            .fs
            .pwrite(fd, &[1u8; 4096], i * 4096, &clock)
            .expect("NVCache must not be capacity-limited by its NVMM");
    }
    assert_eq!(boosted.fs.fstat(fd, &clock).unwrap().size, data);
    boosted.shutdown(&clock);
}

#[test]
fn fsync_cost_ranking_matches_the_designs() {
    // NVCache & NOVA: fsync ~free. SSD-backed Ext4: fsync pays a flush.
    let clock = ActorClock::new();
    let mut costs = Vec::new();
    for kind in [SystemKind::NvcacheSsd, SystemKind::Nova, SystemKind::Ssd] {
        let sys = build_system(&SystemSpec::new(kind, 512), &clock);
        let c = ActorClock::new();
        let fd = sys.fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        sys.fs.pwrite(fd, &[0u8; 4096], 0, &c).unwrap();
        let before = c.now();
        sys.fs.fsync(fd, &c).unwrap();
        costs.push((sys.name, c.now() - before));
        sys.shutdown(&clock);
    }
    let nvcache = costs[0].1;
    let nova = costs[1].1;
    let ssd = costs[2].1;
    assert!(nvcache < SimTime::from_micros(3), "NVCache fsync must be a no-op: {nvcache}");
    assert!(nova < SimTime::from_micros(3), "NOVA fsync must be nearly free: {nova}");
    assert!(ssd > SimTime::from_micros(100), "SSD fsync must pay the device flush: {ssd}");
}

#[test]
fn disk_latency_reduction_headline_claim() {
    // §I: "Under synchronous writes, NVCache reduces by up to 10x the disk
    // access latency of the applications as compared to an SSD."
    let clock = ActorClock::new();
    let mut lat = Vec::new();
    for kind in [SystemKind::NvcacheSsd, SystemKind::Ssd] {
        let sys = build_system(&SystemSpec::new(kind, 512), &clock);
        let c = ActorClock::new();
        let fd = sys
            .fs
            .open("/w", OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::DIRECT, &c)
            .unwrap();
        let before = c.now();
        for i in 0..64u64 {
            sys.fs.pwrite(fd, &[1u8; 4096], i * 4096, &c).unwrap();
            sys.fs.fsync(fd, &c).unwrap();
        }
        lat.push((c.now() - before) / 64);
        sys.shutdown(&clock);
    }
    let speedup = lat[1].as_nanos() as f64 / lat[0].as_nanos() as f64;
    assert!(
        speedup >= 10.0,
        "expected >=10x synchronous-write latency reduction, got {speedup:.1}x"
    );
}
