//! Property-based chaos testing of the layer subsystem: crash-mid-drain
//! recovery under randomized `FaultLayer` schedules (budget × fault kind ×
//! tier position) must converge to the acknowledged prefix, and byte
//! tampering below a `CryptLayer` must be detected wherever it lands.

use std::collections::BTreeMap;
use std::sync::Arc;

use nvcache_repro::blockdev::{SsdDevice, SsdProfile};
use nvcache_repro::nvcache::{Mount, NvCache, NvCacheConfig, PathPrefixRouter};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{
    CryptLayer, Ext4, Ext4Profile, FaultLayer, FaultOp, FaultRule, FaultTrigger, FileSystem, Layer,
    MemFs, OpenFlags,
};
use proptest::prelude::*;

/// In-memory oracle of a file's acknowledged content.
#[derive(Default)]
struct Model {
    files: BTreeMap<String, Vec<u8>>,
}

impl Model {
    fn write(&mut self, path: &str, off: usize, byte: u8, len: usize) {
        let content = self.files.entry(path.to_string()).or_default();
        if content.len() < off + len {
            content.resize(off + len, 0);
        }
        content[off..off + len].fill(byte);
    }
}

/// One randomized fault schedule: which drain-path op misbehaves, how it
/// triggers, and which tier of a two-tier mount carries the layer.
#[derive(Debug, Clone)]
struct Schedule {
    op: FaultOp,
    trigger: FaultTrigger,
    tier: usize,
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    (
        prop_oneof![Just(FaultOp::Write), Just(FaultOp::Fsync)],
        prop_oneof![
            (0..10u64).prop_map(FaultTrigger::AfterBudget),
            (1..10u64).prop_map(FaultTrigger::OnNth),
        ],
        0..2usize,
    )
        .prop_map(|(op, trigger, tier)| Schedule { op, trigger, tier })
}

/// Mounts two MemFs tiers with a `FaultLayer` on `schedule.tier`, streams
/// writes across both tiers with an eagerly draining cleanup (faults land
/// mid-drain), stops at the first error the app observes, crashes, disarms
/// the fault, recovers — and demands every *acknowledged* write back.
fn crash_under_fault_schedule(schedule: &Schedule, crash_seed: u64, writes: &[(u8, u16, u16)]) {
    let clock = ActorClock::new();
    let cfg = NvCacheConfig {
        nb_entries: 256,
        batch_min: 1, // drain eagerly: faults fire while entries propagate
        batch_max: 8,
        fd_slots: 8,
        read_cache_pages: 4,
        ..NvCacheConfig::default()
    };
    let fault =
        Arc::new(FaultLayer::new(vec![FaultRule::new(schedule.op, schedule.trigger.clone())]));
    // Durable tiers (Ext4+SSD): the acknowledged-prefix contract spans the
    // crash, so drained entries must survive below (MemFs would not).
    let ext4 = |name: &str| -> Arc<dyn FileSystem> {
        Arc::new(Ext4::new(
            name,
            Arc::new(SsdDevice::new(SsdProfile::s4600())),
            Ext4Profile::default(),
        ))
    };
    let cold = ext4("ext4+ssd-cold");
    let hot = ext4("ext4+ssd-hot");
    let router: Arc<dyn nvcache_repro::nvcache::Router> =
        Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0));
    let tiers = |fault_on: usize| {
        let mut t: Vec<nvcache_repro::nvcache::LayeredTier> =
            vec![(vec![], Arc::clone(&cold)), (vec![], Arc::clone(&hot))];
        t[fault_on].0 = vec![Arc::clone(&fault) as Arc<dyn Layer>];
        t
    };
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backends_stacked(Arc::clone(&router), tiers(schedule.tier))
        .config(cfg.clone())
        .mount(&clock)
        .expect("mount");

    let paths = ["/cold-file", "/hot/file"];
    let mut fds = BTreeMap::new();
    let mut model = Model::default();
    let mut opened = true;
    for path in paths {
        match cache.open(path, OpenFlags::RDWR | OpenFlags::CREATE, &clock) {
            Ok(fd) => {
                fds.insert(path, fd);
            }
            Err(_) => {
                // An Open fault (not generated today) or a poisoned stripe:
                // nothing acknowledged for this file.
                opened = false;
            }
        }
    }
    if opened {
        for &(sel, off, len) in writes {
            let path = paths[sel as usize % 2];
            let byte = (off % 250 + 1) as u8;
            let buf = vec![byte; len as usize];
            match cache.pwrite(fds[path], &buf, off as u64, &clock) {
                Ok(_) => model.write(path, off as usize, byte, len as usize),
                // First app-visible error (poisoned stripe): the
                // acknowledged prefix ends here.
                Err(_) => break,
            }
        }
    }
    // Give the eager drain a bounded window to hit the fault (or finish).
    for _ in 0..200 {
        if !cache.poisoned_stripes().is_empty() || cache.pending_entries() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // Power failure mid-drain, then recovery with the fault disarmed (the
    // device came back healthy) through the same layer handles.
    cache.abort();
    drop(cache);
    let crashed = Arc::new(dimm.crash_and_restart_seeded(crash_seed));
    cold.simulate_power_failure();
    hot.simulate_power_failure();
    fault.disarm();
    let recovered = NvCache::builder(NvRegion::whole(crashed))
        .backends_stacked(router, tiers(schedule.tier))
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("recovery must converge once the fault is gone");

    for (path, expect) in &model.files {
        let fd = recovered.open(path, OpenFlags::RDONLY, &clock).expect("reopen");
        let size = recovered.fstat(fd, &clock).expect("fstat").size;
        assert!(
            size >= expect.len() as u64,
            "{path}: acknowledged size lost under {schedule:?} (got {size}, want ≥ {})",
            expect.len()
        );
        let mut buf = vec![0u8; expect.len()];
        recovered.pread(fd, &mut buf, 0, &clock).expect("pread");
        assert_eq!(&buf, expect, "{path}: acknowledged prefix lost under {schedule:?}");
        recovered.close(fd, &clock).expect("close");
    }
    recovered.shutdown(&clock);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn acknowledged_prefix_survives_randomized_fault_schedules(
        schedule in schedule_strategy(),
        crash_seed in 0..1000u64,
        writes in proptest::collection::vec((0..2u8, 0..16_000u16, 1..1500u16), 1..40),
    ) {
        crash_under_fault_schedule(&schedule, crash_seed, &writes);
    }

    #[test]
    fn tampering_anywhere_in_written_content_is_detected(
        key in any::<u64>(),
        len in 1..20_000usize,
        flip in 0..20_000usize,
        mask in 1..=255u8,
    ) {
        let flip = flip % len; // somewhere inside the written (tagged) extent
        let clock = ActorClock::new();
        let layer = CryptLayer::new(key);
        let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let fs = layer.wrap(Arc::clone(&inner));
        let fd = fs.open("/t", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        let content: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
        fs.pwrite(fd, &content, 0, &clock).unwrap();
        // Sanity: reads back clean before the flip.
        let mut buf = vec![0u8; len];
        fs.pread(fd, &mut buf, 0, &clock).unwrap();
        prop_assert_eq!(&buf, &content);

        // Flip one stored byte behind the layer's back.
        let raw = inner.open("/t", OpenFlags::RDWR, &clock).unwrap();
        let mut b = [0u8; 1];
        inner.pread(raw, &mut b, flip as u64, &clock).unwrap();
        inner.pwrite(raw, &[b[0] ^ mask], flip as u64, &clock).unwrap();
        inner.close(raw, &clock).unwrap();

        // A full-file read must now fail (the tampered page refuses)…
        prop_assert!(
            fs.pread(fd, &mut buf, 0, &clock).is_err(),
            "tampered byte at {} of {} went undetected", flip, len
        );
        prop_assert!(layer.stats().tamper_detected >= 1);
        // …while pages outside the tampered one still read clean.
        let page = flip / 4096;
        for other in 0..len.div_ceil(4096) {
            if other == page { continue; }
            let base = other * 4096;
            let avail = (len - base).min(4096);
            let mut pb = vec![0u8; avail];
            prop_assert!(fs.pread(fd, &mut pb, base as u64, &clock).is_ok());
            prop_assert_eq!(&pb, &content[base..base + avail]);
        }
    }
}
