//! Mutation tests for the `pmcheck` persistency checker (feature
//! `pmcheck`): each test arms one test-only bug in the durability protocol
//! (`nvcache::pm_mutation`) and asserts the shadow checker turns it into a
//! deterministic panic naming the offending op, line address and call site.
//! The final test runs the canonical mixed workload with no mutation and
//! asserts zero violations — the checker must not cry wolf.

#![cfg(feature = "pmcheck")]

use std::sync::Arc;

use nvcache_repro::blockdev::{SsdDevice, SsdProfile};
use nvcache_repro::nvcache::{pm_mutation, Mount, NvCache, NvCacheConfig};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{Ext4, Ext4Profile, FileSystem, OpenFlags};

fn mount(clock: &ActorClock) -> (Arc<NvDimm>, Arc<dyn FileSystem>, NvCacheConfig, NvCache) {
    let cfg = NvCacheConfig {
        nb_entries: 256,
        batch_min: 4,
        batch_max: 16,
        fd_slots: 8,
        read_cache_pages: 8,
        ..NvCacheConfig::default()
    };
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    let inner: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend(Arc::clone(&inner))
        .config(cfg.clone())
        .mount(clock)
        .expect("mount");
    (dimm, inner, cfg, cache)
}

/// Arms `arm` on a fresh thread, drives one synchronous write through the
/// log (fills and the group commit both run on the calling thread), and
/// returns the checker's panic message. The fresh thread keeps the armed
/// thread-local mutation — and the unwound thread's shadow attributions —
/// away from every other test in this process.
fn violation_message(arm: fn()) -> String {
    std::thread::spawn(move || {
        let clock = ActorClock::new();
        let (dimm, _inner, _cfg, cache) = mount(&clock);
        let fd = cache.open("/mut", OpenFlags::RDWR | OpenFlags::CREATE, &clock).expect("open");
        // An unmutated write first: the armed bug must flag the *next* one.
        cache.pwrite(fd, &[1u8; 100], 0, &clock).expect("pwrite");
        arm();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.pwrite(fd, &[2u8; 100], 4096, &clock)
        }))
        .expect_err("the armed mutation must make pmcheck panic");
        pm_mutation::disarm_all();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".to_string());
        // The violation must also be recorded for post-mortem auditing.
        assert!(dimm.pm_violations().contains(&msg), "panic message not in pm_violations(): {msg}");
        cache.abort();
        msg
    })
    .join()
    .expect("mutation thread")
}

#[test]
fn dropped_fence_is_flagged_at_the_commit_store() {
    let msg = violation_message(pm_mutation::arm_drop_fence);
    assert!(msg.contains("pmcheck violation"), "{msg}");
    assert!(msg.contains("commit_store"), "{msg}");
    assert!(msg.contains("stored before the fence"), "{msg}");
    // Op site: the commit publish in the log; payload site: the fill's pwb.
    assert!(msg.contains("crates/core/src/log.rs"), "{msg}");
    assert!(msg.contains("line 0x"), "{msg}");
}

#[test]
fn reordered_commit_store_is_flagged() {
    let msg = violation_message(pm_mutation::arm_reorder_commit);
    assert!(msg.contains("pmcheck violation"), "{msg}");
    assert!(msg.contains("commit_store"), "{msg}");
    assert!(msg.contains("stored before the fence"), "{msg}");
    assert!(msg.contains("crates/core/src/log.rs"), "{msg}");
    assert!(msg.contains("line 0x"), "{msg}");
}

#[test]
fn skipped_pwb_is_flagged_at_the_covering_fence() {
    let msg = violation_message(pm_mutation::arm_skip_pwb);
    assert!(msg.contains("pmcheck violation"), "{msg}");
    assert!(msg.contains("persist_fence"), "{msg}");
    assert!(msg.contains("skipped pwb"), "{msg}");
    // The Dirty store is the fill's entry write in the log.
    assert!(msg.contains("crates/core/src/log.rs"), "{msg}");
    assert!(msg.contains("line 0x"), "{msg}");
}

#[test]
fn unmutated_workload_reports_zero_violations() {
    // Canonical mixed workload — writes, overwrites, reads, flush, crash,
    // recovery — with no mutation armed: the checker must stay silent while
    // the lock-order recorder actually observes acquisitions.
    let clock = ActorClock::new();
    let (dimm, inner, cfg, cache) = mount(&clock);
    let fd = cache.open("/a", OpenFlags::RDWR | OpenFlags::CREATE, &clock).expect("open a");
    let fd2 = cache.open("/b", OpenFlags::RDWR | OpenFlags::CREATE, &clock).expect("open b");
    for i in 0..64u64 {
        cache.pwrite(fd, &[i as u8 + 1; 700], i * 512, &clock).expect("pwrite a");
        cache.pwrite(fd2, &[i as u8 + 7; 300], i * 4096, &clock).expect("pwrite b");
    }
    let mut buf = [0u8; 700];
    cache.pread(fd, &mut buf, 512, &clock).expect("pread");
    cache.rename("/b", "/c", &clock).expect("rename");
    cache.flush_log(&clock);
    assert!(cache.pm_violations().is_empty(), "{:?}", cache.pm_violations());
    assert!(cache.lock_order_violations().is_empty(), "{:?}", cache.lock_order_violations());
    assert!(cache.lock_order_edges() > 0, "the recorder saw no acquisitions at all");
    cache.abort();

    let crashed = Arc::new(dimm.crash_and_restart_seeded(11));
    inner.simulate_power_failure();
    let recovered = NvCache::builder(NvRegion::whole(Arc::clone(&crashed)))
        .backend(inner)
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("recover");
    let fd = recovered.open("/a", OpenFlags::RDONLY, &clock).expect("reopen");
    recovered.pread(fd, &mut buf, 512, &clock).expect("pread recovered");
    assert!(recovered.pm_violations().is_empty(), "{:?}", recovered.pm_violations());
    assert!(recovered.lock_order_violations().is_empty());
    recovered.shutdown(&clock);
}
