//! Multi-threaded stress tests of the striped NVMM log: concurrent writers
//! whose byte ranges straddle page borders land in *different* stripes, and
//! the per-page propagation handoff between cleanup workers must still
//! deliver every page to the inner file system in commit order.

use std::sync::Arc;

use nvcache_repro::nvcache::{NvCache, NvCacheConfig};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{FileSystem, MemFs, OpenFlags};

/// Under `pmcheck`, audit the mount's post-mortem registries: violations
/// panic at the offending site already, but an end-of-run sweep also
/// catches reports raised (and caught) on worker threads.
#[cfg(feature = "pmcheck")]
fn assert_checkers_clean(cache: &NvCache) {
    assert!(cache.pm_violations().is_empty(), "{:?}", cache.pm_violations());
    assert!(cache.lock_order_violations().is_empty(), "{:?}", cache.lock_order_violations());
    assert!(cache.lock_order_edges() > 0, "lock-order recorder saw no acquisitions");
}
#[cfg(not(feature = "pmcheck"))]
fn assert_checkers_clean(_cache: &NvCache) {}

fn setup(shards: usize) -> (ActorClock, Arc<dyn FileSystem>, Arc<NvCache>) {
    let clock = ActorClock::new();
    let cfg = NvCacheConfig {
        nb_entries: 1024,
        read_cache_pages: 128,
        batch_min: 1,
        batch_max: 64,
        fd_slots: 16,
        ..NvCacheConfig::default()
    }
    .with_log_shards(shards);
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = Arc::new(
        NvCache::builder(NvRegion::whole(dimm))
            .backend(Arc::clone(&inner))
            .config(cfg)
            .mount(&clock)
            .expect("mount"),
    );
    (clock, inner, cache)
}

/// Writers collide on a small set of overlapping, page-straddling ranges.
/// After a full drain, the inner file system must agree byte-for-byte with
/// NVCache's own page-lock-ordered view — per-page write ordering held
/// across stripes.
fn hammer_overlapping_ranges(shards: usize, threads: u8, rounds: u64) {
    let (clock, inner, cache) = setup(shards);
    let fd = cache.open("/stress", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    let mut handles = Vec::new();
    for t in 0..threads {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            let clock = ActorClock::new();
            for round in 0..rounds {
                // Unaligned offsets: every multi-page write straddles a page
                // border, so one page's entries come from several stripes.
                let off = (round % 4) * 2048;
                let len: usize = if t % 2 == 0 { 8192 } else { 3000 };
                let byte = 1u8.wrapping_add(t).wrapping_add((round as u8) << 4);
                cache.pwrite(fd, &vec![byte; len], off, &clock).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    cache.flush_log(&clock);
    assert_eq!(cache.pending_entries(), 0, "flush barrier must drain all stripes");

    let size = cache.fstat(fd, &clock).unwrap().size;
    let mut cache_view = vec![0u8; size as usize];
    cache.pread(fd, &mut cache_view, 0, &clock).unwrap();

    let ifd = inner.open("/stress", OpenFlags::RDONLY, &clock).unwrap();
    let mut inner_view = vec![0u8; size as usize];
    inner.pread(ifd, &mut inner_view, 0, &clock).unwrap();
    if let Some(pos) = cache_view.iter().zip(&inner_view).position(|(a, b)| a != b) {
        panic!(
            "per-page ordering broke with {shards} stripes: byte {pos} is {} in the \
             cache view but {} on the inner fs",
            cache_view[pos], inner_view[pos]
        );
    }
    assert_checkers_clean(&cache);
    cache.shutdown(&clock);
}

#[test]
fn per_page_ordering_survives_two_stripes() {
    hammer_overlapping_ranges(2, 4, 48);
}

#[test]
fn per_page_ordering_survives_eight_stripes() {
    hammer_overlapping_ranges(8, 6, 48);
}

#[test]
fn single_stripe_baseline_still_holds() {
    // The same stress on the seed-identical configuration: guards against
    // the oracle itself drifting.
    hammer_overlapping_ranges(1, 4, 48);
}

/// Disjoint per-thread pages across many stripes: all writes must be acked,
/// durable, and spread over more than one stripe.
#[test]
fn disjoint_writers_use_multiple_stripes() {
    let (clock, inner, cache) = setup(8);
    let fd = cache.open("/spread", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            let clock = ActorClock::new();
            for i in 0..32u64 {
                let page = t * 32 + i;
                cache.pwrite(fd, &[(t + 1) as u8; 4096], page * 4096, &clock).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    cache.flush_log(&clock);
    let snap = cache.stats().snapshot();
    assert_eq!(snap.per_shard.len(), 8);
    let used = snap.per_shard.iter().filter(|s| s.entries_logged > 0).count();
    assert!(used > 1, "expected traffic on several stripes: {:?}", snap.per_shard);
    assert_eq!(
        snap.per_shard.iter().map(|s| s.entries_propagated).sum::<u64>(),
        256,
        "every entry must be propagated exactly once"
    );
    let ifd = inner.open("/spread", OpenFlags::RDONLY, &clock).unwrap();
    for t in 0..8u64 {
        for i in 0..32u64 {
            let page = t * 32 + i;
            let mut buf = [0u8; 4096];
            inner.pread(ifd, &mut buf, page * 4096, &clock).unwrap();
            assert_eq!(buf[0], (t + 1) as u8, "inner page {page}");
        }
    }
    assert_checkers_clean(&cache);
    cache.shutdown(&clock);
}
