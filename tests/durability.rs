//! Crash-injection tests of NVCache's two advertised guarantees
//! (paper Table IV): synchronous durability — every write whose call
//! returned survives a power failure — and durable linearizability — a read
//! can only observe writes that survive.

use std::sync::Arc;

use nvcache_repro::blockdev::{SsdDevice, SsdProfile};
use nvcache_repro::nvcache::{Mount, NvCache, NvCacheConfig};
use nvcache_repro::nvmm::{NvDimm, NvRegion, NvmmProfile};
use nvcache_repro::simclock::ActorClock;
use nvcache_repro::vfs::{Ext4, Ext4Profile, FileSystem, OpenFlags};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Rig {
    clock: ActorClock,
    dimm: Arc<NvDimm>,
    inner: Arc<dyn FileSystem>,
    cfg: NvCacheConfig,
    cache: Option<NvCache>,
}

fn rig(cfg: NvCacheConfig, eviction_probability: f64) -> Rig {
    let clock = ActorClock::new();
    let profile = NvmmProfile::instant().with_eviction_probability(eviction_probability);
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), profile));
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    let inner: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend(Arc::clone(&inner))
        .config(cfg.clone())
        .mount(&clock)
        .expect("mount");
    Rig { clock, dimm, inner, cfg, cache: Some(cache) }
}

impl Rig {
    /// Kills the process, pulls the power (seeded), drops kernel volatile
    /// state, and recovers. The rig tracks the post-crash DIMM so repeated
    /// crashes snapshot the current generation.
    fn crash_and_recover(&mut self, seed: u64) -> NvCache {
        self.cache.take().expect("running").abort();
        let crashed = Arc::new(self.dimm.crash_and_restart_seeded(seed));
        self.dimm = Arc::clone(&crashed);
        self.inner.simulate_power_failure();
        NvCache::builder(NvRegion::whole(crashed))
            .backend(Arc::clone(&self.inner))
            .config(self.cfg.clone())
            .mode(Mount::Recover)
            .mount(&self.clock)
            .expect("recover")
    }
}

#[test]
fn every_acknowledged_write_survives_random_crash_points() {
    for crash_after in [1usize, 3, 7, 20, 64, 150] {
        let mut rig = rig(
            NvCacheConfig {
                nb_entries: 512,
                batch_min: 40, // some entries propagate, some stay in the log
                batch_max: 80,
                fd_slots: 16,
                read_cache_pages: 8,
                ..NvCacheConfig::default()
            },
            0.0,
        );
        let cache = rig.cache.as_ref().expect("running");
        let fd = cache.open("/d", OpenFlags::RDWR | OpenFlags::CREATE, &rig.clock).expect("open");
        let mut rng = StdRng::seed_from_u64(crash_after as u64);
        let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
        for i in 0..crash_after {
            let off = rng.gen_range(0..64u64) * 512;
            let val = vec![(i % 251 + 1) as u8; rng.gen_range(1..2000)];
            cache.pwrite(fd, &val, off, &rig.clock).expect("pwrite");
            // Writes to overlapping ranges: remember the latest per range.
            acked.retain(|(o, v)| *o + v.len() as u64 <= off || *o >= off + val.len() as u64);
            acked.push((off, val));
        }
        let recovered = rig.crash_and_recover(7);
        let fd = recovered.open("/d", OpenFlags::RDONLY, &rig.clock).expect("reopen");
        for (off, val) in &acked {
            let mut buf = vec![0u8; val.len()];
            recovered.pread(fd, &mut buf, *off, &rig.clock).expect("pread");
            assert_eq!(
                &buf, val,
                "acknowledged write at {off} lost after crash_after={crash_after}"
            );
        }
        recovered.shutdown(&rig.clock);
    }
}

#[test]
fn torn_cache_lines_never_corrupt_recovered_state() {
    // With eviction probability 0.5, arbitrary subsets of un-fenced lines
    // persist: recovery must still only replay fully committed entries.
    for seed in 0..10u64 {
        let mut rig = rig(
            NvCacheConfig {
                nb_entries: 256,
                batch_min: usize::MAX >> 1,
                batch_max: usize::MAX >> 1,
                fd_slots: 8,
                ..NvCacheConfig::default()
            },
            0.5,
        );
        let cache = rig.cache.as_ref().expect("running");
        let fd = cache.open("/t", OpenFlags::RDWR | OpenFlags::CREATE, &rig.clock).expect("open");
        let mut expected = vec![0u8; 32 * 256];
        for i in 0..32u64 {
            let val = vec![(i + 1) as u8; 256];
            cache.pwrite(fd, &val, i * 256, &rig.clock).expect("pwrite");
            expected[(i * 256) as usize..(i * 256 + 256) as usize].copy_from_slice(&val);
        }
        let recovered = rig.crash_and_recover(seed);
        let fd = recovered.open("/t", OpenFlags::RDONLY, &rig.clock).expect("reopen");
        let mut buf = vec![0u8; expected.len()];
        let n = recovered.pread(fd, &mut buf, 0, &rig.clock).expect("pread");
        assert_eq!(n, expected.len());
        assert_eq!(buf, expected, "seed {seed}: committed data corrupted");
        recovered.shutdown(&rig.clock);
    }
}

#[test]
fn durable_linearizability_reads_imply_survival() {
    // Write, READ IT BACK (observe), then crash: anything observed by a read
    // must survive — the paper's durable-linearizability contract.
    let mut rig = rig(
        NvCacheConfig {
            nb_entries: 128,
            batch_min: usize::MAX >> 1,
            batch_max: usize::MAX >> 1,
            fd_slots: 8,
            ..NvCacheConfig::default()
        },
        0.0,
    );
    let cache = rig.cache.as_ref().expect("running");
    let fd = cache
        .open("/lin", OpenFlags::RDWR | OpenFlags::CREATE, &rig.clock)
        .expect("open");
    let mut observed = Vec::new();
    for i in 0..40u64 {
        cache.pwrite(fd, &[i as u8 + 1; 64], i * 64, &rig.clock).expect("pwrite");
        let mut buf = [0u8; 64];
        cache.pread(fd, &mut buf, i * 64, &rig.clock).expect("pread");
        observed.push((i * 64, buf));
    }
    let recovered = rig.crash_and_recover(3);
    let fd = recovered.open("/lin", OpenFlags::RDONLY, &rig.clock).expect("reopen");
    for (off, val) in &observed {
        let mut buf = [0u8; 64];
        recovered.pread(fd, &mut buf, *off, &rig.clock).expect("pread");
        assert_eq!(&buf, val, "observed-then-lost write at {off}");
    }
    recovered.shutdown(&rig.clock);
}

#[test]
fn multi_entry_groups_are_all_or_nothing() {
    // Large writes span entries; after a crash either the whole write is
    // visible or none of it (the group-commit flag, paper §II-D).
    let mut rig = rig(
        NvCacheConfig {
            nb_entries: 64,
            batch_min: usize::MAX >> 1,
            batch_max: usize::MAX >> 1,
            fd_slots: 8,
            ..NvCacheConfig::default()
        },
        0.0,
    );
    let cache = rig.cache.as_ref().expect("running");
    let fd = cache.open("/g", OpenFlags::RDWR | OpenFlags::CREATE, &rig.clock).expect("open");
    // 20 KiB write = 5 entries.
    let big: Vec<u8> = (0..20_480u32).map(|i| (i % 249 + 1) as u8).collect();
    cache.pwrite(fd, &big, 0, &rig.clock).expect("pwrite");
    let recovered = rig.crash_and_recover(0);
    let fd = recovered.open("/g", OpenFlags::RDONLY, &rig.clock).expect("reopen");
    let mut buf = vec![0u8; big.len()];
    let n = recovered.pread(fd, &mut buf, 0, &rig.clock).expect("pread");
    assert_eq!(n, big.len(), "group partially recovered");
    assert_eq!(buf, big, "group content corrupted");
    recovered.shutdown(&rig.clock);
}

#[test]
fn double_crash_recovery_converges() {
    let mut rig = rig(
        NvCacheConfig {
            nb_entries: 128,
            batch_min: usize::MAX >> 1,
            batch_max: usize::MAX >> 1,
            fd_slots: 8,
            ..NvCacheConfig::default()
        },
        0.0,
    );
    let cache = rig.cache.as_ref().expect("running");
    let fd = cache
        .open("/dc", OpenFlags::RDWR | OpenFlags::CREATE, &rig.clock)
        .expect("open");
    cache.pwrite(fd, b"gen1", 0, &rig.clock).expect("pwrite");
    let gen2 = rig.crash_and_recover(1);
    let recovered = rig.cache.insert(gen2);
    let fd = recovered.open("/dc", OpenFlags::RDWR, &rig.clock).expect("open gen2");
    recovered.pwrite(fd, b"gen2", 8, &rig.clock).expect("pwrite gen2");
    let recovered2 = rig.crash_and_recover(2);
    let fd = recovered2.open("/dc", OpenFlags::RDONLY, &rig.clock).expect("open gen3");
    let mut buf = [0u8; 12];
    recovered2.pread(fd, &mut buf, 0, &rig.clock).expect("pread");
    assert_eq!(&buf[0..4], b"gen1");
    assert_eq!(&buf[8..12], b"gen2");
    recovered2.shutdown(&rig.clock);
}
