use std::sync::atomic::{AtomicU64, Ordering};

use simclock::{ActorClock, Bandwidth, ChannelResource, SimTime};

use crate::{BlockDevice, DeviceStats, SparseStore};

/// Latency model of a SATA data-center SSD (Intel DC S4600 class).
///
/// Calibrated against the quantities the paper's figures depend on:
///
/// * random 4 KiB writes sustain ≈80 MiB/s (Fig. 5: the saturated NVCache log
///   drains at "around 80 MiB/s, which corresponds to the throughput of our
///   SSD performing random writes");
/// * sequential writes sustain ≈450 MiB/s;
/// * a flush (fsync reaching the device) costs ≈140µs, making a 4 KiB
///   write+flush ≈13× slower than the write alone (paper §III cites ref \[35\]).
#[derive(Debug, Clone)]
pub struct SsdProfile {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Sequential write bandwidth.
    pub seq_write: Bandwidth,
    /// Sequential read bandwidth.
    pub seq_read: Bandwidth,
    /// Service time of one random 4 KiB write.
    pub rand_write_4k: SimTime,
    /// Service time of one random 4 KiB read.
    pub rand_read_4k: SimTime,
    /// Fixed cost of a device flush.
    pub flush: SimTime,
    /// Keep written content (disable for timing-only benches).
    pub keep_content: bool,
    /// Parallel command-queue channels (NCQ depth). `1` — the seed model —
    /// serves strictly serially; `k > 1` lets up to `k` requests whose
    /// submission windows overlap (e.g. an io_uring-style batch) proceed
    /// concurrently. Flushes are barriers across all channels either way.
    pub queue_depth: usize,
}

impl SsdProfile {
    /// The default S4600-class profile (480 GB).
    pub fn s4600() -> Self {
        SsdProfile {
            capacity: 480 * (1 << 30),
            seq_write: Bandwidth::mib_per_sec(450.0),
            seq_read: Bandwidth::mib_per_sec(500.0),
            rand_write_4k: SimTime::from_micros(48),
            rand_read_4k: SimTime::from_micros(90),
            flush: SimTime::from_micros(140),
            keep_content: true,
            queue_depth: 1,
        }
    }

    /// Same timings, but discard content (timing-only benchmarks).
    pub fn timing_only(mut self) -> Self {
        self.keep_content = false;
        self
    }

    /// Overrides the capacity.
    pub fn with_capacity(mut self, bytes: u64) -> Self {
        self.capacity = bytes;
        self
    }

    /// Overrides the command-queue depth (parallel service channels).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "queue depth must be at least 1");
        self.queue_depth = depth;
        self
    }
}

impl Default for SsdProfile {
    fn default() -> Self {
        Self::s4600()
    }
}

/// A simulated SSD.
///
/// Writes within 128 KiB of the previous write's end are billed at sequential
/// bandwidth; anything else pays the random 4 KiB service time per 4 KiB.
/// The device timeline is a [`ChannelResource`] with
/// [`queue_depth`](SsdProfile::queue_depth) channels: at the default depth
/// of 1 it is strictly serial (concurrent submitters queue, the seed
/// model); deeper queues serve overlapping submissions concurrently.
#[derive(Debug)]
pub struct SsdDevice {
    profile: SsdProfile,
    store: SparseStore,
    timeline: ChannelResource,
    last_write_end: AtomicU64,
    last_read_end: AtomicU64,
    stats: DeviceStats,
}

/// How far from the previous request's end an access still counts as
/// sequential (matches typical drive readahead/write-coalescing windows).
const SEQ_WINDOW: u64 = 128 * 1024;

impl SsdDevice {
    /// Creates an SSD with the given profile.
    pub fn new(profile: SsdProfile) -> Self {
        let keep = profile.keep_content;
        let depth = profile.queue_depth;
        SsdDevice {
            profile,
            store: SparseStore::new(keep),
            timeline: ChannelResource::new(depth),
            last_write_end: AtomicU64::new(u64::MAX),
            last_read_end: AtomicU64::new(u64::MAX),
            stats: DeviceStats::default(),
        }
    }

    /// The device profile.
    pub fn profile(&self) -> &SsdProfile {
        &self.profile
    }

    fn is_seq(last_end: &AtomicU64, off: u64) -> bool {
        let prev = last_end.load(Ordering::Relaxed);
        prev != u64::MAX && off >= prev && off - prev <= SEQ_WINDOW
    }

    fn chunks_4k(len: usize) -> u64 {
        (len as u64).div_ceil(4096)
    }
}

impl BlockDevice for SsdDevice {
    fn capacity(&self) -> u64 {
        self.profile.capacity
    }

    fn read(&self, off: u64, buf: &mut [u8], clock: &ActorClock) {
        assert!(
            off + buf.len() as u64 <= self.capacity(),
            "SSD read beyond capacity: {off}+{}",
            buf.len()
        );
        let seq = Self::is_seq(&self.last_read_end, off);
        self.last_read_end.store(off + buf.len() as u64, Ordering::Relaxed);
        let service = if seq {
            self.profile.seq_read.time_for(buf.len() as u64)
        } else {
            self.profile.rand_read_4k * Self::chunks_4k(buf.len())
        };
        let done = self.timeline.serve(clock.now(), service);
        clock.advance_to(done);
        self.store.read(off, buf);
        self.stats.bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
    }

    fn write(&self, off: u64, data: &[u8], clock: &ActorClock) {
        assert!(
            off + data.len() as u64 <= self.capacity(),
            "SSD write beyond capacity: {off}+{}",
            data.len()
        );
        let seq = Self::is_seq(&self.last_write_end, off);
        self.last_write_end.store(off + data.len() as u64, Ordering::Relaxed);
        let service = if seq {
            self.stats.seq_writes.fetch_add(1, Ordering::Relaxed);
            self.profile.seq_write.time_for(data.len() as u64)
        } else {
            self.stats.rand_writes.fetch_add(1, Ordering::Relaxed);
            self.profile.rand_write_4k * Self::chunks_4k(data.len())
        };
        let done = self.timeline.serve(clock.now(), service);
        clock.advance_to(done);
        self.store.write(off, data);
        self.stats.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
    }

    fn flush(&self, clock: &ActorClock) {
        // A flush is a barrier: it completes only after every queued command.
        let done = self.timeline.serve_barrier(clock.now(), self.profile.flush);
        clock.advance_to(done);
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_write_throughput_is_about_80_mib_s() {
        let ssd = SsdDevice::new(SsdProfile::s4600());
        let clock = ActorClock::new();
        let buf = [0u8; 4096];
        let n = 1000u64;
        for i in 0..n {
            // Stride far apart => random.
            ssd.write(i * (1 << 20), &buf, &clock);
        }
        let secs = clock.now().as_secs_f64();
        let mib = (n * 4096) as f64 / (1 << 20) as f64;
        let tput = mib / secs;
        assert!((70.0..95.0).contains(&tput), "random write tput {tput} MiB/s");
    }

    #[test]
    fn sequential_writes_are_much_faster() {
        let ssd = SsdDevice::new(SsdProfile::s4600());
        let clock = ActorClock::new();
        let buf = [0u8; 4096];
        let mut off = 0;
        for _ in 0..1000 {
            ssd.write(off, &buf, &clock);
            off += 4096;
        }
        let secs = clock.now().as_secs_f64();
        let tput = (1000u64 * 4096) as f64 / (1 << 20) as f64 / secs;
        assert!(tput > 300.0, "sequential write tput {tput} MiB/s");
        assert!(ssd.stats().snapshot().seq_writes >= 999);
    }

    #[test]
    fn flush_is_an_order_of_magnitude_costlier_than_a_write() {
        let ssd = SsdDevice::new(SsdProfile::s4600());
        let c1 = ActorClock::new();
        ssd.write(0, &[0u8; 4096], &c1);
        let write_only = c1.now();
        let ssd2 = SsdDevice::new(SsdProfile::s4600());
        let c2 = ActorClock::new();
        ssd2.write(0, &[0u8; 4096], &c2);
        ssd2.flush(&c2);
        let with_flush = c2.now();
        let ratio = with_flush.as_nanos() as f64 / write_only.as_nanos() as f64;
        assert!(ratio > 3.0, "flush ratio {ratio}");
    }

    #[test]
    fn content_round_trips() {
        let ssd = SsdDevice::new(SsdProfile::s4600());
        let clock = ActorClock::new();
        ssd.write(12_345, b"block content", &clock);
        let mut buf = [0u8; 13];
        ssd.read(12_345, &mut buf, &clock);
        assert_eq!(&buf, b"block content");
    }

    #[test]
    fn concurrent_writers_share_the_device() {
        use std::sync::Arc;
        let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
        let mut handles = Vec::new();
        for t in 0..4 {
            let ssd = Arc::clone(&ssd);
            handles.push(std::thread::spawn(move || {
                let clock = ActorClock::new();
                for i in 0..50u64 {
                    ssd.write((t * 1000 + i) * (1 << 22), &[1u8; 4096], &clock);
                }
                clock.now()
            }));
        }
        let finish: Vec<SimTime> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // 200 random 4KiB writes on one serial device: the last finisher must
        // observe at least the total service time.
        let max = finish.iter().copied().max().unwrap();
        assert!(max >= SsdProfile::s4600().rand_write_4k * 200);
    }

    #[test]
    fn queue_depth_overlaps_batched_random_writes() {
        // 32 random 4 KiB writes submitted at the same instant: a QD-8 drive
        // serves them in 4 waves instead of 32 serial slots.
        let service = SsdProfile::s4600().rand_write_4k;
        let elapsed = |depth: usize| {
            let ssd = SsdDevice::new(SsdProfile::s4600().with_queue_depth(depth));
            let mut last = SimTime::ZERO;
            for i in 0..32u64 {
                let op = ActorClock::new(); // all submitted at t=0
                ssd.write(i * (1 << 20), &[0u8; 4096], &op);
                last = last.max(op.now());
            }
            last
        };
        assert_eq!(elapsed(1), service * 32);
        assert_eq!(elapsed(8), service * 4);
    }

    #[test]
    fn flush_is_a_barrier_across_channels() {
        let ssd = SsdDevice::new(SsdProfile::s4600().with_queue_depth(4));
        for i in 0..4u64 {
            let op = ActorClock::new();
            ssd.write(i * (1 << 20), &[0u8; 4096], &op);
        }
        let c = ActorClock::new();
        ssd.flush(&c);
        let profile = SsdProfile::s4600();
        assert_eq!(c.now(), profile.rand_write_4k + profile.flush);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn capacity_is_enforced() {
        let ssd = SsdDevice::new(SsdProfile::s4600().with_capacity(4096));
        let clock = ActorClock::new();
        ssd.write(4000, &[0u8; 200], &clock);
    }
}
