use std::sync::atomic::{AtomicU64, Ordering};

use simclock::ActorClock;

/// A byte-addressed block device under virtual time.
///
/// Offsets are raw device offsets ("LBAs" in byte units); file systems map
/// file extents onto them. Implementations charge latency to the caller's
/// clock and serialize concurrent requests on an internal device timeline.
pub trait BlockDevice: Send + Sync {
    /// Device capacity in bytes.
    fn capacity(&self) -> u64;

    /// Reads `buf.len()` bytes at `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity.
    fn read(&self, off: u64, buf: &mut [u8], clock: &ActorClock);

    /// Writes `data` at `off`. The write may be acknowledged from a volatile
    /// device cache; durability requires [`flush`](BlockDevice::flush).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity.
    fn write(&self, off: u64, data: &[u8], clock: &ActorClock);

    /// Durably flushes the device write cache (FUA/flush command).
    fn flush(&self, clock: &ActorClock);

    /// Operation statistics.
    fn stats(&self) -> &DeviceStats;
}

/// Shared operation counters for block devices.
#[derive(Debug, Default)]
pub struct DeviceStats {
    /// Total bytes written.
    pub bytes_written: AtomicU64,
    /// Total bytes read.
    pub bytes_read: AtomicU64,
    /// Write operations classified as sequential.
    pub seq_writes: AtomicU64,
    /// Write operations classified as random.
    pub rand_writes: AtomicU64,
    /// Read operations.
    pub reads: AtomicU64,
    /// Flush commands.
    pub flushes: AtomicU64,
}

impl DeviceStats {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> DeviceStatsSnapshot {
        DeviceStatsSnapshot {
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            seq_writes: self.seq_writes.load(Ordering::Relaxed),
            rand_writes: self.rand_writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`DeviceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceStatsSnapshot {
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Write operations classified as sequential.
    pub seq_writes: u64,
    /// Write operations classified as random.
    pub rand_writes: u64,
    /// Read operations.
    pub reads: u64,
    /// Flush commands.
    pub flushes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = DeviceStats::default();
        s.bytes_written.store(4096, Ordering::Relaxed);
        s.flushes.store(2, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.bytes_written, 4096);
        assert_eq!(snap.flushes, 2);
        assert_eq!(snap.reads, 0);
    }
}
