use std::collections::HashMap;

use parking_lot::RwLock;

/// Chunk size of the sparse backing store (one page).
const CHUNK: u64 = 4096;

/// A sparse byte store for simulated device content.
///
/// Multi-GiB virtual devices only pay memory for chunks actually written.
/// Can be created in *discard* mode for timing-only benchmarks (reads then
/// return zeroes).
///
/// # Example
///
/// ```
/// use blockdev::SparseStore;
/// let s = SparseStore::new(true);
/// s.write(10_000, b"hello");
/// let mut buf = [0u8; 5];
/// s.read(10_000, &mut buf);
/// assert_eq!(&buf, b"hello");
/// ```
#[derive(Debug)]
pub struct SparseStore {
    chunks: RwLock<HashMap<u64, Box<[u8]>>>,
    keep_content: bool,
}

impl SparseStore {
    /// Creates a store; `keep_content = false` discards all writes.
    pub fn new(keep_content: bool) -> Self {
        SparseStore { chunks: RwLock::new(HashMap::new()), keep_content }
    }

    /// Whether content is retained.
    pub fn keeps_content(&self) -> bool {
        self.keep_content
    }

    /// Number of resident chunks (for memory accounting in tests).
    pub fn resident_chunks(&self) -> usize {
        self.chunks.read().len()
    }

    /// Writes `data` at byte offset `off`.
    pub fn write(&self, off: u64, data: &[u8]) {
        if !self.keep_content || data.is_empty() {
            return;
        }
        let mut chunks = self.chunks.write();
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = off + pos as u64;
            let chunk_id = abs / CHUNK;
            let in_chunk = (abs % CHUNK) as usize;
            let n = ((CHUNK as usize) - in_chunk).min(data.len() - pos);
            let chunk = chunks
                .entry(chunk_id)
                .or_insert_with(|| vec![0u8; CHUNK as usize].into_boxed_slice());
            chunk[in_chunk..in_chunk + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }

    /// Reads into `buf` from byte offset `off`; unwritten ranges read zero.
    pub fn read(&self, off: u64, buf: &mut [u8]) {
        buf.fill(0);
        if !self.keep_content || buf.is_empty() {
            return;
        }
        let chunks = self.chunks.read();
        let mut pos = 0usize;
        while pos < buf.len() {
            let abs = off + pos as u64;
            let chunk_id = abs / CHUNK;
            let in_chunk = (abs % CHUNK) as usize;
            let n = ((CHUNK as usize) - in_chunk).min(buf.len() - pos);
            if let Some(chunk) = chunks.get(&chunk_id) {
                buf[pos..pos + n].copy_from_slice(&chunk[in_chunk..in_chunk + n]);
            }
            pos += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_chunk_round_trip() {
        let s = SparseStore::new(true);
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        s.write(CHUNK - 100, &data);
        let mut buf = vec![0u8; data.len()];
        s.read(CHUNK - 100, &mut buf);
        assert_eq!(buf, data);
        assert!(s.resident_chunks() >= 3);
    }

    #[test]
    fn unwritten_reads_zero() {
        let s = SparseStore::new(true);
        let mut buf = [1u8; 16];
        s.read(1 << 30, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn discard_mode_stores_nothing() {
        let s = SparseStore::new(false);
        s.write(0, b"gone");
        assert_eq!(s.resident_chunks(), 0);
        let mut buf = [9u8; 4];
        s.read(0, &mut buf);
        assert_eq!(buf, [0u8; 4]);
    }

    #[test]
    fn overwrite_within_chunk() {
        let s = SparseStore::new(true);
        s.write(8, &[1; 16]);
        s.write(12, &[2; 4]);
        let mut buf = [0u8; 16];
        s.read(8, &mut buf);
        assert_eq!(&buf[..4], &[1; 4]);
        assert_eq!(&buf[4..8], &[2; 4]);
        assert_eq!(&buf[8..], &[1; 8]);
    }
}
