//! Simulated block devices for the NVCache reproduction.
//!
//! The paper's evaluation (§IV-A) uses Intel DC S4600 SATA SSDs as mass
//! storage; the key quantities its figures depend on are the SSD's random
//! 4 KiB write throughput (≈80 MiB/s — paper Fig. 5 observes the saturated
//! NVCache log draining at exactly this speed), its sequential bandwidth, and
//! the high fixed cost of a device flush (a write with `fsync` is ≈13× slower
//! than without, paper §III "Cleanup thread and batching").
//!
//! [`SsdDevice`] reproduces those ratios against virtual time. [`HddDevice`]
//! adds a seek-dominated profile (the paper only mentions hard drives in
//! passing; it is provided for ablations). [`DmWriteCacheDev`] composes an
//! SSD with an NVMM region the way the `dm-writecache` device-mapper target
//! does: writes land in persistent memory first and trickle to the SSD in the
//! background.
//!
//! Content is stored sparsely (4 KiB chunks on demand), so multi-GiB virtual
//! devices cost only what is actually written. A device can also be created
//! with content storage disabled for timing-only benchmark runs.

mod device;
mod dmwc;
mod hdd;
mod ssd;
mod store;

pub use device::{BlockDevice, DeviceStats, DeviceStatsSnapshot};
pub use dmwc::{DmWriteCacheDev, DmWriteCacheProfile};
pub use hdd::{HddDevice, HddProfile};
pub use ssd::{SsdDevice, SsdProfile};
pub use store::SparseStore;
