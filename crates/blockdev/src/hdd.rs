use std::sync::atomic::{AtomicU64, Ordering};

use simclock::{ActorClock, Bandwidth, Resource, SimTime};

use crate::{BlockDevice, DeviceStats, SparseStore};

/// Latency model of a 7200 RPM hard drive.
///
/// The paper does not benchmark spinning disks, but motivates NVCache partly
/// by the kernel's seek-optimizing I/O schedulers (§I cites arm-movement
/// optimizations). This profile exists for ablation experiments that show the
/// write-combining/batching benefits are even larger when the backing store
/// seeks.
#[derive(Debug, Clone)]
pub struct HddProfile {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Sequential transfer bandwidth.
    pub seq: Bandwidth,
    /// Average seek + rotational latency charged to non-adjacent accesses.
    pub seek: SimTime,
    /// Fixed cost of a cache flush.
    pub flush: SimTime,
    /// Keep written content.
    pub keep_content: bool,
}

impl HddProfile {
    /// A generic 7200 RPM SATA drive.
    pub fn seven_k2() -> Self {
        HddProfile {
            capacity: 2 * (1u64 << 40),
            seq: Bandwidth::mib_per_sec(180.0),
            seek: SimTime::from_millis(8),
            flush: SimTime::from_millis(4),
            keep_content: true,
        }
    }
}

impl Default for HddProfile {
    fn default() -> Self {
        Self::seven_k2()
    }
}

/// A simulated spinning disk: every non-adjacent access pays a seek.
#[derive(Debug)]
pub struct HddDevice {
    profile: HddProfile,
    store: SparseStore,
    timeline: Resource,
    head: AtomicU64,
    stats: DeviceStats,
}

impl HddDevice {
    /// Creates a drive with the given profile.
    pub fn new(profile: HddProfile) -> Self {
        let keep = profile.keep_content;
        HddDevice {
            profile,
            store: SparseStore::new(keep),
            timeline: Resource::new(),
            head: AtomicU64::new(0),
            stats: DeviceStats::default(),
        }
    }

    fn service(&self, off: u64, len: usize, is_write: bool) -> SimTime {
        let head = self.head.swap(off + len as u64, Ordering::Relaxed);
        let transfer = self.profile.seq.time_for(len as u64);
        if off == head {
            if is_write {
                self.stats.seq_writes.fetch_add(1, Ordering::Relaxed);
            }
            transfer
        } else {
            if is_write {
                self.stats.rand_writes.fetch_add(1, Ordering::Relaxed);
            }
            self.profile.seek + transfer
        }
    }
}

impl BlockDevice for HddDevice {
    fn capacity(&self) -> u64 {
        self.profile.capacity
    }

    fn read(&self, off: u64, buf: &mut [u8], clock: &ActorClock) {
        assert!(off + buf.len() as u64 <= self.capacity(), "HDD read beyond capacity");
        let service = self.service(off, buf.len(), false);
        let done = self.timeline.serve(clock.now(), service);
        clock.advance_to(done);
        self.store.read(off, buf);
        self.stats.bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
    }

    fn write(&self, off: u64, data: &[u8], clock: &ActorClock) {
        assert!(off + data.len() as u64 <= self.capacity(), "HDD write beyond capacity");
        let service = self.service(off, data.len(), true);
        let done = self.timeline.serve(clock.now(), service);
        clock.advance_to(done);
        self.store.write(off, data);
        self.stats.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
    }

    fn flush(&self, clock: &ActorClock) {
        let done = self.timeline.serve(clock.now(), self.profile.flush);
        clock.advance_to(done);
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_access_pays_seeks() {
        let hdd = HddDevice::new(HddProfile::seven_k2());
        let clock = ActorClock::new();
        for i in 0..10u64 {
            hdd.write(i * (1 << 30), &[0u8; 4096], &clock);
        }
        // 9 seeks at 8ms dominate (the first write starts at the park
        // position, offset 0, so it is adjacent).
        assert!(clock.now() >= SimTime::from_millis(72));
        assert_eq!(hdd.stats().snapshot().rand_writes, 9);
    }

    #[test]
    fn sequential_access_avoids_seeks() {
        let hdd = HddDevice::new(HddProfile::seven_k2());
        let clock = ActorClock::new();
        let mut off = 0;
        // First write seeks (head at 0 matches off 0, so actually none).
        for _ in 0..10 {
            hdd.write(off, &[0u8; 4096], &clock);
            off += 4096;
        }
        assert!(clock.now() < SimTime::from_millis(2));
        assert_eq!(hdd.stats().snapshot().rand_writes, 0);
    }

    #[test]
    fn content_round_trips() {
        let hdd = HddDevice::new(HddProfile::seven_k2());
        let clock = ActorClock::new();
        hdd.write(999, b"spinning rust", &clock);
        let mut buf = [0u8; 13];
        hdd.read(999, &mut buf, &clock);
        assert_eq!(&buf, b"spinning rust");
    }
}
