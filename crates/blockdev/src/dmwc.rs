use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use nvmm::NvRegion;
use parking_lot::Mutex;
use simclock::{ActorClock, SimTime};

use crate::{BlockDevice, DeviceStats};

/// Tuning parameters of the [`DmWriteCacheDev`] target.
#[derive(Debug, Clone)]
pub struct DmWriteCacheProfile {
    /// Cache block size (dm-writecache default is the page size).
    pub block_size: u64,
    /// Cost of updating + committing the per-block cache metadata in NVMM.
    pub metadata_update: SimTime,
    /// Dirty fraction above which writers are throttled into writeback.
    pub high_watermark: f64,
    /// Dirty fraction writeback drains down to once triggered.
    pub low_watermark: f64,
}

impl Default for DmWriteCacheProfile {
    fn default() -> Self {
        DmWriteCacheProfile {
            block_size: 4096,
            metadata_update: SimTime::from_micros(2),
            high_watermark: 0.50,
            low_watermark: 0.45,
        }
    }
}

#[derive(Debug, Default)]
struct DmState {
    /// device block -> cache slot index
    map: HashMap<u64, u64>,
    /// dirty device blocks in arrival order
    dirty: VecDeque<u64>,
    free_slots: Vec<u64>,
}

/// The `dm-writecache` device-mapper target: an SSD fronted by an NVMM block
/// cache (paper Table I column "DM-WriteCache", ref \[53\]).
///
/// Writes land in persistent memory (fast, durable once metadata commits)
/// and are written back to the SSD in the background; reads prefer the cache.
/// Crucially this cache sits *behind* the kernel page cache — the performance
/// consequence the paper highlights (synchronous durability requires pushing
/// each write through the page-cache writeback machinery) is modelled in the
/// `vfs` layer, which drives this device.
///
/// Writeback is modelled as writer-throttling: when the dirty fraction
/// exceeds the high watermark, the writing thread itself drains blocks to the
/// SSD until the low watermark is reached (the real target defers to a
/// kworker; under sustained load the effect is the same — producers run at
/// SSD speed).
pub struct DmWriteCacheDev {
    ssd: Arc<dyn BlockDevice>,
    cache: NvRegion,
    profile: DmWriteCacheProfile,
    state: Mutex<DmState>,
    stats: DeviceStats,
}

impl std::fmt::Debug for DmWriteCacheDev {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DmWriteCacheDev")
            .field("slots", &self.slot_count())
            .field("block_size", &self.profile.block_size)
            .finish()
    }
}

impl DmWriteCacheDev {
    /// Creates the target over `ssd` with `cache` as the NVMM cache area.
    ///
    /// # Panics
    ///
    /// Panics if the cache region is smaller than one block.
    pub fn new(ssd: Arc<dyn BlockDevice>, cache: NvRegion, profile: DmWriteCacheProfile) -> Self {
        let slots = cache.len() / profile.block_size;
        assert!(slots > 0, "dm-writecache region smaller than one block");
        let state = DmState { free_slots: (0..slots).rev().collect(), ..DmState::default() };
        DmWriteCacheDev {
            ssd,
            cache,
            profile,
            state: Mutex::new(state),
            stats: DeviceStats::default(),
        }
    }

    /// Number of cache slots.
    pub fn slot_count(&self) -> u64 {
        self.cache.len() / self.profile.block_size
    }

    /// Currently dirty (not yet written back) blocks.
    pub fn dirty_blocks(&self) -> usize {
        self.state.lock().dirty.len()
    }

    fn slot_off(&self, slot: u64) -> u64 {
        slot * self.profile.block_size
    }

    /// Drains dirty blocks to the SSD until at most `target` remain.
    fn writeback_to(&self, target: usize, clock: &ActorClock) {
        let bs = self.profile.block_size as usize;
        loop {
            let (block, slot) = {
                let mut st = self.state.lock();
                if st.dirty.len() <= target {
                    return;
                }
                let block = st.dirty.pop_front().expect("dirty nonempty");
                let slot = st.map[&block];
                (block, slot)
            };
            let mut buf = vec![0u8; bs];
            self.cache.read(self.slot_off(slot), &mut buf, clock);
            self.ssd.write(block * self.profile.block_size, &buf, clock);
            // Block stays mapped (clean) for reads; slot is reclaimed lazily
            // when the free list runs dry.
            let mut st = self.state.lock();
            st.map.remove(&block);
            st.free_slots.push(slot);
        }
    }

    /// Explicit background writeback entry point (drains up to `max_blocks`).
    pub fn background_writeback(&self, max_blocks: usize, clock: &ActorClock) {
        let dirty = self.dirty_blocks();
        self.writeback_to(dirty.saturating_sub(max_blocks), clock);
    }

    fn write_block(&self, block: u64, in_block: usize, data: &[u8], clock: &ActorClock) {
        let bs = self.profile.block_size as usize;
        let (slot, was_cached) = {
            let mut st = self.state.lock();
            match st.map.get(&block) {
                Some(&s) => (s, true),
                None => {
                    let slot = loop {
                        if let Some(s) = st.free_slots.pop() {
                            break s;
                        }
                        // Cache completely full of dirty blocks: release the
                        // lock and force writeback, then retry.
                        drop(st);
                        self.writeback_to((self.slot_count() as usize).saturating_sub(1), clock);
                        st = self.state.lock();
                    };
                    st.map.insert(block, slot);
                    (slot, false)
                }
            }
        };
        let full_block = in_block == 0 && data.len() == bs;
        if full_block {
            self.cache.write_and_pwb(self.slot_off(slot), data, clock);
        } else if was_cached {
            // Partial update of a cached block: modify the slot in place.
            self.cache.write_and_pwb(self.slot_off(slot) + in_block as u64, data, clock);
        } else {
            // Partial write of an uncached block: read-modify-write from SSD.
            let mut old = vec![0u8; bs];
            self.ssd.read(block * self.profile.block_size, &mut old, clock);
            old[in_block..in_block + data.len()].copy_from_slice(data);
            self.cache.write_and_pwb(self.slot_off(slot), &old, clock);
        }
        // Commit per-block metadata in NVMM.
        self.cache.psync(clock);
        clock.advance(self.profile.metadata_update);
        let mut st = self.state.lock();
        if !st.dirty.contains(&block) {
            st.dirty.push_back(block);
        }
        drop(st);
        let high = (self.slot_count() as f64 * self.profile.high_watermark) as usize;
        let low = (self.slot_count() as f64 * self.profile.low_watermark) as usize;
        if self.dirty_blocks() > high {
            self.writeback_to(low, clock);
        }
    }
}

impl BlockDevice for DmWriteCacheDev {
    fn capacity(&self) -> u64 {
        self.ssd.capacity()
    }

    fn read(&self, off: u64, buf: &mut [u8], clock: &ActorClock) {
        let bs = self.profile.block_size;
        let mut pos = 0usize;
        while pos < buf.len() {
            let abs = off + pos as u64;
            let block = abs / bs;
            let in_block = (abs % bs) as usize;
            let n = (bs as usize - in_block).min(buf.len() - pos);
            let slot = self.state.lock().map.get(&block).copied();
            match slot {
                Some(slot) => {
                    let mut tmp = vec![0u8; n];
                    self.cache.read(self.slot_off(slot) + in_block as u64, &mut tmp, clock);
                    buf[pos..pos + n].copy_from_slice(&tmp);
                }
                None => {
                    self.ssd.read(abs, &mut buf[pos..pos + n], clock);
                }
            }
            pos += n;
        }
        self.stats.bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
    }

    fn write(&self, off: u64, data: &[u8], clock: &ActorClock) {
        let bs = self.profile.block_size;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = off + pos as u64;
            let block = abs / bs;
            let in_block = (abs % bs) as usize;
            let n = (bs as usize - in_block).min(data.len() - pos);
            self.write_block(block, in_block, &data[pos..pos + n], clock);
            pos += n;
        }
        self.stats.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.stats.rand_writes.fetch_add(1, Ordering::Relaxed);
    }

    fn flush(&self, clock: &ActorClock) {
        // Data already sits in persistent memory; a flush only needs to
        // commit the cache metadata, not drain to the SSD.
        self.cache.psync(clock);
        clock.advance(self.profile.metadata_update);
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SsdDevice, SsdProfile};
    use nvmm::{NvDimm, NvmmProfile};

    fn setup(cache_blocks: u64) -> (ActorClock, Arc<SsdDevice>, DmWriteCacheDev) {
        let clock = ActorClock::new();
        let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
        let dimm = Arc::new(NvDimm::new(cache_blocks * 4096, NvmmProfile::instant()));
        let dev = DmWriteCacheDev::new(
            Arc::clone(&ssd) as Arc<dyn BlockDevice>,
            NvRegion::whole(dimm),
            DmWriteCacheProfile::default(),
        );
        (clock, ssd, dev)
    }

    #[test]
    fn cached_write_is_faster_than_ssd_write() {
        let (clock, _ssd, dev) = setup(1024);
        dev.write(0, &[1u8; 4096], &clock);
        // NVMM block write + metadata; far below the 48µs SSD random write.
        assert!(clock.now() < SimTime::from_micros(20), "took {}", clock.now());
    }

    #[test]
    fn read_hits_cache_and_misses_go_to_ssd() {
        let (clock, ssd, dev) = setup(1024);
        let mut block = [0u8; 4096];
        block[..12].copy_from_slice(b"cached data!");
        dev.write(8192, &block, &clock);
        let mut buf = [0u8; 12];
        dev.read(8192, &mut buf, &clock);
        assert_eq!(&buf, b"cached data!");
        assert_eq!(ssd.stats().snapshot().bytes_read, 0);
        // A miss falls through.
        let mut other = [0u8; 16];
        dev.read(1 << 20, &mut other, &clock);
        assert!(ssd.stats().snapshot().bytes_read > 0);
    }

    #[test]
    fn watermark_triggers_writeback_to_ssd() {
        let (clock, ssd, dev) = setup(64);
        for i in 0..64u64 {
            dev.write(i * 4096, &[i as u8; 4096], &clock);
        }
        assert!(ssd.stats().snapshot().bytes_written > 0, "writeback should have drained blocks");
        let high = (64.0 * 0.50) as usize;
        assert!(dev.dirty_blocks() <= high);
    }

    #[test]
    fn written_back_data_is_readable() {
        let (clock, _ssd, dev) = setup(8);
        // Overflow the cache several times over.
        for i in 0..64u64 {
            dev.write(i * 4096, &[(i + 1) as u8; 4096], &clock);
        }
        let mut buf = [0u8; 4096];
        dev.read(0, &mut buf, &clock);
        assert_eq!(buf[0], 1);
        dev.read(63 * 4096, &mut buf, &clock);
        assert_eq!(buf[0], 64);
    }

    #[test]
    fn flush_commits_without_draining() {
        let (clock, ssd, dev) = setup(1024);
        dev.write(0, &[7u8; 4096], &clock);
        let before = ssd.stats().snapshot().bytes_written;
        dev.flush(&clock);
        assert_eq!(ssd.stats().snapshot().bytes_written, before);
    }

    #[test]
    fn partial_block_write_preserves_rest() {
        let (clock, _ssd, dev) = setup(16);
        dev.write(0, &[0xAA; 4096], &clock);
        dev.write(100, &[0xBB; 8], &clock);
        let mut buf = [0u8; 4096];
        dev.read(0, &mut buf, &clock);
        assert_eq!(buf[99], 0xAA);
        assert_eq!(buf[100], 0xBB);
        assert_eq!(buf[108], 0xAA);
    }
}
