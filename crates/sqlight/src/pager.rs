use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use simclock::ActorClock;
use vfs::{Fd, FileSystem, OpenFlags};

use crate::{SqlError, SqlResult};

/// Database page size (SQLite's modern default).
pub(crate) const PAGE_SIZE: usize = 4096;

const JOURNAL_MAGIC: u64 = u64::from_le_bytes(*b"SQLJRNL1");

/// The pager: page-granular access to the database file with rollback-
/// journal transactions (SQLite `journal_mode=DELETE`).
///
/// Commit protocol, exactly the sequence whose fsyncs dominate the paper's
/// SQLite numbers:
///
/// 1. append original images of all written pages to `<db>-journal`;
/// 2. write the journal header (count), `fsync` the journal;
/// 3. write the dirty pages into the database file;
/// 4. `fsync` the database;
/// 5. unlink the journal — the commit point.
///
/// On open, a leftover journal with a valid header is *hot*: the pager rolls
/// the original images back before serving any read.
pub(crate) struct Pager {
    fs: Arc<dyn FileSystem>,
    path: String,
    journal_path: String,
    fd: Fd,
    /// Page cache; sqlight keeps every touched page resident (the paper's
    /// databases fit the benchmark working set).
    cache: BTreeMap<u32, Vec<u8>>,
    page_count: u32,
    /// Transaction state.
    in_txn: bool,
    journaled: BTreeMap<u32, Vec<u8>>,
    dirty: BTreeSet<u32>,
    journal_off: u64,
    /// Whether commits fsync (`PRAGMA synchronous=FULL` vs `OFF`).
    pub synchronous: bool,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("path", &self.path)
            .field("pages", &self.page_count)
            .field("in_txn", &self.in_txn)
            .finish()
    }
}

impl Pager {
    /// Opens (or creates) the database file, rolling back a hot journal if
    /// one is present.
    pub fn open(
        fs: Arc<dyn FileSystem>,
        path: &str,
        synchronous: bool,
        clock: &ActorClock,
    ) -> SqlResult<Pager> {
        let path = vfs::normalize_path(path);
        let journal_path = format!("{path}-journal");
        let fd = fs.open(&path, OpenFlags::RDWR | OpenFlags::CREATE, clock)?;
        let size = fs.fstat(fd, clock)?.size;
        let mut pager = Pager {
            fs,
            path,
            journal_path,
            fd,
            cache: BTreeMap::new(),
            page_count: (size / PAGE_SIZE as u64) as u32,
            in_txn: false,
            journaled: BTreeMap::new(),
            dirty: BTreeSet::new(),
            journal_off: 0,
            synchronous,
        };
        pager.recover_hot_journal(clock)?;
        Ok(pager)
    }

    fn recover_hot_journal(&mut self, clock: &ActorClock) -> SqlResult<()> {
        let jfd = match self.fs.open(&self.journal_path, OpenFlags::RDONLY, clock) {
            Ok(fd) => fd,
            Err(vfs::IoError::NotFound(_)) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let jsize = self.fs.fstat(jfd, clock)?.size;
        let mut rolled_back = 0u32;
        if jsize >= 16 {
            let mut header = [0u8; 16];
            self.fs.pread(jfd, &mut header, 0, clock)?;
            let magic = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes"));
            let count = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
            if magic == JOURNAL_MAGIC {
                let mut off = 16u64;
                for _ in 0..count {
                    let mut rec_hdr = [0u8; 4];
                    if self.fs.pread(jfd, &mut rec_hdr, off, clock)? < 4 {
                        break; // torn record: stop rollback here
                    }
                    let page_no = u32::from_le_bytes(rec_hdr);
                    let mut original = vec![0u8; PAGE_SIZE];
                    if self.fs.pread(jfd, &mut original, off + 4, clock)? < PAGE_SIZE {
                        break;
                    }
                    self.fs.pwrite(self.fd, &original, page_no as u64 * PAGE_SIZE as u64, clock)?;
                    rolled_back += 1;
                    off += 4 + PAGE_SIZE as u64;
                }
                if self.synchronous {
                    self.fs.fsync(self.fd, clock)?;
                }
            }
        }
        self.fs.close(jfd, clock)?;
        self.fs.unlink(&self.journal_path, clock)?;
        let _ = rolled_back;
        Ok(())
    }

    /// Current number of pages.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Whether a transaction is active.
    pub fn in_txn(&self) -> bool {
        self.in_txn
    }

    /// Starts a transaction.
    ///
    /// # Errors
    ///
    /// [`SqlError::TxnState`] on nested begin.
    pub fn begin(&mut self) -> SqlResult<()> {
        if self.in_txn {
            return Err(SqlError::TxnState("transaction already active".into()));
        }
        self.in_txn = true;
        self.journaled.clear();
        self.dirty.clear();
        self.journal_off = 16; // space for the header
        Ok(())
    }

    /// Reads page `page_no` (from cache, else the file).
    pub fn read_page(&mut self, page_no: u32, clock: &ActorClock) -> SqlResult<&Vec<u8>> {
        // CPU cost of the pager lookup + cell decoding (SQLite does this on
        // every page touch; hits don't reach the kernel).
        clock.advance(simclock::SimTime::from_nanos(350));
        if !self.cache.contains_key(&page_no) {
            let mut buf = vec![0u8; PAGE_SIZE];
            if page_no < self.page_count {
                self.fs.pread(self.fd, &mut buf, page_no as u64 * PAGE_SIZE as u64, clock)?;
            }
            self.cache.insert(page_no, buf);
        }
        Ok(self.cache.get(&page_no).expect("just inserted"))
    }

    /// Modifies page `page_no` inside the active transaction, journaling the
    /// original image on first touch.
    ///
    /// # Errors
    ///
    /// [`SqlError::TxnState`] outside a transaction.
    pub fn write_page(
        &mut self,
        page_no: u32,
        clock: &ActorClock,
        f: impl FnOnce(&mut [u8]),
    ) -> SqlResult<()> {
        if !self.in_txn {
            return Err(SqlError::TxnState("write outside a transaction".into()));
        }
        self.read_page(page_no, clock)?; // populate the cache
        let preexisting = page_no < self.page_count;
        if preexisting && !self.journaled.contains_key(&page_no) {
            let original = self.cache.get(&page_no).expect("cached").clone();
            // Append the original image to the journal file now (SQLite
            // journals eagerly, syncs at commit).
            let jfd =
                self.fs.open(&self.journal_path, OpenFlags::RDWR | OpenFlags::CREATE, clock)?;
            let mut rec = Vec::with_capacity(4 + PAGE_SIZE);
            rec.extend_from_slice(&page_no.to_le_bytes());
            rec.extend_from_slice(&original);
            self.fs.pwrite(jfd, &rec, self.journal_off, clock)?;
            self.fs.close(jfd, clock)?;
            self.journal_off += rec.len() as u64;
            self.journaled.insert(page_no, original);
        }
        let page = self.cache.get_mut(&page_no).expect("cached");
        f(page);
        self.dirty.insert(page_no);
        if page_no >= self.page_count {
            self.page_count = page_no + 1;
        }
        Ok(())
    }

    /// Allocates a fresh page at the end of the file.
    pub fn alloc_page(&mut self) -> u32 {
        let p = self.page_count;
        self.page_count = p + 1;
        self.cache.insert(p, vec![0u8; PAGE_SIZE]);
        p
    }

    /// Commits the active transaction (see type docs for the protocol).
    ///
    /// # Errors
    ///
    /// [`SqlError::TxnState`] without an active transaction; I/O errors.
    pub fn commit(&mut self, clock: &ActorClock) -> SqlResult<()> {
        if !self.in_txn {
            return Err(SqlError::TxnState("commit without begin".into()));
        }
        if self.dirty.is_empty() {
            self.in_txn = false;
            return Ok(());
        }
        // 1-2: finalize + sync the journal (only if it has content).
        if !self.journaled.is_empty() {
            let jfd =
                self.fs.open(&self.journal_path, OpenFlags::RDWR | OpenFlags::CREATE, clock)?;
            let mut header = Vec::with_capacity(16);
            header.extend_from_slice(&JOURNAL_MAGIC.to_le_bytes());
            header.extend_from_slice(&(self.journaled.len() as u32).to_le_bytes());
            header.extend_from_slice(&[0u8; 4]);
            self.fs.pwrite(jfd, &header, 0, clock)?;
            if self.synchronous {
                self.fs.fsync(jfd, clock)?;
            }
            self.fs.close(jfd, clock)?;
        }
        // 3-4: write dirty pages, sync the database.
        for &page_no in &self.dirty {
            let page = self.cache.get(&page_no).expect("dirty pages are cached");
            self.fs.pwrite(self.fd, page, page_no as u64 * PAGE_SIZE as u64, clock)?;
        }
        if self.synchronous {
            self.fs.fsync(self.fd, clock)?;
        }
        // 5: delete the journal — the commit point.
        if !self.journaled.is_empty() {
            self.fs.unlink(&self.journal_path, clock)?;
        }
        self.in_txn = false;
        self.journaled.clear();
        self.dirty.clear();
        Ok(())
    }

    /// Rolls the active transaction back from the in-memory originals.
    ///
    /// # Errors
    ///
    /// [`SqlError::TxnState`] without an active transaction.
    pub fn rollback(&mut self, clock: &ActorClock) -> SqlResult<()> {
        if !self.in_txn {
            return Err(SqlError::TxnState("rollback without begin".into()));
        }
        let journaled = std::mem::take(&mut self.journaled);
        let dirty = std::mem::take(&mut self.dirty);
        for (page_no, original) in journaled {
            self.cache.insert(page_no, original);
        }
        // Freshly allocated pages (dirty but never journaled) are discarded.
        for page_no in dirty {
            if !self.cache.contains_key(&page_no) {
                continue;
            }
        }
        match self.fs.unlink(&self.journal_path, clock) {
            Ok(()) | Err(vfs::IoError::NotFound(_)) => {}
            Err(e) => return Err(e.into()),
        }
        self.in_txn = false;
        Ok(())
    }

    /// Closes the database file.
    ///
    /// # Errors
    ///
    /// Propagates the close error.
    pub fn close(self, clock: &ActorClock) -> SqlResult<()> {
        self.fs.close(self.fd, clock)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::MemFs;

    fn pager() -> (ActorClock, Arc<dyn FileSystem>, Pager) {
        let c = ActorClock::new();
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let p = Pager::open(Arc::clone(&fs), "/t.db", true, &c).unwrap();
        (c, fs, p)
    }

    #[test]
    fn write_commit_read_back() {
        let (c, fs, mut p) = pager();
        p.begin().unwrap();
        let pg = p.alloc_page();
        p.write_page(pg, &c, |b| b[0..4].copy_from_slice(b"data")).unwrap();
        p.commit(&c).unwrap();
        p.close(&c).unwrap();
        let mut p2 = Pager::open(fs, "/t.db", true, &c).unwrap();
        assert_eq!(&p2.read_page(pg, &c).unwrap()[0..4], b"data");
    }

    #[test]
    fn rollback_restores_originals() {
        let (c, _fs, mut p) = pager();
        p.begin().unwrap();
        let pg = p.alloc_page();
        p.write_page(pg, &c, |b| b[0] = 1).unwrap();
        p.commit(&c).unwrap();
        p.begin().unwrap();
        p.write_page(pg, &c, |b| b[0] = 2).unwrap();
        p.rollback(&c).unwrap();
        assert_eq!(p.read_page(pg, &c).unwrap()[0], 1);
    }

    #[test]
    fn hot_journal_rolls_back_on_open() {
        let c = ActorClock::new();
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        {
            let mut p = Pager::open(Arc::clone(&fs), "/hot.db", true, &c).unwrap();
            p.begin().unwrap();
            let pg = p.alloc_page();
            p.write_page(pg, &c, |b| b[0] = 0xAA).unwrap();
            p.commit(&c).unwrap();
            // Start a second transaction and simulate a crash after the
            // journal was finalized and the db partially overwritten.
            p.begin().unwrap();
            p.write_page(pg, &c, |b| b[0] = 0xBB).unwrap();
            // Hand-finalize the journal header as commit() would.
            let jfd = fs.open("/hot.db-journal", OpenFlags::RDWR, &c).unwrap();
            let mut header = Vec::new();
            header.extend_from_slice(&JOURNAL_MAGIC.to_le_bytes());
            header.extend_from_slice(&1u32.to_le_bytes());
            header.extend_from_slice(&[0u8; 4]);
            fs.pwrite(jfd, &header, 0, &c).unwrap();
            fs.close(jfd, &c).unwrap();
            // Partially apply the transaction to the db file directly.
            let dfd = fs.open("/hot.db", OpenFlags::RDWR, &c).unwrap();
            fs.pwrite(dfd, &[0xBB], pg as u64 * PAGE_SIZE as u64, &c).unwrap();
            fs.close(dfd, &c).unwrap();
            // "Crash": drop the pager without commit.
        }
        let c2 = ActorClock::new();
        let mut p = Pager::open(Arc::clone(&fs), "/hot.db", true, &c2).unwrap();
        assert_eq!(p.read_page(0, &c2).unwrap()[0], 0xAA, "hot journal must roll back");
        assert!(fs.stat("/hot.db-journal", &c2).is_err(), "journal must be gone");
    }

    #[test]
    fn txn_misuse_is_rejected() {
        let (c, _fs, mut p) = pager();
        assert!(matches!(p.commit(&c), Err(SqlError::TxnState(_))));
        p.begin().unwrap();
        assert!(matches!(p.begin(), Err(SqlError::TxnState(_))));
        assert!(matches!(
            {
                let r = p.rollback(&c);
                r.and_then(|_| p.rollback(&c))
            },
            Err(SqlError::TxnState(_))
        ));
    }

    #[test]
    fn write_outside_txn_fails() {
        let (c, _fs, mut p) = pager();
        let pg = p.alloc_page();
        assert!(matches!(p.write_page(pg, &c, |_| {}), Err(SqlError::TxnState(_))));
    }

    #[test]
    fn empty_commit_is_cheap() {
        let (c, fs, mut p) = pager();
        p.begin().unwrap();
        p.commit(&c).unwrap();
        assert!(fs.stat("/t.db-journal", &c).is_err());
    }
}
