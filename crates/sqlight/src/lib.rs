//! sqlight — a journaled, paged, B+tree embedded database.
//!
//! Stand-in for the SQLite 3.25 deployment the paper benchmarks (§IV-A):
//! a pager with a rollback journal (SQLite's classic `journal_mode=DELETE`),
//! a B+tree keyed by rowid, and explicit transactions. Its I/O pattern is
//! the one that matters for Fig. 3's SQLite columns: every synchronous
//! transaction journals original pages, fsyncs the journal, rewrites B-tree
//! pages in place, fsyncs the database, and deletes the journal — a
//! double-write, double-fsync dance that NVCache absorbs into NVMM log
//! appends plus no-op fsyncs.
//!
//! The query surface is a deliberate simplification (`create_table` /
//! `insert` / `get` / `scan` in transactions) — the paper's benchmarks only
//! exercise key-value-shaped statements, and the storage engine below the
//! SQL layer is what produces the I/O (see DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use sqlight::{SqlightDb, SqlightOptions};
//! use simclock::ActorClock;
//! use vfs::{FileSystem, MemFs};
//!
//! # fn main() -> Result<(), sqlight::SqlError> {
//! let clock = ActorClock::new();
//! let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
//! let db = SqlightDb::open(fs, "/app.db", SqlightOptions::default(), &clock)?;
//! db.create_table("users", &clock)?;
//! db.insert("users", 1, b"alice", &clock)?;
//! assert_eq!(db.get("users", 1, &clock)?.as_deref(), Some(&b"alice"[..]));
//! # Ok(())
//! # }
//! ```

mod bench;
mod btree;
mod db;
mod error;
mod pager;

pub use bench::{prefill, run_sql_bench, SqlBench, SqlBenchOptions, SqlBenchResult};
pub use db::{SqlightDb, SqlightOptions};
pub use error::{SqlError, SqlResult};
