use simclock::ActorClock;

use crate::pager::{Pager, PAGE_SIZE};
use crate::{SqlError, SqlResult};

/// Maximum in-cell value size; larger payloads would need overflow pages,
/// which the benchmark workloads (100-byte values) never hit.
pub(crate) const MAX_VALUE: usize = 1024;

const LEAF: u8 = 1;
const BRANCH: u8 = 2;

/// A decoded B+tree node. Branch entries are `(max_rowid_in_subtree, child)`.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Leaf(Vec<(i64, Vec<u8>)>),
    Branch(Vec<(i64, u32)>),
}

fn decode(page: &[u8]) -> SqlResult<Node> {
    let kind = page[0];
    let n = u16::from_le_bytes(page[1..3].try_into().expect("2 bytes")) as usize;
    let mut pos = 3usize;
    match kind {
        0 | LEAF => {
            // Kind 0: an untouched page decodes as an empty leaf.
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                if pos + 10 > PAGE_SIZE {
                    return Err(SqlError::Corruption("leaf cell out of bounds".into()));
                }
                let rowid = i64::from_le_bytes(page[pos..pos + 8].try_into().expect("8 bytes"));
                let vlen = u16::from_le_bytes(page[pos + 8..pos + 10].try_into().expect("2 bytes"))
                    as usize;
                pos += 10;
                if pos + vlen > PAGE_SIZE {
                    return Err(SqlError::Corruption("leaf value out of bounds".into()));
                }
                entries.push((rowid, page[pos..pos + vlen].to_vec()));
                pos += vlen;
            }
            Ok(Node::Leaf(entries))
        }
        BRANCH => {
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                if pos + 12 > PAGE_SIZE {
                    return Err(SqlError::Corruption("branch cell out of bounds".into()));
                }
                let max = i64::from_le_bytes(page[pos..pos + 8].try_into().expect("8 bytes"));
                let child =
                    u32::from_le_bytes(page[pos + 8..pos + 12].try_into().expect("4 bytes"));
                entries.push((max, child));
                pos += 12;
            }
            Ok(Node::Branch(entries))
        }
        other => Err(SqlError::Corruption(format!("unknown node kind {other}"))),
    }
}

fn encoded_len(node: &Node) -> usize {
    match node {
        Node::Leaf(entries) => 3 + entries.iter().map(|(_, v)| 10 + v.len()).sum::<usize>(),
        Node::Branch(entries) => 3 + entries.len() * 12,
    }
}

fn encode(node: &Node, page: &mut [u8]) {
    page.fill(0);
    match node {
        Node::Leaf(entries) => {
            page[0] = LEAF;
            page[1..3].copy_from_slice(&(entries.len() as u16).to_le_bytes());
            let mut pos = 3usize;
            for (rowid, v) in entries {
                page[pos..pos + 8].copy_from_slice(&rowid.to_le_bytes());
                page[pos + 8..pos + 10].copy_from_slice(&(v.len() as u16).to_le_bytes());
                pos += 10;
                page[pos..pos + v.len()].copy_from_slice(v);
                pos += v.len();
            }
        }
        Node::Branch(entries) => {
            page[0] = BRANCH;
            page[1..3].copy_from_slice(&(entries.len() as u16).to_le_bytes());
            let mut pos = 3usize;
            for (max, child) in entries {
                page[pos..pos + 8].copy_from_slice(&max.to_le_bytes());
                page[pos + 8..pos + 12].copy_from_slice(&child.to_le_bytes());
                pos += 12;
            }
        }
    }
}

fn store(pager: &mut Pager, page_no: u32, node: &Node, clock: &ActorClock) -> SqlResult<()> {
    debug_assert!(encoded_len(node) <= PAGE_SIZE, "node overflows its page");
    pager.write_page(page_no, clock, |page| encode(node, page))
}

fn load(pager: &mut Pager, page_no: u32, clock: &ActorClock) -> SqlResult<Node> {
    decode(pager.read_page(page_no, clock)?)
}

/// Result of inserting into a subtree: the subtree's new max rowid, plus a
/// sibling (max, page) if the node split.
struct InsertOutcome {
    max: i64,
    split: Option<(i64, u32)>,
}

/// Inserts `(rowid, value)` under `page_no`.
fn insert_rec(
    pager: &mut Pager,
    page_no: u32,
    rowid: i64,
    value: &[u8],
    clock: &ActorClock,
) -> SqlResult<InsertOutcome> {
    match load(pager, page_no, clock)? {
        Node::Leaf(mut entries) => {
            match entries.binary_search_by_key(&rowid, |(r, _)| *r) {
                Ok(_) => return Err(SqlError::DuplicateRow(rowid)),
                Err(idx) => entries.insert(idx, (rowid, value.to_vec())),
            }
            let node = Node::Leaf(entries);
            if encoded_len(&node) <= PAGE_SIZE {
                let max = match &node {
                    Node::Leaf(e) => e.last().expect("nonempty").0,
                    Node::Branch(_) => unreachable!(),
                };
                store(pager, page_no, &node, clock)?;
                return Ok(InsertOutcome { max, split: None });
            }
            // Split the leaf in half.
            let Node::Leaf(mut entries) = node else { unreachable!() };
            let right_entries = entries.split_off(entries.len() / 2);
            let left_max = entries.last().expect("nonempty").0;
            let right_max = right_entries.last().expect("nonempty").0;
            let right_page = pager.alloc_page();
            store(pager, page_no, &Node::Leaf(entries), clock)?;
            store(pager, right_page, &Node::Leaf(right_entries), clock)?;
            Ok(InsertOutcome { max: left_max, split: Some((right_max, right_page)) })
        }
        Node::Branch(mut entries) => {
            if entries.is_empty() {
                return Err(SqlError::Corruption("empty branch node".into()));
            }
            // Child whose max covers the rowid; beyond-all goes to the last.
            let idx =
                entries.iter().position(|(max, _)| rowid <= *max).unwrap_or(entries.len() - 1);
            let child = entries[idx].1;
            let outcome = insert_rec(pager, child, rowid, value, clock)?;
            entries[idx].0 = outcome.max;
            if let Some((smax, spage)) = outcome.split {
                entries.insert(idx + 1, (smax, spage));
            }
            let node = Node::Branch(entries);
            if encoded_len(&node) <= PAGE_SIZE {
                let max = match &node {
                    Node::Branch(e) => e.last().expect("nonempty").0,
                    Node::Leaf(_) => unreachable!(),
                };
                store(pager, page_no, &node, clock)?;
                return Ok(InsertOutcome { max, split: None });
            }
            let Node::Branch(mut entries) = node else { unreachable!() };
            let right_entries = entries.split_off(entries.len() / 2);
            let left_max = entries.last().expect("nonempty").0;
            let right_max = right_entries.last().expect("nonempty").0;
            let right_page = pager.alloc_page();
            store(pager, page_no, &Node::Branch(entries), clock)?;
            store(pager, right_page, &Node::Branch(right_entries), clock)?;
            Ok(InsertOutcome { max: left_max, split: Some((right_max, right_page)) })
        }
    }
}

/// A B+tree rooted at a fixed page (the root page number never changes, so
/// the table catalog stays valid; splits of the root move its content down).
#[derive(Debug, Clone, Copy)]
pub(crate) struct BTree {
    pub root: u32,
}

impl BTree {
    /// Initializes an empty tree at `root`.
    pub fn create(pager: &mut Pager, root: u32, clock: &ActorClock) -> SqlResult<BTree> {
        store(pager, root, &Node::Leaf(Vec::new()), clock)?;
        Ok(BTree { root })
    }

    /// Inserts a row.
    ///
    /// # Errors
    ///
    /// [`SqlError::DuplicateRow`] / [`SqlError::ValueTooLarge`] / I/O.
    pub fn insert(
        &self,
        pager: &mut Pager,
        rowid: i64,
        value: &[u8],
        clock: &ActorClock,
    ) -> SqlResult<()> {
        if value.len() > MAX_VALUE {
            return Err(SqlError::ValueTooLarge(value.len()));
        }
        let outcome = insert_rec(pager, self.root, rowid, value, clock)?;
        if let Some((smax, spage)) = outcome.split {
            // Root split: move the current root content to a fresh page and
            // make the root a two-entry branch.
            let old_root = load(pager, self.root, clock)?;
            let moved = pager.alloc_page();
            store(pager, moved, &old_root, clock)?;
            let new_root = Node::Branch(vec![(outcome.max, moved), (smax, spage)]);
            store(pager, self.root, &new_root, clock)?;
        }
        Ok(())
    }

    /// Point lookup by rowid.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors.
    pub fn get(
        &self,
        pager: &mut Pager,
        rowid: i64,
        clock: &ActorClock,
    ) -> SqlResult<Option<Vec<u8>>> {
        let mut page_no = self.root;
        loop {
            match load(pager, page_no, clock)? {
                Node::Leaf(entries) => {
                    return Ok(entries
                        .binary_search_by_key(&rowid, |(r, _)| *r)
                        .ok()
                        .map(|i| entries[i].1.clone()));
                }
                Node::Branch(entries) => {
                    let Some(idx) = entries.iter().position(|(max, _)| rowid <= *max) else {
                        return Ok(None);
                    };
                    page_no = entries[idx].1;
                }
            }
        }
    }

    /// In-order scan of all rows.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors.
    pub fn scan(&self, pager: &mut Pager, clock: &ActorClock) -> SqlResult<Vec<(i64, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        // Depth-first with children pushed in reverse keeps rowid order.
        while let Some(page_no) = stack.pop() {
            match load(pager, page_no, clock)? {
                Node::Leaf(entries) => out.extend(entries),
                Node::Branch(entries) => {
                    for (_, child) in entries.into_iter().rev() {
                        stack.push(child);
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vfs::{FileSystem, MemFs};

    fn tree() -> (ActorClock, Pager, BTree) {
        let c = ActorClock::new();
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let mut pager = Pager::open(fs, "/bt.db", false, &c).unwrap();
        pager.begin().unwrap();
        let root = pager.alloc_page();
        let bt = BTree::create(&mut pager, root, &c).unwrap();
        (c, pager, bt)
    }

    #[test]
    fn insert_get_small() {
        let (c, mut p, bt) = tree();
        bt.insert(&mut p, 5, b"five", &c).unwrap();
        bt.insert(&mut p, 1, b"one", &c).unwrap();
        bt.insert(&mut p, 3, b"three", &c).unwrap();
        assert_eq!(bt.get(&mut p, 3, &c).unwrap(), Some(b"three".to_vec()));
        assert_eq!(bt.get(&mut p, 4, &c).unwrap(), None);
    }

    #[test]
    fn duplicate_rowid_rejected() {
        let (c, mut p, bt) = tree();
        bt.insert(&mut p, 1, b"a", &c).unwrap();
        assert!(matches!(bt.insert(&mut p, 1, b"b", &c), Err(SqlError::DuplicateRow(1))));
    }

    #[test]
    fn oversized_value_rejected() {
        let (c, mut p, bt) = tree();
        assert!(matches!(
            bt.insert(&mut p, 1, &vec![0u8; MAX_VALUE + 1], &c),
            Err(SqlError::ValueTooLarge(_))
        ));
    }

    #[test]
    fn thousands_of_rows_split_correctly() {
        let (c, mut p, bt) = tree();
        let n: i64 = 5000;
        // Insert in a scrambled order to exercise splits everywhere.
        for i in 0..n {
            let rowid = (i * 2654435761 % n + n) % n;
            if bt.get(&mut p, rowid, &c).unwrap().is_none() {
                bt.insert(&mut p, rowid, format!("row-{rowid}").as_bytes(), &c).unwrap();
            }
        }
        for rowid in (0..n).step_by(37) {
            if let Some(v) = bt.get(&mut p, rowid, &c).unwrap() {
                assert_eq!(v, format!("row-{rowid}").into_bytes());
            }
        }
        let all = bt.scan(&mut p, &c).unwrap();
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0, "scan must be sorted");
        }
    }

    #[test]
    fn sequential_fill_and_scan() {
        let (c, mut p, bt) = tree();
        for i in 0..3000i64 {
            bt.insert(&mut p, i, &[7u8; 100], &c).unwrap();
        }
        let all = bt.scan(&mut p, &c).unwrap();
        assert_eq!(all.len(), 3000);
        assert_eq!(all[0].0, 0);
        assert_eq!(all[2999].0, 2999);
        assert_eq!(bt.get(&mut p, 2999, &c).unwrap(), Some(vec![7u8; 100]));
    }

    #[test]
    fn persists_across_commit_and_reopen() {
        let c = ActorClock::new();
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let root;
        {
            let mut pager = Pager::open(Arc::clone(&fs), "/p.db", true, &c).unwrap();
            pager.begin().unwrap();
            root = pager.alloc_page();
            let bt = BTree::create(&mut pager, root, &c).unwrap();
            for i in 0..500i64 {
                bt.insert(&mut pager, i, format!("v{i}").as_bytes(), &c).unwrap();
            }
            pager.commit(&c).unwrap();
            pager.close(&c).unwrap();
        }
        let mut pager = Pager::open(fs, "/p.db", true, &c).unwrap();
        let bt = BTree { root };
        assert_eq!(bt.get(&mut pager, 123, &c).unwrap(), Some(b"v123".to_vec()));
        assert_eq!(bt.scan(&mut pager, &c).unwrap().len(), 500);
    }
}
