use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::{ActorClock, SimTime};

use crate::{SqlResult, SqlightDb};

/// The db_bench-for-SQLite workloads of paper Fig. 3: synchronous fills
/// (one transaction per statement — the expensive SQLite pattern) and the
/// two read workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlBench {
    /// Sequential-rowid inserts, one synchronous transaction each.
    FillSeqSync,
    /// Random-rowid inserts, one synchronous transaction each.
    FillRandSync,
    /// Random point lookups.
    ReadRandom,
    /// Full table scan.
    ReadSeq,
}

impl SqlBench {
    /// Workload name as it appears in the figure.
    pub fn name(self) -> &'static str {
        match self {
            SqlBench::FillSeqSync => "fillseq-sync",
            SqlBench::FillRandSync => "fillrand-sync",
            SqlBench::ReadRandom => "readrandom",
            SqlBench::ReadSeq => "readseq",
        }
    }

    /// Whether the workload needs existing rows.
    pub fn needs_prefill(self) -> bool {
        matches!(self, SqlBench::ReadRandom | SqlBench::ReadSeq)
    }
}

/// Run options.
#[derive(Debug, Clone)]
pub struct SqlBenchOptions {
    /// Number of operations.
    pub num: u64,
    /// Row payload size (db_bench default 100 bytes).
    pub value_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SqlBenchOptions {
    fn default() -> Self {
        SqlBenchOptions { num: 1_000, value_size: 100, seed: 42 }
    }
}

/// Outcome of one workload run.
#[derive(Debug, Clone)]
pub struct SqlBenchResult {
    /// Workload name.
    pub name: &'static str,
    /// Operations executed.
    pub ops: u64,
    /// Virtual time of the run.
    pub elapsed: SimTime,
    /// Mean latency per operation in microseconds (the unit of Fig. 3).
    pub mean_latency_us: f64,
    /// Operations per virtual second.
    pub ops_per_sec: f64,
}

fn row(value_size: usize, salt: u64) -> Vec<u8> {
    (0..value_size)
        .map(|i| ((i as u64).wrapping_mul(37).wrapping_add(salt) % 251) as u8)
        .collect()
}

/// Pre-populates `table` with `num` sequential rows in one big transaction
/// (layout phase; not measured).
///
/// # Errors
///
/// Propagates database errors.
pub fn prefill(
    db: &SqlightDb,
    table: &str,
    opts: &SqlBenchOptions,
    clock: &ActorClock,
) -> SqlResult<()> {
    db.begin()?;
    for i in 0..opts.num {
        db.insert(table, i as i64, &row(opts.value_size, i), clock)?;
    }
    db.commit(clock)
}

/// Runs one workload against `table` (created on demand).
///
/// # Errors
///
/// Propagates database errors.
pub fn run_sql_bench(
    db: &SqlightDb,
    table: &str,
    bench: SqlBench,
    opts: &SqlBenchOptions,
    clock: &ActorClock,
) -> SqlResult<SqlBenchResult> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let start = clock.now();
    let mut ops = 0u64;
    match bench {
        SqlBench::FillSeqSync => {
            for i in 0..opts.num {
                db.insert(table, i as i64, &row(opts.value_size, i), clock)?;
                ops += 1;
            }
        }
        SqlBench::FillRandSync => {
            for next in 0..opts.num {
                // Random *insertion order* over a permuted key space (fills
                // must not collide on rowids).
                let rowid = (next.wrapping_mul(2654435761) % (opts.num * 8)) as i64;
                match db.insert(table, rowid, &row(opts.value_size, rowid as u64), clock) {
                    Ok(()) | Err(crate::SqlError::DuplicateRow(_)) => {}
                    Err(e) => return Err(e),
                }
                ops += 1;
            }
        }
        SqlBench::ReadRandom => {
            for _ in 0..opts.num {
                let rowid = rng.gen_range(0..opts.num) as i64;
                let _ = db.get(table, rowid, clock)?;
                ops += 1;
            }
        }
        SqlBench::ReadSeq => {
            ops = db.scan(table, clock)?.len() as u64;
            // Cursor-step CPU cost per visited row.
            clock.advance(SimTime::from_nanos(120) * ops);
        }
    }
    let elapsed = clock.now() - start;
    let secs = elapsed.as_secs_f64();
    Ok(SqlBenchResult {
        name: bench.name(),
        ops,
        elapsed,
        mean_latency_us: if ops == 0 { 0.0 } else { elapsed.as_micros_f64() / ops as f64 },
        ops_per_sec: if secs == 0.0 { 0.0 } else { ops as f64 / secs },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SqlightOptions;
    use std::sync::Arc;
    use vfs::{FileSystem, MemFs};

    fn db() -> (ActorClock, SqlightDb) {
        let c = ActorClock::new();
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let db = SqlightDb::open(fs, "/bench.db", SqlightOptions::default(), &c).unwrap();
        db.create_table("kv", &c).unwrap();
        (c, db)
    }

    #[test]
    fn fillseq_sync_commits_each_op() {
        let (c, db) = db();
        let opts = SqlBenchOptions { num: 200, ..SqlBenchOptions::default() };
        let r = run_sql_bench(&db, "kv", SqlBench::FillSeqSync, &opts, &c).unwrap();
        assert_eq!(r.ops, 200);
        assert!(r.mean_latency_us > 0.0);
        assert_eq!(db.scan("kv", &c).unwrap().len(), 200);
    }

    #[test]
    fn fillrand_inserts_distinct_rowids() {
        let (c, db) = db();
        let opts = SqlBenchOptions { num: 300, ..SqlBenchOptions::default() };
        let r = run_sql_bench(&db, "kv", SqlBench::FillRandSync, &opts, &c).unwrap();
        assert_eq!(r.ops, 300);
        assert!(db.scan("kv", &c).unwrap().len() >= 290, "rowids should barely collide");
    }

    #[test]
    fn read_workloads_after_prefill() {
        let (c, db) = db();
        let opts = SqlBenchOptions { num: 400, ..SqlBenchOptions::default() };
        prefill(&db, "kv", &opts, &c).unwrap();
        let rr = run_sql_bench(&db, "kv", SqlBench::ReadRandom, &opts, &c).unwrap();
        assert_eq!(rr.ops, 400);
        let rs = run_sql_bench(&db, "kv", SqlBench::ReadSeq, &opts, &c).unwrap();
        assert_eq!(rs.ops, 400);
    }
}
