use std::error::Error;
use std::fmt;

use vfs::IoError;

/// Result alias for sqlight operations.
pub type SqlResult<T> = Result<T, SqlError>;

/// Errors surfaced by the embedded database.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SqlError {
    /// An underlying file-system error.
    Io(IoError),
    /// Persistent state failed validation.
    Corruption(String),
    /// The named table does not exist.
    NoSuchTable(String),
    /// The table already exists.
    TableExists(String),
    /// A row with this rowid already exists.
    DuplicateRow(i64),
    /// Value too large for an in-page cell.
    ValueTooLarge(usize),
    /// Transaction misuse (nested begin, commit without begin...).
    TxnState(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Io(e) => write!(f, "i/o error: {e}"),
            SqlError::Corruption(m) => write!(f, "corruption: {m}"),
            SqlError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            SqlError::TableExists(t) => write!(f, "table exists: {t}"),
            SqlError::DuplicateRow(id) => write!(f, "duplicate rowid: {id}"),
            SqlError::ValueTooLarge(n) => write!(f, "value of {n} bytes exceeds cell limit"),
            SqlError::TxnState(m) => write!(f, "transaction misuse: {m}"),
        }
    }
}

impl Error for SqlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SqlError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IoError> for SqlError {
    fn from(e: IoError) -> Self {
        SqlError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        assert_eq!(SqlError::NoSuchTable("t".into()).to_string(), "no such table: t");
        assert_eq!(SqlError::DuplicateRow(9).to_string(), "duplicate rowid: 9");
        assert!(SqlError::from(IoError::NoSpace).to_string().contains("no space"));
    }
}
