use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use simclock::ActorClock;
use vfs::FileSystem;

use crate::btree::BTree;
use crate::pager::{Pager, PAGE_SIZE};
use crate::{SqlError, SqlResult};

const CATALOG_MAGIC: u64 = u64::from_le_bytes(*b"SQLIGHT1");
const MAX_TABLE_NAME: usize = 47;

/// Database options.
#[derive(Debug, Clone)]
pub struct SqlightOptions {
    /// `PRAGMA synchronous=FULL`: fsync the journal and the database at every
    /// commit — the mode the paper's SQLite benchmarks run in.
    pub synchronous: bool,
}

impl Default for SqlightOptions {
    fn default() -> Self {
        SqlightOptions { synchronous: true }
    }
}

/// The embedded database: a table catalog on page 0, one B+tree per table,
/// rollback-journal transactions.
///
/// Auto-commit: `insert`/`get`/`scan` outside an explicit transaction wrap
/// themselves in one, exactly like SQLite statements do — which is what
/// makes the fill benchmarks so fsync-heavy.
pub struct SqlightDb {
    state: Mutex<DbInner>,
}

struct DbInner {
    pager: Pager,
    tables: HashMap<String, BTree>,
}

impl std::fmt::Debug for SqlightDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("SqlightDb").field("tables", &st.tables.len()).finish()
    }
}

impl SqlightDb {
    /// Opens (or creates) a database file, recovering from a hot journal if
    /// needed.
    ///
    /// # Errors
    ///
    /// I/O errors; [`SqlError::Corruption`] on a damaged catalog.
    pub fn open(
        fs: Arc<dyn FileSystem>,
        path: &str,
        opts: SqlightOptions,
        clock: &ActorClock,
    ) -> SqlResult<SqlightDb> {
        let mut pager = Pager::open(fs, path, opts.synchronous, clock)?;
        let mut tables = HashMap::new();
        if pager.page_count() == 0 {
            // Fresh database: write the catalog page.
            pager.begin()?;
            let catalog = pager.alloc_page();
            debug_assert_eq!(catalog, 0);
            pager.write_page(0, clock, |page| {
                page[0..8].copy_from_slice(&CATALOG_MAGIC.to_le_bytes());
                page[8..10].copy_from_slice(&0u16.to_le_bytes());
            })?;
            pager.commit(clock)?;
        } else {
            let page = pager.read_page(0, clock)?;
            let magic = u64::from_le_bytes(page[0..8].try_into().expect("8 bytes"));
            if magic != CATALOG_MAGIC {
                return Err(SqlError::Corruption("bad catalog magic".into()));
            }
            let n = u16::from_le_bytes(page[8..10].try_into().expect("2 bytes")) as usize;
            let mut pos = 10usize;
            for _ in 0..n {
                let name_len = page[pos] as usize;
                if name_len == 0 || pos + 1 + name_len + 4 > PAGE_SIZE {
                    return Err(SqlError::Corruption("bad catalog entry".into()));
                }
                let name = String::from_utf8_lossy(&page[pos + 1..pos + 1 + name_len]).into_owned();
                let root = u32::from_le_bytes(
                    page[pos + 1 + name_len..pos + 5 + name_len].try_into().expect("4 bytes"),
                );
                tables.insert(name, BTree { root });
                pos += 5 + name_len;
            }
        }
        Ok(SqlightDb { state: Mutex::new(DbInner { pager, tables }) })
    }

    fn write_catalog(inner: &mut DbInner, clock: &ActorClock) -> SqlResult<()> {
        let mut entries: Vec<(String, u32)> =
            inner.tables.iter().map(|(n, t)| (n.clone(), t.root)).collect();
        entries.sort();
        inner.pager.write_page(0, clock, |page| {
            page[0..8].copy_from_slice(&CATALOG_MAGIC.to_le_bytes());
            page[8..10].copy_from_slice(&(entries.len() as u16).to_le_bytes());
            let mut pos = 10usize;
            for (name, root) in &entries {
                page[pos] = name.len() as u8;
                page[pos + 1..pos + 1 + name.len()].copy_from_slice(name.as_bytes());
                page[pos + 1 + name.len()..pos + 5 + name.len()]
                    .copy_from_slice(&root.to_le_bytes());
                pos += 5 + name.len();
            }
        })
    }

    /// Starts an explicit transaction (`BEGIN`).
    ///
    /// # Errors
    ///
    /// [`SqlError::TxnState`] if one is already active.
    pub fn begin(&self) -> SqlResult<()> {
        self.state.lock().pager.begin()
    }

    /// Commits the explicit transaction (`COMMIT`).
    ///
    /// # Errors
    ///
    /// [`SqlError::TxnState`] without a transaction; I/O errors.
    pub fn commit(&self, clock: &ActorClock) -> SqlResult<()> {
        self.state.lock().pager.commit(clock)
    }

    /// Rolls the explicit transaction back (`ROLLBACK`).
    ///
    /// # Errors
    ///
    /// [`SqlError::TxnState`] without a transaction; I/O errors.
    pub fn rollback(&self, clock: &ActorClock) -> SqlResult<()> {
        self.state.lock().pager.rollback(clock)
    }

    /// Creates a table (auto-commits unless inside a transaction).
    ///
    /// # Errors
    ///
    /// [`SqlError::TableExists`]; name longer than 47 bytes is rejected as
    /// [`SqlError::Corruption`] would be silly — it is `InvalidArgument`-like
    /// `TxnState`… it returns [`SqlError::ValueTooLarge`].
    pub fn create_table(&self, name: &str, clock: &ActorClock) -> SqlResult<()> {
        let mut st = self.state.lock();
        if name.len() > MAX_TABLE_NAME {
            return Err(SqlError::ValueTooLarge(name.len()));
        }
        if st.tables.contains_key(name) {
            return Err(SqlError::TableExists(name.to_string()));
        }
        let auto = !st.pager.in_txn();
        if auto {
            st.pager.begin()?;
        }
        let root = st.pager.alloc_page();
        let tree = BTree::create(&mut st.pager, root, clock)?;
        st.tables.insert(name.to_string(), tree);
        Self::write_catalog(&mut st, clock)?;
        if auto {
            st.pager.commit(clock)?;
        }
        Ok(())
    }

    /// Table names in the catalog.
    pub fn tables(&self) -> Vec<String> {
        let mut v: Vec<String> = self.state.lock().tables.keys().cloned().collect();
        v.sort();
        v
    }

    fn table(inner: &DbInner, name: &str) -> SqlResult<BTree> {
        inner
            .tables
            .get(name)
            .copied()
            .ok_or_else(|| SqlError::NoSuchTable(name.to_string()))
    }

    /// Inserts a row (auto-commits unless inside a transaction).
    ///
    /// # Errors
    ///
    /// [`SqlError::NoSuchTable`], [`SqlError::DuplicateRow`], I/O errors.
    pub fn insert(&self, table: &str, rowid: i64, row: &[u8], clock: &ActorClock) -> SqlResult<()> {
        let mut st = self.state.lock();
        let tree = Self::table(&st, table)?;
        let auto = !st.pager.in_txn();
        if auto {
            st.pager.begin()?;
        }
        match tree.insert(&mut st.pager, rowid, row, clock) {
            Ok(()) => {
                if auto {
                    st.pager.commit(clock)?;
                }
                Ok(())
            }
            Err(e) => {
                if auto {
                    st.pager.rollback(clock)?;
                }
                Err(e)
            }
        }
    }

    /// Point lookup by rowid.
    ///
    /// # Errors
    ///
    /// [`SqlError::NoSuchTable`], I/O errors.
    pub fn get(&self, table: &str, rowid: i64, clock: &ActorClock) -> SqlResult<Option<Vec<u8>>> {
        let mut st = self.state.lock();
        let tree = Self::table(&st, table)?;
        tree.get(&mut st.pager, rowid, clock)
    }

    /// Full scan in rowid order.
    ///
    /// # Errors
    ///
    /// [`SqlError::NoSuchTable`], I/O errors.
    pub fn scan(&self, table: &str, clock: &ActorClock) -> SqlResult<Vec<(i64, Vec<u8>)>> {
        let mut st = self.state.lock();
        let tree = Self::table(&st, table)?;
        tree.scan(&mut st.pager, clock)
    }

    /// Closes the database file.
    ///
    /// # Errors
    ///
    /// I/O errors from close.
    pub fn close(self, clock: &ActorClock) -> SqlResult<()> {
        self.state.into_inner().pager.close(clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::MemFs;

    fn open_db() -> (ActorClock, Arc<dyn FileSystem>, SqlightDb) {
        let c = ActorClock::new();
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let db = SqlightDb::open(Arc::clone(&fs), "/a.db", SqlightOptions::default(), &c).unwrap();
        (c, fs, db)
    }

    #[test]
    fn create_insert_get() {
        let (c, _fs, db) = open_db();
        db.create_table("t", &c).unwrap();
        db.insert("t", 1, b"row one", &c).unwrap();
        assert_eq!(db.get("t", 1, &c).unwrap(), Some(b"row one".to_vec()));
        assert_eq!(db.get("t", 2, &c).unwrap(), None);
    }

    #[test]
    fn missing_table_errors() {
        let (c, _fs, db) = open_db();
        assert!(matches!(db.get("nope", 1, &c), Err(SqlError::NoSuchTable(_))));
        assert!(matches!(db.insert("nope", 1, b"", &c), Err(SqlError::NoSuchTable(_))));
        db.create_table("t", &c).unwrap();
        assert!(matches!(db.create_table("t", &c), Err(SqlError::TableExists(_))));
    }

    #[test]
    fn explicit_transaction_batches_commits() {
        let (c, _fs, db) = open_db();
        db.create_table("t", &c).unwrap();
        db.begin().unwrap();
        for i in 0..100 {
            db.insert("t", i, b"batched", &c).unwrap();
        }
        db.commit(&c).unwrap();
        assert_eq!(db.scan("t", &c).unwrap().len(), 100);
    }

    #[test]
    fn rollback_undoes_inserts() {
        let (c, _fs, db) = open_db();
        db.create_table("t", &c).unwrap();
        db.insert("t", 1, b"keep", &c).unwrap();
        db.begin().unwrap();
        db.insert("t", 2, b"discard", &c).unwrap();
        db.rollback(&c).unwrap();
        assert_eq!(db.get("t", 1, &c).unwrap(), Some(b"keep".to_vec()));
        assert_eq!(db.get("t", 2, &c).unwrap(), None);
    }

    #[test]
    fn failed_autocommit_insert_rolls_back() {
        let (c, _fs, db) = open_db();
        db.create_table("t", &c).unwrap();
        db.insert("t", 7, b"v", &c).unwrap();
        assert!(matches!(db.insert("t", 7, b"dup", &c), Err(SqlError::DuplicateRow(7))));
        assert_eq!(db.get("t", 7, &c).unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn reopen_preserves_catalog_and_rows() {
        let c = ActorClock::new();
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        {
            let db =
                SqlightDb::open(Arc::clone(&fs), "/p.db", SqlightOptions::default(), &c).unwrap();
            db.create_table("users", &c).unwrap();
            db.create_table("orders", &c).unwrap();
            for i in 0..500 {
                db.insert("users", i, format!("user-{i}").as_bytes(), &c).unwrap();
            }
            db.close(&c).unwrap();
        }
        let db = SqlightDb::open(Arc::clone(&fs), "/p.db", SqlightOptions::default(), &c).unwrap();
        assert_eq!(db.tables(), vec!["orders".to_string(), "users".to_string()]);
        assert_eq!(db.get("users", 123, &c).unwrap(), Some(b"user-123".to_vec()));
        assert_eq!(db.scan("users", &c).unwrap().len(), 500);
    }

    #[test]
    fn many_tables_round_trip() {
        let (c, _fs, db) = open_db();
        for i in 0..20 {
            db.create_table(&format!("t{i}"), &c).unwrap();
            db.insert(&format!("t{i}"), 1, format!("data{i}").as_bytes(), &c).unwrap();
        }
        for i in 0..20 {
            assert_eq!(
                db.get(&format!("t{i}"), 1, &c).unwrap(),
                Some(format!("data{i}").into_bytes())
            );
        }
    }
}
