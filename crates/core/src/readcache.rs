//! The bounded volatile read cache (paper §II-C): a pool of page contents
//! installed into [`PageDescriptor`] slots, with approximate-LRU eviction
//! driven by the descriptors' accessed bits.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::pagedesc::{PageDescriptor, PageSlot};
use crate::NvCacheStats;

/// The volatile read cache: a bounded pool of page contents with the paper's
/// approximate LRU (§II-D "Scalable data structures").
///
/// The queue (guarded by the *LRU lock*) holds descriptors of loaded pages.
/// Eviction dequeues the head: if its accessed flag is set the page gets a
/// second chance (re-enqueued at the tail); otherwise its content is
/// recycled and the descriptor transitions to unloaded-clean or
/// unloaded-dirty depending on the dirty counter — never issuing a
/// synchronous write, which is the entire point of the state machine in
/// paper Fig. 2.
///
/// The paper acquires the victim's atomic lock during eviction; because our
/// evictor may already hold atomic locks of the pages it is reading, we use
/// `try_lock` and skip contended victims — same policy, deadlock-free.
pub(crate) struct ReadCache {
    capacity: usize,
    loaded: AtomicUsize,
    queue: Mutex<VecDeque<Arc<PageDescriptor>>>,
}

impl std::fmt::Debug for ReadCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadCache")
            .field("capacity", &self.capacity)
            .field("loaded", &self.loaded())
            .finish()
    }
}

impl ReadCache {
    pub fn new(capacity: usize) -> Self {
        ReadCache {
            capacity: capacity.max(1),
            loaded: AtomicUsize::new(0),
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Number of loaded pages.
    pub fn loaded(&self) -> usize {
        self.loaded.load(Ordering::Relaxed)
    }

    /// Pool capacity in pages.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Evicts until below capacity. Call *before* installing new content.
    pub fn make_room(&self, stats: &NvCacheStats) {
        let mut attempts = 0usize;
        while self.loaded.load(Ordering::Acquire) >= self.capacity {
            let victim = {
                let mut q = self.queue.lock();
                attempts += 1;
                if attempts > q.len().saturating_mul(2) + 8 {
                    // Everything is pinned (locked or recently accessed);
                    // allow a temporary overshoot rather than livelock.
                    return;
                }
                match q.pop_front() {
                    Some(v) => v,
                    None => return,
                }
            };
            // Stale queue entry (already evicted elsewhere)?
            let Some(mut slot) = victim.try_lock() else {
                self.queue.lock().push_back(victim);
                continue;
            };
            if slot.content.is_none() {
                continue; // stale: content already recycled
            }
            if victim.take_accessed() {
                drop(slot);
                self.queue.lock().push_back(victim);
                continue;
            }
            slot.content = None;
            self.loaded.fetch_sub(1, Ordering::AcqRel);
            stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Installs `content` into a page the caller holds the atomic lock for,
    /// and enqueues the descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the page is already loaded.
    pub fn install(&self, desc: &Arc<PageDescriptor>, slot: &mut PageSlot, content: Box<[u8]>) {
        assert!(slot.content.is_none(), "page already loaded");
        slot.content = Some(content);
        desc.mark_accessed();
        self.loaded.fetch_add(1, Ordering::AcqRel);
        self.queue.lock().push_back(Arc::clone(desc));
    }

    /// Drops every loaded page belonging to `file_id` (file close: the paper
    /// frees the whole radix tree; the pool must release those contents).
    pub fn purge_file(&self, file_id: u64) {
        let mut q = self.queue.lock();
        q.retain(|desc| {
            if desc.file_id() != file_id {
                return true;
            }
            let mut slot = desc.lock();
            if slot.content.take().is_some() {
                self.loaded.fetch_sub(1, Ordering::AcqRel);
            }
            false
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(file: u64, no: u64) -> Arc<PageDescriptor> {
        Arc::new(PageDescriptor::for_file(file, no))
    }

    fn install(rc: &ReadCache, d: &Arc<PageDescriptor>) {
        let mut slot = d.lock();
        rc.install(d, &mut slot, vec![0u8; 16].into_boxed_slice());
    }

    #[test]
    fn install_and_count() {
        let rc = ReadCache::new(4);
        assert_eq!(rc.capacity(), 4);
        let d = page(1, 0);
        install(&rc, &d);
        assert_eq!(rc.loaded(), 1);
        assert!(d.lock().content.is_some());
    }

    #[test]
    fn eviction_recycles_cold_pages_first() {
        let stats = NvCacheStats::default();
        let rc = ReadCache::new(2);
        let hot = page(1, 0);
        let cold = page(1, 1);
        install(&rc, &hot);
        install(&rc, &cold);
        // Touch the hot page only; `install` set both accessed bits, so
        // clear them first to model time passing.
        hot.take_accessed();
        cold.take_accessed();
        hot.mark_accessed();
        rc.make_room(&stats);
        assert_eq!(rc.loaded(), 1);
        assert!(hot.lock().content.is_some(), "second chance must protect the hot page");
        assert!(cold.lock().content.is_none());
        assert_eq!(stats.evictions.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn locked_victims_are_skipped() {
        let stats = NvCacheStats::default();
        let rc = ReadCache::new(1);
        let pinned = page(1, 0);
        install(&rc, &pinned);
        pinned.take_accessed();
        let _guard = pinned.lock(); // evictor must not deadlock on this
        rc.make_room(&stats);
        // Could not evict: pool overshoots rather than deadlocks.
        assert_eq!(rc.loaded(), 1);
    }

    #[test]
    fn purge_file_releases_only_that_file() {
        let rc = ReadCache::new(8);
        let a = page(1, 0);
        let b = page(2, 0);
        install(&rc, &a);
        install(&rc, &b);
        rc.purge_file(1);
        assert_eq!(rc.loaded(), 1);
        assert!(a.lock().content.is_none());
        assert!(b.lock().content.is_some());
    }

    #[test]
    fn eviction_keeps_dirty_pages_dirty_without_io() {
        let stats = NvCacheStats::default();
        let rc = ReadCache::new(1);
        let d = page(1, 0);
        install(&rc, &d);
        d.inc_dirty();
        d.take_accessed();
        let extra = page(1, 1);
        rc.make_room(&stats);
        install(&rc, &extra);
        assert_eq!(d.state(), crate::PageState::UnloadedDirty);
    }
}
