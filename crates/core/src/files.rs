//! File bookkeeping: the volatile per-file and per-descriptor structures
//! (paper §III "Open") plus [`PersistentFdTable`], the NVMM table mapping
//! fd slots to paths — and, on a tiered (header v3) mount, to the backend
//! that owns the file — so recovery can reopen the files referenced by
//! pending log entries on the right inner file system.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use nvmm::{NvRegion, PmemInts};
use parking_lot::Mutex;
use simclock::{ActorClock, SimTime};

use crate::layout::{
    heat_word, parse_heat_word, Layout, FD_BACKEND_OFF, FD_HEAT_OFF, FD_SLOT_BYTES,
    FD_VALID_MIGRATION, FD_VALID_OPEN,
};
use crate::placement::Temperature;
use crate::Radix;

/// Volatile per-file state: the *file table* entry of paper §III "Open",
/// keyed by `(device, inode)` so that two opens of the same file share the
/// size, the radix tree and the page descriptors.
#[derive(Debug)]
pub(crate) struct FileState {
    /// Process-unique id (tags page descriptors for pool purging).
    pub file_id: u64,
    /// Identity on the inner file system.
    pub dev_ino: (u64, u64),
    /// Canonical path. Path-based calls (`stat`, `unlink`, `rename`) consult
    /// it to find the *recorded* backend of an open file before falling back
    /// to policy routing; recovery still reads paths from the persistent fd
    /// table, not from here.
    pub path: String,
    /// NVCache's own view of the file size — the kernel's may be stale while
    /// appends sit in the log (paper §II-C).
    pub size: AtomicU64,
    /// Intercepted reads against this file (access heat for the tier
    /// migrator; carried across close/reopen through the migrator catalog).
    pub reads: AtomicU64,
    /// Intercepted writes against this file (access heat, as above).
    pub writes: AtomicU64,
    /// Exponentially decaying access temperature (drives the
    /// [`HeatPolicy`](crate::HeatPolicy) placement): every intercepted
    /// read/write decays the stored heat to the touching call's virtual
    /// clock and adds one. A mutex, not atomics — decay folds two fields
    /// (value + stamp) and the surrounding I/O path already serializes on
    /// page locks.
    pub temperature: Mutex<Temperature>,
    /// Read-cache index; created on the first writable open. Files never
    /// opened for writing have no tree and bypass the read cache entirely.
    pub radix: OnceLock<Radix>,
    /// Opens currently referencing this file.
    pub open_count: AtomicU32,
}

impl FileState {
    /// One intercepted access at virtual instant `now`: decays the stored
    /// temperature and adds one unit of heat. `half_life` comes from the
    /// mount's placement policy (`None` = undecayed touch counting).
    pub fn touch_heat(&self, now: SimTime, half_life: Option<SimTime>) {
        self.temperature.lock().touch(now, half_life);
    }
}

/// Volatile per-descriptor state: the *opened table* entry of paper §III,
/// holding the cursor and a pointer to the file structure.
#[derive(Debug)]
pub(crate) struct OpenedFile {
    /// Persistent fd-table slot; doubles as the public descriptor number.
    pub slot: u32,
    /// Flags the file was opened with.
    pub flags: vfs::OpenFlags,
    /// NVCache-maintained cursor (paper Table III: `lseek`/`ftell` answered
    /// from here, never from the kernel).
    pub cursor: Mutex<u64>,
    /// The shared file structure.
    pub file: Arc<FileState>,
    /// Index of the inner backend the router placed this file on (`0` on a
    /// single-backend mount). The cleanup workers, read misses and recovery
    /// all resolve the inner file system through this — never by re-routing.
    pub backend: u32,
    /// Descriptor on the inner (kernel) file system, used by the cleanup
    /// thread and by read misses.
    pub inner_fd: vfs::Fd,
    /// Set once `close` begins; new calls on the descriptor then fail while
    /// close waits for in-flight calls to drain.
    pub closing: AtomicBool,
}

/// Lock-free allocator for persistent fd-table slots: a Treiber stack over
/// a preallocated `next`-pointer array, with a generation-tagged head to
/// defeat ABA. Replaces the old `Mutex<Vec<u32>>` free list so the
/// multi-queue front-end's submitters (and plain `open`/`close` storms)
/// never serialize on a global lock just to grab a descriptor slot.
///
/// LIFO, like the vector it replaces: the most recently released slot is
/// handed out next, and a fresh allocator yields `0, 1, 2, …` — keeping
/// descriptor numbering (and therefore every byte-oracle test) identical.
#[derive(Debug)]
pub(crate) struct FdSlotAllocator {
    /// `next[i]` = the slot below `i` on the free stack (`NIL` = bottom).
    /// Only ever read/written for slots currently on the stack, so a slot's
    /// word never changes while another thread may still traverse it.
    next: Box<[AtomicU32]>,
    /// `generation << 32 | slot` of the stack top (`slot == NIL` = empty).
    /// The generation increments on every successful push/pop.
    head: AtomicU64,
    /// Free-slot gauge (exact when quiescent; used for usage reporting, not
    /// for allocation decisions).
    free: AtomicU32,
}

const NIL: u32 = u32::MAX;

fn pack(generation: u32, slot: u32) -> u64 {
    (u64::from(generation) << 32) | u64::from(slot)
}

impl FdSlotAllocator {
    /// An allocator over slots `0..n`, all free.
    pub fn new(n: u32) -> Self {
        assert!(n < NIL, "fd slot count must leave room for the NIL sentinel");
        let next: Vec<AtomicU32> =
            (0..n).map(|i| AtomicU32::new(if i + 1 < n { i + 1 } else { NIL })).collect();
        FdSlotAllocator {
            next: next.into_boxed_slice(),
            head: AtomicU64::new(pack(0, if n > 0 { 0 } else { NIL })),
            free: AtomicU32::new(n),
        }
    }

    /// Pops a free slot, or `None` when the table is exhausted.
    pub fn acquire(&self) -> Option<u32> {
        loop {
            crate::stress_point();
            let observed = self.head.load(Ordering::Acquire);
            let slot = observed as u32;
            if slot == NIL {
                return None;
            }
            let below = self.next[slot as usize].load(Ordering::Acquire);
            let replacement = pack((observed >> 32) as u32 + 1, below);
            if self
                .head
                .compare_exchange_weak(observed, replacement, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.free.fetch_sub(1, Ordering::AcqRel);
                return Some(slot);
            }
        }
    }

    /// Pushes `slot` back onto the free stack.
    pub fn release(&self, slot: u32) {
        debug_assert!((slot as usize) < self.next.len(), "slot out of range");
        loop {
            crate::stress_point();
            let observed = self.head.load(Ordering::Acquire);
            self.next[slot as usize].store(observed as u32, Ordering::Release);
            let replacement = pack((observed >> 32) as u32 + 1, slot);
            if self
                .head
                .compare_exchange_weak(observed, replacement, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.free.fetch_add(1, Ordering::AcqRel);
                return;
            }
        }
    }

    /// Currently free slots (a gauge — exact only while no acquire/release
    /// races with the read).
    pub fn free_count(&self) -> u32 {
        self.free.load(Ordering::Acquire)
    }
}

/// Accessors for the persistent fd table (paper §II-B: "NVCache stores in
/// NVMM a table that associates the file path to each file descriptor, in
/// order to retrieve the state after a crash"). On a tiered mount (layout
/// v3) each slot additionally records the backend index, so a crash cannot
/// silently re-route a file's pending writes to a different tier.
pub(crate) struct PersistentFdTable;

impl PersistentFdTable {
    /// Persists `path` (and, on a tiered layout, `backend`) into `slot` in
    /// two ordered phases: payload (backend word + path) written, flushed
    /// and **fenced first**, then the valid word published with a
    /// [`commit_store`](NvRegion::commit_store) and fenced. The slot must be
    /// durable before any entry referencing it commits — and the valid word
    /// must never be able to reach the media *before* the path it
    /// validates. (A single fence over the whole slot was not enough: cache
    /// eviction may persist the valid word's line on a crash while the path
    /// lines are still dirty, and recovery would then open a garbage path.)
    ///
    /// # Panics
    ///
    /// Panics if the path exceeds [`Layout::path_max`], or if `backend` is
    /// non-zero on a legacy (v1/v2) layout that has nowhere to store it.
    pub fn set(
        region: &NvRegion,
        layout: &Layout,
        slot: u32,
        path: &str,
        backend: u32,
        clock: &ActorClock,
    ) {
        let bytes = path.as_bytes();
        assert!(bytes.len() <= layout.path_max(), "path longer than PATH_MAX: {path}");
        let base = layout.fd_slot(slot);
        let mut buf = vec![0u8; layout.path_max()];
        buf[..bytes.len()].copy_from_slice(bytes);
        if layout.tiered() {
            region.write_u64(base + FD_BACKEND_OFF, backend as u64, clock);
        } else {
            assert_eq!(backend, 0, "legacy fd slots cannot record a backend index");
        }
        region.write(base + layout.fd_path_off(), &buf, clock);
        if layout.heat_slots() {
            // Part of the payload phase: a reused slot must not leak the
            // previous occupant's temperature to this file. The pwb below
            // already spans the slot's last word.
            region.write_u64(base + FD_HEAT_OFF, 0, clock);
        }
        region.pwb(base + FD_BACKEND_OFF, FD_SLOT_BYTES as usize - FD_BACKEND_OFF as usize);
        region.persist_fence(clock);
        region.commit_store(base, FD_VALID_OPEN, clock);
        region.persist_fence(clock);
    }

    /// Persists a **migration journal** into `slot` (v3 layouts only): the
    /// authoritative copy of `path` lives on `backend`; any copy found
    /// elsewhere after a crash is an incomplete migration artifact and must
    /// be deleted. Same durability discipline as [`PersistentFdTable::set`].
    ///
    /// # Panics
    ///
    /// Panics if the layout is not tiered (migration needs ≥ 2 backends) or
    /// the path exceeds [`Layout::path_max`].
    pub fn set_migration(
        region: &NvRegion,
        layout: &Layout,
        slot: u32,
        path: &str,
        backend: u32,
        clock: &ActorClock,
    ) {
        assert!(layout.tiered(), "migration journals need the v3 (tiered) slot layout");
        let bytes = path.as_bytes();
        assert!(bytes.len() <= layout.path_max(), "path longer than PATH_MAX: {path}");
        let base = layout.fd_slot(slot);
        let mut buf = vec![0u8; layout.path_max()];
        buf[..bytes.len()].copy_from_slice(bytes);
        region.write_u64(base + FD_BACKEND_OFF, backend as u64, clock);
        region.write(base + layout.fd_path_off(), &buf, clock);
        if layout.heat_slots() {
            // Journal slots carry no temperature; zero the word so a slot
            // later reused for an open file starts from a clean payload.
            region.write_u64(base + FD_HEAT_OFF, 0, clock);
        }
        region.pwb(base + FD_BACKEND_OFF, FD_SLOT_BYTES as usize - FD_BACKEND_OFF as usize);
        region.persist_fence(clock);
        region.commit_store(base, FD_VALID_MIGRATION, clock);
        region.persist_fence(clock);
    }

    /// Atomically flips the backend word of a journal (or open) slot — the
    /// commit point of a migration: one aligned 8-byte store, flushed and
    /// fenced, moving the authoritative copy from the source tier to the
    /// target tier.
    pub fn stamp_backend(
        region: &NvRegion,
        layout: &Layout,
        slot: u32,
        backend: u32,
        clock: &ActorClock,
    ) {
        assert!(layout.tiered(), "backend stamps need the v3 (tiered) slot layout");
        let base = layout.fd_slot(slot);
        region.commit_store(base + FD_BACKEND_OFF, backend as u64, clock);
        region.persist_fence(clock);
    }

    /// Reads `slot` as a migration journal, returning `(path, backend)` if
    /// its valid word is [`FD_VALID_MIGRATION`]. Charged reads, like
    /// [`PersistentFdTable::get`].
    pub fn get_migration(
        region: &NvRegion,
        layout: &Layout,
        slot: u32,
        clock: &ActorClock,
    ) -> Option<(String, u32)> {
        if !layout.tiered() {
            return None; // legacy layouts have no journal encoding
        }
        let base = layout.fd_slot(slot);
        let mut head = [0u8; 8];
        region.read(base, &mut head, clock);
        if u64::from_le_bytes(head) != FD_VALID_MIGRATION {
            return None;
        }
        let mut b = [0u8; 8];
        region.read(base + FD_BACKEND_OFF, &mut b, clock);
        let backend = u64::from_le_bytes(b) as u32;
        let mut buf = vec![0u8; layout.path_max()];
        region.read(base + layout.fd_path_off(), &mut buf, clock);
        let end = buf.iter().position(|&b| b == 0).unwrap_or(layout.path_max());
        Some((String::from_utf8_lossy(&buf[..end]).into_owned(), backend))
    }

    /// Stamps the packed temperature summary of an open slot (heat layouts
    /// only): one aligned 8-byte [`commit_store`](NvRegion::commit_store)
    /// plus fence into the slot's last word. Crash-atomic on its own — the
    /// summary is advisory (recovery treats a missing or half-stale word as
    /// cold), so it needs no two-phase protocol, just the guarantee that a
    /// torn write can never be parsed (the packed epoch provides it).
    ///
    /// # Panics
    ///
    /// Panics if the layout does not carry heat words.
    pub fn set_heat(region: &NvRegion, layout: &Layout, slot: u32, qheat: u16, clock: &ActorClock) {
        assert!(layout.heat_slots(), "heat stamps need the heat-format slot layout");
        let base = layout.fd_slot(slot);
        region.commit_store(base + FD_HEAT_OFF, heat_word(qheat), clock);
        region.persist_fence(clock);
    }

    /// Reads the quantized temperature summary of `slot`, or `None` when
    /// the layout carries no heat words, the word was never stamped, or it
    /// carries a foreign epoch. Charged reads, like
    /// [`PersistentFdTable::get`].
    pub fn heat(region: &NvRegion, layout: &Layout, slot: u32, clock: &ActorClock) -> Option<u16> {
        if !layout.heat_slots() {
            return None;
        }
        let base = layout.fd_slot(slot);
        let mut w = [0u8; 8];
        region.read(base + FD_HEAT_OFF, &mut w, clock);
        parse_heat_word(u64::from_le_bytes(w))
    }

    /// Invalidates `slot` (close path — only after the log has been drained,
    /// so no entry can still reference it).
    pub fn clear(region: &NvRegion, layout: &Layout, slot: u32, clock: &ActorClock) {
        let base = layout.fd_slot(slot);
        region.commit_store(base, 0, clock);
        region.persist_fence(clock);
    }

    /// Reads `slot`, returning the stored `(path, backend)` if valid (the
    /// backend is `0` on legacy layouts). Uses charged reads (recovery runs
    /// with a cold CPU cache).
    pub fn get(
        region: &NvRegion,
        layout: &Layout,
        slot: u32,
        clock: &ActorClock,
    ) -> Option<(String, u32)> {
        let base = layout.fd_slot(slot);
        let mut head = [0u8; 8];
        region.read(base, &mut head, clock);
        if u64::from_le_bytes(head) != FD_VALID_OPEN {
            return None;
        }
        let backend = if layout.tiered() {
            let mut b = [0u8; 8];
            region.read(base + FD_BACKEND_OFF, &mut b, clock);
            u64::from_le_bytes(b) as u32
        } else {
            0
        };
        let mut buf = vec![0u8; layout.path_max()];
        region.read(base + layout.fd_path_off(), &mut buf, clock);
        let end = buf.iter().position(|&b| b == 0).unwrap_or(layout.path_max());
        Some((String::from_utf8_lossy(&buf[..end]).into_owned(), backend))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::PATH_MAX;
    use crate::NvCacheConfig;
    use nvmm::{NvDimm, NvmmProfile};

    fn setup_with(cfg: NvCacheConfig) -> (ActorClock, NvRegion, Layout) {
        let layout = Layout::for_config(&cfg);
        let dimm = Arc::new(NvDimm::new(layout.total_bytes(), NvmmProfile::instant()));
        (ActorClock::new(), NvRegion::whole(dimm), layout)
    }

    fn setup() -> (ActorClock, NvRegion, Layout) {
        setup_with(NvCacheConfig::tiny())
    }

    #[test]
    fn set_get_clear_round_trip() {
        let (c, region, layout) = setup();
        assert_eq!(PersistentFdTable::get(&region, &layout, 3, &c), None);
        PersistentFdTable::set(&region, &layout, 3, "/data/wal.log", 0, &c);
        assert_eq!(
            PersistentFdTable::get(&region, &layout, 3, &c),
            Some(("/data/wal.log".into(), 0))
        );
        PersistentFdTable::clear(&region, &layout, 3, &c);
        assert_eq!(PersistentFdTable::get(&region, &layout, 3, &c), None);
    }

    #[test]
    fn tiered_slots_round_trip_the_backend_index() {
        let (c, region, layout) = setup_with(NvCacheConfig::tiny().with_backends(4));
        PersistentFdTable::set(&region, &layout, 2, "/hot/wal", 3, &c);
        PersistentFdTable::set(&region, &layout, 5, "/cold/blob", 0, &c);
        assert_eq!(PersistentFdTable::get(&region, &layout, 2, &c), Some(("/hot/wal".into(), 3)));
        assert_eq!(PersistentFdTable::get(&region, &layout, 5, &c), Some(("/cold/blob".into(), 0)));
    }

    #[test]
    fn slots_survive_crash() {
        let (c, region, layout) = setup();
        PersistentFdTable::set(&region, &layout, 0, "/survivor", 0, &c);
        let crashed = region.dimm().crash_and_restart();
        let region2 = NvRegion::whole(Arc::new(crashed));
        assert_eq!(PersistentFdTable::get(&region2, &layout, 0, &c), Some(("/survivor".into(), 0)));
    }

    #[test]
    fn heat_word_round_trips_and_resets_on_slot_reuse() {
        let cfg = NvCacheConfig::tiny().with_backends(2).with_persist_heat(true);
        let (c, region, layout) = setup_with(cfg);
        assert!(layout.heat_slots());
        PersistentFdTable::set(&region, &layout, 1, "/hot/a", 1, &c);
        // Unstamped slot: no summary, not a zero-heat one.
        assert_eq!(PersistentFdTable::heat(&region, &layout, 1, &c), None);
        PersistentFdTable::set_heat(&region, &layout, 1, 777, &c);
        assert_eq!(PersistentFdTable::heat(&region, &layout, 1, &c), Some(777));
        // The path bytes are untouched by the stamp.
        assert_eq!(PersistentFdTable::get(&region, &layout, 1, &c), Some(("/hot/a".into(), 1)));
        // Reusing the slot for another file must not inherit the summary.
        PersistentFdTable::clear(&region, &layout, 1, &c);
        PersistentFdTable::set(&region, &layout, 1, "/bulk/b", 0, &c);
        assert_eq!(PersistentFdTable::heat(&region, &layout, 1, &c), None);
    }

    #[test]
    fn heat_word_survives_crash() {
        let cfg = NvCacheConfig::tiny().with_backends(2).with_persist_heat(true);
        let (c, region, layout) = setup_with(cfg);
        PersistentFdTable::set(&region, &layout, 0, "/hot/wal", 1, &c);
        PersistentFdTable::set_heat(&region, &layout, 0, 4321, &c);
        let crashed = region.dimm().crash_and_restart();
        let region2 = NvRegion::whole(Arc::new(crashed));
        assert_eq!(PersistentFdTable::heat(&region2, &layout, 0, &c), Some(4321));
        assert_eq!(PersistentFdTable::get(&region2, &layout, 0, &c), Some(("/hot/wal".into(), 1)));
    }

    #[test]
    fn heat_layout_shrinks_the_path_budget() {
        let cfg = NvCacheConfig::tiny().with_backends(2).with_persist_heat(true);
        let (c, region, layout) = setup_with(cfg);
        let fits = format!("/{}", "x".repeat(layout.path_max() - 1));
        PersistentFdTable::set(&region, &layout, 0, &fits, 0, &c);
        assert_eq!(PersistentFdTable::get(&region, &layout, 0, &c).map(|(p, _)| p), Some(fits));
    }

    #[test]
    #[should_panic(expected = "heat-format slot layout")]
    fn heat_stamp_on_plain_tiered_layout_panics() {
        let (c, region, layout) = setup_with(NvCacheConfig::tiny().with_backends(2));
        PersistentFdTable::set_heat(&region, &layout, 0, 1, &c);
    }

    #[test]
    fn tiered_backend_word_survives_crash() {
        let (c, region, layout) = setup_with(NvCacheConfig::tiny().with_backends(2));
        PersistentFdTable::set(&region, &layout, 1, "/tiered", 1, &c);
        let crashed = region.dimm().crash_and_restart();
        let region2 = NvRegion::whole(Arc::new(crashed));
        assert_eq!(PersistentFdTable::get(&region2, &layout, 1, &c), Some(("/tiered".into(), 1)));
    }

    #[test]
    #[should_panic(expected = "PATH_MAX")]
    fn oversized_path_panics() {
        let (c, region, layout) = setup();
        let long = "x".repeat(PATH_MAX + 1);
        PersistentFdTable::set(&region, &layout, 0, &long, 0, &c);
    }

    #[test]
    #[should_panic(expected = "legacy fd slots")]
    fn backend_on_legacy_layout_panics() {
        let (c, region, layout) = setup();
        PersistentFdTable::set(&region, &layout, 0, "/x", 1, &c);
    }

    #[test]
    fn fd_slot_allocator_is_lifo_and_exhausts_cleanly() {
        let a = FdSlotAllocator::new(3);
        assert_eq!(a.free_count(), 3);
        // Fresh allocator hands out ascending slots, like the old Vec.
        assert_eq!(a.acquire(), Some(0));
        assert_eq!(a.acquire(), Some(1));
        assert_eq!(a.acquire(), Some(2));
        assert_eq!(a.acquire(), None);
        assert_eq!(a.free_count(), 0);
        // LIFO reuse: the most recently released slot comes back first.
        a.release(1);
        a.release(2);
        assert_eq!(a.acquire(), Some(2));
        assert_eq!(a.acquire(), Some(1));
        assert_eq!(a.acquire(), None);
    }

    #[test]
    fn fd_slot_allocator_empty_table() {
        let a = FdSlotAllocator::new(0);
        assert_eq!(a.acquire(), None);
        assert_eq!(a.free_count(), 0);
    }

    #[test]
    fn fd_slot_allocator_concurrent_churn_never_duplicates() {
        use std::collections::HashSet;
        let a = Arc::new(FdSlotAllocator::new(8));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    let mut held = Vec::new();
                    for round in 0..2000u32 {
                        if let Some(s) = a.acquire() {
                            held.push(s);
                        }
                        if round % 3 == 0 {
                            if let Some(s) = held.pop() {
                                a.release(s);
                            }
                        }
                        while held.len() > 2 {
                            a.release(held.pop().unwrap());
                        }
                    }
                    held
                })
            })
            .collect();
        let mut outstanding = Vec::new();
        for h in handles {
            outstanding.extend(h.join().unwrap());
        }
        // No slot may be held twice, and held + free must cover the table.
        let distinct: HashSet<u32> = outstanding.iter().copied().collect();
        assert_eq!(distinct.len(), outstanding.len(), "duplicate slot handed out");
        assert_eq!(a.free_count() as usize + outstanding.len(), 8);
        for s in outstanding {
            a.release(s);
        }
        assert_eq!(a.free_count(), 8);
    }
}
