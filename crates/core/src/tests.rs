//! End-to-end tests of the NVCache core over simulated substrates.

use std::sync::Arc;

use nvmm::{NvDimm, NvRegion, NvmmProfile};
use simclock::{ActorClock, SimTime};
use vfs::{FileSystem, IoError, Layer, MemFs, OpenFlags};

use crate::{NvCache, NvCacheConfig};

fn setup(cfg: NvCacheConfig) -> (ActorClock, Arc<NvDimm>, Arc<dyn FileSystem>, NvCache) {
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache =
        NvCache::format(NvRegion::whole(Arc::clone(&dimm)), Arc::clone(&inner), cfg, &clock)
            .expect("format");
    (clock, dimm, inner, cache)
}

#[test]
fn write_then_read_your_writes() {
    let (c, _d, _i, cache) = setup(NvCacheConfig::tiny());
    let fd = cache.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, b"read your writes", 0, &c).unwrap();
    let mut buf = [0u8; 16];
    assert_eq!(cache.pread(fd, &mut buf, 0, &c).unwrap(), 16);
    assert_eq!(&buf, b"read your writes");
    cache.shutdown(&c);
}

#[test]
fn writes_propagate_to_inner_fs() {
    let (c, _d, inner, cache) = setup(NvCacheConfig::tiny());
    let fd = cache.open("/p", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, b"propagated", 0, &c).unwrap();
    cache.flush_log(&c);
    let ifd = inner.open("/p", OpenFlags::RDONLY, &c).unwrap();
    let mut buf = [0u8; 10];
    assert_eq!(inner.pread(ifd, &mut buf, 0, &c).unwrap(), 10);
    assert_eq!(&buf, b"propagated");
    cache.shutdown(&c);
}

#[test]
fn large_write_spans_multiple_entries_atomically() {
    let (c, _d, inner, cache) = setup(NvCacheConfig::tiny());
    let fd = cache.open("/big", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    assert_eq!(cache.pwrite(fd, &data, 500, &c).unwrap(), data.len());
    assert!(cache.stats().snapshot().groups_logged >= 1);
    let mut buf = vec![0u8; data.len()];
    cache.pread(fd, &mut buf, 500, &c).unwrap();
    assert_eq!(buf, data);
    cache.flush_log(&c);
    let ifd = inner.open("/big", OpenFlags::RDONLY, &c).unwrap();
    let mut buf2 = vec![0u8; data.len()];
    inner.pread(ifd, &mut buf2, 500, &c).unwrap();
    assert_eq!(buf2, data);
    cache.shutdown(&c);
}

#[test]
fn fsync_is_a_noop_and_cheap() {
    let (c, _d, _i, cache) = setup(NvCacheConfig::tiny());
    let fd = cache.open("/s", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, &[1u8; 4096], 0, &c).unwrap();
    let before = c.now();
    cache.fsync(fd, &c).unwrap();
    assert!(c.now() - before <= SimTime::from_micros(2), "fsync must be a no-op");
    cache.shutdown(&c);
}

#[test]
fn nvcache_size_is_authoritative_before_propagation() {
    let (c, _d, inner, cache) =
        setup(NvCacheConfig::default().with_log_entries(64).with_batching(64, 64));
    // With batch_min = 64 nothing propagates for small counts.
    let fd = cache.open("/grow", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, &[9u8; 100], 4000, &c).unwrap();
    assert_eq!(cache.fstat(fd, &c).unwrap().size, 4100);
    assert_eq!(cache.stat("/grow", &c).unwrap().size, 4100);
    // The kernel still thinks the file is empty.
    assert_eq!(inner.stat("/grow", &c).unwrap().size, 0);
    cache.shutdown(&c);
}

#[test]
fn cursor_api_and_append_mode() {
    let (c, _d, _i, cache) = setup(NvCacheConfig::tiny());
    let fd = cache
        .open("/cur", OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::APPEND, &c)
        .unwrap();
    cache.write(fd, b"aaa", &c).unwrap();
    cache.lseek(fd, vfs::SeekFrom::Start(0), &c).unwrap();
    cache.write(fd, b"bbb", &c).unwrap(); // O_APPEND: goes to the end
    assert_eq!(cache.fstat(fd, &c).unwrap().size, 6);
    cache.lseek(fd, vfs::SeekFrom::Start(0), &c).unwrap();
    let mut buf = [0u8; 6];
    cache.read(fd, &mut buf, &c).unwrap();
    assert_eq!(&buf, b"aaabbb");
    assert_eq!(cache.tell(fd).unwrap(), 6);
    cache.shutdown(&c);
}

#[test]
fn read_only_files_bypass_the_read_cache() {
    let (c, _d, inner, cache) = setup(NvCacheConfig::tiny());
    // Create content directly on the inner FS.
    let ifd = inner.open("/ro", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    inner.pwrite(ifd, b"kernel content", 0, &c).unwrap();
    inner.close(ifd, &c).unwrap();
    let fd = cache.open("/ro", OpenFlags::RDONLY, &c).unwrap();
    let mut buf = [0u8; 14];
    cache.pread(fd, &mut buf, 0, &c).unwrap();
    assert_eq!(&buf, b"kernel content");
    let stats = cache.stats().snapshot();
    assert!(stats.bypass_reads >= 1);
    assert_eq!(stats.read_misses, 0, "no page should enter the read cache");
    cache.shutdown(&c);
}

#[test]
fn dirty_miss_reconstructs_fresh_state() {
    // Small read cache forces eviction of a dirty page, then a read must
    // merge kernel data with pending log entries (paper Fig. 2 dirty miss).
    let cfg = NvCacheConfig {
        read_cache_pages: 2,
        batch_min: 1_000_000, // cleanup effectively disabled
        batch_max: 1_000_000,
        nb_entries: 256,
        ..NvCacheConfig::tiny()
    };
    let (c, _d, _i, cache) = setup(cfg);
    let fd = cache.open("/dm", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    // Write to page 0 (lands in log; page not loaded).
    cache.pwrite(fd, &[0xAA; 100], 0, &c).unwrap();
    // Touch other pages to keep the pool busy.
    for p in 1..=4u64 {
        cache.pwrite(fd, &[p as u8; 64], p * 4096, &c).unwrap();
        let mut tmp = [0u8; 64];
        cache.pread(fd, &mut tmp, p * 4096, &c).unwrap();
    }
    // Now read page 0: unloaded + pending entries => dirty miss.
    let mut buf = [0u8; 100];
    cache.pread(fd, &mut buf, 0, &c).unwrap();
    assert_eq!(buf, [0xAA; 100]);
    assert!(cache.stats().snapshot().dirty_misses >= 1, "expected a dirty miss");
    cache.shutdown(&c);
}

#[test]
fn crash_before_propagation_recovers_all_acked_writes() {
    let cfg = NvCacheConfig {
        batch_min: 1_000_000, // never propagate: everything stays in the log
        batch_max: 1_000_000,
        nb_entries: 128,
        ..NvCacheConfig::tiny()
    };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::format(
        NvRegion::whole(Arc::clone(&dimm)),
        Arc::clone(&inner),
        cfg.clone(),
        &clock,
    )
    .unwrap();
    let fd = cache.open("/crash", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"first", 0, &clock).unwrap();
    cache.pwrite(fd, b"second", 100, &clock).unwrap();
    // Kill the process without draining.
    cache.abort();
    drop(cache);
    // Power failure: NVMM keeps flushed lines; page cache content of the
    // inner FS is volatile (MemFs loses everything it wasn't told to keep —
    // here the file itself survives as an empty shell because metadata is
    // in the simulated kernel namespace).
    let crashed = Arc::new(dimm.crash_and_restart());
    let (recovered, report) =
        NvCache::recover(NvRegion::whole(crashed), Arc::clone(&inner), cfg, &clock).unwrap();
    assert_eq!(report.entries_replayed, 2);
    assert_eq!(report.files_reopened, 1);
    let fd2 = recovered.open("/crash", OpenFlags::RDONLY, &clock).unwrap();
    let mut a = [0u8; 5];
    let mut b = [0u8; 6];
    recovered.pread(fd2, &mut a, 0, &clock).unwrap();
    recovered.pread(fd2, &mut b, 100, &clock).unwrap();
    assert_eq!(&a, b"first");
    assert_eq!(&b, b"second");
    recovered.shutdown(&clock);
}

#[test]
fn torn_write_is_discarded_by_recovery() {
    // Simulate a crash where an entry was filled but its commit flag never
    // reached NVMM: hand-craft the torn entry in the region after the kill.
    use crate::layout::{Layout, ENTRY_HEADER_BYTES, ENT_FD, ENT_FILE_OFF, ENT_LEN};
    use nvmm::PmemInts;

    let cfg = NvCacheConfig {
        nb_entries: 64,
        batch_min: 1_000_000,
        batch_max: 1_000_000,
        ..NvCacheConfig::tiny()
    };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let region = NvRegion::whole(Arc::clone(&dimm));
    let cache = NvCache::format(region.clone(), Arc::clone(&inner), cfg.clone(), &clock).unwrap();
    let fd = cache.open("/torn", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"committed", 0, &clock).unwrap();
    cache.abort();
    drop(cache);

    // Torn entry at slot 1: header + data flushed, commit word still 0.
    let lay = Layout::for_config(&cfg);
    let base = lay.entry(1);
    region.write_u32(base + ENT_FD, 0, &clock);
    region.write_u32(base + ENT_LEN, 4, &clock);
    region.write_u64(base + ENT_FILE_OFF, 512, &clock);
    region.write(base + ENTRY_HEADER_BYTES, b"torn", &clock);
    region.pwb(base, 128);
    region.pfence(&clock);

    let crashed = Arc::new(dimm.crash_and_restart());
    let (recovered, report) =
        NvCache::recover(NvRegion::whole(crashed), Arc::clone(&inner), cfg, &clock).unwrap();
    assert_eq!(report.entries_replayed, 1, "only the committed entry replays");
    let fd2 = recovered.open("/torn", OpenFlags::RDONLY, &clock).unwrap();
    let mut buf = [0u8; 9];
    recovered.pread(fd2, &mut buf, 0, &clock).unwrap();
    assert_eq!(&buf, b"committed");
    // The torn data must not have been applied.
    assert_eq!(recovered.fstat(fd2, &clock).unwrap().size, 9);
    recovered.shutdown(&clock);
}

#[test]
fn concurrent_writers_to_disjoint_pages_are_all_durable() {
    let cfg = NvCacheConfig { nb_entries: 4096, read_cache_pages: 512, ..NvCacheConfig::tiny() };
    let (c, _d, _i, cache) = setup(cfg);
    let cache = Arc::new(cache);
    let fd = cache.open("/mt", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            let clock = ActorClock::new();
            for i in 0..64u64 {
                let page = t * 64 + i;
                cache.pwrite(fd, &[(t + 1) as u8; 4096], page * 4096, &clock).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for t in 0..4u64 {
        for i in 0..64u64 {
            let page = t * 64 + i;
            let mut buf = [0u8; 4096];
            cache.pread(fd, &mut buf, page * 4096, &c).unwrap();
            assert_eq!(buf[0], (t + 1) as u8, "page {page}");
        }
    }
    cache.shutdown(&c);
}

#[test]
fn concurrent_same_page_writes_are_atomic() {
    // POSIX atomicity (paper §II-D): a read may see either value, never a mix.
    let cfg = NvCacheConfig { nb_entries: 4096, ..NvCacheConfig::tiny() };
    let (c, _d, _i, cache) = setup(cfg);
    let cache = Arc::new(cache);
    let fd = cache.open("/atomic", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, &[0u8; 4096], 0, &c).unwrap();
    let mut handles = Vec::new();
    for t in 1..=4u8 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            let clock = ActorClock::new();
            for _ in 0..32 {
                cache.pwrite(fd, &[t; 4096], 0, &clock).unwrap();
            }
        }));
    }
    let reader = {
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            let clock = ActorClock::new();
            for _ in 0..64 {
                let mut buf = [0u8; 4096];
                cache.pread(fd, &mut buf, 0, &clock).unwrap();
                assert!(
                    buf.iter().all(|&b| b == buf[0]),
                    "read observed a torn page: {} vs {}",
                    buf[0],
                    buf[4095]
                );
            }
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    reader.join().unwrap();
    cache.shutdown(&c);
}

#[test]
fn log_saturation_throttles_writers_to_inner_speed() {
    // A tiny log: the writer must wait for the cleanup thread (Fig. 5).
    let cfg = NvCacheConfig { nb_entries: 8, batch_min: 1, batch_max: 4, ..NvCacheConfig::tiny() };
    let (c, _d, _i, cache) = setup(cfg);
    let fd = cache.open("/sat", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    for i in 0..256u64 {
        cache.pwrite(fd, &[i as u8; 4096], i * 4096, &c).unwrap();
    }
    assert!(
        cache.stats().snapshot().log_full_waits > 0,
        "a 8-entry log must saturate under 256 writes"
    );
    cache.shutdown(&c);
}

#[test]
fn close_flushes_content_to_the_kernel_without_draining() {
    let cfg = NvCacheConfig {
        batch_min: 1_000_000,
        batch_max: 1_000_000,
        nb_entries: 128,
        ..NvCacheConfig::tiny()
    };
    let (c, _d, inner, cache) = setup(cfg);
    let fd = cache.open("/cl", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, b"flushed by close", 0, &c).unwrap();
    assert_eq!(inner.stat("/cl", &c).unwrap().size, 0);
    cache.close(fd, &c).unwrap();
    // The kernel sees the content (paper: close flushes to the kernel)...
    assert_eq!(inner.stat("/cl", &c).unwrap().size, 16);
    // ...but the entries stay in NVMM until the cleanup thread's batch —
    // close is NOT a durability barrier (durability happened at pwrite).
    assert!(cache.pending_entries() > 0);
    cache.shutdown(&c);
    assert_eq!(cache.pending_entries(), 0);
}

#[test]
fn unlinked_file_is_not_resurrected_by_recovery() {
    let cfg = NvCacheConfig {
        batch_min: 1_000_000,
        batch_max: 1_000_000,
        nb_entries: 128,
        ..NvCacheConfig::tiny()
    };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::format(
        NvRegion::whole(Arc::clone(&dimm)),
        Arc::clone(&inner),
        cfg.clone(),
        &clock,
    )
    .unwrap();
    let keep = cache.open("/keep", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(keep, b"kept", 0, &clock).unwrap();
    let gone = cache.open("/gone", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(gone, b"doomed", 0, &clock).unwrap();
    cache.unlink("/gone", &clock).unwrap();
    cache.abort();
    drop(cache);
    let crashed = Arc::new(dimm.crash_and_restart());
    let (recovered, report) =
        NvCache::recover(NvRegion::whole(crashed), Arc::clone(&inner), cfg, &clock).unwrap();
    assert_eq!(report.files_missing, 1, "the unlinked file must be skipped");
    assert!(report.entries_replayed >= 1);
    assert!(
        matches!(recovered.stat("/gone", &clock), Err(IoError::NotFound(_))),
        "recovery must not resurrect an unlinked file"
    );
    let fd = recovered.open("/keep", OpenFlags::RDONLY, &clock).unwrap();
    let mut buf = [0u8; 4];
    recovered.pread(fd, &mut buf, 0, &clock).unwrap();
    assert_eq!(&buf, b"kept");
    recovered.shutdown(&clock);
}

#[test]
fn double_close_and_bad_fd() {
    let (c, _d, _i, cache) = setup(NvCacheConfig::tiny());
    let fd = cache.open("/dc", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.close(fd, &c).unwrap();
    assert!(matches!(cache.close(fd, &c), Err(IoError::BadFd(_))));
    let mut buf = [0u8; 1];
    assert!(matches!(cache.pread(fd, &mut buf, 0, &c), Err(IoError::BadFd(_))));
    cache.shutdown(&c);
}

#[test]
fn posix_conformance_through_nvcache() {
    let (c, _d, _i, cache) = setup(NvCacheConfig::tiny());
    vfs::check_posix_semantics(&cache);
    cache.shutdown(&c);
}

#[test]
fn guarantees_are_reported() {
    let (c, _d, _i, cache) = setup(NvCacheConfig::tiny());
    assert!(cache.synchronous_durability());
    assert!(cache.durable_linearizability());
    assert!(cache.name().starts_with("nvcache+"));
    cache.shutdown(&c);
}

#[test]
fn write_latency_is_single_digit_microseconds() {
    // With the Optane profile, a 4 KiB synchronous write should cost ≈6-8µs
    // (the paper's ~550 MiB/s single-thread log bandwidth).
    let cfg = NvCacheConfig::tiny();
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::format(NvRegion::whole(dimm), inner, cfg, &clock).unwrap();
    let fd = cache.open("/lat", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, &[0u8; 4096], 0, &clock).unwrap(); // warm-up (radix alloc)
    let before = clock.now();
    cache.pwrite(fd, &[1u8; 4096], 4096, &clock).unwrap();
    let lat = clock.now() - before;
    assert!(lat >= SimTime::from_micros(4), "suspiciously fast: {lat}");
    assert!(lat <= SimTime::from_micros(12), "too slow: {lat}");
    cache.shutdown(&clock);
}

#[test]
fn fd_table_exhaustion_is_reported() {
    let cfg = NvCacheConfig { fd_slots: 2, ..NvCacheConfig::tiny() };
    let (c, _d, _i, cache) = setup(cfg);
    let _a = cache.open("/1", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    let _b = cache.open("/2", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    assert!(cache.open("/3", OpenFlags::RDWR | OpenFlags::CREATE, &c).is_err());
    cache.shutdown(&c);
}

#[test]
fn recovery_is_idempotent() {
    let cfg = NvCacheConfig {
        batch_min: 1_000_000,
        batch_max: 1_000_000,
        nb_entries: 64,
        ..NvCacheConfig::tiny()
    };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::format(
        NvRegion::whole(Arc::clone(&dimm)),
        Arc::clone(&inner),
        cfg.clone(),
        &clock,
    )
    .unwrap();
    let fd = cache.open("/idem", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"once", 0, &clock).unwrap();
    cache.abort();
    drop(cache);
    let crashed = Arc::new(dimm.crash_and_restart());
    let region = NvRegion::whole(Arc::clone(&crashed));
    let (first, r1) =
        NvCache::recover(region.clone(), Arc::clone(&inner), cfg.clone(), &clock).unwrap();
    assert_eq!(r1.entries_replayed, 1);
    first.abort();
    drop(first);
    // Second recovery over the emptied log: nothing to do, content intact.
    let (second, r2) = NvCache::recover(region, Arc::clone(&inner), cfg, &clock).unwrap();
    assert_eq!(r2.entries_replayed, 0);
    let fd2 = second.open("/idem", OpenFlags::RDONLY, &clock).unwrap();
    let mut buf = [0u8; 4];
    second.pread(fd2, &mut buf, 0, &clock).unwrap();
    assert_eq!(&buf, b"once");
    second.shutdown(&clock);
}

#[test]
fn single_shard_format_keeps_the_seed_header() {
    // With log_shards = 1 the v2 code path must not touch the v2 header
    // words: the persistent image stays byte-for-byte seed-compatible.
    use crate::layout::{OFF_LOG_SHARDS, OFF_STRIPE_TAILS};
    use nvmm::PmemInts;
    let (c, _d, _i, cache) = setup(NvCacheConfig::tiny());
    let fd = cache.open("/seed", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, b"seed-compatible", 0, &c).unwrap();
    cache.flush_log(&c);
    let region = &cache.shared.log.region;
    assert_eq!(region.read_u64(OFF_LOG_SHARDS), 0, "v1 headers never write the shard word");
    assert_eq!(region.read_u64(OFF_STRIPE_TAILS), 0);
    cache.shutdown(&c);
}

fn sharded_cfg(shards: usize) -> NvCacheConfig {
    NvCacheConfig { nb_entries: 256, fd_slots: 8, ..NvCacheConfig::tiny() }.with_log_shards(shards)
}

#[test]
fn sharded_log_round_trips_and_propagates() {
    let (c, _d, inner, cache) = setup(sharded_cfg(4));
    let fd = cache.open("/sharded", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    // Touch many distinct chunks so several stripes see traffic.
    for p in 0..32u64 {
        cache.pwrite(fd, &[p as u8 + 1; 4096], p * 4096, &c).unwrap();
    }
    for p in 0..32u64 {
        let mut buf = [0u8; 4096];
        cache.pread(fd, &mut buf, p * 4096, &c).unwrap();
        assert_eq!(buf[0], p as u8 + 1, "read-your-writes on page {p}");
    }
    cache.flush_log(&c);
    assert_eq!(cache.pending_entries(), 0);
    let snap = cache.stats().snapshot();
    assert_eq!(snap.per_shard.len(), 4);
    let used: usize = snap.per_shard.iter().filter(|s| s.entries_logged > 0).count();
    assert!(used > 1, "hash routing must spread writes over stripes: {:?}", snap.per_shard);
    assert_eq!(
        snap.per_shard.iter().map(|s| s.entries_propagated).sum::<u64>(),
        snap.entries_propagated,
        "per-shard propagation counters must add up"
    );
    // Everything reached the inner file system.
    let ifd = inner.open("/sharded", OpenFlags::RDONLY, &c).unwrap();
    for p in 0..32u64 {
        let mut buf = [0u8; 4096];
        inner.pread(ifd, &mut buf, p * 4096, &c).unwrap();
        assert_eq!(buf[0], p as u8 + 1, "inner content of page {p}");
    }
    cache.shutdown(&c);
}

#[test]
fn sharded_crash_recovery_merges_stripes_in_commit_order() {
    // Overlapping writes land in different stripes (different starting
    // chunks); recovery must replay them by global sequence, not stripe
    // order, to reproduce exactly the acknowledged final state.
    let cfg = NvCacheConfig {
        batch_min: 1_000_000, // keep everything in the log
        batch_max: 1_000_000,
        ..sharded_cfg(4)
    };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::format(
        NvRegion::whole(Arc::clone(&dimm)),
        Arc::clone(&inner),
        cfg.clone(),
        &clock,
    )
    .unwrap();
    let fd = cache.open("/merge", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    // A 2-page write starting at chunk 0, then single-page overwrites of
    // both halves starting at chunks 0 and 1 — three different routes, one
    // byte range.
    cache.pwrite(fd, &[0xAA; 8192], 0, &clock).unwrap();
    cache.pwrite(fd, &[0xBB; 4096], 0, &clock).unwrap();
    cache.pwrite(fd, &[0xCC; 4096], 4096, &clock).unwrap();
    cache.pwrite(fd, &[0xDD; 100], 2000, &clock).unwrap();
    cache.abort();
    drop(cache);
    let crashed = Arc::new(dimm.crash_and_restart());
    let (recovered, report) =
        NvCache::recover(NvRegion::whole(crashed), Arc::clone(&inner), cfg, &clock).unwrap();
    assert_eq!(report.entries_replayed, 5, "2 + 1 + 1 + 1 entries");
    let fd2 = recovered.open("/merge", OpenFlags::RDONLY, &clock).unwrap();
    let mut buf = vec![0u8; 8192];
    recovered.pread(fd2, &mut buf, 0, &clock).unwrap();
    let mut expect = vec![0xAA; 8192];
    expect[..4096].fill(0xBB);
    expect[4096..].fill(0xCC);
    expect[2000..2100].fill(0xDD);
    assert_eq!(buf, expect, "merge-replay must honour global commit order");
    recovered.shutdown(&clock);
}

#[test]
fn sharded_recovery_requires_matching_shard_count() {
    let cfg = sharded_cfg(4);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::format(
        NvRegion::whole(Arc::clone(&dimm)),
        Arc::clone(&inner),
        cfg.clone(),
        &clock,
    )
    .unwrap();
    cache.abort();
    drop(cache);
    let crashed = Arc::new(dimm.crash_and_restart());
    let wrong = NvCacheConfig { log_shards: 2, ..cfg };
    let res = NvCache::recover(NvRegion::whole(crashed), inner, wrong, &clock);
    assert!(matches!(res, Err(IoError::InvalidArgument(_))));
}

#[test]
fn concurrent_writers_spread_over_stripes_stay_durable() {
    let cfg = NvCacheConfig { nb_entries: 4096, read_cache_pages: 512, ..NvCacheConfig::tiny() }
        .with_log_shards(8);
    let (c, _d, inner, cache) = setup(cfg);
    let cache = Arc::new(cache);
    let fd = cache.open("/mt-shard", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            let clock = ActorClock::new();
            for i in 0..64u64 {
                let page = t * 64 + i;
                cache.pwrite(fd, &[(t + 1) as u8; 4096], page * 4096, &clock).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    cache.flush_log(&c);
    let ifd = inner.open("/mt-shard", OpenFlags::RDONLY, &c).unwrap();
    for t in 0..4u64 {
        for i in 0..64u64 {
            let page = t * 64 + i;
            let mut buf = [0u8; 4096];
            inner.pread(ifd, &mut buf, page * 4096, &c).unwrap();
            assert_eq!(buf[0], (t + 1) as u8, "inner page {page}");
        }
    }
    cache.shutdown(&c);
}

#[test]
fn cross_stripe_same_page_propagation_keeps_commit_order() {
    // Writers hammer a handful of byte ranges that straddle page borders,
    // so entries for one page land in *different* stripes. After a full
    // drain the inner file system must agree byte-for-byte with NVCache's
    // own (page-lock-ordered) view — the cleanup workers' per-page handoff
    // is what makes this hold.
    let cfg = NvCacheConfig { nb_entries: 512, read_cache_pages: 64, ..NvCacheConfig::tiny() }
        .with_log_shards(4);
    let (c, _d, inner, cache) = setup(cfg);
    let cache = Arc::new(cache);
    let fd = cache.open("/order", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    let mut handles = Vec::new();
    for t in 0..4u8 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            let clock = ActorClock::new();
            for round in 0..24u64 {
                // Offsets chosen so multi-page writes overlap single-page
                // writes routed to other stripes.
                let off = (round % 3) * 2048;
                let len = if t % 2 == 0 { 8192 } else { 4096 };
                let byte = 1 + t + (round as u8 % 7) * 8;
                cache.pwrite(fd, &vec![byte; len as usize], off, &clock).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    cache.flush_log(&c);
    assert_eq!(cache.pending_entries(), 0);
    let size = cache.fstat(fd, &c).unwrap().size;
    let mut ours = vec![0u8; size as usize];
    cache.pread(fd, &mut ours, 0, &c).unwrap();
    let ifd = inner.open("/order", OpenFlags::RDONLY, &c).unwrap();
    let mut theirs = vec![0u8; size as usize];
    inner.pread(ifd, &mut theirs, 0, &c).unwrap();
    assert_eq!(ours, theirs, "drained kernel content diverged from the page-lock-ordered view");
    cache.shutdown(&c);
}

#[test]
fn reformatting_a_sharded_region_as_single_stripe_recovers() {
    // Regression: format() must clear a stale v2 shard word, or recovery
    // of the reformatted region rejects the (valid) single-stripe config.
    // batch_min above the written entry count keeps the entry parked in the
    // log until abort(), so the replay count below is deterministic.
    let sharded = sharded_cfg(4).with_batching(1_000, 10_000);
    let single = NvCacheConfig { log_shards: 1, ..sharded.clone() };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(sharded.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let first =
        NvCache::format(NvRegion::whole(Arc::clone(&dimm)), Arc::clone(&inner), sharded, &clock)
            .unwrap();
    first.shutdown(&clock);
    drop(first);
    // Reuse the region as a plain single-stripe log.
    let second = NvCache::format(
        NvRegion::whole(Arc::clone(&dimm)),
        Arc::clone(&inner),
        single.clone(),
        &clock,
    )
    .unwrap();
    let fd = second.open("/reuse", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    second.pwrite(fd, b"still recoverable", 0, &clock).unwrap();
    second.abort();
    drop(second);
    let crashed = Arc::new(dimm.crash_and_restart());
    let (recovered, report) = NvCache::recover(NvRegion::whole(crashed), inner, single, &clock)
        .expect("stale shard word must not block recovery");
    assert_eq!(report.entries_replayed, 1);
    recovered.shutdown(&clock);
}

#[test]
fn handoff_pressure_defeats_batch_min_deadlock() {
    // Regression: with a large batch_min, stripe B's worker has no reason
    // to run while stripe A's worker waits (per-page handoff) on a smaller
    // sequence number parked in B — unless handoff pressure overrides the
    // batching policy and the flush barrier publishes every stripe's
    // target up front. Without both fixes this test hangs.
    let cfg = NvCacheConfig {
        nb_entries: 512,
        batch_min: 1_000, // far above the entry count written below
        batch_max: 10_000,
        read_cache_pages: 32,
        fd_slots: 8,
        ..NvCacheConfig::tiny()
    }
    .with_log_shards(4);
    let (c, _d, inner, cache) = setup(cfg);
    let fd = cache.open("/pressure", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    // Page-straddling writes at different starting chunks: entries for one
    // page end up in different stripes, forcing cross-stripe handoff.
    for round in 0..8u64 {
        cache.pwrite(fd, &[round as u8 + 1; 8192], (round % 3) * 2048, &c).unwrap();
        cache.pwrite(fd, &[round as u8 + 100; 4096], 4096, &c).unwrap();
    }
    // The barrier must complete even though every stripe is below
    // batch_min.
    cache.flush_log(&c);
    assert_eq!(cache.pending_entries(), 0);
    let size = cache.fstat(fd, &c).unwrap().size;
    let mut ours = vec![0u8; size as usize];
    cache.pread(fd, &mut ours, 0, &c).unwrap();
    let ifd = inner.open("/pressure", OpenFlags::RDONLY, &c).unwrap();
    let mut theirs = vec![0u8; size as usize];
    inner.pread(ifd, &mut theirs, 0, &c).unwrap();
    assert_eq!(ours, theirs, "drained content must match the acknowledged view");
    cache.shutdown(&c);
}

#[test]
fn recover_rejects_unformatted_region() {
    let cfg = NvCacheConfig::tiny();
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let res = NvCache::recover(NvRegion::whole(dimm), inner, cfg, &clock);
    assert!(matches!(res, Err(IoError::InvalidArgument(_))));
}

// ---------------------------------------------------------------------------
// Async drain (queue_depth) and inner-error poisoning
// ---------------------------------------------------------------------------

// Fault injection for the cleanup drain path lives in `vfs::FaultLayer`
// now (this file's old private `FailingFs` generalized into a first-class
// layer); `FaultLayer::failing_pwrites(n)` reproduces its exact semantics.

/// Polls until `cache` reports at least one poisoned stripe (bounded wait:
/// poisoning happens on the cleanup worker's thread).
fn wait_for_poison(cache: &NvCache) {
    for _ in 0..10_000 {
        if !cache.poisoned_stripes().is_empty() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("stripe never became poisoned");
}

#[test]
fn inner_write_errors_poison_the_stripe_instead_of_panicking() {
    let cfg = NvCacheConfig::tiny();
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let mem: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    // Every cleanup pwrite fails.
    let inner = vfs::FaultLayer::failing_pwrites(0).wrap(Arc::clone(&mem));
    let cache =
        NvCache::format(NvRegion::whole(Arc::clone(&dimm)), inner, cfg, &clock).expect("format");
    let fd = cache.open("/poison", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, &[7u8; 4096], 0, &clock).unwrap();
    wait_for_poison(&cache);

    // The failure is observable through stats and the poisoned-stripe state…
    let snap = cache.stats().snapshot();
    assert!(snap.inner_io_errors >= 1, "global error counter must record the failure");
    assert!(snap.per_shard[0].inner_io_errors >= 1, "per-shard counter too");
    assert_eq!(cache.poisoned_stripes(), vec![0]);
    // …the un-propagated entry stays in NVMM for recovery…
    assert!(cache.pending_entries() >= 1);
    // …new writes fail with an I/O error instead of blocking on the dead
    // worker…
    let err = cache.pwrite(fd, &[8u8; 4096], 4096, &clock);
    assert!(matches!(err, Err(IoError::Other(_))), "write to a poisoned stripe must fail: {err:?}");
    // …drain-dependent operations fail too (their pending entries cannot
    // drain, and recovery would replay them over the operation's effect)…
    assert!(cache.ftruncate(fd, 0, &clock).is_err(), "ftruncate must not silently succeed");
    assert!(cache.rename("/poison", "/elsewhere", &clock).is_err(), "rename must fail");
    let trunc_open = cache.open("/poison", OpenFlags::RDWR | OpenFlags::TRUNC, &clock);
    assert!(trunc_open.is_err(), "O_TRUNC open must fail while entries are stuck");
    // …and shutdown (flush barrier included) terminates instead of hanging.
    cache.shutdown(&clock);
}

#[test]
fn crash_mid_batch_never_advances_tail_past_an_uncompleted_entry() {
    use nvmm::PmemInts;
    // One 8-entry batch whose 4th propagation write fails: the stripe tail
    // must stay at 0 (nothing in the batch is durable below until the whole
    // batch's completions and fsyncs land), and recovery must replay all 8.
    let cfg =
        NvCacheConfig { nb_entries: 64, batch_min: 8, batch_max: 16, ..NvCacheConfig::tiny() }
            .with_queue_depth(4);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let mem: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let inner = vfs::FaultLayer::failing_pwrites(3).wrap(Arc::clone(&mem));
    let cache = NvCache::format(NvRegion::whole(Arc::clone(&dimm)), inner, cfg.clone(), &clock)
        .expect("format");
    let fd = cache.open("/midbatch", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    for i in 0..8u64 {
        cache.pwrite(fd, &[i as u8 + 1; 4096], i * 4096, &clock).unwrap();
    }
    wait_for_poison(&cache);
    // The persistent tail never moved: a crash now loses nothing.
    let region = NvRegion::whole(Arc::clone(&dimm));
    assert_eq!(region.read_u64(crate::layout::OFF_PTAIL), 0, "tail advanced past a failed batch");
    cache.abort();
    drop(cache);

    // Crash, then recover against the (healthy) underlying file system.
    let crashed = Arc::new(dimm.crash_and_restart());
    let (recovered, report) =
        NvCache::recover(NvRegion::whole(crashed), Arc::clone(&mem), cfg, &clock).expect("recover");
    assert_eq!(report.entries_replayed, 8, "every entry of the failed batch must replay");
    let mut buf = [0u8; 4096];
    let rfd = recovered.open("/midbatch", OpenFlags::RDONLY, &clock).unwrap();
    for i in 0..8u64 {
        recovered.pread(rfd, &mut buf, i * 4096, &clock).unwrap();
        assert_eq!(buf[0], i as u8 + 1, "entry {i} content after replay");
    }
    recovered.shutdown(&clock);
}

/// Runs a fig5-style random-write drain (4 log stripes over Ext4+SSD) at the
/// given queue depth and returns (virtual elapsed time, propagated entries,
/// a content sample read back through the inner file system).
fn sharded_drain_elapsed(queue_depth: usize) -> (SimTime, u64, Vec<u8>) {
    use blockdev::{BlockDevice, SsdDevice, SsdProfile};
    use vfs::{Ext4, Ext4Profile};
    // batch_min above the workload size parks the backlog until the flush
    // barrier, so each stripe drains in one large batch (one fsync) and the
    // measurement isolates the pwrite overlap instead of per-batch flushes.
    let cfg = NvCacheConfig { nb_entries: 512, fd_slots: 16, ..NvCacheConfig::tiny() }
        .with_log_shards(4)
        .with_batching(1_000, 1_000)
        .with_queue_depth(queue_depth);
    let clock = ActorClock::new();
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600().with_queue_depth(queue_depth)));
    let inner: Arc<dyn FileSystem> =
        Arc::new(Ext4::new("ext4+ssd", ssd as Arc<dyn BlockDevice>, Ext4Profile::default()));
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cache =
        NvCache::format(NvRegion::whole(dimm), Arc::clone(&inner), cfg, &clock).expect("format");
    // O_DIRECT inner file: cleanup propagation writes hit the SSD directly,
    // 1 MiB apart (beyond the drive's sequential window), as in Fig. 5's
    // post-saturation regime.
    let fd = cache
        .open("/qd", OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::DIRECT, &clock)
        .unwrap();
    for i in 0..256u64 {
        cache.pwrite(fd, &[(i % 251) as u8; 4096], i << 20, &clock).unwrap();
    }
    cache.flush_log(&clock);
    let elapsed = clock.now();
    let propagated = cache.stats().snapshot().entries_propagated;
    let ifd = inner.open("/qd", OpenFlags::RDONLY, &clock).unwrap();
    let mut sample = vec![0u8; 4096];
    inner.pread(ifd, &mut sample, 77u64 << 20, &clock).unwrap();
    cache.shutdown(&clock);
    (elapsed, propagated, sample)
}

#[test]
fn queue_depth_overlap_beats_the_synchronous_drain() {
    // The acceptance bar: with log_shards=4, a fig5-style workload drains
    // measurably faster at queue_depth=8 than at queue_depth=1, without
    // changing what reaches the inner file system.
    let serial_floor = blockdev::SsdProfile::s4600().rand_write_4k * 256;
    let (qd1, prop1, sample1) = sharded_drain_elapsed(1);
    let (qd8, prop8, sample8) = sharded_drain_elapsed(8);
    assert_eq!(prop1, 256);
    assert_eq!(prop8, 256);
    assert_eq!(sample1, sample8, "queue depth must not change drained content");
    // queue_depth=1 pays the full serial device time (the PR 1 synchronous
    // behavior)…
    assert!(qd1 >= serial_floor, "qd1 drained in {qd1}, below the serial floor {serial_floor}");
    // …while queue_depth=8 overlaps it away — at least 2x end to end (the
    // device-time portion alone shrinks ~8x).
    assert!(qd8 * 2 < qd1, "expected ≥2x speedup from overlap: qd8 {qd8} vs qd1 {qd1}");
}

#[test]
fn queue_depth_one_oracle_matches_serial_propagation_order_and_content() {
    // Behavioral oracle for the qd=1 degenerate mode: the drained inner
    // content and propagation counters match the synchronous single-shard
    // reference exactly (the *temporal* equivalence is pinned down by
    // fiosim's qd1 ring oracles).
    let run = |qd: usize| {
        let cfg = NvCacheConfig::tiny().with_queue_depth(qd);
        let (c, _d, inner, cache) = setup(cfg);
        let fd = cache.open("/oracle", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        for i in 0..24u64 {
            cache.pwrite(fd, &[i as u8 + 1; 2048], (i % 6) * 2048, &c).unwrap();
        }
        cache.flush_log(&c);
        let snap = cache.stats().snapshot();
        let ifd = inner.open("/oracle", OpenFlags::RDONLY, &c).unwrap();
        let mut content = vec![0u8; 6 * 2048];
        inner.pread(ifd, &mut content, 0, &c).unwrap();
        cache.shutdown(&c);
        (content, snap.entries_propagated, snap.cleanup_fsyncs)
    };
    let (content_qd1, prop_qd1, _) = run(1);
    let (content_qd8, prop_qd8, _) = run(8);
    assert_eq!(content_qd1, content_qd8);
    assert_eq!(prop_qd1, prop_qd8);
    assert_eq!(prop_qd1, 24);
}

#[test]
fn uring_counters_expose_the_overlap() {
    let cfg = NvCacheConfig { nb_entries: 128, ..NvCacheConfig::tiny() }
        .with_batching(16, 64)
        .with_queue_depth(8);
    let (c, _d, _i, cache) = setup(cfg);
    let fd = cache.open("/counters", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    for i in 0..32u64 {
        cache.pwrite(fd, &[1u8; 4096], i * 4096, &c).unwrap();
    }
    cache.flush_log(&c);
    let snap = cache.stats().snapshot();
    let shard = &snap.per_shard[0];
    // 32 writes + at least one fsync went through the ring, all were reaped…
    assert!(shard.uring_submitted >= 33, "submitted {}", shard.uring_submitted);
    assert_eq!(shard.uring_submitted, shard.uring_completed);
    // …and with batch_min=16 at depth 8 the ring actually overlapped.
    assert!(
        shard.uring_inflight_peak > 1,
        "expected overlap at depth 8, peak {}",
        shard.uring_inflight_peak
    );
    assert_eq!(snap.inner_io_errors, 0);
    cache.shutdown(&c);
}
