//! End-to-end tests of the NVCache core over simulated substrates.

use std::sync::Arc;

use nvmm::{NvDimm, NvRegion, NvmmProfile};
use simclock::{ActorClock, SimTime};
use vfs::{FileSystem, IoError, MemFs, OpenFlags};

use crate::{NvCache, NvCacheConfig};

fn setup(cfg: NvCacheConfig) -> (ActorClock, Arc<NvDimm>, Arc<dyn FileSystem>, NvCache) {
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache =
        NvCache::format(NvRegion::whole(Arc::clone(&dimm)), Arc::clone(&inner), cfg, &clock)
            .expect("format");
    (clock, dimm, inner, cache)
}

#[test]
fn write_then_read_your_writes() {
    let (c, _d, _i, cache) = setup(NvCacheConfig::tiny());
    let fd = cache.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, b"read your writes", 0, &c).unwrap();
    let mut buf = [0u8; 16];
    assert_eq!(cache.pread(fd, &mut buf, 0, &c).unwrap(), 16);
    assert_eq!(&buf, b"read your writes");
    cache.shutdown(&c);
}

#[test]
fn writes_propagate_to_inner_fs() {
    let (c, _d, inner, cache) = setup(NvCacheConfig::tiny());
    let fd = cache.open("/p", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, b"propagated", 0, &c).unwrap();
    cache.flush_log(&c);
    let ifd = inner.open("/p", OpenFlags::RDONLY, &c).unwrap();
    let mut buf = [0u8; 10];
    assert_eq!(inner.pread(ifd, &mut buf, 0, &c).unwrap(), 10);
    assert_eq!(&buf, b"propagated");
    cache.shutdown(&c);
}

#[test]
fn large_write_spans_multiple_entries_atomically() {
    let (c, _d, inner, cache) = setup(NvCacheConfig::tiny());
    let fd = cache.open("/big", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    assert_eq!(cache.pwrite(fd, &data, 500, &c).unwrap(), data.len());
    assert!(cache.stats().snapshot().groups_logged >= 1);
    let mut buf = vec![0u8; data.len()];
    cache.pread(fd, &mut buf, 500, &c).unwrap();
    assert_eq!(buf, data);
    cache.flush_log(&c);
    let ifd = inner.open("/big", OpenFlags::RDONLY, &c).unwrap();
    let mut buf2 = vec![0u8; data.len()];
    inner.pread(ifd, &mut buf2, 500, &c).unwrap();
    assert_eq!(buf2, data);
    cache.shutdown(&c);
}

#[test]
fn fsync_is_a_noop_and_cheap() {
    let (c, _d, _i, cache) = setup(NvCacheConfig::tiny());
    let fd = cache.open("/s", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, &[1u8; 4096], 0, &c).unwrap();
    let before = c.now();
    cache.fsync(fd, &c).unwrap();
    assert!(c.now() - before <= SimTime::from_micros(2), "fsync must be a no-op");
    cache.shutdown(&c);
}

#[test]
fn nvcache_size_is_authoritative_before_propagation() {
    let (c, _d, inner, cache) = setup(NvCacheConfig::default().with_log_entries(64).with_batching(64, 64));
    // With batch_min = 64 nothing propagates for small counts.
    let fd = cache.open("/grow", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, &[9u8; 100], 4000, &c).unwrap();
    assert_eq!(cache.fstat(fd, &c).unwrap().size, 4100);
    assert_eq!(cache.stat("/grow", &c).unwrap().size, 4100);
    // The kernel still thinks the file is empty.
    assert_eq!(inner.stat("/grow", &c).unwrap().size, 0);
    cache.shutdown(&c);
}

#[test]
fn cursor_api_and_append_mode() {
    let (c, _d, _i, cache) = setup(NvCacheConfig::tiny());
    let fd = cache
        .open("/cur", OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::APPEND, &c)
        .unwrap();
    cache.write(fd, b"aaa", &c).unwrap();
    cache.lseek(fd, vfs::SeekFrom::Start(0), &c).unwrap();
    cache.write(fd, b"bbb", &c).unwrap(); // O_APPEND: goes to the end
    assert_eq!(cache.fstat(fd, &c).unwrap().size, 6);
    cache.lseek(fd, vfs::SeekFrom::Start(0), &c).unwrap();
    let mut buf = [0u8; 6];
    cache.read(fd, &mut buf, &c).unwrap();
    assert_eq!(&buf, b"aaabbb");
    assert_eq!(cache.tell(fd).unwrap(), 6);
    cache.shutdown(&c);
}

#[test]
fn read_only_files_bypass_the_read_cache() {
    let (c, _d, inner, cache) = setup(NvCacheConfig::tiny());
    // Create content directly on the inner FS.
    let ifd = inner.open("/ro", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    inner.pwrite(ifd, b"kernel content", 0, &c).unwrap();
    inner.close(ifd, &c).unwrap();
    let fd = cache.open("/ro", OpenFlags::RDONLY, &c).unwrap();
    let mut buf = [0u8; 14];
    cache.pread(fd, &mut buf, 0, &c).unwrap();
    assert_eq!(&buf, b"kernel content");
    let stats = cache.stats().snapshot();
    assert!(stats.bypass_reads >= 1);
    assert_eq!(stats.read_misses, 0, "no page should enter the read cache");
    cache.shutdown(&c);
}

#[test]
fn dirty_miss_reconstructs_fresh_state() {
    // Small read cache forces eviction of a dirty page, then a read must
    // merge kernel data with pending log entries (paper Fig. 2 dirty miss).
    let cfg = NvCacheConfig {
        read_cache_pages: 2,
        batch_min: 1_000_000, // cleanup effectively disabled
        batch_max: 1_000_000,
        nb_entries: 256,
        ..NvCacheConfig::tiny()
    };
    let (c, _d, _i, cache) = setup(cfg);
    let fd = cache.open("/dm", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    // Write to page 0 (lands in log; page not loaded).
    cache.pwrite(fd, &[0xAA; 100], 0, &c).unwrap();
    // Touch other pages to keep the pool busy.
    for p in 1..=4u64 {
        cache.pwrite(fd, &[p as u8; 64], p * 4096, &c).unwrap();
        let mut tmp = [0u8; 64];
        cache.pread(fd, &mut tmp, p * 4096, &c).unwrap();
    }
    // Now read page 0: unloaded + pending entries => dirty miss.
    let mut buf = [0u8; 100];
    cache.pread(fd, &mut buf, 0, &c).unwrap();
    assert_eq!(buf, [0xAA; 100]);
    assert!(cache.stats().snapshot().dirty_misses >= 1, "expected a dirty miss");
    cache.shutdown(&c);
}

#[test]
fn crash_before_propagation_recovers_all_acked_writes() {
    let cfg = NvCacheConfig {
        batch_min: 1_000_000, // never propagate: everything stays in the log
        batch_max: 1_000_000,
        nb_entries: 128,
        ..NvCacheConfig::tiny()
    };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::format(
        NvRegion::whole(Arc::clone(&dimm)),
        Arc::clone(&inner),
        cfg.clone(),
        &clock,
    )
    .unwrap();
    let fd = cache.open("/crash", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"first", 0, &clock).unwrap();
    cache.pwrite(fd, b"second", 100, &clock).unwrap();
    // Kill the process without draining.
    cache.abort();
    drop(cache);
    // Power failure: NVMM keeps flushed lines; page cache content of the
    // inner FS is volatile (MemFs loses everything it wasn't told to keep —
    // here the file itself survives as an empty shell because metadata is
    // in the simulated kernel namespace).
    let crashed = Arc::new(dimm.crash_and_restart());
    let (recovered, report) =
        NvCache::recover(NvRegion::whole(crashed), Arc::clone(&inner), cfg, &clock).unwrap();
    assert_eq!(report.entries_replayed, 2);
    assert_eq!(report.files_reopened, 1);
    let fd2 = recovered.open("/crash", OpenFlags::RDONLY, &clock).unwrap();
    let mut a = [0u8; 5];
    let mut b = [0u8; 6];
    recovered.pread(fd2, &mut a, 0, &clock).unwrap();
    recovered.pread(fd2, &mut b, 100, &clock).unwrap();
    assert_eq!(&a, b"first");
    assert_eq!(&b, b"second");
    recovered.shutdown(&clock);
}

#[test]
fn torn_write_is_discarded_by_recovery() {
    // Simulate a crash where an entry was filled but its commit flag never
    // reached NVMM: hand-craft the torn entry in the region after the kill.
    use crate::layout::{Layout, ENTRY_HEADER_BYTES, ENT_FD, ENT_FILE_OFF, ENT_LEN};
    use nvmm::PmemInts;

    let cfg = NvCacheConfig {
        nb_entries: 64,
        batch_min: 1_000_000,
        batch_max: 1_000_000,
        ..NvCacheConfig::tiny()
    };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let region = NvRegion::whole(Arc::clone(&dimm));
    let cache =
        NvCache::format(region.clone(), Arc::clone(&inner), cfg.clone(), &clock).unwrap();
    let fd = cache.open("/torn", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"committed", 0, &clock).unwrap();
    cache.abort();
    drop(cache);

    // Torn entry at slot 1: header + data flushed, commit word still 0.
    let lay = Layout::for_config(&cfg);
    let base = lay.entry(1);
    region.write_u32(base + ENT_FD, 0, &clock);
    region.write_u32(base + ENT_LEN, 4, &clock);
    region.write_u64(base + ENT_FILE_OFF, 512, &clock);
    region.write(base + ENTRY_HEADER_BYTES, b"torn", &clock);
    region.pwb(base, 128);
    region.pfence(&clock);

    let crashed = Arc::new(dimm.crash_and_restart());
    let (recovered, report) =
        NvCache::recover(NvRegion::whole(crashed), Arc::clone(&inner), cfg, &clock).unwrap();
    assert_eq!(report.entries_replayed, 1, "only the committed entry replays");
    let fd2 = recovered.open("/torn", OpenFlags::RDONLY, &clock).unwrap();
    let mut buf = [0u8; 9];
    recovered.pread(fd2, &mut buf, 0, &clock).unwrap();
    assert_eq!(&buf, b"committed");
    // The torn data must not have been applied.
    assert_eq!(recovered.fstat(fd2, &clock).unwrap().size, 9);
    recovered.shutdown(&clock);
}

#[test]
fn concurrent_writers_to_disjoint_pages_are_all_durable() {
    let cfg = NvCacheConfig {
        nb_entries: 4096,
        read_cache_pages: 512,
        ..NvCacheConfig::tiny()
    };
    let (c, _d, _i, cache) = setup(cfg);
    let cache = Arc::new(cache);
    let fd = cache.open("/mt", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            let clock = ActorClock::new();
            for i in 0..64u64 {
                let page = t * 64 + i;
                cache
                    .pwrite(fd, &[(t + 1) as u8; 4096], page * 4096, &clock)
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for t in 0..4u64 {
        for i in 0..64u64 {
            let page = t * 64 + i;
            let mut buf = [0u8; 4096];
            cache.pread(fd, &mut buf, page * 4096, &c).unwrap();
            assert_eq!(buf[0], (t + 1) as u8, "page {page}");
        }
    }
    cache.shutdown(&c);
}

#[test]
fn concurrent_same_page_writes_are_atomic() {
    // POSIX atomicity (paper §II-D): a read may see either value, never a mix.
    let cfg = NvCacheConfig { nb_entries: 4096, ..NvCacheConfig::tiny() };
    let (c, _d, _i, cache) = setup(cfg);
    let cache = Arc::new(cache);
    let fd = cache.open("/atomic", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, &[0u8; 4096], 0, &c).unwrap();
    let mut handles = Vec::new();
    for t in 1..=4u8 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            let clock = ActorClock::new();
            for _ in 0..32 {
                cache.pwrite(fd, &[t; 4096], 0, &clock).unwrap();
            }
        }));
    }
    let reader = {
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            let clock = ActorClock::new();
            for _ in 0..64 {
                let mut buf = [0u8; 4096];
                cache.pread(fd, &mut buf, 0, &clock).unwrap();
                assert!(
                    buf.iter().all(|&b| b == buf[0]),
                    "read observed a torn page: {} vs {}",
                    buf[0],
                    buf[4095]
                );
            }
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    reader.join().unwrap();
    cache.shutdown(&c);
}

#[test]
fn log_saturation_throttles_writers_to_inner_speed() {
    // A tiny log: the writer must wait for the cleanup thread (Fig. 5).
    let cfg = NvCacheConfig {
        nb_entries: 8,
        batch_min: 1,
        batch_max: 4,
        ..NvCacheConfig::tiny()
    };
    let (c, _d, _i, cache) = setup(cfg);
    let fd = cache.open("/sat", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    for i in 0..256u64 {
        cache.pwrite(fd, &[i as u8; 4096], i * 4096, &c).unwrap();
    }
    assert!(
        cache.stats().snapshot().log_full_waits > 0,
        "a 8-entry log must saturate under 256 writes"
    );
    cache.shutdown(&c);
}

#[test]
fn close_flushes_content_to_the_kernel_without_draining() {
    let cfg = NvCacheConfig {
        batch_min: 1_000_000,
        batch_max: 1_000_000,
        nb_entries: 128,
        ..NvCacheConfig::tiny()
    };
    let (c, _d, inner, cache) = setup(cfg);
    let fd = cache.open("/cl", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, b"flushed by close", 0, &c).unwrap();
    assert_eq!(inner.stat("/cl", &c).unwrap().size, 0);
    cache.close(fd, &c).unwrap();
    // The kernel sees the content (paper: close flushes to the kernel)...
    assert_eq!(inner.stat("/cl", &c).unwrap().size, 16);
    // ...but the entries stay in NVMM until the cleanup thread's batch —
    // close is NOT a durability barrier (durability happened at pwrite).
    assert!(cache.pending_entries() > 0);
    cache.shutdown(&c);
    assert_eq!(cache.pending_entries(), 0);
}

#[test]
fn unlinked_file_is_not_resurrected_by_recovery() {
    let cfg = NvCacheConfig {
        batch_min: 1_000_000,
        batch_max: 1_000_000,
        nb_entries: 128,
        ..NvCacheConfig::tiny()
    };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::format(
        NvRegion::whole(Arc::clone(&dimm)),
        Arc::clone(&inner),
        cfg.clone(),
        &clock,
    )
    .unwrap();
    let keep = cache.open("/keep", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(keep, b"kept", 0, &clock).unwrap();
    let gone = cache.open("/gone", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(gone, b"doomed", 0, &clock).unwrap();
    cache.unlink("/gone", &clock).unwrap();
    cache.abort();
    drop(cache);
    let crashed = Arc::new(dimm.crash_and_restart());
    let (recovered, report) =
        NvCache::recover(NvRegion::whole(crashed), Arc::clone(&inner), cfg, &clock).unwrap();
    assert_eq!(report.files_missing, 1, "the unlinked file must be skipped");
    assert!(report.entries_replayed >= 1);
    assert!(
        matches!(recovered.stat("/gone", &clock), Err(IoError::NotFound(_))),
        "recovery must not resurrect an unlinked file"
    );
    let fd = recovered.open("/keep", OpenFlags::RDONLY, &clock).unwrap();
    let mut buf = [0u8; 4];
    recovered.pread(fd, &mut buf, 0, &clock).unwrap();
    assert_eq!(&buf, b"kept");
    recovered.shutdown(&clock);
}

#[test]
fn double_close_and_bad_fd() {
    let (c, _d, _i, cache) = setup(NvCacheConfig::tiny());
    let fd = cache.open("/dc", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.close(fd, &c).unwrap();
    assert!(matches!(cache.close(fd, &c), Err(IoError::BadFd(_))));
    let mut buf = [0u8; 1];
    assert!(matches!(cache.pread(fd, &mut buf, 0, &c), Err(IoError::BadFd(_))));
    cache.shutdown(&c);
}

#[test]
fn posix_conformance_through_nvcache() {
    let (c, _d, _i, cache) = setup(NvCacheConfig::tiny());
    vfs::check_posix_semantics(&cache);
    cache.shutdown(&c);
}

#[test]
fn guarantees_are_reported() {
    let (c, _d, _i, cache) = setup(NvCacheConfig::tiny());
    assert!(cache.synchronous_durability());
    assert!(cache.durable_linearizability());
    assert!(cache.name().starts_with("nvcache+"));
    cache.shutdown(&c);
}

#[test]
fn write_latency_is_single_digit_microseconds() {
    // With the Optane profile, a 4 KiB synchronous write should cost ≈6-8µs
    // (the paper's ~550 MiB/s single-thread log bandwidth).
    let cfg = NvCacheConfig::tiny();
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache =
        NvCache::format(NvRegion::whole(dimm), inner, cfg, &clock).unwrap();
    let fd = cache.open("/lat", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, &[0u8; 4096], 0, &clock).unwrap(); // warm-up (radix alloc)
    let before = clock.now();
    cache.pwrite(fd, &[1u8; 4096], 4096, &clock).unwrap();
    let lat = clock.now() - before;
    assert!(lat >= SimTime::from_micros(4), "suspiciously fast: {lat}");
    assert!(lat <= SimTime::from_micros(12), "too slow: {lat}");
    cache.shutdown(&clock);
}

#[test]
fn fd_table_exhaustion_is_reported() {
    let cfg = NvCacheConfig { fd_slots: 2, ..NvCacheConfig::tiny() };
    let (c, _d, _i, cache) = setup(cfg);
    let _a = cache.open("/1", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    let _b = cache.open("/2", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    assert!(cache.open("/3", OpenFlags::RDWR | OpenFlags::CREATE, &c).is_err());
    cache.shutdown(&c);
}

#[test]
fn recovery_is_idempotent() {
    let cfg = NvCacheConfig {
        batch_min: 1_000_000,
        batch_max: 1_000_000,
        nb_entries: 64,
        ..NvCacheConfig::tiny()
    };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::format(
        NvRegion::whole(Arc::clone(&dimm)),
        Arc::clone(&inner),
        cfg.clone(),
        &clock,
    )
    .unwrap();
    let fd = cache.open("/idem", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"once", 0, &clock).unwrap();
    cache.abort();
    drop(cache);
    let crashed = Arc::new(dimm.crash_and_restart());
    let region = NvRegion::whole(Arc::clone(&crashed));
    let (first, r1) =
        NvCache::recover(region.clone(), Arc::clone(&inner), cfg.clone(), &clock).unwrap();
    assert_eq!(r1.entries_replayed, 1);
    first.abort();
    drop(first);
    // Second recovery over the emptied log: nothing to do, content intact.
    let (second, r2) = NvCache::recover(region, Arc::clone(&inner), cfg, &clock).unwrap();
    assert_eq!(r2.entries_replayed, 0);
    let fd2 = second.open("/idem", OpenFlags::RDONLY, &clock).unwrap();
    let mut buf = [0u8; 4];
    second.pread(fd2, &mut buf, 0, &clock).unwrap();
    assert_eq!(&buf, b"once");
    second.shutdown(&clock);
}

#[test]
fn recover_rejects_unformatted_region() {
    let cfg = NvCacheConfig::tiny();
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let res = NvCache::recover(NvRegion::whole(dimm), inner, cfg, &clock);
    assert!(matches!(res, Err(IoError::InvalidArgument(_))));
}
