//! # NVCache — a plug-and-play NVMM-based I/O booster for legacy systems
//!
//! Reproduction of *NVCache* (Dulong et al., DSN 2021, arXiv:2105.10397): a
//! user-space, write-back cache in non-volatile main memory that makes the
//! writes of unmodified POSIX applications synchronously durable at NVMM
//! speed, while asynchronously propagating them through the regular kernel
//! I/O stack to a mass-storage device of arbitrary size.
//!
//! The crate implements the paper's §II–III designs in full:
//!
//! * the **write cache** — a circular NVMM log of fixed-size entries with
//!   per-entry commit flags and group commit for large writes (Algorithm
//!   1);
//! * the **read cache** — a bounded pool of page contents indexed by
//!   per-file lock-free radix trees, with approximate LRU eviction and the
//!   Table II page state machine ([`Radix`], [`PageState`]);
//! * the **two-lock-per-page concurrency scheme** (atomic lock + cleanup
//!   lock + dirty counter, §II-D);
//! * the **cleanup workers** with write batching (§III);
//! * the **recovery procedure** replaying committed entries after a crash;
//! * the **interception semantics** of Table III (`fsync` no-ops, NVCache's
//!   own cursors/sizes) via the [`vfs::FileSystem`] trait plus cursor-based
//!   [`NvCache::write`]/[`NvCache::read`]/[`NvCache::lseek`].
//!
//! Hardware primitives (`pwb`/`pfence`/`psync`) come from the [`nvmm`]
//! simulator, which also provides crash injection so the durability claims
//! are *tested*, not assumed.
//!
//! ## The striped log
//!
//! The paper funnels every write through one circular log drained by one
//! cleanup thread — a single-consumer bottleneck under multi-core write
//! pressure. [`NvCacheConfig::log_shards`] splits the log into `N`
//! independent **stripes**, each with its own persistent tail, head/tail
//! atomics, commit/free time stamps, condition variables, flush barrier and
//! cleanup worker. `log_shards = 1` (the default) keeps the persistent
//! image and observable behavior byte-for-byte seed-compatible.
//!
//! The invariants that make striping safe:
//!
//! 1. **Routing** — a write is routed to a stripe by hashing
//!    `(device, inode, file_off / entry_size)`; group commits (multi-entry
//!    writes) stay contiguous in a single stripe, so the cleanup worker
//!    never sees a torn group and recovery can treat groups atomically.
//! 2. **Global sequence** — every entry is stamped with a globally
//!    monotonic sequence number, assigned *under the owning stripe's
//!    allocation lock* so ring order equals global order within each
//!    stripe. Overlapping writes serialize on their page locks before
//!    allocating, so per-page global order equals acknowledgement order.
//! 3. **Ordered propagation handoff** — entries touching the same page may
//!    live in different stripes; each [`PageDescriptor`] carries a queue of
//!    pending global sequence numbers, and a cleanup worker propagates an
//!    entry only once it heads the queue of every page it touches. A worker
//!    therefore only waits for *smaller* sequence numbers sitting at other
//!    stripes' tails — no cycles, no cross-stripe serialization of
//!    unrelated pages.
//! 4. **Merge-replay recovery** — each stripe is scanned from its own
//!    persistent tail (a sorted run, by invariant 2) and the committed
//!    groups are replayed in one k-way merge by global sequence number:
//!    exactly the committed prefix, in exactly the acknowledged order.
//! 5. **Flush fan-out** — `flush`/`close`/`shutdown` barriers drain *all*
//!    stripes; close keeps its persistent fd slot alive until every
//!    stripe's tail passes the per-stripe drain target snapshotted at close
//!    time.
//!
//! Back-pressure (the Fig. 5 saturation collapse) is preserved per stripe:
//! each stripe couples its writers to its own cleanup worker's virtual
//! `tail_time`/`free_stamps`, and [`NvCacheStats::per_shard`] exposes the
//! per-stripe saturation and propagation counters.
//!
//! ## The asynchronous drain
//!
//! The paper's cleanup thread propagates entries with strictly synchronous
//! `pwrite`+`fsync`, paying the inner device's latency once per entry.
//! [`NvCacheConfig::queue_depth`] instead drains each batch through an
//! io_uring-style submission ring ([`fiosim::IoRing`]): up to `queue_depth`
//! propagation writes overlap on the inner device, completions are reaped,
//! and one coalesced `fsync` per touched file closes the batch. The stripe
//! tail only advances after the *whole* batch's completions (writes and
//! fsyncs) have landed, so the crash-consistency contract — recovery
//! replays everything past the persistent tail — is unchanged, and
//! `queue_depth = 1` (the default) is behaviorally *and* temporally
//! identical to the synchronous drain.
//!
//! Inner-file-system errors during the drain no longer panic the worker:
//! they are counted ([`NvCacheStats::inner_io_errors`]) and **poison** the
//! stripe — writes routed to it fail fast, flush barriers return instead of
//! hanging, and the stripe's pending entries stay in NVMM for a
//! [`Mount::Recover`] mount (see [`NvCache::poisoned_stripes`]).
//!
//! ## The mount stack
//!
//! Mounting goes through [`NvCache::builder`]: pick the NVMM region, the
//! inner backend(s), the configuration and the [`Mount`] mode, then
//! [`mount`](NvCacheBuilder::mount). The original `format`/`recover`
//! constructors remain as deprecated wrappers.
//!
//! A **tiered** stack supplies several backends and a [`Router`] that maps
//! each file to one of them (hot files over NOVA, cold bulk over ext4+HDD —
//! the ROADMAP's multi-backend item): [`PathPrefixRouter`] for explicit
//! placement, [`HashRouter`] for uniform spreading. The routing decision is
//! taken once per open, recorded in the volatile descriptor *and* in the
//! persistent fd slot (region header v3), and the per-stripe cleanup
//! workers drain each tier through its own submission ring — so a crash
//! replays every pending entry to the backend that acknowledged it, never
//! to wherever the router would place the file today.
//!
//! ## Tier rebalancing
//!
//! Placement is no longer fixed forever at open time: the **tier migrator**
//! (`migrate` module) moves closed, fully drained files between backends
//! with a crash-safe copy → stamp → unlink protocol journaled in a
//! persistent fd slot — a crash at any step recovers to exactly one
//! authoritative copy. [`NvCacheConfig::with_migration`] picks the
//! [`MigrationPolicy`]: explicit [`NvCache::rebalance`] /
//! [`NvCache::migrate`] sweeps (`OnDemand`) or a background worker that
//! re-homes misplaced files on its own (`Background`), driven by the
//! placement policy's targets, per-file access heat and the
//! per-tier propagation load. A [`Mount::RecoverRepair`] mount re-homes
//! every file recovery found misplaced before the cache comes up, and
//! [`NvCacheConfig::with_cross_tier_rename`] optionally turns the
//! EXDEV of a cross-tier `rename` into a migrate-then-rename. All of it is
//! opt-in: the default policy keeps single-backend mounts byte- and
//! virtual-time-identical to a migrator-less build.
//!
//! ## Heat-driven placement
//!
//! *Where* the migrator moves files is decided by a [`PlacementPolicy`]
//! (`placement` module). The default, [`RouterPlacement`], re-homes files
//! to the router's static rules — the pre-policy behavior, byte- and
//! virtual-time-identical. [`HeatPolicy`] instead drives placement from
//! per-file **temperature**: every intercepted read/write decays the
//! file's stored heat to the touching call's *virtual* clock
//! (`heat ← heat · 2^(−Δt / half_life)`, no wall clock anywhere) and adds
//! one; a sweep promotes files whose decayed heat crosses
//! `promote_threshold` onto the designated fast tier — regardless of what
//! the router says about their path — and demotes files cooling below
//! `demote_threshold` back to the router baseline. The gap between the
//! thresholds is a hysteresis band (files inside it stay put, so a file
//! moves at most once per threshold crossing), and an optional fast-tier
//! byte budget demotes the coldest residents when the hot set outgrows
//! the fast medium. Temperature survives close → reopen through the
//! migrator catalog; after a remount it is gone (volatile by design) and
//! recovery judges files by [`PlacementPolicy::place_cold`].
//! [`NvCacheStats::files_promoted`] / `files_demoted` /
//! `fast_tier_bytes` expose what the policy is doing. See
//! `docs/TUNING.md` for when to reach for which policy.
//!
//! ## The multi-queue submission front-end
//!
//! The synchronous `pwrite` path pays the intercepted call's bookkeeping
//! (`libc_overhead`) and a full `pfence`+`psync` fence pair *per write* —
//! fine for the paper's single-threaded FIO, but front-end fixed costs,
//! not NVMM bandwidth, dominate small writes as simulated cores grow.
//! [`NvCacheConfig::with_sq_pairs`] adds NVMe-style **submission/completion
//! queue pairs**: each simulated core takes one [`QueuePair`]
//! ([`NvCache::queue_pair`]), enqueues write/flush ops with
//! [`QueuePair::submit_pwrite`] (a user-space memcpy — no per-op call
//! overhead), rings [`QueuePair::ring_doorbell`] to make everything
//! submitted durable in one **batch-reserved** stripe window per routed
//! stripe (one fence pair per stripe group instead of one per write), and
//! reaps completions with [`QueuePair::reap`]. Heat and statistics
//! accumulate per queue pair and flush on reap, so [`HeatPolicy`] and
//! [`NvCacheStats`] observe exactly the synchronous path's values.
//! `sq_pairs = 0` (the default) does not construct the front-end and keeps
//! the synchronous path byte- and virtual-time-identical to the seed
//! (oracle-tested).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use nvcache::{NvCache, NvCacheConfig};
//! use nvmm::{NvDimm, NvRegion, NvmmProfile};
//! use simclock::ActorClock;
//! use vfs::{FileSystem, MemFs, OpenFlags};
//!
//! # fn main() -> Result<(), vfs::IoError> {
//! let clock = ActorClock::new();
//! let cfg = NvCacheConfig::tiny();
//! let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
//! let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
//! let cache = NvCache::builder(NvRegion::whole(dimm))
//!     .backend(inner)
//!     .config(cfg)
//!     .mount(&clock)?;
//!
//! let fd = cache.open("/db/wal", OpenFlags::RDWR | OpenFlags::CREATE, &clock)?;
//! cache.pwrite(fd, b"synchronously durable", 0, &clock)?;
//! cache.fsync(fd, &clock)?; // no-op: already durable
//! cache.close(fd, &clock)?;
//! cache.shutdown(&clock);
//! # Ok(())
//! # }
//! ```

mod builder;
mod cache;
mod cleanup;
mod config;
mod files;
pub mod layout;
mod lockcheck;
mod log;
mod migrate;
mod pagedesc;
mod placement;
#[cfg(feature = "pmcheck")]
pub mod pm_mutation;
mod radix;
mod readcache;
mod recovery;
mod router;
mod squeue;
mod stats;

#[cfg(test)]
mod heat_tests;
#[cfg(test)]
mod migrate_tests;
#[cfg(test)]
#[allow(deprecated)] // the legacy format/recover wrappers stay under test
mod tests;
#[cfg(test)]
mod tiering_tests;

pub use builder::{LayeredTier, Mount, NvCacheBuilder};
pub use cache::NvCache;
pub use config::NvCacheConfig;
pub use migrate::{MigrationPolicy, RebalanceReport};
pub use pagedesc::{PageDescriptor, PageSlot, PageState};
pub use placement::{FileTemperature, HeatPolicy, PlacementPolicy, RouterPlacement};
pub use radix::Radix;
pub use recovery::RecoveryReport;
pub use router::{HashRouter, PathPrefixRouter, Router, SingleBackend};
pub use squeue::{Completion, QueuePair};
pub use stats::{
    NvCacheStats, NvCacheStatsSnapshot, QueueStats, QueueStatsSnapshot, ShardStats,
    ShardStatsSnapshot, SQ_BATCH_BUCKETS,
};
// Re-exported so layered mounts can be assembled from `nvcache` alone.
pub use vfs::{
    CryptLayer, CryptStats, DelayLayer, DelayProfile, DelayStats, FaultLayer, FaultOp, FaultRule,
    FaultTrigger, Layer, RamCacheLayer, RamCacheStats,
};

/// Seeded-schedule stress point: under the `sched-stress` feature every
/// call yields the thread on a deterministic subsequence of invocations,
/// shaking out interleavings of the reservation/doorbell lock split without
/// a full model checker. Compiles to nothing otherwise.
#[inline]
pub(crate) fn stress_point() {
    #[cfg(feature = "sched-stress")]
    {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TICK: AtomicU64 = AtomicU64::new(0);
        let t = TICK.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        if (t ^ (t >> 7)) % 3 == 0 {
            std::thread::yield_now();
        }
    }
}
