//! # NVCache — a plug-and-play NVMM-based I/O booster for legacy systems
//!
//! Reproduction of *NVCache* (Dulong et al., DSN 2021, arXiv:2105.10397): a
//! user-space, write-back cache in non-volatile main memory that makes the
//! writes of unmodified POSIX applications synchronously durable at NVMM
//! speed, while asynchronously propagating them through the regular kernel
//! I/O stack to a mass-storage device of arbitrary size.
//!
//! The crate implements the paper's §II–III designs in full:
//!
//! * the **write cache** — a circular NVMM log of fixed-size entries with
//!   per-entry commit flags and group commit for large writes ([`log`],
//!   Algorithm 1);
//! * the **read cache** — a bounded pool of page contents indexed by
//!   per-file lock-free radix trees, with approximate LRU eviction and the
//!   Table II page state machine ([`Radix`], [`PageState`]);
//! * the **two-lock-per-page concurrency scheme** (atomic lock + cleanup
//!   lock + dirty counter, §II-D);
//! * the **cleanup thread** with write batching (§III);
//! * the **recovery procedure** replaying committed entries after a crash;
//! * the **interception semantics** of Table III (`fsync` no-ops, NVCache's
//!   own cursors/sizes) via the [`vfs::FileSystem`] trait plus cursor-based
//!   [`NvCache::write`]/[`NvCache::read`]/[`NvCache::lseek`].
//!
//! Hardware primitives (`pwb`/`pfence`/`psync`) come from the [`nvmm`]
//! simulator, which also provides crash injection so the durability claims
//! are *tested*, not assumed.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use nvcache::{NvCache, NvCacheConfig};
//! use nvmm::{NvDimm, NvRegion, NvmmProfile};
//! use simclock::ActorClock;
//! use vfs::{FileSystem, MemFs, OpenFlags};
//!
//! # fn main() -> Result<(), vfs::IoError> {
//! let clock = ActorClock::new();
//! let cfg = NvCacheConfig::tiny();
//! let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
//! let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
//! let cache = NvCache::format(NvRegion::whole(dimm), inner, cfg, &clock)?;
//!
//! let fd = cache.open("/db/wal", OpenFlags::RDWR | OpenFlags::CREATE, &clock)?;
//! cache.pwrite(fd, b"synchronously durable", 0, &clock)?;
//! cache.fsync(fd, &clock)?; // no-op: already durable
//! cache.close(fd, &clock)?;
//! cache.shutdown(&clock);
//! # Ok(())
//! # }
//! ```

mod cache;
mod cleanup;
mod config;
mod files;
pub mod layout;
mod log;
mod pagedesc;
mod radix;
mod readcache;
mod recovery;
mod stats;

#[cfg(test)]
mod tests;

pub use cache::NvCache;
pub use config::NvCacheConfig;
pub use pagedesc::{PageDescriptor, PageSlot, PageState};
pub use radix::Radix;
pub use recovery::RecoveryReport;
pub use stats::{NvCacheStats, NvCacheStatsSnapshot};
