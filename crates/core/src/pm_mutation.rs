//! Test-only fault hooks for the `pmcheck` mutation tests (feature
//! `pmcheck`).
//!
//! Each hook arms a **thread-local**, one-shot bug in the durability
//! protocol — thread-local so a mutation armed by one test cannot corrupt a
//! concurrently running test in the same process:
//!
//! * [`arm_drop_fence`] — the next `Stripe::commit_batch` on this thread
//!   skips the `persist_fence` that orders fills before the commit word;
//! * [`arm_reorder_commit`] — the next `commit_batch` publishes its commit
//!   word(s) *before* issuing the fence;
//! * [`arm_skip_pwb`] — the next `Stripe::fill_entry` omits its `pwb`, so
//!   the entry reaches the commit fence still Dirty.
//!
//! The mutation tests assert that `pmcheck` turns each of these into a
//! deterministic panic naming the offending op, line address and call site.

use std::cell::Cell;

thread_local! {
    static DROP_FENCE: Cell<bool> = const { Cell::new(false) };
    static REORDER_COMMIT: Cell<bool> = const { Cell::new(false) };
    static SKIP_PWB: Cell<bool> = const { Cell::new(false) };
}

/// Arms the dropped-fence mutation for this thread's next `commit_batch`.
pub fn arm_drop_fence() {
    DROP_FENCE.with(|c| c.set(true));
}

/// Arms the reordered-commit-store mutation for this thread's next
/// `commit_batch`.
pub fn arm_reorder_commit() {
    REORDER_COMMIT.with(|c| c.set(true));
}

/// Arms the skipped-`pwb` mutation for this thread's next `fill_entry`.
pub fn arm_skip_pwb() {
    SKIP_PWB.with(|c| c.set(true));
}

/// Disarms every mutation on this thread (tests call this on cleanup so a
/// caught panic cannot leave a hook armed).
pub fn disarm_all() {
    DROP_FENCE.with(|c| c.set(false));
    REORDER_COMMIT.with(|c| c.set(false));
    SKIP_PWB.with(|c| c.set(false));
}

pub(crate) fn take_drop_fence() -> bool {
    DROP_FENCE.with(|c| c.replace(false))
}

pub(crate) fn take_reorder_commit() -> bool {
    REORDER_COMMIT.with(|c| c.replace(false))
}

pub(crate) fn take_skip_pwb() -> bool {
    SKIP_PWB.with(|c| c.replace(false))
}
