use std::sync::atomic::Ordering;
use std::sync::Arc;

use simclock::SimTime;

use crate::cache::Shared;
use crate::layout::CommitWord;

/// Body of the cleanup thread (paper §III "Cleanup thread and batching").
///
/// Consumes committed entries from the tail in batches, propagates each to
/// the inner file system with `pwrite`, issues one `fsync` per batch (per
/// touched file), then — and only then — clears the commit flags, persists
/// the new tail index, and finally publishes the space to writers through
/// the volatile tail. The three-step order guarantees that when a writer
/// sees a free slot, the slot is also free in NVMM.
pub(crate) fn run_cleanup(shared: Arc<Shared>) {
    let clock = Arc::clone(&shared.cleanup_clock);
    loop {
        if shared.kill.load(Ordering::Acquire) {
            // Crash simulation: leave everything in the log for recovery.
            return;
        }
        shared.drain_zombies(&clock);
        let tail = shared.log.vtail.load(Ordering::Acquire);
        let head = shared.log.head.load(Ordering::Acquire);
        let pending = head - tail;
        let stop = shared.stop.load(Ordering::Acquire);
        let flush_needed = shared.log.flush_target.load(Ordering::Acquire) > tail;
        let space_needed = shared.log.space_waiters.load(Ordering::Acquire) > 0;

        let should_run = pending > 0
            && (pending >= shared.cfg.batch_min as u64 || flush_needed || space_needed || stop);
        if !should_run {
            if stop && pending == 0 {
                shared.drain_zombies(&clock);
                return;
            }
            shared.log.wait_for_work();
            continue;
        }

        let budget = (shared.cfg.batch_max as u64).min(pending);
        let mut consumed = 0u64;
        let mut touched_fds: Vec<vfs::Fd> = Vec::new();

        while consumed < budget {
            if shared.kill.load(Ordering::Acquire) {
                return;
            }
            let seq = tail + consumed;
            // Wait for the in-order commit of the entry at the tail (the
            // paper's cleanup thread does exactly this).
            let header = loop {
                let h = shared.log.read_header(seq);
                if h.commit != CommitWord::Free {
                    break h;
                }
                if shared.kill.load(Ordering::Acquire) {
                    return;
                }
                if shared.stop.load(Ordering::Acquire) && consumed > 0 {
                    // A producer died mid-allocation during shutdown; stop at
                    // the gap and free what we have.
                    break h;
                }
                std::thread::yield_now();
            };
            if header.commit == CommitWord::Free {
                break;
            }
            // Stay causal in virtual time: a batch cannot start before its
            // entries were committed.
            let slot = shared.log.layout.slot_of(seq) as usize;
            clock.advance_to(SimTime::from_nanos(
                shared.log.commit_stamps[slot].load(Ordering::Acquire),
            ));

            let group_len = match header.commit {
                CommitWord::Leader => header.group_len.max(1) as u64,
                // A member at the tail would mean a torn group; the
                // invariants (groups consumed atomically) forbid it.
                CommitWord::Member(_) => unreachable!("group member at the tail"),
                CommitWord::Free => unreachable!("checked above"),
            };

            for i in 0..group_len {
                let e = shared.log.read_header(seq + i);
                let opened = shared
                    .opened_by_slot(e.fd_slot)
                    .expect("entry references a closed fd: close must drain first");
                // Entries at the tail were written recently by the
                // application; their lines are still in the CPU caches, so
                // the read is not charged against the NVMM media (which
                // would otherwise serialize the cleanup thread's far-future
                // timeline against in-flight application flushes).
                let data = shared.log.read_data_cached(seq + i, e.len as usize);
                // Lock out the dirty-miss procedure for the affected pages
                // while the kernel copy is being updated (paper §II-D).
                let pages = shared.pages_of(e.file_off, e.len as usize);
                let descs: Vec<_> = match opened.file.radix.get() {
                    Some(radix) => pages.map(|p| radix.get_or_create(p)).collect(),
                    None => Vec::new(),
                };
                let guards: Vec<_> = descs.iter().map(|d| d.lock_cleanup()).collect();
                shared
                    .inner
                    .pwrite(opened.inner_fd, &data, e.file_off, &clock)
                    .expect("inner pwrite during cleanup");
                for d in &descs {
                    d.dec_dirty();
                }
                drop(guards);
                if !touched_fds.contains(&opened.inner_fd) {
                    touched_fds.push(opened.inner_fd);
                }
                shared.stats.entries_propagated.fetch_add(1, Ordering::Relaxed);
            }
            consumed += group_len;
        }

        if consumed == 0 {
            continue;
        }

        // One fsync per batch per touched file: this is the batching knob of
        // paper Fig. 6.
        for fd in touched_fds {
            // The fd may have raced to close after we propagated its last
            // entry; a close error here would mean the drain ordering broke.
            shared.inner.fsync(fd, &clock).expect("inner fsync during cleanup");
            shared.stats.cleanup_fsyncs.fetch_add(1, Ordering::Relaxed);
        }

        shared.log.free_range(tail, consumed, &clock);
        shared.stats.cleanup_batches.fetch_add(1, Ordering::Relaxed);
        shared.drain_zombies(&clock);
    }
}
