//! The per-stripe cleanup workers (paper §III "Cleanup thread and
//! batching"): each worker consumes committed entries from its stripe's
//! tail in batches and propagates them to the inner file systems through
//! io_uring-style submission rings ([`fiosim::IoRing`]) — one ring per
//! backend of a tiered mount, so each tier gets its own
//! [`queue_depth`](crate::NvCacheConfig::queue_depth)-deep overlap window
//! before the batch's per-(backend, file) coalesced `fsync`s.
//! Inner-file-system errors poison the stripe (see
//! [`crate::NvCache::poisoned_stripes`]) instead of panicking.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use fiosim::IoRing;
use simclock::SimTime;

use crate::cache::Shared;
use crate::layout::CommitWord;

/// Body of one cleanup worker (paper §III "Cleanup thread and batching",
/// one worker per log stripe).
///
/// Consumes committed entries from its stripe's tail in batches. Each
/// batch runs in three phases:
///
/// 1. **Submit** — every entry's `pwrite` against the inner file system is
///    pushed onto the worker's submission ring. The write's side effects
///    land immediately (execution order is exactly the synchronous drain's
///    order, so page bookkeeping and cross-stripe handoff are unchanged),
///    but its *latency* is charged to a per-operation clock: with
///    `queue_depth = N`, up to `N` writes overlap on the inner device
///    instead of each waiting for the previous completion.
/// 2. **Reap** — the worker joins all completions, then submits one
///    coalesced `fsync` per file the batch touched (also overlapped on the
///    ring) and reaps those too. This is the batching knob of paper Fig. 6,
///    now amortizing the device latency across in-flight submissions as
///    well as across entries.
/// 3. **Free** — only after the whole batch's completions (writes *and*
///    fsyncs) have landed does the worker clear commit flags, persist the
///    stripe's tail index, and publish the space to writers through the
///    volatile tail. A crash anywhere before phase 3 therefore leaves the
///    persistent tail untouched and recovery replays the batch — the same
///    crash-consistency contract as the synchronous drain.
///
/// With `queue_depth = 1` the ring degenerates to back-to-back calls on one
/// timeline: the drain is behaviorally *and* temporally identical to the
/// paper's synchronous cleanup (the `qd1` oracle tests pin this down).
///
/// With multiple stripes, workers additionally synchronize *per page*
/// through the descriptors' propagation queues: an entry is only written to
/// the inner file system once its global sequence number reaches the front
/// of every touched page's queue. Because global sequences are assigned in
/// ring order within each stripe, a worker only ever waits for *smaller*
/// sequence numbers sitting at other stripes' tails — the waits form no
/// cycle and unrelated pages never serialize.
///
/// An inner-file-system error (failed `pwrite` or `fsync`) does **not**
/// abort the worker thread with a panic: the error is counted in
/// [`inner_io_errors`](crate::NvCacheStats::inner_io_errors), the stripe is
/// poisoned — releasing blocked writers and flush barriers with an error
/// instead of a hang — and the batch's entries stay in NVMM for recovery.
pub(crate) fn run_cleanup(shared: Arc<Shared>, stripe_idx: usize) {
    let clock = Arc::clone(&shared.cleanup_clocks[stripe_idx]);
    let stripe = &shared.log.stripes[stripe_idx];
    let ordered_handoff = !shared.log.single();
    let shard_stats = &shared.stats.per_shard[stripe_idx];
    // One submission ring per inner backend — the per-tier queues of a
    // tiered mount. Entries routed to different tiers overlap freely (each
    // ring has its own `queue_depth` window); a single-backend mount
    // degenerates to exactly the old one-ring drain.
    let mut rings: Vec<IoRing> = shared
        .backends
        .iter()
        .map(|backend| IoRing::new(Arc::clone(backend), shared.cfg.queue_depth))
        .collect();
    loop {
        if shared.kill.load(Ordering::Acquire) {
            // Crash simulation: leave everything in the log for recovery.
            return;
        }
        shared.drain_zombies(&clock);
        let tail = stripe.vtail.load(Ordering::Acquire);
        let head = stripe.head.load(Ordering::Acquire);
        let pending = head - tail;
        let stop = shared.stop.load(Ordering::Acquire);
        let flush_needed = stripe.flush_target.load(Ordering::Acquire) > tail;
        let space_needed = stripe.space_waiters.load(Ordering::Acquire) > 0;
        // A peer worker is blocked in the per-page handoff: the sequence
        // number it needs may sit in *this* stripe, below the batch
        // threshold — run regardless of `batch_min` until the pressure
        // clears.
        let handoff_pressure =
            ordered_handoff && shared.log.handoff_waiters.load(Ordering::Acquire) > 0;

        let should_run = pending > 0
            && (pending >= shared.cfg.batch_min as u64
                || flush_needed
                || space_needed
                || handoff_pressure
                || stop);
        if !should_run {
            if stop && pending == 0 {
                shared.drain_zombies(&clock);
                return;
            }
            stripe.wait_for_work();
            continue;
        }

        let budget = (shared.cfg.batch_max as u64).min(pending);
        let mut consumed = 0u64;
        // `(backend, inner fd)` pairs the batch touched — the fsync
        // coalescing key (an fd is only meaningful on its own backend).
        let mut touched_fds: Vec<(u32, vfs::Fd)> = Vec::new();
        let mut batch_failed = false;

        // Phase 1: submit the batch's propagation writes onto the ring.
        while consumed < budget {
            if shared.kill.load(Ordering::Acquire) {
                return;
            }
            let seq = tail + consumed;
            // Wait for the in-order commit of the entry at the tail (the
            // paper's cleanup thread does exactly this). With the
            // multi-queue front-end a whole *reservation window* can sit
            // here uncommitted while its doorbell is still filling, so the
            // wait spins only briefly before parking on the stripe's work
            // condvar — `commit_batch` rings it on every commit, single or
            // doorbell-batched.
            let mut spins = 0u32;
            let header = loop {
                let h = stripe.read_header(seq);
                if h.commit != CommitWord::Free {
                    break h;
                }
                if shared.kill.load(Ordering::Acquire) {
                    return;
                }
                if shared.stop.load(Ordering::Acquire) && consumed > 0 {
                    // A producer died mid-allocation during shutdown; stop at
                    // the gap and free what we have.
                    break h;
                }
                spins += 1;
                if spins < 128 {
                    std::thread::yield_now();
                } else {
                    // 1 ms-timeout park, so a lost wakeup only costs a
                    // beat, never a hang.
                    stripe.wait_for_work();
                }
            };
            if header.commit == CommitWord::Free {
                break;
            }
            // Stay causal in virtual time: a batch cannot start before its
            // entries were committed.
            let slot = (seq % stripe.capacity()) as usize;
            clock.advance_to(SimTime::from_nanos(
                stripe.commit_stamps[slot].load(Ordering::Acquire),
            ));

            let group_len = match header.commit {
                CommitWord::Leader => header.group_len.max(1) as u64,
                // A member at the tail would mean a torn group; the
                // invariants (groups consumed atomically, contiguously in
                // one stripe) forbid it.
                CommitWord::Member(_) => unreachable!("group member at the tail"),
                CommitWord::Free => unreachable!("checked above"),
            };

            for i in 0..group_len {
                let e = stripe.read_header(seq + i);
                let opened = shared
                    .opened_by_slot(e.fd_slot)
                    .expect("entry references a closed fd: close must drain first");
                // Entries at the tail were written recently by the
                // application; their lines are still in the CPU caches, so
                // the read is not charged against the NVMM media (which
                // would otherwise serialize the cleanup worker's far-future
                // timeline against in-flight application flushes).
                let data = stripe.read_data_cached(seq + i, e.len as usize);
                let pages = shared.pages_of(e.file_off, e.len as usize);
                let first_page = pages.start;
                let descs: Vec<_> = match opened.file.radix.get() {
                    Some(radix) => pages.map(|p| radix.get_or_create(p)).collect(),
                    None => Vec::new(),
                };
                if ordered_handoff && !wait_for_handoff(&shared, stripe, &descs, e.seq) {
                    if shared.kill.load(Ordering::Acquire) {
                        return; // killed while waiting
                    }
                    // The awaited sequence number is stuck in a poisoned
                    // stripe (the handoff's grace period passed without
                    // progress): per-page ordering can no longer be
                    // maintained, so this stripe degrades too (writers get
                    // errors, not hangs; recovery replays the rest).
                    batch_failed = true;
                    break;
                }
                // Lock out the dirty-miss procedure for the affected pages
                // while the kernel copy is being updated (paper §II-D). The
                // write itself executes here (submission order is execution
                // order); only its completion time is deferred to the reap.
                let mut guards = Vec::with_capacity(descs.len());
                let mut _lock_order = Vec::with_capacity(descs.len());
                for (j, d) in descs.iter().enumerate() {
                    _lock_order.push(shared.lockcheck.acquire_page(
                        crate::lockcheck::Class::PageCleanup,
                        opened.file.file_id,
                        first_page + j as u64,
                    ));
                    guards.push(d.lock_cleanup());
                }
                let backend = opened.backend as usize;
                let cqe = rings[backend].submit_pwrite(
                    opened.inner_fd,
                    &data,
                    e.file_off,
                    e.seq,
                    clock.now(),
                );
                let failed = cqe.result.is_err();
                shard_stats.uring_submitted.fetch_add(1, Ordering::Relaxed);
                if failed {
                    drop(guards);
                    batch_failed = true;
                    break;
                }
                for d in &descs {
                    d.dec_dirty();
                    if ordered_handoff {
                        d.pop_propagation(e.seq);
                    }
                }
                drop(guards);
                if !touched_fds.contains(&(opened.backend, opened.inner_fd)) {
                    touched_fds.push((opened.backend, opened.inner_fd));
                }
                shared.stats.entries_propagated.fetch_add(1, Ordering::Relaxed);
                shard_stats.entries_propagated.fetch_add(1, Ordering::Relaxed);
                shared.stats.per_backend_propagated[backend].fetch_add(1, Ordering::Relaxed);
            }
            if batch_failed {
                break;
            }
            consumed += group_len;
        }

        // Phase 2: reap the writes from every tier's ring (the clock joins
        // the latest completion across all backends), then overlap the
        // coalesced fsyncs.
        let write_cqes: Vec<_> = rings.iter_mut().flat_map(|r| r.wait_all(&clock)).collect();
        shard_stats
            .uring_completed
            .fetch_add(write_cqes.len() as u64, Ordering::Relaxed);
        let peak = rings.iter().map(IoRing::peak_in_flight).max().unwrap_or(0);
        shard_stats.uring_inflight_peak.fetch_max(peak as u64, Ordering::Relaxed);
        let write_errors = write_cqes.iter().filter(|c| c.result.is_err()).count() as u64;
        if batch_failed || write_errors > 0 {
            // `write_errors` may be 0 when the batch failed because a *peer*
            // stripe poisoned itself mid-handoff: this stripe still degrades
            // (cascade poison) but records no error of its own.
            poison(&shared, stripe_idx, write_errors);
            return;
        }
        if consumed == 0 {
            continue;
        }

        // One fsync per batch per touched file: this is the batching knob of
        // paper Fig. 6 (each stripe applies the policy independently, each
        // tier on its own ring). The fd may have raced to close after we
        // propagated its last entry; an error here would mean the drain
        // ordering broke — poison, as above.
        for (i, (backend, fd)) in touched_fds.iter().enumerate() {
            rings[*backend as usize].submit_fsync(*fd, i as u64, clock.now());
            shard_stats.uring_submitted.fetch_add(1, Ordering::Relaxed);
        }
        let fsync_cqes: Vec<_> = rings.iter_mut().flat_map(|r| r.wait_all(&clock)).collect();
        shard_stats
            .uring_completed
            .fetch_add(fsync_cqes.len() as u64, Ordering::Relaxed);
        // Only *successful* fsyncs count towards the Fig. 6 amortization
        // stats — a failed batch is not a durable drain.
        let fsync_ok = fsync_cqes.iter().filter(|c| c.result.is_ok()).count() as u64;
        shared.stats.cleanup_fsyncs.fetch_add(fsync_ok, Ordering::Relaxed);
        shard_stats.cleanup_fsyncs.fetch_add(fsync_ok, Ordering::Relaxed);
        let fsync_errors = fsync_cqes.len() as u64 - fsync_ok;
        if fsync_errors > 0 {
            poison(&shared, stripe_idx, fsync_errors);
            return;
        }

        // Phase 3: the whole batch (writes and fsyncs) has landed — only now
        // may the tail advance past it.
        stripe.free_range(tail, consumed, &clock);
        shared.stats.cleanup_batches.fetch_add(1, Ordering::Relaxed);
        shard_stats.cleanup_batches.fetch_add(1, Ordering::Relaxed);
        shared.drain_zombies(&clock);
        // Files become migratable only once fully drained: zombies this
        // batch finished may now move tiers, so wake the background
        // migrator (no-op unless MigrationPolicy::Background).
        shared.migrator_notify();
    }
}

/// Records `errors` inner-file-system failures against stripe `stripe_idx`
/// and poisons it: the stripe's entries stay in NVMM for recovery, blocked
/// writers and flush barriers are released (they observe the poisoned state
/// instead of waiting on a worker that is about to exit), and the worker
/// returns cleanly.
fn poison(shared: &Shared, stripe_idx: usize, errors: u64) {
    shared.stats.inner_io_errors.fetch_add(errors, Ordering::Relaxed);
    shared.stats.per_shard[stripe_idx]
        .inner_io_errors
        .fetch_add(errors, Ordering::Relaxed);
    shared.log.stripes[stripe_idx].poison();
    shared.log.notify_work_all();
}

/// Cross-stripe per-page ordering: blocks until `gseq` is the oldest
/// pending entry for every page in `descs`. Only entries with smaller
/// global sequence numbers can be ahead, and those sit at (or drain
/// towards) other stripes' tails; registering as a handoff waiter makes
/// those stripes run batches even below `batch_min`, so the wait always
/// terminates. The override distorts the batching policy only while a
/// waiter exists — which requires page-straddling writes whose entries
/// split across stripes; entry-aligned workloads (e.g. the Fig. 6 sweep)
/// never trigger it. Returns `false` if the cache was killed while
/// waiting, or if the handoff can provably never complete because a
/// sequence number it is waiting on is pending inside a *poisoned* stripe
/// (whose worker is gone). A poisoned stripe elsewhere in the log does not
/// degrade this one: after a grace period of parked waits the blocking
/// sequence numbers are located by scanning the poisoned stripes' pending
/// windows, and the wait continues whenever they sit in healthy stripes.
fn wait_for_handoff(
    shared: &Shared,
    stripe: &crate::log::Stripe,
    descs: &[Arc<crate::pagedesc::PageDescriptor>],
    gseq: u64,
) -> bool {
    /// Parked (condvar, ~1 ms each) waits between scans of the poisoned
    /// stripes' windows once a poisoned stripe has been observed.
    const POISON_GRACE_PARKS: u32 = 64;
    let at_front = |descs: &[Arc<crate::pagedesc::PageDescriptor>]| {
        descs
            .iter()
            .all(|d| matches!(d.propagation_front(), Some(front) if front >= gseq))
    };
    if at_front(descs) {
        return true; // fast path: already at every front
    }
    shared.log.handoff_waiters.fetch_add(1, Ordering::AcqRel);
    shared.log.notify_work_all();
    let mut spins = 0u32;
    let mut poison_parks = 0u32;
    let survived = loop {
        if at_front(descs) {
            break true;
        }
        if shared.kill.load(Ordering::Acquire) {
            break false;
        }
        if poison_parks > POISON_GRACE_PARKS {
            poison_parks = 0;
            if blocked_by_poisoned_stripe(shared, descs, gseq) {
                break false;
            }
            // The blocking entries sit in healthy stripes — their workers
            // will drain them (handoff pressure keeps them running); the
            // peer's poison is not this stripe's problem.
        }
        // Brief spin for the common sub-microsecond handoff, then park on
        // the stripe's work condvar (1 ms timeout, like wait_for_work)
        // instead of burning a core while a peer finishes its batch.
        spins += 1;
        if spins < 128 {
            std::thread::yield_now();
        } else {
            stripe.wait_for_work();
            if shared.log.any_poisoned() {
                poison_parks += 1;
            }
        }
    };
    shared.log.handoff_waiters.fetch_sub(1, Ordering::AcqRel);
    survived
}

/// Whether any sequence number currently blocking the handoff (a
/// propagation-queue front smaller than `gseq`) is pending inside a
/// poisoned stripe's `[tail, head)` window — in which case it will never
/// be popped and the waiter must give up. Pending entries always live in
/// some stripe's window until freed, so a miss here means the blocker is
/// in a healthy stripe (or was popped concurrently — the caller's
/// `at_front` re-check picks that up). Only runs on the degraded path.
fn blocked_by_poisoned_stripe(
    shared: &Shared,
    descs: &[Arc<crate::pagedesc::PageDescriptor>],
    gseq: u64,
) -> bool {
    let blockers: Vec<u64> = descs
        .iter()
        .filter_map(|d| d.propagation_front())
        .filter(|&front| front < gseq)
        .collect();
    if blockers.is_empty() {
        return false;
    }
    for poisoned in shared.log.stripes.iter().filter(|s| s.is_poisoned()) {
        let tail = poisoned.vtail.load(Ordering::Acquire);
        let head = poisoned.head.load(Ordering::Acquire);
        for seq in tail..head {
            let h = poisoned.read_header(seq);
            if h.commit != CommitWord::Free && blockers.contains(&h.seq) {
                return true;
            }
        }
    }
    false
}
