use std::sync::atomic::Ordering;
use std::sync::Arc;

use simclock::SimTime;

use crate::cache::Shared;
use crate::layout::CommitWord;

/// Body of one cleanup worker (paper §III "Cleanup thread and batching",
/// one worker per log stripe).
///
/// Consumes committed entries from its stripe's tail in batches, propagates
/// each to the inner file system with `pwrite`, issues one `fsync` per batch
/// (per touched file), then — and only then — clears the commit flags,
/// persists the stripe's tail index, and finally publishes the space to
/// writers through the volatile tail. The three-step order guarantees that
/// when a writer sees a free slot, the slot is also free in NVMM.
///
/// With multiple stripes, workers additionally synchronize *per page*
/// through the descriptors' propagation queues: an entry is only written to
/// the inner file system once its global sequence number reaches the front
/// of every touched page's queue. Because global sequences are assigned in
/// ring order within each stripe, a worker only ever waits for *smaller*
/// sequence numbers sitting at other stripes' tails — the waits form no
/// cycle and unrelated pages never serialize.
pub(crate) fn run_cleanup(shared: Arc<Shared>, stripe_idx: usize) {
    let clock = Arc::clone(&shared.cleanup_clocks[stripe_idx]);
    let stripe = &shared.log.stripes[stripe_idx];
    let ordered_handoff = !shared.log.single();
    let shard_stats = &shared.stats.per_shard[stripe_idx];
    loop {
        if shared.kill.load(Ordering::Acquire) {
            // Crash simulation: leave everything in the log for recovery.
            return;
        }
        shared.drain_zombies(&clock);
        let tail = stripe.vtail.load(Ordering::Acquire);
        let head = stripe.head.load(Ordering::Acquire);
        let pending = head - tail;
        let stop = shared.stop.load(Ordering::Acquire);
        let flush_needed = stripe.flush_target.load(Ordering::Acquire) > tail;
        let space_needed = stripe.space_waiters.load(Ordering::Acquire) > 0;
        // A peer worker is blocked in the per-page handoff: the sequence
        // number it needs may sit in *this* stripe, below the batch
        // threshold — run regardless of `batch_min` until the pressure
        // clears.
        let handoff_pressure =
            ordered_handoff && shared.log.handoff_waiters.load(Ordering::Acquire) > 0;

        let should_run = pending > 0
            && (pending >= shared.cfg.batch_min as u64
                || flush_needed
                || space_needed
                || handoff_pressure
                || stop);
        if !should_run {
            if stop && pending == 0 {
                shared.drain_zombies(&clock);
                return;
            }
            stripe.wait_for_work();
            continue;
        }

        let budget = (shared.cfg.batch_max as u64).min(pending);
        let mut consumed = 0u64;
        let mut touched_fds: Vec<vfs::Fd> = Vec::new();

        while consumed < budget {
            if shared.kill.load(Ordering::Acquire) {
                return;
            }
            let seq = tail + consumed;
            // Wait for the in-order commit of the entry at the tail (the
            // paper's cleanup thread does exactly this).
            let header = loop {
                let h = stripe.read_header(seq);
                if h.commit != CommitWord::Free {
                    break h;
                }
                if shared.kill.load(Ordering::Acquire) {
                    return;
                }
                if shared.stop.load(Ordering::Acquire) && consumed > 0 {
                    // A producer died mid-allocation during shutdown; stop at
                    // the gap and free what we have.
                    break h;
                }
                std::thread::yield_now();
            };
            if header.commit == CommitWord::Free {
                break;
            }
            // Stay causal in virtual time: a batch cannot start before its
            // entries were committed.
            let slot = (seq % stripe.capacity()) as usize;
            clock.advance_to(SimTime::from_nanos(
                stripe.commit_stamps[slot].load(Ordering::Acquire),
            ));

            let group_len = match header.commit {
                CommitWord::Leader => header.group_len.max(1) as u64,
                // A member at the tail would mean a torn group; the
                // invariants (groups consumed atomically, contiguously in
                // one stripe) forbid it.
                CommitWord::Member(_) => unreachable!("group member at the tail"),
                CommitWord::Free => unreachable!("checked above"),
            };

            for i in 0..group_len {
                let e = stripe.read_header(seq + i);
                let opened = shared
                    .opened_by_slot(e.fd_slot)
                    .expect("entry references a closed fd: close must drain first");
                // Entries at the tail were written recently by the
                // application; their lines are still in the CPU caches, so
                // the read is not charged against the NVMM media (which
                // would otherwise serialize the cleanup worker's far-future
                // timeline against in-flight application flushes).
                let data = stripe.read_data_cached(seq + i, e.len as usize);
                let pages = shared.pages_of(e.file_off, e.len as usize);
                let descs: Vec<_> = match opened.file.radix.get() {
                    Some(radix) => pages.map(|p| radix.get_or_create(p)).collect(),
                    None => Vec::new(),
                };
                if ordered_handoff && !wait_for_handoff(&shared, stripe, &descs, e.seq) {
                    return; // killed while waiting
                }
                // Lock out the dirty-miss procedure for the affected pages
                // while the kernel copy is being updated (paper §II-D).
                let guards: Vec<_> = descs.iter().map(|d| d.lock_cleanup()).collect();
                shared
                    .inner
                    .pwrite(opened.inner_fd, &data, e.file_off, &clock)
                    .expect("inner pwrite during cleanup");
                for d in &descs {
                    d.dec_dirty();
                    if ordered_handoff {
                        d.pop_propagation(e.seq);
                    }
                }
                drop(guards);
                if !touched_fds.contains(&opened.inner_fd) {
                    touched_fds.push(opened.inner_fd);
                }
                shared.stats.entries_propagated.fetch_add(1, Ordering::Relaxed);
                shard_stats.entries_propagated.fetch_add(1, Ordering::Relaxed);
            }
            consumed += group_len;
        }

        if consumed == 0 {
            continue;
        }

        // One fsync per batch per touched file: this is the batching knob of
        // paper Fig. 6 (each stripe applies the policy independently).
        for fd in touched_fds {
            // The fd may have raced to close after we propagated its last
            // entry; a close error here would mean the drain ordering broke.
            shared.inner.fsync(fd, &clock).expect("inner fsync during cleanup");
            shared.stats.cleanup_fsyncs.fetch_add(1, Ordering::Relaxed);
            shard_stats.cleanup_fsyncs.fetch_add(1, Ordering::Relaxed);
        }

        stripe.free_range(tail, consumed, &clock);
        shared.stats.cleanup_batches.fetch_add(1, Ordering::Relaxed);
        shard_stats.cleanup_batches.fetch_add(1, Ordering::Relaxed);
        shared.drain_zombies(&clock);
    }
}

/// Cross-stripe per-page ordering: blocks until `gseq` is the oldest
/// pending entry for every page in `descs`. Only entries with smaller
/// global sequence numbers can be ahead, and those sit at (or drain
/// towards) other stripes' tails; registering as a handoff waiter makes
/// those stripes run batches even below `batch_min`, so the wait always
/// terminates. The override distorts the batching policy only while a
/// waiter exists — which requires page-straddling writes whose entries
/// split across stripes; entry-aligned workloads (e.g. the Fig. 6 sweep)
/// never trigger it. Returns `false` if the cache was killed while
/// waiting.
fn wait_for_handoff(
    shared: &Shared,
    stripe: &crate::log::Stripe,
    descs: &[Arc<crate::pagedesc::PageDescriptor>],
    gseq: u64,
) -> bool {
    let at_front = |descs: &[Arc<crate::pagedesc::PageDescriptor>]| {
        descs
            .iter()
            .all(|d| matches!(d.propagation_front(), Some(front) if front >= gseq))
    };
    if at_front(descs) {
        return true; // fast path: already at every front
    }
    shared.log.handoff_waiters.fetch_add(1, Ordering::AcqRel);
    shared.log.notify_work_all();
    let mut spins = 0u32;
    let survived = loop {
        if at_front(descs) {
            break true;
        }
        if shared.kill.load(Ordering::Acquire) {
            break false;
        }
        // Brief spin for the common sub-microsecond handoff, then park on
        // the stripe's work condvar (1 ms timeout, like wait_for_work)
        // instead of burning a core while a peer finishes its batch.
        spins += 1;
        if spins < 128 {
            std::thread::yield_now();
        } else {
            stripe.wait_for_work();
        }
    };
    shared.log.handoff_waiters.fetch_sub(1, Ordering::AcqRel);
    survived
}
