//! Per-page state: [`PageDescriptor`] with the paper's two-lock concurrency
//! scheme (§II-D), the dirty counter, the Table II page states, and — on a
//! striped log — the cross-stripe propagation queue that keeps per-page
//! write order at the inner file system.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

use parking_lot::{Mutex, MutexGuard};

/// The state of a cached page (paper Table II / Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Present in the DRAM read cache; content always up to date.
    Loaded,
    /// Absent from the cache and no pending log entries modify it.
    UnloadedClean,
    /// Absent from the cache but the NVMM log holds entries that modify it —
    /// the kernel's copy is stale (dirty-miss territory).
    UnloadedDirty,
}

/// Content slot guarded by the per-page *atomic lock*.
#[derive(Debug, Default)]
pub struct PageSlot {
    /// The cached page content when the page is loaded.
    pub content: Option<Box<[u8]>>,
}

/// A page descriptor: one leaf of the per-file radix tree (paper §II-C).
///
/// Carries the two locks of the paper's concurrency scheme (§II-D):
///
/// * the **atomic lock** (here the mutex around [`PageSlot`]) serializes
///   writers/readers of the same page and guards the cached content;
/// * the **cleanup lock** synchronizes the cleanup thread against the
///   dirty-miss procedure — and nothing else, so the cleanup thread never
///   blocks writers, and never blocks readers that hit the cache.
///
/// The **dirty counter** counts log entries that modify this page; it may go
/// transiently negative when the cleanup thread's decrement overtakes a
/// writer's increment (paper footnote 4) — readers can never observe the
/// unstable value because the dirty-miss procedure requires both locks.
///
/// With a striped log the descriptor additionally carries the **propagation
/// queue**: the global sequence numbers of pending log entries touching this
/// page, in commit order (writers enqueue under the atomic lock). A cleanup
/// worker may only propagate an entry once it reaches the queue front, which
/// restores cross-stripe per-page write ordering at the inner file system
/// without serializing unrelated pages. Single-stripe logs never touch it.
#[derive(Debug)]
pub struct PageDescriptor {
    file_id: u64,
    page_no: u64,
    slot: Mutex<PageSlot>,
    cleanup_lock: Mutex<()>,
    dirty_counter: AtomicI64,
    accessed: AtomicBool,
    prop_queue: Mutex<VecDeque<u64>>,
}

impl PageDescriptor {
    /// Creates an unloaded-clean descriptor for `page_no`.
    pub fn new(page_no: u64) -> Self {
        Self::for_file(0, page_no)
    }

    /// Creates a descriptor tagged with the owning file's id.
    pub fn for_file(file_id: u64, page_no: u64) -> Self {
        PageDescriptor {
            file_id,
            page_no,
            slot: Mutex::new(PageSlot::default()),
            cleanup_lock: Mutex::new(()),
            dirty_counter: AtomicI64::new(0),
            accessed: AtomicBool::new(false),
            prop_queue: Mutex::new(VecDeque::new()),
        }
    }

    /// The page number inside the file.
    pub fn page_no(&self) -> u64 {
        self.page_no
    }

    /// The owning file's id (0 for descriptors created outside a file).
    pub fn file_id(&self) -> u64 {
        self.file_id
    }

    /// Acquires the atomic lock.
    pub fn lock(&self) -> MutexGuard<'_, PageSlot> {
        self.slot.lock()
    }

    /// Tries to acquire the atomic lock (used by LRU eviction to avoid
    /// deadlocking with page locks the evictor already holds).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, PageSlot>> {
        self.slot.try_lock()
    }

    /// Acquires the cleanup lock.
    pub fn lock_cleanup(&self) -> MutexGuard<'_, ()> {
        self.cleanup_lock.lock()
    }

    /// Increments the dirty counter (writer path, under the atomic lock).
    pub fn inc_dirty(&self) {
        self.dirty_counter.fetch_add(1, Ordering::AcqRel);
    }

    /// Decrements the dirty counter (cleanup path, under the cleanup lock).
    pub fn dec_dirty(&self) {
        self.dirty_counter.fetch_sub(1, Ordering::AcqRel);
    }

    /// Current dirty count (may be transiently negative, see type docs).
    pub fn dirty_count(&self) -> i64 {
        self.dirty_counter.load(Ordering::Acquire)
    }

    /// Appends a pending entry's global sequence number to the propagation
    /// queue (writer path, under the atomic lock — which makes the queue
    /// order the commit order for this page).
    pub fn enqueue_propagation(&self, gseq: u64) {
        let mut q = self.prop_queue.lock();
        debug_assert!(q.back().is_none_or(|&last| last < gseq), "queue must stay sorted");
        q.push_back(gseq);
    }

    /// The oldest pending entry for this page, if any (cleanup handoff).
    pub fn propagation_front(&self) -> Option<u64> {
        self.prop_queue.lock().front().copied()
    }

    /// Removes `gseq` from the queue front once the entry has been
    /// propagated (cleanup path, under the cleanup lock).
    ///
    /// # Panics
    ///
    /// Panics if `gseq` is not at the front — the ordered-handoff invariant
    /// was broken.
    pub fn pop_propagation(&self, gseq: u64) {
        let mut q = self.prop_queue.lock();
        let front = q.pop_front();
        assert_eq!(front, Some(gseq), "out-of-order propagation pop");
    }

    /// Marks the page as recently accessed (second-chance LRU bit).
    pub fn mark_accessed(&self) {
        self.accessed.store(true, Ordering::Release);
    }

    /// Clears and returns the accessed bit (eviction scan).
    pub fn take_accessed(&self) -> bool {
        self.accessed.swap(false, Ordering::AcqRel)
    }

    /// The page state per paper Table II, derived from residency and the
    /// dirty counter.
    pub fn state(&self) -> PageState {
        let loaded = self.slot.lock().content.is_some();
        if loaded {
            PageState::Loaded
        } else if self.dirty_count() > 0 {
            PageState::UnloadedDirty
        } else {
            PageState::UnloadedClean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_descriptor_is_unloaded_clean() {
        let d = PageDescriptor::new(9);
        assert_eq!(d.state(), PageState::UnloadedClean);
        assert_eq!(d.page_no(), 9);
        assert_eq!(d.dirty_count(), 0);
    }

    #[test]
    fn table_ii_state_matrix() {
        let d = PageDescriptor::for_file(1, 0);
        // unloaded-clean -> unloaded-dirty on write (dc > 0)
        d.inc_dirty();
        assert_eq!(d.state(), PageState::UnloadedDirty);
        // load content => loaded regardless of the counter
        d.lock().content = Some(vec![0u8; 64].into_boxed_slice());
        assert_eq!(d.state(), PageState::Loaded);
        // cleanup propagates the entry
        d.dec_dirty();
        assert_eq!(d.state(), PageState::Loaded);
        // eviction -> unloaded-clean (dc == 0)
        d.lock().content = None;
        assert_eq!(d.state(), PageState::UnloadedClean);
    }

    #[test]
    fn eviction_of_dirty_page_is_unloaded_dirty() {
        // Fig. 2: loaded --eviction--> unloaded-dirty when dc > 0, i.e. the
        // design avoids a synchronous write-back at eviction.
        let d = PageDescriptor::new(0);
        d.lock().content = Some(vec![1u8; 64].into_boxed_slice());
        d.inc_dirty();
        d.lock().content = None; // evict without any I/O
        assert_eq!(d.state(), PageState::UnloadedDirty);
    }

    #[test]
    fn dirty_counter_can_go_transiently_negative() {
        let d = PageDescriptor::new(0);
        d.dec_dirty(); // cleanup overtakes the writer (paper footnote 4)
        assert_eq!(d.dirty_count(), -1);
        d.inc_dirty();
        assert_eq!(d.dirty_count(), 0);
        assert_eq!(d.state(), PageState::UnloadedClean);
    }

    #[test]
    fn accessed_bit_is_take_once() {
        let d = PageDescriptor::new(0);
        assert!(!d.take_accessed());
        d.mark_accessed();
        assert!(d.take_accessed());
        assert!(!d.take_accessed());
    }

    #[test]
    fn try_lock_fails_when_held() {
        let d = PageDescriptor::new(0);
        let g = d.lock();
        assert!(d.try_lock().is_none());
        drop(g);
        assert!(d.try_lock().is_some());
    }

    #[test]
    fn propagation_queue_is_fifo() {
        let d = PageDescriptor::new(0);
        assert_eq!(d.propagation_front(), None);
        d.enqueue_propagation(3);
        d.enqueue_propagation(9);
        assert_eq!(d.propagation_front(), Some(3));
        d.pop_propagation(3);
        assert_eq!(d.propagation_front(), Some(9));
        d.pop_propagation(9);
        assert_eq!(d.propagation_front(), None);
    }

    #[test]
    #[should_panic(expected = "out-of-order propagation pop")]
    fn out_of_order_pop_is_detected() {
        let d = PageDescriptor::new(0);
        d.enqueue_propagation(1);
        d.enqueue_propagation(2);
        d.pop_propagation(2);
    }
}
