//! The mount-stack builder: [`NvCacheBuilder`] assembles an
//! [`NvCache`](crate::NvCache) over one or many inner backends and mounts it
//! by formatting a fresh region or recovering an existing one.
//!
//! The paper's constructor pair (`format`/`recover`) hard-wired exactly one
//! inner file system and one construction mode each. The builder composes
//! the same pieces — NVMM region, inner backend(s), configuration, mount
//! mode — explicitly, and is the only way to mount a **tiered** stack where
//! a [`Router`] spreads files over several backends:
//!
//! ```
//! use std::sync::Arc;
//! use nvcache::{Mount, NvCache, NvCacheConfig, PathPrefixRouter};
//! use nvmm::{NvDimm, NvRegion, NvmmProfile};
//! use simclock::ActorClock;
//! use vfs::{FileSystem, MemFs};
//!
//! # fn main() -> Result<(), vfs::IoError> {
//! let clock = ActorClock::new();
//! let cfg = NvCacheConfig::tiny();
//! let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
//! let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
//! let cold: Arc<dyn FileSystem> = Arc::new(MemFs::new());
//! let cache = NvCache::builder(NvRegion::whole(dimm))
//!     .backends(
//!         Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0)),
//!         vec![cold, hot],
//!     )
//!     .config(cfg)
//!     .mode(Mount::Format)
//!     .mount(&clock)?;
//! cache.shutdown(&clock);
//! # Ok(())
//! # }
//! ```
//!
//! A single-backend `Mount::Format` produces a region **byte-identical** to
//! the deprecated `NvCache::format` (the oracle tests pin this down), so
//! adopting the builder is purely an API migration.

use std::sync::Arc;

use nvmm::{NvRegion, PmemInts};
use simclock::ActorClock;
use vfs::{FileSystem, IoError, IoResult, Layer};

use crate::cache::NvCache;
use crate::layout::{self, Layout};
use crate::placement::{PlacementPolicy, RouterPlacement};
use crate::router::{Router, SingleBackend};
use crate::NvCacheConfig;

/// One tier of a [`NvCacheBuilder::backends_stacked`] mount: the layer
/// stack (outermost first, empty = bare) and the inner file system it wraps.
pub type LayeredTier = (Vec<Arc<dyn Layer>>, Arc<dyn FileSystem>);

/// How [`NvCacheBuilder::mount`] treats the NVMM region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mount {
    /// Format the region as a fresh, empty log (destroys previous content).
    #[default]
    Format,
    /// Run the recovery procedure on a previously formatted region — replay
    /// committed entries to their recorded backends, sync, empty the log —
    /// then mount. Recovering a legacy (single-backend) image into a
    /// multi-backend stack migrates it: the router places each reopened
    /// file, and the header is stamped v3 afterwards. Interrupted tier
    /// migrations are always repaired from their journal slots; files found
    /// *misplaced* (recovered backend ≠ current router placement) are only
    /// counted, not moved.
    Recover,
    /// [`Mount::Recover`], plus a **repair pass**: after the replay is
    /// durable, every misplaced file is re-homed to the router's current
    /// placement through the crash-safe migration protocol
    /// (copy → stamp → unlink, `core/src/migrate.rs`), so the mount comes
    /// up with `files_misplaced == 0` and the moves counted in
    /// [`RecoveryReport::files_repaired`](crate::RecoveryReport::files_repaired).
    RecoverRepair,
}

/// Builder for mounting an [`NvCache`] stack; obtained from
/// [`NvCache::builder`].
///
/// Defaults: [`NvCacheConfig::default`] configuration, [`Mount::Format`]
/// mode, no backends (at least one of [`backend`](NvCacheBuilder::backend)
/// or [`backends`](NvCacheBuilder::backends) is mandatory).
#[must_use = "a builder does nothing until .mount() is called"]
pub struct NvCacheBuilder {
    region: NvRegion,
    cfg: NvCacheConfig,
    backends: Vec<Arc<dyn FileSystem>>,
    /// One layer stack per backend (empty = bare). Applied and validated at
    /// [`mount`](NvCacheBuilder::mount) time, first element outermost.
    stacks: Vec<Vec<Arc<dyn Layer>>>,
    router: Arc<dyn Router>,
    mode: Mount,
}

impl std::fmt::Debug for NvCacheBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvCacheBuilder")
            .field("backends", &self.backends.len())
            .field("stack_depths", &self.stacks.iter().map(Vec::len).collect::<Vec<_>>())
            .field("router", &self.router)
            .field("mode", &self.mode)
            .finish()
    }
}

impl NvCacheBuilder {
    pub(crate) fn new(region: NvRegion) -> NvCacheBuilder {
        NvCacheBuilder {
            region,
            cfg: NvCacheConfig::default(),
            backends: Vec::new(),
            stacks: Vec::new(),
            router: Arc::new(SingleBackend),
            mode: Mount::Format,
        }
    }

    /// Mounts over a single inner backend (the paper's deployment). Replaces
    /// any previously set backends and installs the implicit
    /// [`SingleBackend`] router.
    pub fn backend(mut self, inner: Arc<dyn FileSystem>) -> Self {
        self.stacks = vec![Vec::new()];
        self.backends = vec![inner];
        self.router = Arc::new(SingleBackend);
        self
    }

    /// Mounts over several inner backends, with `router` deciding which
    /// backend owns each file (see [`Router`]). `inners[i]` is backend `i`.
    pub fn backends(mut self, router: Arc<dyn Router>, inners: Vec<Arc<dyn FileSystem>>) -> Self {
        self.stacks = vec![Vec::new(); inners.len()];
        self.backends = inners;
        self.router = router;
        self
    }

    /// Mounts over a single inner backend wrapped in a vertical layer stack
    /// (first element outermost — see [`vfs::stack`]), so the tier the
    /// cache drains into can be e.g. `crypt(delay(ssd))`:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use nvcache::{NvCache, NvCacheConfig};
    /// use nvmm::{NvDimm, NvRegion, NvmmProfile};
    /// use simclock::{ActorClock, SimTime};
    /// use vfs::{CryptLayer, DelayLayer, MemFs};
    ///
    /// # fn main() -> Result<(), vfs::IoError> {
    /// let clock = ActorClock::new();
    /// let cfg = NvCacheConfig::tiny();
    /// let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    /// let cache = NvCache::builder(NvRegion::whole(dimm))
    ///     .backend_stack(
    ///         vec![
    ///             Arc::new(CryptLayer::new(0xFEED)),
    ///             Arc::new(DelayLayer::fixed(SimTime::from_micros(5))),
    ///         ],
    ///         Arc::new(MemFs::new()),
    ///     )
    ///     .config(cfg)
    ///     .mount(&clock)?;
    /// cache.shutdown(&clock);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// The cleanup, migration and recovery paths work unchanged through any
    /// stack, because a layered backend *is* a plain
    /// [`FileSystem`]. The stack is validated (depth bound) at
    /// [`mount`](NvCacheBuilder::mount).
    pub fn backend_stack(
        mut self,
        layers: Vec<Arc<dyn Layer>>,
        inner: Arc<dyn FileSystem>,
    ) -> Self {
        self.stacks = vec![layers];
        self.backends = vec![inner];
        self.router = Arc::new(SingleBackend);
        self
    }

    /// Mounts over several inner backends, each wrapped in its own layer
    /// stack (`tiers[i]` = `(layers, inner)` for backend `i`, empty layer
    /// vec = bare). The layered combination of [`backends`](Self::backends)
    /// and [`backend_stack`](Self::backend_stack).
    pub fn backends_stacked(mut self, router: Arc<dyn Router>, tiers: Vec<LayeredTier>) -> Self {
        let (stacks, backends) = tiers.into_iter().unzip();
        self.stacks = stacks;
        self.backends = backends;
        self.router = router;
        self
    }

    /// Sets the cache configuration (defaults to [`NvCacheConfig::default`]).
    /// The builder overrides [`NvCacheConfig::backends`] with the actual
    /// backend count at mount time.
    ///
    /// Geometry knobs (`entry_size`, `nb_entries`, `fd_slots`,
    /// `log_shards`) are burned into the NVMM header and must match on a
    /// [`Mount::Recover`]; purely volatile knobs —
    /// [`sq_pairs`](NvCacheConfig::sq_pairs) among them — leave no trace
    /// in the region and may change freely across remounts (the front-end
    /// queues are rebuilt empty; unacknowledged submissions were never
    /// durable by contract).
    pub fn config(mut self, cfg: NvCacheConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the mount mode (defaults to [`Mount::Format`]).
    pub fn mode(mut self, mode: Mount) -> Self {
        self.mode = mode;
        self
    }

    /// Mounts the stack: formats or recovers the region per the configured
    /// [`Mount`] mode and starts the cleanup workers.
    ///
    /// # Errors
    ///
    /// [`IoError::InvalidArgument`] if no backend was supplied, the router's
    /// fan-out exceeds the backend count, a layer stack exceeds
    /// [`vfs::MAX_STACK_DEPTH`], the region is too small
    /// ([`Mount::Format`]), or the region's on-NVMM geometry disagrees with
    /// the configuration ([`Mount::Recover`] — including an attempt to mount
    /// a tiered image with fewer backends than it references). Recovery
    /// itself can surface any inner-file-system error.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent
    /// ([`NvCacheConfig::validate`]).
    pub fn mount(self, clock: &ActorClock) -> IoResult<NvCache> {
        let NvCacheBuilder { region, cfg, backends, stacks, router, mode } = self;
        if backends.is_empty() {
            return Err(IoError::InvalidArgument(
                "NvCacheBuilder needs at least one backend (.backend() or .backends())".into(),
            ));
        }
        if router.fan_out() > backends.len() {
            return Err(IoError::InvalidArgument(format!(
                "router {:?} fans out to {} backends but only {} were supplied",
                router,
                router.fan_out(),
                backends.len()
            )));
        }
        // Apply the per-tier layer stacks (validated here: depth bound).
        // Everything below — cleanup, migration, recovery — sees only the
        // wrapped Arc<dyn FileSystem> and works unchanged.
        let backends: Vec<Arc<dyn FileSystem>> = backends
            .into_iter()
            .zip(stacks)
            .map(|(inner, layers)| vfs::stack(&layers, inner))
            .collect::<IoResult<_>>()?;
        let cfg = cfg.with_backends(backends.len());
        cfg.validate();
        let backends: Box<[Arc<dyn FileSystem>]> = backends.into();
        match mode {
            Mount::Format => {
                format_region(&region, &cfg, clock)?;
                Ok(NvCache::start(region, backends, router, cfg, None, Vec::new()))
            }
            Mount::Recover | Mount::RecoverRepair => {
                check_geometry(&region, &cfg)?;
                // Misplacement (and the repair pass's target) is judged by
                // the mount's placement policy; recovered files carry only
                // whatever temperature summary a heat-format image persisted
                // (nothing otherwise), so the policy's cold placement
                // applies to everything below the retain threshold.
                let placement: Arc<dyn PlacementPolicy> =
                    cfg.placement.clone().unwrap_or_else(|| Arc::new(RouterPlacement));
                // Recovery stamps the (possibly migrated) backend count and
                // heat-format epoch itself — before its repair pass, whose
                // journal slots need the v3 header to be parseable after a
                // crash mid-repair.
                let (report, misplaced, heat_seeds) = crate::recovery::recover(
                    &region,
                    &backends,
                    router.as_ref(),
                    placement.as_ref(),
                    cfg.backends,
                    cfg.persist_heat,
                    mode == Mount::RecoverRepair,
                    clock,
                )?;
                let cache = NvCache::start(region, backends, router, cfg, Some(report), misplaced);
                // Re-seed the heat catalog from the image's persisted
                // summaries: the next sweep re-promotes the recovered hot
                // set without a single file being re-touched. Only when the
                // policy actually reads temperature — seeding a
                // router-placed mount would grow the catalog for nothing.
                if cache.shared.track_heat && !heat_seeds.is_empty() {
                    cache.shared.migrator.seed_heat(heat_seeds, clock.now(), &cache.shared.stats);
                }
                Ok(cache)
            }
        }
    }
}

/// Writes a fresh log image (header, invalid fd slots, free entries) —
/// the paper's `format` step. A `log_shards = 1`, single-backend format is
/// byte-for-byte identical to the seed image.
fn format_region(region: &NvRegion, cfg: &NvCacheConfig, clock: &ActorClock) -> IoResult<()> {
    let lay = Layout::for_config(cfg);
    if region.len() < lay.total_bytes() {
        return Err(IoError::InvalidArgument(format!(
            "region of {} bytes cannot hold the configured log ({} bytes)",
            region.len(),
            lay.total_bytes()
        )));
    }
    region.write_u64(layout::OFF_MAGIC, layout::MAGIC, clock);
    region.write_u64(layout::OFF_ENTRY_SIZE, cfg.entry_size as u64, clock);
    region.write_u64(layout::OFF_NB_ENTRIES, cfg.nb_entries, clock);
    region.write_u64(layout::OFF_PTAIL, 0, clock);
    region.write_u64(layout::OFF_FD_SLOTS, cfg.fd_slots as u64, clock);
    region.write_u64(layout::OFF_PAGE_SIZE, cfg.page_size as u64, clock);
    if cfg.log_shards > 1 {
        // v2 header: the stripe count plus one persistent tail per stripe.
        region.write_u64(layout::OFF_LOG_SHARDS, cfg.log_shards as u64, clock);
        for s in 0..cfg.log_shards as u64 {
            region.write_u64(layout::OFF_STRIPE_TAILS + 8 * s, 0, clock);
        }
    } else {
        // Single stripe: store the v1 encoding (0). On a fresh region this
        // writes the bytes already there — byte-for-byte seed compatibility
        // — while clearing a stale shard count when a previously striped
        // region is reformatted.
        region.write_u64(layout::OFF_LOG_SHARDS, 0, clock);
    }
    // Same encoding trick for the backend count: 0 = single backend (the
    // v1/v2 formats), so a one-backend builder mount stays seed-identical.
    let backends_word = if cfg.backends > 1 { cfg.backends as u64 } else { 0 };
    region.write_u64(layout::OFF_BACKENDS, backends_word, clock);
    // And for the heat-format epoch: 0 = no heat words in the fd slots.
    // Written (and flushed on its own line, away from the prefix below)
    // even when 0, so reformatting a region that previously persisted heat
    // clears the stale epoch.
    let heat_word = if lay.heat_slots() { layout::HEAT_EPOCH } else { 0 };
    region.write_u64(layout::OFF_HEAT_EPOCH, heat_word, clock);
    region.pwb(layout::OFF_HEAT_EPOCH, 8);
    // Flush only the written header prefix, not all of `HEADER_BYTES`: the
    // rest of the header area is never-stored padding, and flushing those
    // clean lines is pure overhead (flagged by the pmcheck redundant-pwb
    // lint). The stripe-tail array is the last field written (shards > 1).
    let header_written = if cfg.log_shards > 1 {
        layout::OFF_STRIPE_TAILS + 8 * cfg.log_shards as u64
    } else {
        layout::OFF_BACKENDS + 8
    };
    region.pwb(0, header_written as usize);
    for slot in 0..cfg.fd_slots {
        let base = lay.fd_slot(slot);
        region.write_u64(base, 0, clock);
        region.pwb(base, 8);
    }
    for slot in 0..cfg.nb_entries {
        let base = lay.entry(slot);
        region.write_u64(base + layout::ENT_COMMIT, 0, clock);
        region.pwb(base + layout::ENT_COMMIT, 8);
    }
    region.psync(clock);
    Ok(())
}

/// Pre-recovery check that the on-NVMM geometry agrees with `cfg`. The
/// backend count may *grow* across a recovery (v2 → v3 migration, or adding
/// tiers to a tiered image); it must never shrink below what the image's fd
/// slots may reference.
fn check_geometry(region: &NvRegion, cfg: &NvCacheConfig) -> IoResult<()> {
    if region.read_u64(layout::OFF_ENTRY_SIZE) != cfg.entry_size as u64
        || region.read_u64(layout::OFF_NB_ENTRIES) != cfg.nb_entries
        || region.read_u64(layout::OFF_FD_SLOTS) != cfg.fd_slots as u64
        // 0 is the seed (v1) encoding of a single-stripe log.
        || region.read_u64(layout::OFF_LOG_SHARDS).max(1) != cfg.log_shards as u64
    {
        return Err(IoError::InvalidArgument(
            "configuration disagrees with the on-NVMM log geometry".into(),
        ));
    }
    // 0 is the v1/v2 encoding of a single backend.
    let image_backends = region.read_u64(layout::OFF_BACKENDS).max(1);
    if image_backends > cfg.backends as u64 {
        return Err(IoError::InvalidArgument(format!(
            "region references {image_backends} backends but the mount provides only {}",
            cfg.backends
        )));
    }
    // The heat epoch may change across a recovery (recovery clears every fd
    // slot before restamping it), but an epoch this build does not know how
    // to parse means slots whose partitioning we would guess wrong.
    let image_heat = region.read_u64(layout::OFF_HEAT_EPOCH);
    if image_heat != 0 && image_heat != layout::HEAT_EPOCH {
        return Err(IoError::InvalidArgument(format!(
            "region uses heat-summary format epoch {image_heat}, but this build \
             only understands {} (and 0 = none)",
            layout::HEAT_EPOCH
        )));
    }
    Ok(())
}
