//! Tests of the mount-stack builder and multi-backend tiering: the
//! single-backend byte/timing oracle against the legacy `format`
//! constructor, POSIX conformance of a two-tier mount, per-tier drains,
//! cross-backend crash recovery, and the v2 → v3 header migration.

use std::sync::Arc;

use blockdev::{SsdDevice, SsdProfile};
use nvmm::{NvDimm, NvRegion, NvmmProfile, PmemInts};
use simclock::ActorClock;
use vfs::{Ext4, Ext4Profile, FileSystem, IoError, MemFs, OpenFlags};

use crate::layout::{self, FD_BACKEND_OFF, FD_PATH_OFF_V3};
use crate::{Mount, NvCache, NvCacheConfig, PathPrefixRouter, Router, SingleBackend};

/// `(clock, log dimm, cold tier, hot tier, mount)` of a tiered rig.
type TieredRig = (ActorClock, Arc<NvDimm>, Arc<dyn FileSystem>, Arc<dyn FileSystem>, NvCache);

/// A two-tier mount: MemFs on backend 0 (default tier), a second backend on
/// tier 1 for everything under `/hot`.
fn tiered_setup(cfg: NvCacheConfig, tier1: Arc<dyn FileSystem>) -> TieredRig {
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cold: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backends(
            Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0)),
            vec![Arc::clone(&cold), Arc::clone(&tier1)],
        )
        .config(cfg)
        .mount(&clock)
        .expect("tiered mount");
    (clock, dimm, cold, tier1, cache)
}

fn region_bytes(dimm: &NvDimm) -> Vec<u8> {
    let mut buf = vec![0u8; dimm.len() as usize];
    dimm.read_cached(0, &mut buf);
    buf
}

#[test]
fn builder_single_backend_is_byte_and_timing_identical_to_format() {
    // The oracle of the API redesign: mounting through the builder with one
    // backend must produce exactly the persistent image and exactly the
    // virtual timeline of the legacy `NvCache::format`. The write-path
    // comparison parks the cleanup workers (huge batch window): the
    // concurrent drain's batch composition races the OS scheduler, so its
    // virtual timeline is not reproducible between *any* two runs — the
    // deterministic surfaces are the mount itself, the application-side
    // write path, and the persistent bytes after a full drain.
    let cfg = NvCacheConfig {
        nb_entries: 64,
        batch_min: usize::MAX >> 1,
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::tiny()
    };

    let legacy_clock = ActorClock::new();
    let legacy_dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    #[allow(deprecated)]
    let legacy = NvCache::format(
        NvRegion::whole(Arc::clone(&legacy_dimm)),
        Arc::new(MemFs::new()),
        cfg.clone(),
        &legacy_clock,
    )
    .unwrap();

    let builder_clock = ActorClock::new();
    let builder_dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
    let built = NvCache::builder(NvRegion::whole(Arc::clone(&builder_dimm)))
        .backend(Arc::new(MemFs::new()))
        .config(cfg)
        .mount(&builder_clock)
        .unwrap();

    assert_eq!(
        region_bytes(&legacy_dimm),
        region_bytes(&builder_dimm),
        "freshly formatted regions must be byte-identical"
    );
    assert_eq!(legacy_clock.now(), builder_clock.now(), "format timings must be identical");

    // Identical write bursts, nothing draining: bytes and clocks must agree
    // entry for entry and nanosecond for nanosecond.
    let write_burst = |cache: &NvCache, clock: &ActorClock| {
        let fd = cache.open("/oracle", OpenFlags::RDWR | OpenFlags::CREATE, clock).unwrap();
        for i in 0..24u64 {
            cache.pwrite(fd, &[i as u8 + 1; 300], i * 300, clock).unwrap();
        }
        fd
    };
    let lfd = write_burst(&legacy, &legacy_clock);
    let bfd = write_burst(&built, &builder_clock);
    assert_eq!(
        region_bytes(&legacy_dimm),
        region_bytes(&builder_dimm),
        "logged entries must be byte-identical"
    );
    assert_eq!(legacy_clock.now(), builder_clock.now(), "write-path timings must be identical");

    // Drain everything; the settled persistent state (cleared commit words,
    // advanced tails) must still match byte for byte.
    for (cache, fd, clock) in [(&legacy, lfd, &legacy_clock), (&built, bfd, &builder_clock)] {
        cache.flush_log(clock);
        cache.close(fd, clock).unwrap();
        cache.shutdown(clock);
    }
    assert_eq!(
        region_bytes(&legacy_dimm),
        region_bytes(&builder_dimm),
        "drained regions must be byte-identical"
    );
}

#[test]
fn single_backend_builder_mount_keeps_the_seed_header_encoding() {
    let clock = ActorClock::new();
    let cfg = NvCacheConfig::tiny();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend(Arc::new(MemFs::new()))
        .config(cfg)
        .mount(&clock)
        .unwrap();
    let region = NvRegion::whole(Arc::clone(&dimm));
    assert_eq!(region.read_u64(layout::OFF_BACKENDS), 0, "single backend keeps the v1/v2 word");
    assert_eq!(cache.backends().len(), 1);
    assert_eq!(cache.router().fan_out(), 1);
    cache.shutdown(&clock);
}

#[test]
fn tiered_mount_passes_posix_conformance() {
    // The acceptance bar: a two-backend mount (MemFs cold tier, Ext4+SSD
    // hot tier) must be indistinguishable from POSIX. The suite's paths
    // live under /conf — route them to the Ext4+SSD tier so the conformance
    // traffic crosses the tiering machinery, not just the default backend.
    let clock = ActorClock::new();
    let cfg = NvCacheConfig::tiny();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
    let hot: Arc<dyn FileSystem> = Arc::new(Ext4::new("ext4+ssd", ssd, Ext4Profile::default()));
    let cache = NvCache::builder(NvRegion::whole(dimm))
        .backends(
            Arc::new(PathPrefixRouter::new(vec![("/conf".into(), 1)], 0)),
            vec![Arc::new(MemFs::new()), hot],
        )
        .config(cfg)
        .mount(&clock)
        .expect("tiered mount");
    vfs::check_posix_semantics(&cache);
    cache.shutdown(&clock);
}

#[test]
fn writes_route_to_their_tier_and_drain_through_per_tier_queues() {
    let (c, _dimm, cold, hot, cache) = tiered_setup(NvCacheConfig::tiny(), Arc::new(MemFs::new()));
    let hfd = cache.open("/hot/wal", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    let cfd = cache.open("/cold/blob", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(hfd, b"hot bytes", 0, &c).unwrap();
    cache.pwrite(cfd, b"cold bytes", 0, &c).unwrap();
    cache.flush_log(&c);

    // Each file drained to its own tier…
    let h = hot.open("/hot/wal", OpenFlags::RDONLY, &c).unwrap();
    let mut buf = [0u8; 9];
    hot.pread(h, &mut buf, 0, &c).unwrap();
    assert_eq!(&buf, b"hot bytes");
    let l = cold.open("/cold/blob", OpenFlags::RDONLY, &c).unwrap();
    let mut buf = [0u8; 10];
    cold.pread(l, &mut buf, 0, &c).unwrap();
    assert_eq!(&buf, b"cold bytes");
    // …and only its own tier.
    assert!(matches!(cold.open("/hot/wal", OpenFlags::RDONLY, &c), Err(IoError::NotFound(_))));
    assert!(matches!(hot.open("/cold/blob", OpenFlags::RDONLY, &c), Err(IoError::NotFound(_))));

    // The per-backend drain counters saw both tiers.
    let snap = cache.stats().snapshot();
    assert_eq!(snap.per_backend_propagated.len(), 2);
    assert!(snap.per_backend_propagated[0] >= 1, "cold tier must have drained entries");
    assert!(snap.per_backend_propagated[1] >= 1, "hot tier must have drained entries");

    // Reads come back through the cache from both tiers.
    let mut buf = [0u8; 9];
    cache.pread(hfd, &mut buf, 0, &c).unwrap();
    assert_eq!(&buf, b"hot bytes");
    assert!(cache.name().contains("prefix"), "tiered mounts advertise their router");
    cache.shutdown(&c);
}

#[test]
fn cross_tier_rename_fails_with_exdev_same_tier_succeeds() {
    let (c, _dimm, _cold, _hot, cache) =
        tiered_setup(NvCacheConfig::tiny(), Arc::new(MemFs::new()));
    let fd = cache.open("/hot/a", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, b"payload", 0, &c).unwrap();
    cache.close(fd, &c).unwrap();
    assert!(
        matches!(cache.rename("/hot/a", "/cold/a", &c), Err(IoError::CrossDevice(_))),
        "moving a file across tiers must surface EXDEV, like a mount-point crossing"
    );
    cache.rename("/hot/a", "/hot/b", &c).expect("same-tier rename");
    assert_eq!(cache.stat("/hot/b", &c).unwrap().size, 7);
    cache.shutdown(&c);
}

#[test]
fn list_dir_merges_every_tier() {
    let (c, _dimm, _cold, _hot, cache) =
        tiered_setup(NvCacheConfig::tiny(), Arc::new(MemFs::new()));
    // `/hot/*` lives on tier 1, everything else on tier 0: a directory
    // listing of `/` must see both.
    for path in ["/hot/x", "/cold"] {
        let fd = cache.open(path, OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        cache.close(fd, &c).unwrap();
    }
    let listing = cache.list_dir("/hot", &c).unwrap();
    assert_eq!(listing, vec!["/hot/x".to_string()]);
    cache.shutdown(&c);
}

#[test]
fn tiered_mount_requires_enough_backends_for_the_router() {
    let clock = ActorClock::new();
    let cfg = NvCacheConfig::tiny();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let res = NvCache::builder(NvRegion::whole(dimm))
        .backends(
            Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 3)], 0)),
            vec![Arc::new(MemFs::new()), Arc::new(MemFs::new())],
        )
        .config(cfg)
        .mount(&clock);
    assert!(matches!(res, Err(IoError::InvalidArgument(_))));
}

#[test]
fn builder_without_backends_is_rejected() {
    let clock = ActorClock::new();
    let cfg = NvCacheConfig::tiny();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let res = NvCache::builder(NvRegion::whole(dimm)).config(cfg).mount(&clock);
    assert!(matches!(res, Err(IoError::InvalidArgument(_))));
}

#[test]
fn crash_mid_drain_replays_each_entry_to_its_recorded_backend() {
    // The cross-backend crash test of the acceptance criteria: files routed
    // to two different tiers, the process killed before anything drains,
    // and recovery must put every acknowledged byte back on the tier that
    // acknowledged it — resolved through the persisted v3 backend ids, not
    // by re-routing.
    let cfg = NvCacheConfig {
        nb_entries: 256,
        // Park everything in the log: nothing reaches the tiers pre-crash.
        batch_min: usize::MAX >> 1,
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::tiny()
    };
    let (c, dimm, cold, hot, cache) = tiered_setup(cfg.clone(), Arc::new(MemFs::new()));
    let hfd = cache.open("/hot/wal", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    let cfd = cache.open("/cold/blob", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    for i in 0..20u64 {
        cache.pwrite(hfd, format!("hot-{i:03}").as_bytes(), i * 8, &c).unwrap();
        cache.pwrite(cfd, format!("cold{i:03}").as_bytes(), i * 8, &c).unwrap();
    }
    assert_eq!(cache.pending_entries(), 40, "nothing may drain before the crash");
    // Nothing on the tiers yet.
    assert_eq!(hot.stat("/hot/wal", &c).unwrap().size, 0);
    assert_eq!(cold.stat("/cold/blob", &c).unwrap().size, 0);
    cache.abort();
    drop(cache);
    let restarted = Arc::new(dimm.crash_and_restart());

    // The fd slots persisted their backend indices (v3 layout).
    let region = NvRegion::whole(Arc::clone(&restarted));
    assert_eq!(region.read_u64(layout::OFF_BACKENDS), 2, "tiered image must be v3");
    let lay = crate::layout::Layout::for_config(&cfg.clone().with_backends(2));
    let mut slot_backends: Vec<u64> =
        (0..2u32).map(|s| region.read_u64(lay.fd_slot(s) + FD_BACKEND_OFF)).collect();
    slot_backends.sort();
    assert_eq!(slot_backends, vec![0, 1], "one slot per tier");

    let recovered = NvCache::builder(NvRegion::whole(restarted))
        .backends(
            Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0)),
            vec![Arc::clone(&cold), Arc::clone(&hot)],
        )
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&c)
        .expect("tiered recovery");
    let report = recovered.recovery_report().expect("recover mode");
    assert_eq!(report.entries_replayed, 40);
    assert_eq!(report.files_reopened, 2);
    assert_eq!(report.backends_touched, 2);
    assert_eq!(report.files_misplaced, 0, "the unchanged router agrees with every placement");

    // Every entry landed on its own tier.
    let h = hot.open("/hot/wal", OpenFlags::RDONLY, &c).unwrap();
    let l = cold.open("/cold/blob", OpenFlags::RDONLY, &c).unwrap();
    let mut buf = [0u8; 7];
    for i in 0..20u64 {
        hot.pread(h, &mut buf, i * 8, &c).unwrap();
        assert_eq!(&buf, format!("hot-{i:03}").as_bytes(), "hot entry {i}");
        cold.pread(l, &mut buf, i * 8, &c).unwrap();
        assert_eq!(&buf, format!("cold{i:03}").as_bytes(), "cold entry {i}");
    }
    assert!(matches!(cold.open("/hot/wal", OpenFlags::RDONLY, &c), Err(IoError::NotFound(_))));
    assert!(matches!(hot.open("/cold/blob", OpenFlags::RDONLY, &c), Err(IoError::NotFound(_))));
    assert_eq!(recovered.pending_entries(), 0);
    recovered.shutdown(&c);
}

#[test]
fn v2_image_migrates_to_v3_on_tiered_recovery() {
    // Header-migration coverage: a legacy single-backend (v2-header) image
    // recovered into a two-backend stack. Legacy slots carry no backend
    // word; their pending entries must fall back to the legacy backend
    // (index 0) — never be lost to a router that points at a tier the file
    // was never written to — and the header must come out stamped v3.
    let cfg = NvCacheConfig {
        nb_entries: 128,
        batch_min: usize::MAX >> 1,
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::tiny()
    };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let legacy: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend(Arc::clone(&legacy))
        .config(cfg.clone())
        .mount(&clock)
        .unwrap();
    // Both files live on the (only) legacy backend, including one whose
    // path the *future* router will claim for tier 1.
    let hfd = cache.open("/hot/wal", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    let cfd = cache.open("/cold/blob", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(hfd, b"claimed by tier 1", 0, &clock).unwrap();
    cache.pwrite(cfd, b"stays on tier 0", 0, &clock).unwrap();
    cache.abort();
    drop(cache);
    let restarted = Arc::new(dimm.crash_and_restart());
    assert_eq!(NvRegion::whole(Arc::clone(&restarted)).read_u64(layout::OFF_BACKENDS), 0);

    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let recovered = NvCache::builder(NvRegion::whole(Arc::clone(&restarted)))
        .backends(
            Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0)),
            vec![Arc::clone(&legacy), Arc::clone(&hot)],
        )
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("migrating recovery");
    let report = recovered.recovery_report().expect("recover mode");
    assert_eq!(report.entries_replayed, 2);
    assert_eq!(report.files_reopened, 2);
    assert_eq!(report.files_missing, 0, "the fallback must find both files on the legacy tier");
    assert_eq!(report.backends_touched, 1, "everything replays to the legacy backend");
    assert_eq!(
        report.files_misplaced, 1,
        "/hot/wal sits on tier 0 while the router now claims it for tier 1 — \
         the mismatch must be reported, not silent"
    );

    // The acknowledged bytes are intact on the legacy tier…
    let f = legacy.open("/hot/wal", OpenFlags::RDONLY, &clock).unwrap();
    let mut buf = [0u8; 17];
    legacy.pread(f, &mut buf, 0, &clock).unwrap();
    assert_eq!(&buf, b"claimed by tier 1");
    // …nothing was invented on the new tier…
    assert!(matches!(hot.open("/hot/wal", OpenFlags::RDONLY, &clock), Err(IoError::NotFound(_))));
    // …and the image is now v3.
    assert_eq!(NvRegion::whole(restarted).read_u64(layout::OFF_BACKENDS), 2);

    // New files opened after the migration follow the router.
    let nfd = recovered.open("/hot/new", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    recovered.pwrite(nfd, b"routed", 0, &clock).unwrap();
    recovered.flush_log(&clock);
    assert!(hot.open("/hot/new", OpenFlags::RDONLY, &clock).is_ok());
    recovered.shutdown(&clock);
}

#[test]
fn pre_moved_files_recover_onto_their_new_tier() {
    // The other half of the migration contract: when the operator already
    // copied a file to the tier the router assigns, a legacy slot's entries
    // replay *there* (router-first resolution).
    let cfg = NvCacheConfig {
        nb_entries: 128,
        batch_min: usize::MAX >> 1,
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::tiny()
    };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let legacy: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend(Arc::clone(&legacy))
        .config(cfg.clone())
        .mount(&clock)
        .unwrap();
    let fd = cache.open("/hot/wal", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"pending", 0, &clock).unwrap();
    cache.abort();
    drop(cache);
    let restarted = Arc::new(dimm.crash_and_restart());

    // Operator pre-moves the file to the hot tier before remounting.
    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let moved = hot.open("/hot/wal", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    hot.close(moved, &clock).unwrap();

    let recovered = NvCache::builder(NvRegion::whole(restarted))
        .backends(
            Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0)),
            vec![Arc::clone(&legacy), Arc::clone(&hot)],
        )
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("recovery");
    assert_eq!(recovered.recovery_report().unwrap().entries_replayed, 1);
    let f = hot.open("/hot/wal", OpenFlags::RDONLY, &clock).unwrap();
    let mut buf = [0u8; 7];
    hot.pread(f, &mut buf, 0, &clock).unwrap();
    assert_eq!(&buf, b"pending", "the pending entry must land on the pre-moved copy");
    recovered.shutdown(&clock);
}

#[test]
fn tiered_image_cannot_be_mounted_with_fewer_backends() {
    let cfg = NvCacheConfig::tiny();
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let (_c2, _dimm2, _cold, _hot, cache) = {
        let clock = ActorClock::new();
        let cold: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
            .backends(
                Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0)),
                vec![Arc::clone(&cold), Arc::clone(&hot)],
            )
            .config(cfg.clone())
            .mount(&clock)
            .unwrap();
        (clock, Arc::clone(&dimm), cold, hot, cache)
    };
    cache.abort();
    drop(cache);
    let restarted = Arc::new(dimm.crash_and_restart());
    let res = NvCache::builder(NvRegion::whole(restarted))
        .backend(Arc::new(MemFs::new()))
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock);
    assert!(
        matches!(res, Err(IoError::InvalidArgument(_))),
        "a v3 image must refuse to shrink below its recorded backend count"
    );
}

#[test]
fn persisted_backend_beats_a_changed_router_policy() {
    // The acceptance criterion's sharp edge: after a crash, the router's
    // policy may have changed — recovery must still replay to the backend
    // that acknowledged the write (the persisted id), not re-route.
    let cfg = NvCacheConfig {
        nb_entries: 128,
        batch_min: usize::MAX >> 1,
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::tiny()
    };
    let (c, dimm, cold, hot, cache) = tiered_setup(cfg.clone(), Arc::new(MemFs::new()));
    let fd = cache.open("/hot/wal", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.pwrite(fd, b"tier-1 bytes", 0, &c).unwrap();
    cache.abort();
    drop(cache);
    let restarted = Arc::new(dimm.crash_and_restart());

    // Remount with an *inverted* policy: /hot now maps to tier 0.
    #[derive(Debug)]
    struct Inverted;
    impl Router for Inverted {
        fn route(&self, path: &str, _ino: u64) -> usize {
            usize::from(!path.starts_with("/hot"))
        }
        fn fan_out(&self) -> usize {
            2
        }
    }
    let recovered = NvCache::builder(NvRegion::whole(restarted))
        .backends(Arc::new(Inverted), vec![Arc::clone(&cold), Arc::clone(&hot)])
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&c)
        .expect("recovery");
    assert_eq!(recovered.recovery_report().unwrap().entries_replayed, 1);
    // The bytes are on the tier that acknowledged them (1), not where the
    // new policy would place the path (0).
    let f = hot.open("/hot/wal", OpenFlags::RDONLY, &c).unwrap();
    let mut buf = [0u8; 12];
    hot.pread(f, &mut buf, 0, &c).unwrap();
    assert_eq!(&buf, b"tier-1 bytes");
    assert!(matches!(cold.open("/hot/wal", OpenFlags::RDONLY, &c), Err(IoError::NotFound(_))));
    recovered.shutdown(&c);
}

#[test]
fn fd_slots_store_paths_after_the_backend_word() {
    // Layout regression guard: the v3 slot keeps the path NUL-padded right
    // after the backend word.
    let cfg = NvCacheConfig::tiny().with_backends(2);
    let lay = crate::layout::Layout::for_config(&cfg);
    assert_eq!(lay.fd_path_off(), FD_PATH_OFF_V3);
    let (c, dimm, _cold, _hot, cache) = tiered_setup(NvCacheConfig::tiny(), Arc::new(MemFs::new()));
    let fd = cache.open("/hot/p", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    let region = NvRegion::whole(Arc::clone(&dimm));
    // Slot 0 was handed to the first open.
    let base = lay.fd_slot(0);
    assert_eq!(region.read_u64(base), 1, "slot valid");
    assert_eq!(region.read_u64(base + FD_BACKEND_OFF), 1, "backend word");
    let mut path = [0u8; 6];
    region.read_cached(base + FD_PATH_OFF_V3, &mut path);
    assert_eq!(&path, b"/hot/p");
    cache.close(fd, &c).unwrap();
    cache.shutdown(&c);
}

#[test]
fn single_backend_router_is_the_implicit_default() {
    let r = SingleBackend;
    assert_eq!(r.route("/whatever", 9), 0);
}

/// A backend whose `list_dir` always fails with a *real* I/O error (not
/// `NotFound`) — a [`vfs::FaultLayer`] rule, fault injection for the
/// merged-listing path.
fn broken_list_fs(inner: Arc<dyn FileSystem>) -> Arc<dyn FileSystem> {
    use vfs::{FaultLayer, FaultOp, FaultRule, FaultTrigger, Layer};
    FaultLayer::new(vec![FaultRule::new(FaultOp::ListDir, FaultTrigger::AfterBudget(0))
        .with_error(IoError::Other("injected list_dir failure".into()))])
    .wrap(inner)
}

#[test]
fn list_dir_propagates_real_backend_errors_instead_of_partial_listings() {
    // Regression: a non-NotFound error from one tier used to be swallowed
    // whenever another tier answered — the merged listing was silently
    // partial. Only absence may be tolerated.
    let clock = ActorClock::new();
    let cfg = NvCacheConfig::tiny();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let broken = broken_list_fs(Arc::new(MemFs::new()));
    let cache = NvCache::builder(NvRegion::whole(dimm))
        .backends(
            Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0)),
            vec![Arc::new(MemFs::new()), broken],
        )
        .config(cfg)
        .mount(&clock)
        .unwrap();
    // The healthy tier knows the directory; the broken one errors — the
    // listing must fail loudly, not come back partial.
    let fd = cache
        .open("/dir/on-tier0", OpenFlags::RDWR | OpenFlags::CREATE, &clock)
        .unwrap();
    cache.close(fd, &clock).unwrap();
    let res = cache.list_dir("/dir", &clock);
    assert!(
        matches!(res, Err(IoError::Other(_))),
        "a real backend error must propagate, got {res:?}"
    );
    cache.shutdown(&clock);
}

#[test]
fn stat_and_unlink_reach_misplaced_files_on_their_recorded_tier() {
    // Regression: `unlink`/`stat` routed by the *current* policy only, so a
    // policy-orphaned file reported ENOENT while its bytes sat intact on
    // another tier. The probe must honour recorded placement and fall back
    // across tiers.
    let cfg = NvCacheConfig {
        nb_entries: 128,
        batch_min: usize::MAX >> 1,
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::tiny()
    };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let legacy: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend(Arc::clone(&legacy))
        .config(cfg.clone())
        .mount(&clock)
        .unwrap();
    let fd = cache.open("/hot/orphan", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"orphaned bytes", 0, &clock).unwrap();
    cache.abort();
    drop(cache);
    let restarted = Arc::new(dimm.crash_and_restart());

    // Recover into a stack whose router claims /hot/** for tier 1: the
    // file replays to tier 0 and is misplaced from now on.
    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let recovered = NvCache::builder(NvRegion::whole(restarted))
        .backends(
            Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0)),
            vec![Arc::clone(&legacy), Arc::clone(&hot)],
        )
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("recovery");
    assert_eq!(recovered.recovery_report().unwrap().files_misplaced, 1);

    // stat finds the misplaced file (pre-fix: ENOENT from the routed tier).
    assert_eq!(recovered.stat("/hot/orphan", &clock).unwrap().size, 14);
    // unlink removes the actual bytes (pre-fix: ENOENT, bytes left behind).
    recovered
        .unlink("/hot/orphan", &clock)
        .expect("unlink must reach the recorded tier");
    assert!(matches!(legacy.stat("/hot/orphan", &clock), Err(IoError::NotFound(_))));
    assert!(matches!(recovered.stat("/hot/orphan", &clock), Err(IoError::NotFound(_))));
    recovered.shutdown(&clock);
}

#[test]
fn rename_of_a_missing_source_is_enoent_not_exdev() {
    // Regression: `rename("/hot/nope", "/cold/x")` compared routes before
    // checking existence, reporting EXDEV for a file that does not exist.
    // POSIX orders ENOENT first.
    let (c, _dimm, _cold, _hot, cache) =
        tiered_setup(NvCacheConfig::tiny(), Arc::new(MemFs::new()));
    let res = cache.rename("/hot/nope", "/cold/nope", &c);
    assert!(
        matches!(res, Err(IoError::NotFound(_))),
        "nonexistent source must be ENOENT even across tiers, got {res:?}"
    );
    // A real cross-tier source still reports EXDEV (default flag).
    let fd = cache.open("/hot/real", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
    cache.close(fd, &c).unwrap();
    assert!(matches!(cache.rename("/hot/real", "/cold/real", &c), Err(IoError::CrossDevice(_))));
    cache.shutdown(&c);
}

#[test]
fn unlinked_file_slot_is_cleared_by_migration_so_the_region_stays_mountable() {
    // Regression: a legacy slot whose file was deliberately unlinked could
    // not be reopened by recovery. If it is left valid across a v2 → v3
    // migration, the *next* recovery parses it with the v3 partitioning —
    // its first path bytes masquerade as a garbage backend word — and the
    // region is wedged forever. The slot must be cleared instead.
    let cfg = NvCacheConfig {
        nb_entries: 128,
        batch_min: usize::MAX >> 1,
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::tiny()
    };
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let legacy: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend(Arc::clone(&legacy))
        .config(cfg.clone())
        .mount(&clock)
        .unwrap();
    let fd = cache.open("/hot/gone", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"will be unlinked", 0, &clock).unwrap();
    // Unlink passes through while the descriptor stays open (its persistent
    // slot therefore stays valid), then crash.
    cache.unlink("/hot/gone", &clock).unwrap();
    cache.abort();
    drop(cache);
    let restarted = Arc::new(dimm.crash_and_restart());

    // First recovery: migrate into a two-tier stack. The dead file resolves
    // nowhere, its entries are discarded, and its slot must be cleared.
    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let router = || Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0));
    let recovered = NvCache::builder(NvRegion::whole(Arc::clone(&restarted)))
        .backends(router(), vec![Arc::clone(&legacy), Arc::clone(&hot)])
        .config(cfg.clone())
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("migrating recovery");
    let report = recovered.recovery_report().unwrap();
    assert_eq!(report.files_missing, 1);
    assert_eq!(report.entries_replayed, 0);
    recovered.abort();
    drop(recovered);

    // Second crash + recovery on the now-v3 image must still mount.
    let restarted = Arc::new(restarted.crash_and_restart());
    let recovered = NvCache::builder(NvRegion::whole(restarted))
        .backends(router(), vec![legacy, hot])
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("v3 image must stay recoverable after the migration");
    assert_eq!(recovered.recovery_report().unwrap().files_missing, 0);
    recovered.shutdown(&clock);
}
