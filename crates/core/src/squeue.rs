//! The multi-queue submission front-end: per-core SQ/CQ pairs with
//! doorbell-batched stripe reservation.
//!
//! A [`QueuePair`] is one simulated core's private lane into the NVMM log.
//! [`submit_pwrite`](QueuePair::submit_pwrite) only copies the payload into
//! the user-space submission ring (no syscall, no fence);
//! [`ring_doorbell`](QueuePair::ring_doorbell) then pays the fixed costs —
//! one libc crossing and, per routed stripe, **one** `pfence`/`psync` pair —
//! for the whole batch. The stripe grants each doorbell a contiguous
//! *reservation window* ([`Log::reserve`](crate::log::Log)) under its
//! `alloc_lock` only; fills and commits happen outside any stripe-wide
//! mutex, so queues interleave freely and only serialize on the short
//! window hand-out.
//!
//! # Ordering and durability contract
//!
//! * A submitted write is **not durable** (and not acknowledged) until its
//!   doorbell returns; a crash mid-doorbell may lose writes whose
//!   completion was never observed, exactly like a torn `io_uring`
//!   submission. Each write is still its own commit group, so recovery
//!   never applies half of one.
//! * Per-page write order follows submission order: a doorbell
//!   conflict-splits its batch so that two writes touching the same page
//!   through *different* stripes never commit out of submission order
//!   (the propagation queues replay per page in ascending global sequence;
//!   see `lib.rs` invariant 3).
//! * Page locks are taken in globally sorted `(file_id, page_no)` order —
//!   the same ascending order the synchronous write path uses within a
//!   file — so doorbells, synchronous writers and the dirty-miss path
//!   cannot deadlock.
//! * Heat, migrator observations and operation counters accumulate locally
//!   in the pair and flush on [`reap`](QueuePair::reap) (or drop), keeping
//!   [`HeatPolicy`](crate::HeatPolicy) decisions and
//!   [`NvCacheStats`](crate::NvCacheStats) totals exact without hot-path
//!   contention ([`Temperature`](crate::Temperature) touches are
//!   out-of-order safe, and the pair replays them with their recorded
//!   commit timestamps).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use simclock::{ActorClock, SimTime};
use vfs::{Fd, IoError, IoResult};

use crate::cache::{NvCache, Shared};
use crate::files::{FileState, OpenedFile};
use crate::pagedesc::PageDescriptor;
use crate::stats::SQ_BATCH_BUCKETS;

/// A completion queue entry: the asynchronous result of one submitted
/// operation, reaped with [`QueuePair::reap`].
#[derive(Debug)]
pub struct Completion {
    /// The token [`QueuePair::submit_pwrite`]/[`QueuePair::submit_flush`]
    /// returned for this operation.
    pub user_data: u64,
    /// What the equivalent synchronous call would have returned (bytes
    /// written for a write, `0` for a flush).
    pub result: IoResult<usize>,
    /// Virtual instant the operation became durable (write) or ordered
    /// (flush) — always within the doorbell that carried it.
    pub completed_at: SimTime,
}

enum SqeOp {
    Write { data: Box<[u8]>, off: u64 },
    Flush,
}

/// A submission queue entry. Holds the resolved descriptor and an
/// in-flight count on its fd slot until the entry completes (or is
/// discarded unrung), so `close` waits for it exactly as it waits for a
/// synchronous call.
struct Sqe {
    user_data: u64,
    opened: Arc<OpenedFile>,
    op: SqeOp,
}

/// Deferred counters, flushed into the mount-wide [`crate::NvCacheStats`]
/// on reap/drop so the hot path touches no shared cache lines.
struct PendingStats {
    writes: u64,
    bytes_logged: u64,
    entries_logged: u64,
    groups_logged: u64,
    per_shard_entries: Vec<u64>,
    sq_submitted: u64,
    sq_doorbells: u64,
    sq_batch_hist: [u64; SQ_BATCH_BUCKETS],
    cq_reap_lag: u64,
}

impl PendingStats {
    fn new(shards: usize) -> PendingStats {
        PendingStats {
            writes: 0,
            bytes_logged: 0,
            entries_logged: 0,
            groups_logged: 0,
            per_shard_entries: vec![0; shards],
            sq_submitted: 0,
            sq_doorbells: 0,
            sq_batch_hist: [0; SQ_BATCH_BUCKETS],
            cq_reap_lag: 0,
        }
    }
}

/// Histogram bucket for a doorbell batch of `n` entries: 1, 2–3, 4–7, …,
/// 64+ (one bucket per power-of-two band, saturating at the last).
fn batch_bucket(n: usize) -> usize {
    debug_assert!(n >= 1);
    (usize::BITS - n.leading_zeros() - 1).min(SQ_BATCH_BUCKETS as u32 - 1) as usize
}

/// One submission/completion queue pair of the multi-queue front-end —
/// claimed from a mount with [`NvCache::queue_pair`], driven by a single
/// submitter (the type is deliberately `!Sync`-shaped: every method takes
/// `&mut self`).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use nvcache::{NvCache, NvCacheConfig};
/// use nvmm::{NvDimm, NvRegion, NvmmProfile};
/// use simclock::ActorClock;
/// use vfs::{FileSystem, MemFs, OpenFlags};
///
/// # fn main() -> Result<(), vfs::IoError> {
/// let clock = ActorClock::new();
/// let cfg = NvCacheConfig::tiny().with_sq_pairs(1);
/// let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
/// let cache = NvCache::builder(NvRegion::whole(dimm))
///     .backend(Arc::new(MemFs::new()))
///     .config(cfg)
///     .mount(&clock)?;
/// let fd = cache.open("/a", OpenFlags::RDWR | OpenFlags::CREATE, &clock)?;
/// let mut qp = cache.queue_pair(0, &clock)?;
/// let ud = qp.submit_pwrite(fd, b"queued", 0, &clock)?;
/// qp.ring_doorbell(&clock); // one fence pair for the whole batch
/// let done = qp.reap(&clock);
/// assert_eq!(done[0].user_data, ud);
/// assert_eq!(*done[0].result.as_ref().unwrap(), 6);
/// drop(qp);
/// cache.close(fd, &clock)?;
/// cache.shutdown(&clock);
/// # Ok(())
/// # }
/// ```
pub struct QueuePair {
    shared: Arc<Shared>,
    index: usize,
    next_user_data: u64,
    sq: Vec<Sqe>,
    cq: VecDeque<Completion>,
    acc: PendingStats,
    /// Deferred `(file, commit instant)` heat touches, applied on reap.
    heat: Vec<(Arc<FileState>, SimTime)>,
}

impl QueuePair {
    pub(crate) fn claim(cache: &NvCache, index: usize, clock: &ActorClock) -> IoResult<QueuePair> {
        let shared = Arc::clone(&cache.shared);
        clock.advance(shared.cfg.libc_overhead); // queue setup is a syscall
        if index >= shared.cfg.sq_pairs {
            return Err(IoError::InvalidArgument(format!(
                "queue pair {index} out of range: the mount has {} \
                 (NvCacheConfig::sq_pairs)",
                shared.cfg.sq_pairs
            )));
        }
        if shared.sq_taken[index].swap(true, Ordering::AcqRel) {
            return Err(IoError::Busy(format!("queue pair {index} is already claimed")));
        }
        let shards = shared.cfg.log_shards;
        Ok(QueuePair {
            shared,
            index,
            next_user_data: 0,
            sq: Vec::new(),
            cq: VecDeque::new(),
            acc: PendingStats::new(shards),
            heat: Vec::new(),
        })
    }

    /// The pair's index (the `index` passed to [`NvCache::queue_pair`]).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Submitted-but-unrung entries in the submission queue.
    pub fn sq_len(&self) -> usize {
        self.sq.len()
    }

    /// Completed-but-unreaped entries in the completion queue.
    pub fn cq_len(&self) -> usize {
        self.cq.len()
    }

    /// Resolves `fd` and takes an in-flight count on its slot (released
    /// when the entry completes or is discarded), mirroring the
    /// synchronous path's close-synchronization handshake.
    fn enter(&self, fd: Fd) -> IoResult<Arc<OpenedFile>> {
        let opened = self
            .shared
            .opened_by_slot(fd.0 as u32)
            .filter(|o| !o.closing.load(Ordering::Acquire))
            .ok_or(IoError::BadFd(fd.0))?;
        let counter = &self.shared.in_flight[opened.slot as usize];
        counter.fetch_add(1, Ordering::AcqRel);
        // Re-check after publication so close() can wait for quiescence.
        if opened.closing.load(Ordering::Acquire) {
            counter.fetch_sub(1, Ordering::AcqRel);
            return Err(IoError::BadFd(fd.0));
        }
        Ok(opened)
    }

    fn exit(&self, opened: &OpenedFile) {
        self.shared.in_flight[opened.slot as usize].fetch_sub(1, Ordering::AcqRel);
    }

    /// Queues a positional write. Costs only the memcpy into the
    /// submission ring (at [`crate::NvCacheConfig::copy_bandwidth`]) — no libc
    /// crossing, no fence; durability is deferred to the next
    /// [`ring_doorbell`](QueuePair::ring_doorbell). Returns the
    /// `user_data` token that identifies the eventual [`Completion`].
    ///
    /// # Errors
    ///
    /// The synchronous path's *submission-time* errors are reported here
    /// and nothing is queued: [`IoError::BadFd`],
    /// [`IoError::PermissionDenied`] (read-only descriptor),
    /// [`IoError::InvalidArgument`] (write larger than a log stripe).
    pub fn submit_pwrite(
        &mut self,
        fd: Fd,
        data: &[u8],
        off: u64,
        clock: &ActorClock,
    ) -> IoResult<u64> {
        let opened = self.enter(fd)?;
        if !opened.flags.writable() {
            self.exit(&opened);
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        let k = data.len().div_ceil(self.shared.cfg.entry_size) as u64;
        let stripe = self.shared.log.route(opened.file.dev_ino, off);
        if k > stripe.capacity() {
            self.exit(&opened);
            return Err(IoError::InvalidArgument(format!(
                "write of {} bytes cannot fit a {}-entry log stripe",
                data.len(),
                stripe.capacity()
            )));
        }
        let user_data = self.next_user_data;
        self.next_user_data += 1;
        self.acc.sq_submitted += 1;
        if data.is_empty() {
            // Nothing to log: complete immediately (the synchronous path's
            // early return).
            self.exit(&opened);
            self.cq
                .push_back(Completion { user_data, result: Ok(0), completed_at: clock.now() });
            return Ok(user_data);
        }
        clock.advance(self.shared.cfg.copy_bandwidth.time_for(data.len() as u64));
        self.sq
            .push(Sqe { user_data, opened, op: SqeOp::Write { data: data.into(), off } });
        Ok(user_data)
    }

    /// Queues a flush barrier: its [`Completion`] is delivered once every
    /// write rung by the same doorbell is durable. Costs nothing at
    /// submission — NVCache's `fsync` is already a no-op (paper Table
    /// III), the barrier only orders completions.
    ///
    /// # Errors
    ///
    /// [`IoError::BadFd`] if the descriptor is not open.
    pub fn submit_flush(&mut self, fd: Fd) -> IoResult<u64> {
        let opened = self.enter(fd)?;
        let user_data = self.next_user_data;
        self.next_user_data += 1;
        self.acc.sq_submitted += 1;
        self.sq.push(Sqe { user_data, opened, op: SqeOp::Flush });
        Ok(user_data)
    }

    /// Rings the doorbell: pays one libc crossing for the batch, then
    /// commits every queued write — grouped by routed stripe, one
    /// reservation window and **one** fence pair per stripe group — and
    /// moves their completions to the CQ. Returns the number of entries
    /// consumed (`0` for an empty ring, which costs nothing).
    pub fn ring_doorbell(&mut self, clock: &ActorClock) -> usize {
        if self.sq.is_empty() {
            return 0;
        }
        clock.advance(self.shared.cfg.libc_overhead);
        let batch = std::mem::take(&mut self.sq);
        let consumed = batch.len();
        self.acc.sq_doorbells += 1;
        self.acc.sq_batch_hist[batch_bucket(consumed)] += 1;

        // Conflict split: within one sub-batch, stripe groups commit
        // sequentially, so two same-page writes routed to *different*
        // stripes could publish global sequence numbers out of submission
        // order. Cut the sub-batch whenever a write touches a page an
        // earlier write reached through another stripe; pages revisited
        // through the *same* stripe stay ordered by the window itself.
        let shared = Arc::clone(&self.shared);
        let mut flushes: Vec<Sqe> = Vec::new();
        let mut sub: Vec<Sqe> = Vec::new();
        let mut touched: HashMap<(u64, u64), usize> = HashMap::new();
        for sqe in batch {
            let SqeOp::Write { ref data, off } = sqe.op else {
                flushes.push(sqe);
                continue;
            };
            let sidx = shared.log.route(sqe.opened.file.dev_ino, off).index;
            let file_id = sqe.opened.file.file_id;
            let pages = shared.pages_of(off, data.len());
            let conflict =
                pages.clone().any(|p| touched.get(&(file_id, p)).is_some_and(|&s| s != sidx));
            if conflict {
                self.run_sub_batch(std::mem::take(&mut sub), clock);
                touched.clear();
            }
            for p in pages {
                touched.insert((file_id, p), sidx);
            }
            sub.push(sqe);
        }
        self.run_sub_batch(sub, clock);

        // Flush barriers complete once the whole doorbell is durable.
        let now = clock.now();
        for f in flushes {
            self.exit(&f.opened);
            self.cq.push_back(Completion {
                user_data: f.user_data,
                result: Ok(0),
                completed_at: now,
            });
        }
        consumed
    }

    /// Commits one conflict-free sub-batch: lock the union of its pages in
    /// sorted order, then per stripe group reserve → fill → commit with one
    /// fence pair → bookkeeping in window order.
    fn run_sub_batch(&mut self, sub: Vec<Sqe>, clock: &ActorClock) {
        if sub.is_empty() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let es = shared.cfg.entry_size;

        // Page descriptors for the whole sub-batch, locked in globally
        // sorted (file_id, page_no) order — consistent with the ascending
        // per-file order of the synchronous write path.
        let mut keys: Vec<((u64, u64), Arc<PageDescriptor>)> = Vec::new();
        {
            let mut seen: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
            for sqe in &sub {
                let SqeOp::Write { ref data, off } = sqe.op else { unreachable!() };
                let file = &sqe.opened.file;
                let radix = file.radix.get().expect("writable open creates the radix tree");
                for p in shared.pages_of(off, data.len()) {
                    if seen.insert((file.file_id, p)) {
                        keys.push(((file.file_id, p), radix.get_or_create(p)));
                    }
                }
            }
        }
        keys.sort_by_key(|&(k, _)| k);
        let desc_of: HashMap<(u64, u64), usize> =
            keys.iter().enumerate().map(|(i, &(k, _))| (k, i)).collect();
        let descs: Vec<Arc<PageDescriptor>> = keys.iter().map(|(_, d)| Arc::clone(d)).collect();
        let mut guards = Vec::with_capacity(descs.len());
        let mut _lock_order = Vec::with_capacity(descs.len());
        for (i, d) in descs.iter().enumerate() {
            let (file_id, page_no) = keys[i].0;
            _lock_order.push(shared.lockcheck.acquire_page(
                crate::lockcheck::Class::PageAtomic,
                file_id,
                page_no,
            ));
            guards.push(d.lock());
        }

        // Group by routed stripe, first-appearance order; submission order
        // within a group (so each stripe's window replays the submitter's
        // order).
        let mut groups: Vec<(usize, Vec<Sqe>)> = Vec::new();
        for sqe in sub {
            let SqeOp::Write { off, .. } = sqe.op else { unreachable!() };
            let sidx = shared.log.route(sqe.opened.file.dev_ino, off).index;
            match groups.iter_mut().find(|(i, _)| *i == sidx) {
                Some((_, v)) => v.push(sqe),
                None => groups.push((sidx, vec![sqe])),
            }
        }

        for (sidx, writes) in groups {
            let stripe = &shared.log.stripes[sidx];
            let cap = stripe.capacity();
            // Carve the group into reservation windows at write
            // boundaries: every chunk fits the stripe (a single write
            // already does, checked at submission).
            let mut failed: Option<IoError> = None;
            let mut chunk: Vec<(Sqe, u64)> = Vec::new();
            let mut chunk_k = 0u64;
            let mut queue: VecDeque<Sqe> = writes.into();
            while let Some(sqe) = queue.pop_front() {
                if let Some(e) = &failed {
                    // The stripe refused a window (poisoned): every write
                    // routed to it this doorbell fails the same way.
                    let err = e.clone();
                    self.exit(&sqe.opened);
                    self.cq.push_back(Completion {
                        user_data: sqe.user_data,
                        result: Err(err),
                        completed_at: clock.now(),
                    });
                    continue;
                }
                let SqeOp::Write { ref data, .. } = sqe.op else { unreachable!() };
                let k = data.len().div_ceil(es) as u64;
                if chunk_k + k > cap {
                    if let Err(e) =
                        self.commit_chunk(stripe, &mut chunk, &desc_of, &descs, &mut guards, clock)
                    {
                        failed = Some(e);
                    }
                    chunk_k = 0;
                }
                chunk_k += k;
                chunk.push((sqe, k));
            }
            if failed.is_none() {
                if let Err(e) =
                    self.commit_chunk(stripe, &mut chunk, &desc_of, &descs, &mut guards, clock)
                {
                    failed = Some(e);
                }
            }
            if let Some(e) = failed {
                for (sqe, _) in chunk.drain(..) {
                    self.exit(&sqe.opened);
                    self.cq.push_back(Completion {
                        user_data: sqe.user_data,
                        result: Err(e.clone()),
                        completed_at: clock.now(),
                    });
                }
            }
        }
    }

    /// Reserves one window for `chunk`, fills every write as its own
    /// commit group, commits them all with a single fence pair, then runs
    /// per-write bookkeeping in window order. On error (poisoned stripe)
    /// the chunk is left untouched for the caller to fail.
    fn commit_chunk(
        &mut self,
        stripe: &crate::log::Stripe,
        chunk: &mut Vec<(Sqe, u64)>,
        desc_of: &HashMap<(u64, u64), usize>,
        descs: &[Arc<PageDescriptor>],
        guards: &mut [parking_lot::MutexGuard<'_, crate::pagedesc::PageSlot>],
        clock: &ActorClock,
    ) -> IoResult<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let shared = Arc::clone(&self.shared);
        let es = shared.cfg.entry_size;
        let ps = shared.cfg.page_size as u64;
        let k_total: u64 = chunk.iter().map(|&(_, k)| k).sum();
        let (first_seq, first_gseq) = shared.log.reserve(stripe, k_total, clock, &shared.stats)?;

        // Fill phase: every write is its own group (per-write recovery
        // atomicity), members pointing at their leader's global slot.
        let mut meta: Vec<(u64, u64)> = Vec::with_capacity(chunk.len());
        let mut seq = first_seq;
        let mut gseq = first_gseq;
        for (sqe, k) in chunk.iter() {
            let SqeOp::Write { ref data, off } = sqe.op else { unreachable!() };
            let leader_slot = stripe.slot(seq);
            for i in 0..*k as usize {
                let part = &data[i * es..((i + 1) * es).min(data.len())];
                let member = (i > 0).then_some(leader_slot);
                stripe.fill_entry(
                    seq + i as u64,
                    gseq + i as u64,
                    sqe.opened.slot,
                    off + (i * es) as u64,
                    part,
                    *k as u32,
                    member,
                    clock,
                );
            }
            meta.push((seq, *k));
            seq += k;
            gseq += k;
        }
        // The doorbell amortization: one pfence + one psync for the whole
        // window instead of one pair per write.
        stripe.commit_batch(&meta, clock);
        let done = clock.now();

        // Bookkeeping in window order, under the sub-batch's page locks:
        // dirty counters, propagation queues (ascending gseq per page),
        // in-place updates of loaded pages, sizes, heat and counters.
        let ordered_handoff = !shared.log.single();
        let mut w_gseq = first_gseq;
        for (sqe, k) in chunk.drain(..) {
            let Sqe { user_data, opened, op } = sqe;
            let SqeOp::Write { data, off } = op else { unreachable!() };
            let file = &opened.file;
            for i in 0..k as usize {
                let e_off = off + (i * es) as u64;
                let e_len = ((i + 1) * es).min(data.len()) - i * es;
                for p in shared.pages_of(e_off, e_len) {
                    let di = desc_of[&(file.file_id, p)];
                    descs[di].inc_dirty();
                    if ordered_handoff {
                        descs[di].enqueue_propagation(w_gseq + i as u64);
                    }
                }
            }
            let mut updated = 0u64;
            for p in shared.pages_of(off, data.len()) {
                let di = desc_of[&(file.file_id, p)];
                if let Some(content) = guards[di].content.as_mut() {
                    let page_start = p * ps;
                    let s = off.max(page_start);
                    let e = (off + data.len() as u64).min(page_start + ps);
                    content[(s - page_start) as usize..(e - page_start) as usize]
                        .copy_from_slice(&data[(s - off) as usize..(e - off) as usize]);
                    updated += e - s;
                }
                descs[di].mark_accessed();
            }
            if updated > 0 {
                clock.advance(shared.cfg.copy_bandwidth.time_for(updated));
            }
            file.size.fetch_max(off + data.len() as u64, Ordering::AcqRel);
            file.writes.fetch_add(1, Ordering::Relaxed); // access heat for the migrator
            if shared.track_heat {
                self.heat.push((Arc::clone(file), done));
            }
            self.acc.writes += 1;
            self.acc.bytes_logged += data.len() as u64;
            self.acc.entries_logged += k;
            self.acc.per_shard_entries[stripe.index] += k;
            if k > 1 {
                self.acc.groups_logged += 1;
            }
            self.exit(&opened);
            self.cq
                .push_back(Completion { user_data, result: Ok(data.len()), completed_at: done });
            w_gseq += k;
        }
        Ok(())
    }

    /// Drains the completion queue, applies the deferred heat touches (in
    /// commit order, with their recorded timestamps) and flushes the
    /// pair's local counters into the mount-wide
    /// [`NvCacheStats`](crate::NvCacheStats).
    pub fn reap(&mut self, clock: &ActorClock) -> Vec<Completion> {
        let now = clock.now();
        let out: Vec<Completion> = self.cq.drain(..).collect();
        for c in &out {
            self.acc.cq_reap_lag += now.saturating_sub(c.completed_at).as_nanos();
        }
        self.apply_heat();
        self.flush_stats();
        out
    }

    fn apply_heat(&mut self) {
        if self.heat.is_empty() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        for (file, t) in self.heat.drain(..) {
            file.touch_heat(t, shared.heat_half_life);
            shared.migrator.observe_time(t);
        }
    }

    fn flush_stats(&mut self) {
        let stats = &self.shared.stats;
        let acc = &mut self.acc;
        stats.writes.fetch_add(acc.writes, Ordering::Relaxed);
        stats.bytes_logged.fetch_add(acc.bytes_logged, Ordering::Relaxed);
        stats.entries_logged.fetch_add(acc.entries_logged, Ordering::Relaxed);
        stats.groups_logged.fetch_add(acc.groups_logged, Ordering::Relaxed);
        for (i, e) in acc.per_shard_entries.iter_mut().enumerate() {
            if *e > 0 {
                stats.per_shard[i].entries_logged.fetch_add(*e, Ordering::Relaxed);
            }
            *e = 0;
        }
        let q = &stats.per_queue[self.index];
        q.sq_submitted.fetch_add(acc.sq_submitted, Ordering::Relaxed);
        q.sq_doorbells.fetch_add(acc.sq_doorbells, Ordering::Relaxed);
        for (i, h) in acc.sq_batch_hist.iter().enumerate() {
            if *h > 0 {
                q.sq_batch_hist[i].fetch_add(*h, Ordering::Relaxed);
            }
        }
        q.cq_reap_lag.fetch_add(acc.cq_reap_lag, Ordering::Relaxed);
        acc.writes = 0;
        acc.bytes_logged = 0;
        acc.entries_logged = 0;
        acc.groups_logged = 0;
        acc.sq_submitted = 0;
        acc.sq_doorbells = 0;
        acc.sq_batch_hist = [0; SQ_BATCH_BUCKETS];
        acc.cq_reap_lag = 0;
    }
}

impl Drop for QueuePair {
    fn drop(&mut self) {
        // Unrung submissions were never acknowledged: discarding them is
        // within the durability contract. Their in-flight counts must
        // still drop so close() does not wait forever.
        for sqe in std::mem::take(&mut self.sq) {
            self.exit(&sqe.opened);
        }
        self.cq.clear();
        // Writes already committed did happen: their heat and counters
        // must land even if the application never reaped.
        self.apply_heat();
        self.flush_stats();
        self.shared.sq_taken[self.index].store(false, Ordering::Release);
    }
}
