//! Operation counters: global [`NvCacheStats`] plus the per-stripe
//! [`ShardStats`] breakdown (propagation, saturation, submission-ring
//! overlap and inner-I/O-error counters), with plain-value snapshots for
//! reporting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-stripe operation counters of a sharded log.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Log entries created in this stripe.
    pub entries_logged: AtomicU64,
    /// Entries propagated by this stripe's cleanup worker.
    pub entries_propagated: AtomicU64,
    /// Cleanup batches completed by this stripe's worker.
    pub cleanup_batches: AtomicU64,
    /// `fsync` calls issued by this stripe's worker.
    pub cleanup_fsyncs: AtomicU64,
    /// Times a writer had to wait for space in this stripe.
    pub log_full_waits: AtomicU64,
    /// Operations this stripe's worker submitted to its I/O ring.
    pub uring_submitted: AtomicU64,
    /// Operations reaped from the ring (equals submitted once idle).
    pub uring_completed: AtomicU64,
    /// Largest number of simultaneously in-flight ring operations observed
    /// (how much overlap `queue_depth` actually bought; `1` on a
    /// synchronous drain).
    pub uring_inflight_peak: AtomicU64,
    /// Inner-file-system errors hit while draining this stripe (each one
    /// poisons the stripe instead of panicking the worker).
    pub inner_io_errors: AtomicU64,
}

impl ShardStats {
    fn snapshot(&self) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            entries_logged: self.entries_logged.load(Ordering::Relaxed),
            entries_propagated: self.entries_propagated.load(Ordering::Relaxed),
            cleanup_batches: self.cleanup_batches.load(Ordering::Relaxed),
            cleanup_fsyncs: self.cleanup_fsyncs.load(Ordering::Relaxed),
            log_full_waits: self.log_full_waits.load(Ordering::Relaxed),
            uring_submitted: self.uring_submitted.load(Ordering::Relaxed),
            uring_completed: self.uring_completed.load(Ordering::Relaxed),
            uring_inflight_peak: self.uring_inflight_peak.load(Ordering::Relaxed),
            inner_io_errors: self.inner_io_errors.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`ShardStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStatsSnapshot {
    /// Log entries created in this stripe.
    pub entries_logged: u64,
    /// Entries propagated by this stripe's cleanup worker.
    pub entries_propagated: u64,
    /// Cleanup batches completed by this stripe's worker.
    pub cleanup_batches: u64,
    /// `fsync` calls issued by this stripe's worker.
    pub cleanup_fsyncs: u64,
    /// Times a writer had to wait for space in this stripe.
    pub log_full_waits: u64,
    /// Operations this stripe's worker submitted to its I/O ring.
    pub uring_submitted: u64,
    /// Operations reaped from the ring.
    pub uring_completed: u64,
    /// Largest in-flight ring population observed.
    pub uring_inflight_peak: u64,
    /// Inner-file-system errors (stripe poisonings).
    pub inner_io_errors: u64,
}

/// Histogram buckets for the doorbell batch-size distribution
/// (`sq_batch_hist`): bucket `i` counts doorbells whose batch size fell in
/// `[2^i, 2^(i+1))`, except the last bucket which is open-ended — i.e.
/// 1, 2–3, 4–7, 8–15, 16–31, 32–63, 64+.
pub const SQ_BATCH_BUCKETS: usize = 7;

/// Per-queue-pair counters of the multi-queue submission front-end
/// (one per [`sq_pairs`](crate::NvCacheConfig::sq_pairs)).
#[derive(Debug)]
pub struct QueueStats {
    /// Operations enqueued on this pair's submission queue.
    pub sq_submitted: AtomicU64,
    /// Doorbells rung (each one batch-commits everything submitted since
    /// the previous doorbell).
    pub sq_doorbells: AtomicU64,
    /// Doorbell batch-size histogram (see [`SQ_BATCH_BUCKETS`]). A mass
    /// stuck in the first bucket means the submitter rings after every
    /// op — paying the synchronous path's fixed costs with extra steps.
    pub sq_batch_hist: [AtomicU64; SQ_BATCH_BUCKETS],
    /// Total virtual nanoseconds between an op's completion and its reap —
    /// divided by completions, the average time completions sat unobserved
    /// in the CQ (a lazy reaper inflates observed latency, not durability).
    pub cq_reap_lag: AtomicU64,
}

impl Default for QueueStats {
    fn default() -> Self {
        QueueStats {
            sq_submitted: AtomicU64::new(0),
            sq_doorbells: AtomicU64::new(0),
            sq_batch_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            cq_reap_lag: AtomicU64::new(0),
        }
    }
}

impl QueueStats {
    fn snapshot(&self) -> QueueStatsSnapshot {
        QueueStatsSnapshot {
            sq_submitted: self.sq_submitted.load(Ordering::Relaxed),
            sq_doorbells: self.sq_doorbells.load(Ordering::Relaxed),
            sq_batch_hist: std::array::from_fn(|i| self.sq_batch_hist[i].load(Ordering::Relaxed)),
            cq_reap_lag: self.cq_reap_lag.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`QueueStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStatsSnapshot {
    /// Operations enqueued on this pair's submission queue.
    pub sq_submitted: u64,
    /// Doorbells rung.
    pub sq_doorbells: u64,
    /// Doorbell batch-size histogram (see [`SQ_BATCH_BUCKETS`]).
    pub sq_batch_hist: [u64; SQ_BATCH_BUCKETS],
    /// Total virtual nanoseconds completions waited in the CQ before reap.
    pub cq_reap_lag: u64,
}

/// Operation counters of an [`NvCache`](crate::NvCache) instance.
#[derive(Debug)]
pub struct NvCacheStats {
    /// Intercepted write calls.
    pub writes: AtomicU64,
    /// Intercepted read calls.
    pub reads: AtomicU64,
    /// Bytes appended to the NVMM log (payload only).
    pub bytes_logged: AtomicU64,
    /// Log entries created.
    pub entries_logged: AtomicU64,
    /// Multi-entry groups created.
    pub groups_logged: AtomicU64,
    /// Reads served entirely from the read cache.
    pub read_hits: AtomicU64,
    /// Page faults into the read cache.
    pub read_misses: AtomicU64,
    /// Misses that required the dirty-miss reconciliation procedure.
    pub dirty_misses: AtomicU64,
    /// Reads that bypassed the read cache (read-only files).
    pub bypass_reads: AtomicU64,
    /// Pages evicted from the read cache.
    pub evictions: AtomicU64,
    /// Times a writer had to wait for log space (saturation events).
    pub log_full_waits: AtomicU64,
    /// Times `open` found the fd table exhausted and had to force a log
    /// drain to reap zombie descriptors before a slot freed up (or the open
    /// failed). Rising values mean
    /// [`fd_slots`](crate::NvCacheConfig::fd_slots) is too small for the
    /// open/close churn.
    pub fd_slot_waits: AtomicU64,
    /// Cleanup batches completed.
    pub cleanup_batches: AtomicU64,
    /// Entries propagated to the inner file system.
    pub entries_propagated: AtomicU64,
    /// `fsync` calls issued by the cleanup workers.
    pub cleanup_fsyncs: AtomicU64,
    /// Entries replayed by recovery.
    pub recovered_entries: AtomicU64,
    /// Inner-file-system errors hit by the cleanup workers (each one
    /// poisons the owning stripe; see
    /// [`NvCache::poisoned_stripes`](crate::NvCache::poisoned_stripes)).
    pub inner_io_errors: AtomicU64,
    /// Files moved between tiers by the migrator (background sweeps,
    /// [`rebalance`](crate::NvCache::rebalance)/[`migrate`](crate::NvCache::migrate)
    /// calls and cross-tier renames; recovery-repair moves are reported in
    /// [`RecoveryReport::files_repaired`](crate::RecoveryReport::files_repaired)
    /// instead). Always `0` on a single-backend mount.
    pub files_migrated: AtomicU64,
    /// Payload bytes copied across tiers by those migrations.
    pub migration_bytes: AtomicU64,
    /// Migrations that moved a file **onto** the placement policy's fast
    /// tier ([`PlacementPolicy::fast_tier`](crate::PlacementPolicy) — `0`
    /// forever under a policy with no fast tier, e.g. the default
    /// [`RouterPlacement`](crate::RouterPlacement)).
    pub files_promoted: AtomicU64,
    /// Migrations that moved a file **off** the fast tier (demotions:
    /// heat decayed below the demote threshold, or the fast-tier budget
    /// evicted the coldest residents).
    pub files_demoted: AtomicU64,
    /// Payload bytes of catalogued (closed) files currently sitting on the
    /// placement policy's fast tier — a gauge, refreshed after every
    /// migration and rebalance sweep; the occupancy the
    /// [`HeatPolicy`](crate::HeatPolicy) budget is enforced against.
    pub fast_tier_bytes: AtomicU64,
    /// Entries a capacity-bounded migrator catalog
    /// ([`catalog_capacity`](crate::NvCacheConfig::catalog_capacity))
    /// dropped to stay within its bound — always correctly-placed cold
    /// files (misplaced or promote-worthy entries are pinned). Always `0`
    /// on an unbounded catalog. A high rate relative to closes means the
    /// capacity is too small for the working set.
    pub catalog_evictions: AtomicU64,
    /// Closes that re-admitted a path the bounded catalog had previously
    /// evicted — each one restarted heat accumulation from the file's
    /// open-time state, so a rising rate means the catalog is thrashing
    /// (capacity below the *recurring* working set).
    pub catalog_readmissions: AtomicU64,
    /// Per-stripe breakdown of the log counters (one entry per
    /// [`log_shards`](crate::NvCacheConfig::log_shards)).
    pub per_shard: Box<[ShardStats]>,
    /// Per-queue-pair front-end counters (one entry per
    /// [`sq_pairs`](crate::NvCacheConfig::sq_pairs); empty when the
    /// multi-queue front-end is off).
    pub per_queue: Box<[QueueStats]>,
    /// Entries propagated to each inner backend (one entry per
    /// [`backends`](crate::NvCacheConfig::backends) — a single element on a
    /// non-tiered mount). Shows how the router actually spread the write
    /// traffic over the tiers.
    pub per_backend_propagated: Box<[AtomicU64]>,
}

impl NvCacheStats {
    /// Counters for a log with `shards` stripes (single backend).
    pub fn with_shards(shards: usize) -> NvCacheStats {
        Self::with_topology(shards, 1)
    }

    /// Counters for a log with `shards` stripes propagating to `backends`
    /// inner file systems.
    pub fn with_topology(shards: usize, backends: usize) -> NvCacheStats {
        Self::with_front_end(shards, backends, 0)
    }

    /// Counters for the full topology: `shards` stripes, `backends` inner
    /// file systems, and `queues` submission/completion queue pairs (`0` =
    /// no multi-queue front-end).
    pub fn with_front_end(shards: usize, backends: usize, queues: usize) -> NvCacheStats {
        let mut per_shard = Vec::with_capacity(shards.max(1));
        per_shard.resize_with(shards.max(1), ShardStats::default);
        let mut per_backend = Vec::with_capacity(backends.max(1));
        per_backend.resize_with(backends.max(1), || AtomicU64::new(0));
        let mut per_queue = Vec::with_capacity(queues);
        per_queue.resize_with(queues, QueueStats::default);
        NvCacheStats {
            writes: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            bytes_logged: AtomicU64::new(0),
            entries_logged: AtomicU64::new(0),
            groups_logged: AtomicU64::new(0),
            read_hits: AtomicU64::new(0),
            read_misses: AtomicU64::new(0),
            dirty_misses: AtomicU64::new(0),
            bypass_reads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            log_full_waits: AtomicU64::new(0),
            fd_slot_waits: AtomicU64::new(0),
            cleanup_batches: AtomicU64::new(0),
            entries_propagated: AtomicU64::new(0),
            cleanup_fsyncs: AtomicU64::new(0),
            recovered_entries: AtomicU64::new(0),
            inner_io_errors: AtomicU64::new(0),
            files_migrated: AtomicU64::new(0),
            migration_bytes: AtomicU64::new(0),
            files_promoted: AtomicU64::new(0),
            files_demoted: AtomicU64::new(0),
            fast_tier_bytes: AtomicU64::new(0),
            catalog_evictions: AtomicU64::new(0),
            catalog_readmissions: AtomicU64::new(0),
            per_shard: per_shard.into_boxed_slice(),
            per_queue: per_queue.into_boxed_slice(),
            per_backend_propagated: per_backend.into_boxed_slice(),
        }
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> NvCacheStatsSnapshot {
        NvCacheStatsSnapshot {
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            bytes_logged: self.bytes_logged.load(Ordering::Relaxed),
            entries_logged: self.entries_logged.load(Ordering::Relaxed),
            groups_logged: self.groups_logged.load(Ordering::Relaxed),
            read_hits: self.read_hits.load(Ordering::Relaxed),
            read_misses: self.read_misses.load(Ordering::Relaxed),
            dirty_misses: self.dirty_misses.load(Ordering::Relaxed),
            bypass_reads: self.bypass_reads.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            log_full_waits: self.log_full_waits.load(Ordering::Relaxed),
            fd_slot_waits: self.fd_slot_waits.load(Ordering::Relaxed),
            cleanup_batches: self.cleanup_batches.load(Ordering::Relaxed),
            entries_propagated: self.entries_propagated.load(Ordering::Relaxed),
            cleanup_fsyncs: self.cleanup_fsyncs.load(Ordering::Relaxed),
            recovered_entries: self.recovered_entries.load(Ordering::Relaxed),
            inner_io_errors: self.inner_io_errors.load(Ordering::Relaxed),
            files_migrated: self.files_migrated.load(Ordering::Relaxed),
            migration_bytes: self.migration_bytes.load(Ordering::Relaxed),
            files_promoted: self.files_promoted.load(Ordering::Relaxed),
            files_demoted: self.files_demoted.load(Ordering::Relaxed),
            fast_tier_bytes: self.fast_tier_bytes.load(Ordering::Relaxed),
            catalog_evictions: self.catalog_evictions.load(Ordering::Relaxed),
            catalog_readmissions: self.catalog_readmissions.load(Ordering::Relaxed),
            per_shard: self.per_shard.iter().map(ShardStats::snapshot).collect(),
            per_queue: self.per_queue.iter().map(QueueStats::snapshot).collect(),
            per_backend_propagated: self
                .per_backend_propagated
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Default for NvCacheStats {
    fn default() -> Self {
        NvCacheStats::with_shards(1)
    }
}

/// Plain-value snapshot of [`NvCacheStats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NvCacheStatsSnapshot {
    /// Intercepted write calls.
    pub writes: u64,
    /// Intercepted read calls.
    pub reads: u64,
    /// Bytes appended to the NVMM log (payload only).
    pub bytes_logged: u64,
    /// Log entries created.
    pub entries_logged: u64,
    /// Multi-entry groups created.
    pub groups_logged: u64,
    /// Reads served entirely from the read cache.
    pub read_hits: u64,
    /// Page faults into the read cache.
    pub read_misses: u64,
    /// Misses that required the dirty-miss procedure.
    pub dirty_misses: u64,
    /// Reads that bypassed the read cache.
    pub bypass_reads: u64,
    /// Pages evicted from the read cache.
    pub evictions: u64,
    /// Saturation events (writer waited for space).
    pub log_full_waits: u64,
    /// Times `open` hit an exhausted fd table and forced a drain.
    pub fd_slot_waits: u64,
    /// Cleanup batches completed.
    pub cleanup_batches: u64,
    /// Entries propagated to the inner file system.
    pub entries_propagated: u64,
    /// Cleanup `fsync` calls.
    pub cleanup_fsyncs: u64,
    /// Entries replayed by recovery.
    pub recovered_entries: u64,
    /// Inner-file-system errors (stripe poisonings).
    pub inner_io_errors: u64,
    /// Files moved between tiers by the migrator.
    pub files_migrated: u64,
    /// Payload bytes copied across tiers by those migrations.
    pub migration_bytes: u64,
    /// Migrations onto the placement policy's fast tier (promotions).
    pub files_promoted: u64,
    /// Migrations off the fast tier (demotions).
    pub files_demoted: u64,
    /// Catalogued payload bytes currently on the fast tier (gauge).
    pub fast_tier_bytes: u64,
    /// Entries evicted from a capacity-bounded migrator catalog.
    pub catalog_evictions: u64,
    /// Closes that re-admitted a previously evicted path (thrash signal).
    pub catalog_readmissions: u64,
    /// Per-stripe breakdown of the log counters.
    pub per_shard: Vec<ShardStatsSnapshot>,
    /// Per-queue-pair front-end counters (empty without `sq_pairs`).
    pub per_queue: Vec<QueueStatsSnapshot>,
    /// Entries propagated to each inner backend (tiered mounts; one element
    /// otherwise).
    pub per_backend_propagated: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_mirrors_counters() {
        let s = NvCacheStats::default();
        s.writes.store(3, Ordering::Relaxed);
        s.dirty_misses.store(1, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.writes, 3);
        assert_eq!(snap.dirty_misses, 1);
        assert_eq!(snap.reads, 0);
    }

    #[test]
    fn per_shard_counters_snapshot_independently() {
        let s = NvCacheStats::with_shards(3);
        assert_eq!(s.per_shard.len(), 3);
        s.per_shard[1].entries_propagated.store(7, Ordering::Relaxed);
        s.per_shard[2].log_full_waits.store(2, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.per_shard[0], ShardStatsSnapshot::default());
        assert_eq!(snap.per_shard[1].entries_propagated, 7);
        assert_eq!(snap.per_shard[2].log_full_waits, 2);
    }

    #[test]
    fn default_has_one_shard() {
        assert_eq!(NvCacheStats::default().per_shard.len(), 1);
        assert_eq!(NvCacheStats::default().per_backend_propagated.len(), 1);
    }

    #[test]
    fn per_backend_counters_follow_the_topology() {
        let s = NvCacheStats::with_topology(2, 3);
        assert_eq!(s.per_shard.len(), 2);
        assert_eq!(s.per_backend_propagated.len(), 3);
        s.per_backend_propagated[2].store(5, Ordering::Relaxed);
        assert_eq!(s.snapshot().per_backend_propagated, vec![0, 0, 5]);
    }

    #[test]
    fn per_queue_counters_follow_the_front_end() {
        assert!(NvCacheStats::with_topology(2, 1).per_queue.is_empty());
        let s = NvCacheStats::with_front_end(1, 1, 4);
        assert_eq!(s.per_queue.len(), 4);
        s.per_queue[3].sq_submitted.store(9, Ordering::Relaxed);
        s.per_queue[3].sq_batch_hist[2].store(1, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.per_queue[0], QueueStatsSnapshot::default());
        assert_eq!(snap.per_queue[3].sq_submitted, 9);
        assert_eq!(snap.per_queue[3].sq_batch_hist[2], 1);
    }
}
