use std::sync::atomic::{AtomicU64, Ordering};

/// Operation counters of an [`NvCache`](crate::NvCache) instance.
#[derive(Debug, Default)]
pub struct NvCacheStats {
    /// Intercepted write calls.
    pub writes: AtomicU64,
    /// Intercepted read calls.
    pub reads: AtomicU64,
    /// Bytes appended to the NVMM log (payload only).
    pub bytes_logged: AtomicU64,
    /// Log entries created.
    pub entries_logged: AtomicU64,
    /// Multi-entry groups created.
    pub groups_logged: AtomicU64,
    /// Reads served entirely from the read cache.
    pub read_hits: AtomicU64,
    /// Page faults into the read cache.
    pub read_misses: AtomicU64,
    /// Misses that required the dirty-miss reconciliation procedure.
    pub dirty_misses: AtomicU64,
    /// Reads that bypassed the read cache (read-only files).
    pub bypass_reads: AtomicU64,
    /// Pages evicted from the read cache.
    pub evictions: AtomicU64,
    /// Times a writer had to wait for log space (saturation events).
    pub log_full_waits: AtomicU64,
    /// Cleanup batches completed.
    pub cleanup_batches: AtomicU64,
    /// Entries propagated to the inner file system.
    pub entries_propagated: AtomicU64,
    /// `fsync` calls issued by the cleanup thread.
    pub cleanup_fsyncs: AtomicU64,
    /// Entries replayed by recovery.
    pub recovered_entries: AtomicU64,
}

impl NvCacheStats {
    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> NvCacheStatsSnapshot {
        NvCacheStatsSnapshot {
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            bytes_logged: self.bytes_logged.load(Ordering::Relaxed),
            entries_logged: self.entries_logged.load(Ordering::Relaxed),
            groups_logged: self.groups_logged.load(Ordering::Relaxed),
            read_hits: self.read_hits.load(Ordering::Relaxed),
            read_misses: self.read_misses.load(Ordering::Relaxed),
            dirty_misses: self.dirty_misses.load(Ordering::Relaxed),
            bypass_reads: self.bypass_reads.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            log_full_waits: self.log_full_waits.load(Ordering::Relaxed),
            cleanup_batches: self.cleanup_batches.load(Ordering::Relaxed),
            entries_propagated: self.entries_propagated.load(Ordering::Relaxed),
            cleanup_fsyncs: self.cleanup_fsyncs.load(Ordering::Relaxed),
            recovered_entries: self.recovered_entries.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`NvCacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NvCacheStatsSnapshot {
    /// Intercepted write calls.
    pub writes: u64,
    /// Intercepted read calls.
    pub reads: u64,
    /// Bytes appended to the NVMM log (payload only).
    pub bytes_logged: u64,
    /// Log entries created.
    pub entries_logged: u64,
    /// Multi-entry groups created.
    pub groups_logged: u64,
    /// Reads served entirely from the read cache.
    pub read_hits: u64,
    /// Page faults into the read cache.
    pub read_misses: u64,
    /// Misses that required the dirty-miss procedure.
    pub dirty_misses: u64,
    /// Reads that bypassed the read cache.
    pub bypass_reads: u64,
    /// Pages evicted from the read cache.
    pub evictions: u64,
    /// Saturation events (writer waited for space).
    pub log_full_waits: u64,
    /// Cleanup batches completed.
    pub cleanup_batches: u64,
    /// Entries propagated to the inner file system.
    pub entries_propagated: u64,
    /// Cleanup `fsync` calls.
    pub cleanup_fsyncs: u64,
    /// Entries replayed by recovery.
    pub recovered_entries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_mirrors_counters() {
        let s = NvCacheStats::default();
        s.writes.store(3, Ordering::Relaxed);
        s.dirty_misses.store(1, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.writes, 3);
        assert_eq!(snap.dirty_misses, 1);
        assert_eq!(snap.reads, 0);
    }
}
