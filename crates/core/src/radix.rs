//! The per-file lock-free radix tree (paper §II-C): maps page numbers to
//! [`PageDescriptor`]s with on-demand node allocation, so concurrent
//! readers/writers can find or create a page's descriptor without a global
//! lock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::pagedesc::PageDescriptor;

/// Fan-out of each radix level (6 bits).
const FANOUT: usize = 64;
/// Levels in the tree: 6 levels x 6 bits = 36 bits of page number, i.e.
/// files up to 2^36 pages (256 TiB at 4 KiB pages).
const LEVELS: u32 = 6;
const BITS: u32 = 6;

enum Child {
    Node(Arc<Node>),
    Leaf(Arc<PageDescriptor>),
}

struct Node {
    children: Vec<OnceLock<Child>>,
}

impl Node {
    fn new() -> Arc<Node> {
        let mut children = Vec::with_capacity(FANOUT);
        children.resize_with(FANOUT, OnceLock::new);
        Arc::new(Node { children })
    }
}

/// The per-file lock-free radix tree of page descriptors (paper §II-C/§II-D
/// "Scalable data structures").
///
/// Descriptors are created on demand with compare-and-swap-once semantics
/// (`OnceLock`): racing threads agree on one winner and everyone uses the
/// resulting descriptor. Nothing is ever removed — the whole tree is freed
/// when the file is closed, exactly as the paper specifies ("NVCache never
/// removes elements from the tree, except when it frees the tree upon
/// close").
///
/// # Example
///
/// ```
/// use nvcache::Radix;
/// let r = Radix::new();
/// let a = r.get_or_create(42);
/// let b = r.get_or_create(42);
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// ```
pub struct Radix {
    root: Arc<Node>,
    descriptors: AtomicUsize,
}

impl std::fmt::Debug for Radix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Radix").field("descriptors", &self.len()).finish()
    }
}

impl Default for Radix {
    fn default() -> Self {
        Self::new()
    }
}

impl Radix {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Radix { root: Node::new(), descriptors: AtomicUsize::new(0) }
    }

    /// Number of page descriptors ever created in this tree.
    pub fn len(&self) -> usize {
        self.descriptors.load(Ordering::Relaxed)
    }

    /// Whether the tree holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn index_at(page: u64, level: u32) -> usize {
        // level 0 is the root: most-significant 6-bit group first.
        ((page >> (BITS * (LEVELS - 1 - level))) & (FANOUT as u64 - 1)) as usize
    }

    /// Returns the descriptor for `page` if it exists.
    ///
    /// # Panics
    ///
    /// Panics if `page` exceeds the addressable range (2^36 pages).
    pub fn get(&self, page: u64) -> Option<Arc<PageDescriptor>> {
        assert!(page < 1 << (BITS * LEVELS), "page number out of radix range");
        let mut node = Arc::clone(&self.root);
        for level in 0..LEVELS - 1 {
            let idx = Self::index_at(page, level);
            match node.children[idx].get()? {
                Child::Node(n) => {
                    let next = Arc::clone(n);
                    node = next;
                }
                Child::Leaf(_) => unreachable!("leaf above the last level"),
            }
        }
        match node.children[Self::index_at(page, LEVELS - 1)].get()? {
            Child::Leaf(d) => Some(Arc::clone(d)),
            Child::Node(_) => unreachable!("node at the leaf level"),
        }
    }

    /// Returns the descriptor for `page`, creating it (and any missing
    /// interior nodes) with CAS-once semantics.
    ///
    /// # Panics
    ///
    /// Panics if `page` exceeds the addressable range (2^36 pages).
    pub fn get_or_create(&self, page: u64) -> Arc<PageDescriptor> {
        assert!(page < 1 << (BITS * LEVELS), "page number out of radix range");
        let mut node = Arc::clone(&self.root);
        for level in 0..LEVELS - 1 {
            let idx = Self::index_at(page, level);
            let child = node.children[idx].get_or_init(|| Child::Node(Node::new()));
            match child {
                Child::Node(n) => {
                    let next = Arc::clone(n);
                    node = next;
                }
                Child::Leaf(_) => unreachable!("leaf above the last level"),
            }
        }
        let idx = Self::index_at(page, LEVELS - 1);
        let mut created = false;
        let child = node.children[idx].get_or_init(|| {
            created = true;
            Child::Leaf(Arc::new(PageDescriptor::new(page)))
        });
        if created {
            self.descriptors.fetch_add(1, Ordering::Relaxed);
        }
        match child {
            Child::Leaf(d) => Arc::clone(d),
            Child::Node(_) => unreachable!("node at the leaf level"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_then_get_same_descriptor() {
        let r = Radix::new();
        let d = r.get_or_create(123_456_789);
        assert_eq!(d.page_no(), 123_456_789);
        let again = r.get(123_456_789).expect("present");
        assert!(Arc::ptr_eq(&d, &again));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn missing_page_is_none() {
        let r = Radix::new();
        assert!(r.get(5).is_none());
        r.get_or_create(5);
        assert!(r.get(4).is_none());
    }

    #[test]
    fn dense_and_sparse_pages_coexist() {
        let r = Radix::new();
        for p in 0..100u64 {
            r.get_or_create(p);
        }
        r.get_or_create((1 << 36) - 1);
        assert_eq!(r.len(), 101);
        assert!(r.get(99).is_some());
        assert!(r.get((1 << 36) - 1).is_some());
    }

    #[test]
    fn concurrent_creation_converges() {
        let r = Arc::new(Radix::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                (0..512u64)
                    .map(|p| Arc::as_ptr(&r.get_or_create(p)) as usize)
                    .collect::<Vec<_>>()
            }));
        }
        let results: Vec<Vec<usize>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for other in &results[1..] {
            assert_eq!(&results[0], other, "all threads must see the same descriptors");
        }
        assert_eq!(r.len(), 512);
    }

    #[test]
    #[should_panic(expected = "out of radix range")]
    fn page_out_of_range_panics() {
        Radix::new().get_or_create(1 << 36);
    }
}
