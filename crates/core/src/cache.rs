//! The NVCache façade: [`NvCache`] (format/recover/shutdown, the
//! intercepted `FileSystem` surface of paper Table III) and the [`Shared`]
//! state joining the application-facing write/read paths with the
//! per-stripe cleanup workers (write path → stripe routing, read cache and
//! dirty-miss procedure, close/zombie drain bookkeeping).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use nvmm::NvRegion;
use parking_lot::{Mutex, RwLock};
use simclock::ActorClock;
use vfs::{Fd, FileSystem, IoError, IoResult, Metadata, OpenFlags, SeekFrom};

use crate::builder::{Mount, NvCacheBuilder};
use crate::files::{FdSlotAllocator, FileState, OpenedFile, PersistentFdTable};
use crate::layout::{self, Layout};
use crate::lockcheck::{Class, Recorder};
use crate::log::Log;
use crate::migrate::{MigrationPolicy, Migrator, RebalanceReport};
use crate::pagedesc::PageDescriptor;
use crate::placement::{quantize_heat, PlacementPolicy, RouterPlacement};
use crate::readcache::ReadCache;
use crate::recovery::RecoveryReport;
use crate::router::Router;
use crate::{NvCacheConfig, NvCacheStats, Radix};

/// A closed descriptor whose log entries have not all drained yet: the
/// persistent fd slot must stay valid until every stripe's cleanup worker
/// passes the corresponding drain target, otherwise recovery could not
/// resolve those entries.
pub(crate) struct Zombie {
    pub opened: Arc<OpenedFile>,
    /// Per-stripe head snapshot taken at close time.
    pub drain_targets: Box<[u64]>,
}

/// State shared between the application-facing API and the cleanup workers.
pub(crate) struct Shared {
    pub cfg: NvCacheConfig,
    /// The inner (propagation target) file systems; a single-backend mount
    /// has exactly one. Indexed by the backend ids the router assigns.
    pub backends: Box<[Arc<dyn FileSystem>]>,
    /// Maps paths to backend indices (consulted at open and for path-based
    /// calls; open descriptors carry their resolved index instead).
    pub router: Arc<dyn Router>,
    pub log: Log,
    pub pool: ReadCache,
    /// file table: (backend, device, inode) -> file structure (paper §III
    /// "Open"). The backend index is part of the key because two inner file
    /// systems may hand out colliding `(dev, ino)` pairs.
    pub files: Mutex<HashMap<(u32, u64, u64), Arc<FileState>>>,
    /// opened table: fd slot -> opened-file structure.
    pub opened: RwLock<HashMap<u32, Arc<OpenedFile>>>,
    /// Lock-free persistent fd-slot allocator (Treiber stack): `open` and
    /// `close` on different descriptors never serialize on slot
    /// bookkeeping, and the multi-queue front-end can resolve descriptors
    /// without touching a global mutex.
    pub fd_slots: FdSlotAllocator,
    /// One claim flag per configured submission queue pair
    /// ([`NvCacheConfig::sq_pairs`]): a pair is owned by exactly one
    /// [`QueuePair`](crate::QueuePair) handle at a time.
    pub sq_taken: Box<[AtomicBool]>,
    /// Closed fds awaiting their last log entries to drain.
    pub zombies: Mutex<Vec<Zombie>>,
    pub stats: NvCacheStats,
    /// Graceful stop: drain the log, then exit.
    pub stop: AtomicBool,
    /// Immediate stop (crash simulation): exit without draining.
    pub kill: AtomicBool,
    /// One virtual clock per cleanup worker (stripe).
    pub cleanup_clocks: Box<[Arc<ActorClock>]>,
    pub next_file_id: AtomicU64,
    /// In-flight intercepted calls per fd slot, for close synchronization.
    pub in_flight: Box<[AtomicU32]>,
    /// The tier migrator: closed-file catalog, migration/path-op gate and
    /// the background worker's clock. Fully inert under
    /// [`MigrationPolicy::Disabled`] or a single backend.
    pub migrator: Migrator,
    /// The placement policy deciding the migrator's targets
    /// ([`RouterPlacement`] unless the configuration installs another one;
    /// see [`NvCacheConfig::placement`]).
    pub placement: Arc<dyn PlacementPolicy>,
    /// Whether per-I/O temperature bookkeeping runs: the mount can migrate
    /// at all AND the policy reads heat
    /// ([`PlacementPolicy::uses_temperature`] — `false` for the default
    /// [`RouterPlacement`]). Computed once at mount; the policy `Arc` is
    /// immutable, and the read/write hot path must not pay vtable calls to
    /// re-derive a constant.
    pub track_heat: bool,
    /// The policy's decay half-life, cached alongside for the same reason.
    pub heat_half_life: Option<simclock::SimTime>,
    /// The mount's lock-order recorder (zero-sized and inert unless the
    /// `pmcheck` feature is on): every blocking lock acquisition in the
    /// crate reports here, and a cyclic acquisition order panics with the
    /// offending edge chain. Shared with the [`Log`]'s stripes and the
    /// [`Migrator`].
    pub lockcheck: Recorder,
}

impl Shared {
    /// The inner file system behind an open descriptor (resolved through the
    /// backend index recorded at open time — never by re-routing).
    pub fn inner_of(&self, opened: &OpenedFile) -> &Arc<dyn FileSystem> {
        &self.backends[opened.backend as usize]
    }

    /// The backend index owning `path` (always `0` on a single-backend
    /// mount, skipping the router entirely).
    pub fn route(&self, path: &str) -> usize {
        if self.backends.len() == 1 {
            0
        } else {
            self.router.route(path, 0)
        }
    }

    pub fn pages_of(&self, off: u64, len: usize) -> std::ops::Range<u64> {
        let ps = self.cfg.page_size as u64;
        if len == 0 {
            return off / ps..off / ps;
        }
        off / ps..(off + len as u64 - 1) / ps + 1
    }

    pub fn opened_by_slot(&self, slot: u32) -> Option<Arc<OpenedFile>> {
        let _lk = self.lockcheck.acquire(Class::OpenedMap, 0);
        self.opened.read().get(&slot).cloned()
    }

    /// Whether any file can move between tiers on this mount (≥ 2 backends
    /// and either a [`MigrationPolicy`] other than `Disabled` or the
    /// cross-tier-rename flag). When `false` the migrator is bypassed
    /// entirely — no gate leases, no catalog growth — so legacy mounts stay
    /// byte- and virtual-time-identical.
    pub fn migration_enabled(&self) -> bool {
        self.backends.len() > 1
            && (self.cfg.migration != MigrationPolicy::Disabled || self.cfg.cross_tier_rename)
    }

    /// Wakes the background migration worker, if one is running.
    pub fn migrator_notify(&self) {
        if self.migration_enabled() && self.cfg.migration == MigrationPolicy::Background {
            self.migrator.notify();
        }
    }

    /// Whether any open descriptor or closed-but-undrained zombie still
    /// references `path` — such a file owns pending log entries tied to its
    /// recorded backend and must not migrate.
    pub fn path_is_open_or_draining(&self, path: &str) -> bool {
        {
            let _lk = self.lockcheck.acquire(Class::OpenedMap, 0);
            if self.opened.read().values().any(|o| o.file.path == path) {
                return true;
            }
        }
        let _lk = self.lockcheck.acquire(Class::Zombies, 0);
        self.zombies.lock().iter().any(|z| z.opened.file.path == path)
    }

    /// Pops a free persistent fd slot (draining finished zombies once if
    /// the allocator is empty), or `None` when the table is genuinely full.
    pub fn take_free_slot(&self, clock: &ActorClock) -> Option<u32> {
        if let Some(slot) = self.fd_slots.acquire() {
            return Some(slot);
        }
        self.drain_zombies(clock);
        self.fd_slots.acquire()
    }

    /// The backend recorded for `path` by this mount — from an open
    /// descriptor, a draining zombie, or the migrator's closed-file catalog
    /// — if any. This beats policy routing for path operations: a misplaced
    /// file's bytes live where they were written, not where the router
    /// would place the path today.
    pub fn recorded_backend(&self, path: &str) -> Option<u32> {
        {
            let _lk = self.lockcheck.acquire(Class::OpenedMap, 0);
            if let Some(o) = self.opened.read().values().find(|o| o.file.path == path) {
                return Some(o.backend);
            }
        }
        {
            let _lk = self.lockcheck.acquire(Class::Zombies, 0);
            if let Some(z) = self.zombies.lock().iter().find(|z| z.opened.file.path == path) {
                return Some(z.opened.backend);
            }
        }
        self.migrator.backend_of(path)
    }

    /// Backend probe order for path operations: the recorded backend first,
    /// then the router's placement, then every remaining tier in index
    /// order (a misplaced or policy-orphaned file must still be reachable
    /// by `stat`/`unlink`, wherever its bytes sit).
    pub fn resolution_order(&self, path: &str) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.backends.len());
        if let Some(b) = self.recorded_backend(path) {
            order.push(b as usize);
        }
        let routed = self.route(path);
        if !order.contains(&routed) {
            order.push(routed);
        }
        for b in 0..self.backends.len() {
            if !order.contains(&b) {
                order.push(b);
            }
        }
        order
    }

    /// The backend actually holding `path`, probing in
    /// [`resolution_order`](Shared::resolution_order). Distinguishes "found
    /// nowhere" (`Ok(None)`) from a real backend error (`Err`).
    pub fn existing_backend(&self, path: &str, clock: &ActorClock) -> IoResult<Option<usize>> {
        for b in self.resolution_order(path) {
            match self.backends[b].stat(path, clock) {
                Ok(_) => return Ok(Some(b)),
                Err(IoError::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Collects this file's still-pending log entries from every stripe,
    /// sorted by global sequence number. The commit-word filter also skips
    /// entries still being filled (their page locks are held by the writer,
    /// and callers hold either the page locks or fd quiescence).
    fn pending_entries_for(
        &self,
        filter: impl Fn(&crate::log::EntryHeader) -> bool,
    ) -> Vec<(usize, u64, crate::log::EntryHeader)> {
        let mut pending: Vec<(usize, u64, crate::log::EntryHeader)> = Vec::new();
        for (si, stripe) in self.log.stripes.iter().enumerate() {
            let tail = stripe.vtail.load(Ordering::Acquire);
            let head = stripe.head.load(Ordering::Acquire);
            for seq in tail..head {
                let hdr = stripe.read_header(seq);
                if hdr.commit == layout::CommitWord::Free || !filter(&hdr) {
                    continue;
                }
                pending.push((si, seq, hdr));
            }
        }
        // Replay order must be the global commit order, not stripe order.
        pending.sort_by_key(|(_, _, hdr)| hdr.seq);
        pending
    }

    /// Propagates this file's still-pending log entries into the kernel
    /// (buffered `pwrite`, **no** fsync): the paper's `close` contract —
    /// "all the writes in user space are actually flushed to the kernel" —
    /// durability already lives in the NVMM log.
    pub fn kernel_flush_file(&self, opened: &Arc<OpenedFile>, clock: &ActorClock) {
        for (si, seq, hdr) in self.pending_entries_for(|h| h.fd_slot == opened.slot) {
            let data = self.log.stripes[si].read_data_cached(seq, hdr.len as usize);
            let descs: Vec<_> = match opened.file.radix.get() {
                Some(radix) => self
                    .pages_of(hdr.file_off, hdr.len as usize)
                    .map(|p| radix.get_or_create(p))
                    .collect(),
                None => Vec::new(),
            };
            let first_page = self.pages_of(hdr.file_off, hdr.len as usize).start;
            let mut guards = Vec::with_capacity(descs.len());
            let mut _lock_order = Vec::with_capacity(descs.len());
            for (j, d) in descs.iter().enumerate() {
                _lock_order.push(self.lockcheck.acquire_page(
                    Class::PageCleanup,
                    opened.file.file_id,
                    first_page + j as u64,
                ));
                guards.push(d.lock_cleanup());
            }
            let _ = self.inner_of(opened).pwrite(opened.inner_fd, &data, hdr.file_off, clock);
            drop(guards);
        }
    }

    /// Completes a deferred close: releases the inner fd, the persistent fd
    /// slot and, on last close, the file structure and its cached pages.
    pub fn finish_close(&self, opened: &Arc<OpenedFile>, clock: &ActorClock) {
        {
            let _lk = self.lockcheck.acquire(Class::OpenedMap, 0);
            self.opened.write().remove(&opened.slot);
        }
        let _ = self.inner_of(opened).close(opened.inner_fd, clock);
        PersistentFdTable::clear(&self.log.region, &self.log.layout, opened.slot, clock);
        self.fd_slots.release(opened.slot);
        if opened.file.open_count.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.pool.purge_file(opened.file.file_id);
            let (dev, ino) = opened.file.dev_ino;
            {
                let _lk = self.lockcheck.acquire(Class::FilesMap, 0);
                self.files.lock().remove(&(opened.backend, dev, ino));
            }
            if self.migration_enabled() {
                // The file is now closed and drained: catalog it (with its
                // accumulated access heat, size and decaying temperature)
                // so sweeps can re-home it, and wake the background
                // worker.
                self.migrator.record_closed(
                    &opened.file.path,
                    opened.backend,
                    opened.file.reads.load(Ordering::Relaxed),
                    opened.file.writes.load(Ordering::Relaxed),
                    opened.file.size.load(Ordering::Relaxed),
                    *opened.file.temperature.lock(),
                    &self.stats,
                );
                self.migrator_notify();
            }
        }
    }

    /// Finishes all zombies whose entries have drained past every stripe's
    /// tail.
    pub fn drain_zombies(&self, clock: &ActorClock) {
        let ready: Vec<Zombie> = {
            let _lk = self.lockcheck.acquire(Class::Zombies, 0);
            let mut z = self.zombies.lock();
            let (done, keep): (Vec<Zombie>, Vec<Zombie>) =
                z.drain(..).partition(|zb| self.log.drained_to(&zb.drain_targets));
            *z = keep;
            done
        };
        for zb in ready {
            self.finish_close(&zb.opened, clock);
        }
    }

    /// The dirty-miss procedure (paper §II-C): reconstruct a fresh page by
    /// re-applying, in *global commit order* across all stripes, every
    /// pending entry that overlaps it. Caller holds the page's atomic lock
    /// *and* cleanup lock.
    fn dirty_miss(
        &self,
        file: &Arc<FileState>,
        page: u64,
        page_buf: &mut [u8],
        clock: &ActorClock,
    ) {
        let ps = self.cfg.page_size as u64;
        let page_start = page * ps;
        let page_end = page_start + ps;
        let overlapping = self.pending_entries_for(|hdr| {
            let e_start = hdr.file_off;
            let e_end = e_start + hdr.len as u64;
            if e_end <= page_start || e_start >= page_end {
                return false;
            }
            match self.opened_by_slot(hdr.fd_slot) {
                Some(op) => Arc::ptr_eq(&op.file, file),
                None => false,
            }
        });
        for (si, seq, hdr) in overlapping {
            let e_start = hdr.file_off;
            let e_end = e_start + hdr.len as u64;
            let data = self.log.stripes[si].read_data(seq, hdr.len as usize, clock);
            let s = e_start.max(page_start);
            let e = e_end.min(page_end);
            page_buf[(s - page_start) as usize..(e - page_start) as usize]
                .copy_from_slice(&data[(s - e_start) as usize..(e - e_start) as usize]);
        }
    }

    /// The write path (paper Algorithm 1, generalized to multi-page and
    /// multi-entry writes): lock pages → append to the routed log stripe →
    /// commit (synchronous durability) → update dirty counters, propagation
    /// queues and loaded page contents → release.
    fn do_pwrite(
        &self,
        opened: &Arc<OpenedFile>,
        data: &[u8],
        off: u64,
        clock: &ActorClock,
    ) -> IoResult<usize> {
        if !opened.flags.writable() {
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        clock.advance(self.cfg.libc_overhead);
        if data.is_empty() {
            return Ok(0);
        }
        let es = self.cfg.entry_size;
        let k = data.len().div_ceil(es) as u64;
        let file = &opened.file;
        // Group commits stay contiguous in a single stripe, routed by the
        // write's first aligned chunk.
        let stripe = self.log.route(file.dev_ino, off);
        if k > stripe.capacity() {
            return Err(IoError::InvalidArgument(format!(
                "write of {} bytes cannot fit a {}-entry log stripe",
                data.len(),
                stripe.capacity()
            )));
        }
        let radix = file.radix.get().expect("writable open creates the radix tree");
        let pages = self.pages_of(off, data.len());
        let first_page = pages.start;
        let descs: Vec<Arc<PageDescriptor>> = pages.map(|p| radix.get_or_create(p)).collect();
        let mut guards = Vec::with_capacity(descs.len());
        let mut _lock_order = Vec::with_capacity(descs.len());
        for (j, d) in descs.iter().enumerate() {
            _lock_order.push(self.lockcheck.acquire_page(
                Class::PageAtomic,
                file.file_id,
                first_page + j as u64,
            ));
            guards.push(d.lock());
        }

        // Append to the write cache (Algorithm 1 ll.14-27). Fails if the
        // stripe was poisoned by an inner I/O error (its worker is gone, so
        // waiting for space could block forever).
        let (first_seq, first_gseq) = self.log.alloc(stripe, k, clock, &self.stats)?;
        let leader_slot = stripe.slot(first_seq);
        for i in 0..k as usize {
            let chunk = &data[i * es..((i + 1) * es).min(data.len())];
            let member = (i > 0).then_some(leader_slot);
            stripe.fill_entry(
                first_seq + i as u64,
                first_gseq + i as u64,
                opened.slot,
                off + (i * es) as u64,
                chunk,
                k as u32,
                member,
                clock,
            );
        }
        stripe.commit_group(first_seq, k, clock);

        // Read-cache maintenance (Algorithm 1 ll.29-31): one dirty-counter
        // increment per (entry, page) overlap — plus, on a striped log, one
        // propagation-queue entry so the cleanup workers replay this page's
        // writes in commit order — and in-place update of loaded contents.
        let ordered_handoff = !self.log.single();
        for i in 0..k as usize {
            let e_off = off + (i * es) as u64;
            let e_len = ((i + 1) * es).min(data.len()) - i * es;
            for p in self.pages_of(e_off, e_len) {
                let desc = &descs[(p - first_page) as usize];
                desc.inc_dirty();
                if ordered_handoff {
                    desc.enqueue_propagation(first_gseq + i as u64);
                }
            }
        }
        let ps = self.cfg.page_size as u64;
        let mut updated_bytes = 0u64;
        let mut guards = guards;
        for (j, d) in descs.iter().enumerate() {
            let slot = &mut *guards[j];
            if let Some(content) = slot.content.as_mut() {
                let p = first_page + j as u64;
                let page_start = p * ps;
                let s = off.max(page_start);
                let e = (off + data.len() as u64).min(page_start + ps);
                content[(s - page_start) as usize..(e - page_start) as usize]
                    .copy_from_slice(&data[(s - off) as usize..(e - off) as usize]);
                updated_bytes += e - s;
            }
            d.mark_accessed();
        }
        if updated_bytes > 0 {
            clock.advance(self.cfg.copy_bandwidth.time_for(updated_bytes));
        }
        file.size.fetch_max(off + data.len() as u64, Ordering::AcqRel);
        file.writes.fetch_add(1, Ordering::Relaxed); // access heat for the migrator
        if self.track_heat {
            let now = clock.now();
            file.touch_heat(now, self.heat_half_life);
            self.migrator.observe_time(now);
        }
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_logged.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.stats.entries_logged.fetch_add(k, Ordering::Relaxed);
        self.stats.per_shard[stripe.index]
            .entries_logged
            .fetch_add(k, Ordering::Relaxed);
        if k > 1 {
            self.stats.groups_logged.fetch_add(1, Ordering::Relaxed);
        }
        Ok(data.len())
    }

    /// The read path (paper §II-C): read cache hit, or miss with optional
    /// dirty-miss reconciliation; read-only files bypass the cache entirely.
    fn do_pread(
        &self,
        opened: &Arc<OpenedFile>,
        buf: &mut [u8],
        off: u64,
        clock: &ActorClock,
    ) -> IoResult<usize> {
        if !opened.flags.readable() {
            return Err(IoError::PermissionDenied("fd opened write-only".into()));
        }
        clock.advance(self.cfg.libc_overhead);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let file = &opened.file;
        file.reads.fetch_add(1, Ordering::Relaxed); // access heat for the migrator
        let size = file.size.load(Ordering::Acquire);
        if off >= size || buf.is_empty() {
            // No data moved, no heat: a tail-style poller hammering EOF
            // must not talk its file onto the fast tier (writes are
            // symmetric — the empty-write return precedes the touch).
            return Ok(0);
        }
        if self.track_heat {
            let now = clock.now();
            file.touch_heat(now, self.heat_half_life);
            self.migrator.observe_time(now);
        }
        let n = buf.len().min((size - off) as usize);
        let Some(radix) = file.radix.get() else {
            // Never opened for writing: the kernel page cache is fresh.
            self.stats.bypass_reads.fetch_add(1, Ordering::Relaxed);
            return self.inner_of(opened).pread(opened.inner_fd, &mut buf[..n], off, clock);
        };
        let ps = self.cfg.page_size as u64;
        let pages = self.pages_of(off, n);
        let first_page = pages.start;
        let descs: Vec<Arc<PageDescriptor>> = pages.map(|p| radix.get_or_create(p)).collect();
        let mut guards = Vec::with_capacity(descs.len());
        let mut _lock_order = Vec::with_capacity(descs.len());
        for (j, d) in descs.iter().enumerate() {
            _lock_order.push(self.lockcheck.acquire_page(
                Class::PageAtomic,
                file.file_id,
                first_page + j as u64,
            ));
            guards.push(d.lock());
        }
        for (j, d) in descs.iter().enumerate() {
            let p = first_page + j as u64;
            if guards[j].content.is_none() {
                self.stats.read_misses.fetch_add(1, Ordering::Relaxed);
                self.pool.make_room(&self.stats);
                let _cl = self.lockcheck.acquire_page(Class::PageCleanup, file.file_id, p);
                let cleanup_guard = d.lock_cleanup();
                let mut page_buf = vec![0u8; ps as usize];
                self.inner_of(opened).pread(opened.inner_fd, &mut page_buf, p * ps, clock)?;
                if d.dirty_count() > 0 {
                    self.stats.dirty_misses.fetch_add(1, Ordering::Relaxed);
                    self.dirty_miss(file, p, &mut page_buf, clock);
                }
                drop(cleanup_guard);
                self.pool.install(d, &mut guards[j], page_buf.into_boxed_slice());
            } else {
                self.stats.read_hits.fetch_add(1, Ordering::Relaxed);
            }
            d.mark_accessed();
            let content = guards[j].content.as_ref().expect("just installed");
            let page_start = p * ps;
            let s = off.max(page_start);
            let e = (off + n as u64).min(page_start + ps);
            buf[(s - off) as usize..(e - off) as usize]
                .copy_from_slice(&content[(s - page_start) as usize..(e - page_start) as usize]);
        }
        clock.advance(self.cfg.copy_bandwidth.time_for(n as u64));
        Ok(n)
    }
}

/// NVCache: a plug-and-play NVMM write cache for legacy applications — the
/// paper's contribution, as a [`FileSystem`] layer wrapping any inner file
/// system.
///
/// Writes are appended synchronously to a circular NVMM log (synchronous
/// durability + durable linearizability), then propagated asynchronously by
/// the cleanup thread through the inner file system. A small volatile read
/// cache keeps read-your-writes consistency. `fsync` is a no-op by design.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use nvcache::{NvCache, NvCacheConfig};
/// use nvmm::{NvDimm, NvRegion, NvmmProfile};
/// use simclock::ActorClock;
/// use vfs::{FileSystem, MemFs, OpenFlags};
///
/// # fn main() -> Result<(), vfs::IoError> {
/// let clock = ActorClock::new();
/// let cfg = NvCacheConfig::tiny();
/// let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
/// let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
/// let cache = NvCache::builder(NvRegion::whole(dimm))
///     .backend(inner)
///     .config(cfg)
///     .mount(&clock)?;
/// let fd = cache.open("/hello", OpenFlags::RDWR | OpenFlags::CREATE, &clock)?;
/// cache.pwrite(fd, b"durable on return", 0, &clock)?;
/// let mut buf = [0u8; 17];
/// cache.pread(fd, &mut buf, 0, &clock)?;
/// assert_eq!(&buf, b"durable on return");
/// cache.close(fd, &clock)?;
/// cache.shutdown(&clock);
/// # Ok(())
/// # }
/// ```
pub struct NvCache {
    pub(crate) shared: Arc<Shared>,
    name: String,
    cleanup: Mutex<Vec<JoinHandle<()>>>,
    /// The background migration worker
    /// ([`MigrationPolicy::Background`] on a tiered mount); `None`
    /// otherwise.
    migrator_worker: Mutex<Option<JoinHandle<()>>>,
    /// The recovery report when the instance was mounted with
    /// [`Mount::Recover`]/[`Mount::RecoverRepair`]; `None` on a fresh
    /// format.
    recovery: Option<RecoveryReport>,
}

impl std::fmt::Debug for NvCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvCache")
            .field("name", &self.name)
            .field("pending_entries", &self.pending_entries())
            .finish()
    }
}

impl NvCache {
    /// Starts building a mount over `region` — the composable replacement
    /// for the original `format`/`recover` constructor pair, and the only
    /// way to assemble a **tiered** (multi-backend) stack. See
    /// [`NvCacheBuilder`].
    pub fn builder(region: NvRegion) -> NvCacheBuilder {
        NvCacheBuilder::new(region)
    }

    /// Formats `region` as a fresh NVCache log over `inner` and starts the
    /// cleanup thread.
    ///
    /// # Errors
    ///
    /// [`IoError::InvalidArgument`] if the region is too small for `cfg`.
    #[deprecated(note = "use NvCache::builder(region).backend(inner).config(cfg).mount(clock)")]
    pub fn format(
        region: NvRegion,
        inner: Arc<dyn FileSystem>,
        cfg: NvCacheConfig,
        clock: &ActorClock,
    ) -> IoResult<NvCache> {
        Self::builder(region).backend(inner).config(cfg).mount(clock)
    }

    /// Runs the recovery procedure on a previously formatted region (replay
    /// committed entries, sync, empty the log) and starts a fresh instance.
    ///
    /// # Errors
    ///
    /// [`IoError::InvalidArgument`] if the region is not a formatted NVCache
    /// log or its geometry disagrees with `cfg`.
    #[deprecated(
        note = "use NvCache::builder(region).backend(inner).config(cfg).mode(Mount::Recover).mount(clock)"
    )]
    pub fn recover(
        region: NvRegion,
        inner: Arc<dyn FileSystem>,
        cfg: NvCacheConfig,
        clock: &ActorClock,
    ) -> IoResult<(NvCache, RecoveryReport)> {
        let cache = Self::builder(region)
            .backend(inner)
            .config(cfg)
            .mode(Mount::Recover)
            .mount(clock)?;
        let report = cache.recovery_report().expect("recover mode always produces a report");
        Ok((cache, report))
    }

    pub(crate) fn start(
        region: NvRegion,
        backends: Box<[Arc<dyn FileSystem>]>,
        router: Arc<dyn Router>,
        cfg: NvCacheConfig,
        recovery: Option<RecoveryReport>,
        misplaced: Vec<(String, u32)>,
    ) -> NvCache {
        let lay = Layout::for_config(&cfg);
        let mut in_flight = Vec::with_capacity(cfg.fd_slots as usize);
        in_flight.resize_with(cfg.fd_slots as usize, || AtomicU32::new(0));
        let mut cleanup_clocks = Vec::with_capacity(cfg.log_shards);
        cleanup_clocks.resize_with(cfg.log_shards, || Arc::new(ActorClock::new()));
        let placement: Arc<dyn PlacementPolicy> =
            cfg.placement.clone().unwrap_or_else(|| Arc::new(RouterPlacement));
        let migration_enabled = backends.len() > 1
            && (cfg.migration != MigrationPolicy::Disabled || cfg.cross_tier_rename);
        let track_heat = migration_enabled && placement.uses_temperature();
        let heat_half_life = placement.half_life();
        let log = Log::new(region, lay, 0);
        let lockcheck = log.lockcheck.clone();
        let migrator = Migrator::new(
            lockcheck.clone(),
            cfg.catalog_capacity,
            Arc::clone(&placement),
            Arc::clone(&router),
            backends.len(),
        );
        let shared = Arc::new(Shared {
            pool: ReadCache::new(cfg.read_cache_pages),
            log,
            backends,
            router,
            files: Mutex::new(HashMap::new()),
            opened: RwLock::new(HashMap::new()),
            fd_slots: FdSlotAllocator::new(cfg.fd_slots),
            sq_taken: {
                let mut taken = Vec::with_capacity(cfg.sq_pairs);
                taken.resize_with(cfg.sq_pairs, || AtomicBool::new(false));
                taken.into_boxed_slice()
            },
            zombies: Mutex::new(Vec::new()),
            stats: NvCacheStats::with_front_end(cfg.log_shards, cfg.backends, cfg.sq_pairs),
            stop: AtomicBool::new(false),
            kill: AtomicBool::new(false),
            cleanup_clocks: cleanup_clocks.into_boxed_slice(),
            next_file_id: AtomicU64::new(1),
            in_flight: in_flight.into_boxed_slice(),
            migrator,
            placement,
            track_heat,
            heat_half_life,
            lockcheck,
            cfg,
        });
        if shared.migration_enabled() {
            // Recovery's misplaced files become migration candidates: a
            // rebalance sweep (or the background worker) re-homes them.
            shared.migrator.seed(misplaced, &shared.stats);
        }
        let name = if shared.backends.len() == 1 {
            format!("nvcache+{}", shared.backends[0].name())
        } else {
            let tiers: Vec<&str> = shared.backends.iter().map(|b| b.name()).collect();
            format!("nvcache+{}[{}]", shared.router.name(), tiers.join("|"))
        };
        if let Some(report) = &recovery {
            shared.stats.recovered_entries.store(report.entries_replayed, Ordering::Relaxed);
        }
        let handles = (0..shared.cfg.log_shards)
            .map(|stripe| {
                let worker = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nvcache-cleanup-{stripe}"))
                    .spawn(move || {
                        // Under pmcheck a checker violation panics the
                        // worker; poison its stripe first so flush_to
                        // waiters fail instead of hanging forever.
                        #[cfg(feature = "pmcheck")]
                        {
                            let shared = Arc::clone(&worker);
                            if let Err(panic) =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    crate::cleanup::run_cleanup(worker, stripe)
                                }))
                            {
                                shared.log.stripes[stripe].poison();
                                std::panic::resume_unwind(panic);
                            }
                        }
                        #[cfg(not(feature = "pmcheck"))]
                        crate::cleanup::run_cleanup(worker, stripe)
                    })
                    .expect("spawn cleanup worker")
            })
            .collect();
        let migrator_worker = (shared.migration_enabled()
            && shared.cfg.migration == MigrationPolicy::Background)
            .then(|| {
                let worker = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("nvcache-migrator".into())
                    .spawn(move || crate::migrate::run_migrator(worker))
                    .expect("spawn migration worker")
            });
        NvCache {
            shared,
            name,
            cleanup: Mutex::new(handles),
            migrator_worker: Mutex::new(migrator_worker),
            recovery,
        }
    }

    /// The recovery report of a [`Mount::Recover`] mount (`None` when the
    /// instance was freshly formatted).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// The configuration in use.
    pub fn config(&self) -> &NvCacheConfig {
        &self.shared.cfg
    }

    /// Operation counters.
    pub fn stats(&self) -> &NvCacheStats {
        &self.shared.stats
    }

    /// The inner (propagation target) file system of a single-backend
    /// mount; the first backend of a tiered one (see
    /// [`backends`](NvCache::backends)).
    pub fn inner(&self) -> &Arc<dyn FileSystem> {
        &self.shared.backends[0]
    }

    /// All inner backends, indexed by the ids the router assigns.
    pub fn backends(&self) -> &[Arc<dyn FileSystem>] {
        &self.shared.backends
    }

    /// The router mapping files to backends
    /// ([`SingleBackend`](crate::SingleBackend) on a one-backend mount).
    pub fn router(&self) -> &Arc<dyn Router> {
        &self.shared.router
    }

    /// The placement policy driving the tier migrator's targets
    /// ([`RouterPlacement`](crate::RouterPlacement) unless the
    /// configuration installed another via
    /// [`NvCacheConfig::with_placement`]).
    pub fn placement(&self) -> &Arc<dyn PlacementPolicy> {
        &self.shared.placement
    }

    /// The first cleanup worker's virtual clock (the only one on a
    /// single-stripe log).
    pub fn cleanup_clock(&self) -> &ActorClock {
        &self.shared.cleanup_clocks[0]
    }

    /// The virtual clocks of all cleanup workers, one per log stripe.
    pub fn cleanup_clocks(&self) -> impl Iterator<Item = &ActorClock> {
        self.shared.cleanup_clocks.iter().map(Arc::as_ref)
    }

    /// Log entries waiting to be propagated.
    pub fn pending_entries(&self) -> u64 {
        self.shared.log.in_flight()
    }

    /// Indices of log stripes poisoned by an inner-file-system error: their
    /// workers have stopped, their pending entries await
    /// [`NvCache::recover`], and writes routed to them fail. Empty in
    /// healthy operation ([`NvCacheStats::inner_io_errors`] counts the
    /// causes).
    pub fn poisoned_stripes(&self) -> Vec<usize> {
        self.shared.log.poisoned_stripes()
    }

    /// Runs one tier-rebalancing sweep on the caller's clock: every closed
    /// file the mount knows about (catalogued at close time, or reported
    /// misplaced by recovery) whose backend disagrees with the placement
    /// policy's target — the router's static placement by default, or the
    /// temperature-driven target of a configured
    /// [`HeatPolicy`](crate::HeatPolicy) — is moved there through the
    /// crash-safe copy → stamp → unlink protocol. Open or still-draining
    /// files are skipped and retried on a later sweep. See
    /// [`RebalanceReport`] and the `migrate` module docs.
    ///
    /// # Errors
    ///
    /// [`IoError::InvalidArgument`] when the mount's
    /// [`MigrationPolicy`](crate::MigrationPolicy) is `Disabled`; any inner
    /// I/O error a migration hits (the sweep stops there — already-moved
    /// files stay moved, the rest stay catalogued).
    pub fn rebalance(&self, clock: &ActorClock) -> IoResult<RebalanceReport> {
        if self.shared.cfg.migration == MigrationPolicy::Disabled {
            return Err(IoError::InvalidArgument(
                "tier migration is disabled (MigrationPolicy::Disabled)".into(),
            ));
        }
        crate::migrate::sweep(&self.shared, clock)
    }

    /// Moves the closed file at `path` to backend `to` with the crash-safe
    /// migration protocol, regardless of the router's placement. Returns
    /// the bytes copied (`0` if the file already lives there).
    ///
    /// # Errors
    ///
    /// [`IoError::InvalidArgument`] when migration is disabled or `to` is
    /// out of range; [`IoError::Busy`] (EBUSY) while the file is open or
    /// draining; [`IoError::NotFound`] if no backend holds the file; any
    /// inner I/O error from the copy.
    pub fn migrate(&self, path: &str, to: usize, clock: &ActorClock) -> IoResult<u64> {
        if self.shared.cfg.migration == MigrationPolicy::Disabled {
            return Err(IoError::InvalidArgument(
                "tier migration is disabled (MigrationPolicy::Disabled)".into(),
            ));
        }
        let path = vfs::normalize_path(path);
        crate::migrate::migrate_path(&self.shared, &path, to, true, clock)
            .map(|moved| moved.map_or(0, |(_, bytes)| bytes))
    }

    /// Claims submission/completion queue pair `index` (a "simulated
    /// core"'s private front-end lane). The mount must have been
    /// configured with [`NvCacheConfig::with_sq_pairs`]; each pair can be
    /// held by at most one [`QueuePair`](crate::QueuePair) handle at a
    /// time (dropping the handle releases the pair).
    ///
    /// # Errors
    ///
    /// [`IoError::InvalidArgument`] when `index` is outside
    /// `0..cfg.sq_pairs`; [`IoError::Busy`] when another handle currently
    /// owns the pair.
    pub fn queue_pair(&self, index: usize, clock: &ActorClock) -> IoResult<crate::QueuePair> {
        crate::squeue::QueuePair::claim(self, index, clock)
    }

    /// Descriptor-table occupancy: `(free, open, zombie)` slot counts.
    pub fn fd_slot_usage(&self) -> (usize, usize, usize) {
        let free = self.shared.fd_slots.free_count() as usize;
        // One table at a time: building the tuple in a single expression
        // kept the `opened` read guard alive across the `zombies` lock
        // (tuple temporaries drop at statement end), which is the reverse
        // of the zombies → opened order the open() slot-retry loop uses —
        // a deadlock window whenever a writer is queued on `opened`.
        let open = {
            let _lk = self.shared.lockcheck.acquire(Class::OpenedMap, 0);
            self.shared.opened.read().len()
        };
        let zombie = {
            let _lk = self.shared.lockcheck.acquire(Class::Zombies, 0);
            self.shared.zombies.lock().len()
        };
        (free, open, zombie)
    }

    /// Files currently resident in the migrator's closed-file catalog —
    /// bounded by [`NvCacheConfig::catalog_capacity`] (plus any pinned
    /// overflow the bound is not allowed to drop: misplaced or
    /// above-threshold entries survive until acted on). Unbounded mounts
    /// report the full catalog size.
    pub fn catalog_resident(&self) -> usize {
        self.shared.migrator.resident()
    }

    /// Blocks until every entry currently in any stripe has been propagated
    /// and fsync'ed by its cleanup worker (the flush barrier drains *all*
    /// stripes). If a stripe is poisoned the barrier returns early — its
    /// entries can only drain through [`NvCache::recover`]; operations
    /// whose correctness *depends* on the drain use the internal
    /// `drained_flush` and propagate the error instead.
    pub fn flush_log(&self, clock: &ActorClock) {
        self.shared.log.flush_all(clock);
    }

    /// A [`flush_log`](NvCache::flush_log) that fails when the drain could
    /// not complete because a stripe is poisoned. Ordering-sensitive
    /// operations (truncate, rename, `O_TRUNC` opens) must not proceed in
    /// that state: their pending entries would stay in NVMM and recovery
    /// would later replay them *over* the operation's effect.
    fn drained_flush(&self, clock: &ActorClock) -> IoResult<()> {
        self.flush_log(clock);
        if self.shared.log.any_poisoned() {
            return Err(IoError::Other(
                "NVCache log stripe poisoned by an inner I/O error: pending entries \
                 cannot drain (recovery required)"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Graceful shutdown: drain every stripe, stop and join the cleanup
    /// workers.
    pub fn shutdown(&self, clock: &ActorClock) {
        self.flush_log(clock);
        self.abort();
    }

    /// Immediate stop (crash simulation): the cleanup workers exit without
    /// draining; pending entries stay in NVMM for [`NvCache::recover`].
    pub fn abort(&self) {
        self.shared.kill.store(true, Ordering::Release);
        self.shared.stop.store(true, Ordering::Release);
        self.shared.log.notify_work_all();
        self.shared.migrator.notify();
        for h in self.cleanup.lock().drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.migrator_worker.lock().take() {
            let _ = h.join();
        }
    }

    fn slot_of(fd: Fd) -> u32 {
        fd.0 as u32
    }

    fn opened(&self, fd: Fd) -> IoResult<Arc<OpenedFile>> {
        self.shared
            .opened_by_slot(Self::slot_of(fd))
            .filter(|o| !o.closing.load(Ordering::Acquire))
            .ok_or(IoError::BadFd(fd.0))
    }

    /// Cursor-based write (libc `write`): appends at the NVCache-maintained
    /// cursor, honouring `O_APPEND` against NVCache's own size.
    ///
    /// # Errors
    ///
    /// Same as [`FileSystem::pwrite`].
    pub fn write(&self, fd: Fd, data: &[u8], clock: &ActorClock) -> IoResult<usize> {
        let opened = self.opened(fd)?;
        let mut cursor = opened.cursor.lock();
        if opened.flags.contains(OpenFlags::APPEND) {
            *cursor = opened.file.size.load(Ordering::Acquire);
        }
        let n = self.pwrite(fd, data, *cursor, clock)?;
        *cursor += n as u64;
        Ok(n)
    }

    /// Cursor-based read (libc `read`).
    ///
    /// # Errors
    ///
    /// Same as [`FileSystem::pread`].
    pub fn read(&self, fd: Fd, buf: &mut [u8], clock: &ActorClock) -> IoResult<usize> {
        let opened = self.opened(fd)?;
        let mut cursor = opened.cursor.lock();
        let n = self.pread(fd, buf, *cursor, clock)?;
        *cursor += n as u64;
        Ok(n)
    }

    /// `lseek`, answered from NVCache's own cursor and size — the kernel's
    /// values may be stale (paper Table III).
    ///
    /// # Errors
    ///
    /// [`IoError::InvalidArgument`] when seeking before byte zero.
    pub fn lseek(&self, fd: Fd, from: SeekFrom, clock: &ActorClock) -> IoResult<u64> {
        clock.advance(self.shared.cfg.libc_overhead);
        let opened = self.opened(fd)?;
        let mut cursor = opened.cursor.lock();
        let base: i128 = match from {
            SeekFrom::Start(o) => o as i128,
            SeekFrom::End(d) => opened.file.size.load(Ordering::Acquire) as i128 + d as i128,
            SeekFrom::Current(d) => *cursor as i128 + d as i128,
        };
        if base < 0 {
            return Err(IoError::InvalidArgument("seek before start of file".into()));
        }
        *cursor = base as u64;
        Ok(*cursor)
    }

    /// Current cursor (`ftell`).
    ///
    /// # Errors
    ///
    /// [`IoError::BadFd`] if the descriptor is not open.
    pub fn tell(&self, fd: Fd) -> IoResult<u64> {
        Ok(*self.opened(fd)?.cursor.lock())
    }
}

#[cfg(feature = "pmcheck")]
impl NvCache {
    /// Every persistency-ordering violation the shadow checker recorded on
    /// this mount's DIMM (each one also panicked at its detection site).
    /// Empty on a clean run.
    pub fn pm_violations(&self) -> Vec<String> {
        self.shared.log.region.pm_violations()
    }

    /// Every lock-order violation (cycle, page-order inversion, illegal
    /// re-entry) the recorder caught on this mount. Empty on a clean run.
    pub fn lock_order_violations(&self) -> Vec<String> {
        self.shared.lockcheck.violations()
    }

    /// Number of distinct acquisition-order edges the recorder has observed
    /// — test instrumentation proving lock tracking is actually live.
    pub fn lock_order_edges(&self) -> usize {
        self.shared.lockcheck.edge_count()
    }
}

impl Drop for NvCache {
    fn drop(&mut self) {
        self.abort();
    }
}

struct InFlightGuard<'a>(&'a AtomicU32);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl NvCache {
    /// Persists `file`'s decayed temperature into its fd slot's spare word
    /// (heat-format layouts with a temperature-reading policy only): one
    /// `commit_store` + fence, so a crash hands the next mount this file's
    /// heat instead of a cold start. A no-op on every other mount — the
    /// default configuration pays nothing, not even a branch on NVMM.
    fn stamp_heat(&self, file: &FileState, slot: u32, clock: &ActorClock) {
        if !self.shared.log.layout.heat_slots() || !self.shared.track_heat {
            return;
        }
        let heat = file.temperature.lock().decayed(clock.now(), self.shared.heat_half_life);
        PersistentFdTable::set_heat(
            &self.shared.log.region,
            &self.shared.log.layout,
            slot,
            quantize_heat(heat),
            clock,
        );
    }

    fn enter(&self, fd: Fd) -> IoResult<(Arc<OpenedFile>, InFlightGuard<'_>)> {
        let opened = self.opened(fd)?;
        let counter = &self.shared.in_flight[opened.slot as usize];
        counter.fetch_add(1, Ordering::AcqRel);
        // Re-check after publication so close() can wait for quiescence.
        if opened.closing.load(Ordering::Acquire) {
            counter.fetch_sub(1, Ordering::AcqRel);
            return Err(IoError::BadFd(fd.0));
        }
        Ok((opened, InFlightGuard(counter)))
    }

    /// Body of the intercepted `open`, after path normalization and the
    /// migration-gate lease: routing, inner open, file/descriptor
    /// bookkeeping.
    fn open_at(&self, path: &str, flags: OpenFlags, clock: &ActorClock) -> IoResult<Fd> {
        // Tiering decision: the router places the file once, here; the index
        // then travels with the descriptor (volatile) and the fd slot
        // (persistent), so every later resolution agrees with this one.
        let mut backend_idx = self.shared.route(path);
        if flags.contains(OpenFlags::TRUNC) && flags.writable() {
            // Pending log entries for the victim content must not resurface.
            self.drained_flush(clock)?;
        }
        // NVCache provides durability itself; the inner file is opened
        // without O_SYNC (the cleanup thread fsyncs batches explicitly).
        let inner_flags = flags.without(OpenFlags::SYNC);
        let inner_fd = if self.shared.backends.len() == 1 {
            self.shared.backends[0].open(path, inner_flags, clock)?
        } else {
            // Resolve where the file actually lives before touching any
            // tier: an existing file is opened *in place* — POSIX O_CREAT
            // opens, it does not shadow — even when a policy change left
            // it misplaced. Only a genuinely new file is created on the
            // router's tier (that is the placement decision).
            match self.shared.existing_backend(path, clock)? {
                Some(b) => {
                    backend_idx = b;
                    self.shared.backends[b].open(path, inner_flags, clock)?
                }
                None if flags.contains(OpenFlags::CREATE) => {
                    self.shared.backends[backend_idx].open(path, inner_flags, clock)?
                }
                None => return Err(IoError::NotFound(path.to_string())),
            }
        };
        let inner = &self.shared.backends[backend_idx];
        let meta = inner.fstat(inner_fd, clock)?;
        let file = {
            let _lk = self.shared.lockcheck.acquire(Class::FilesMap, 0);
            let mut files = self.shared.files.lock();
            Arc::clone(files.entry((backend_idx as u32, meta.dev, meta.ino)).or_insert_with(|| {
                // The file leaves the migrator's closed-file catalog while
                // open; its accumulated access heat seeds the fresh
                // counters so temperature survives close/reopen cycles. A
                // catalog entry pointing at a *different* tier stays: it
                // tracks a copy this open did not touch, which a sweep may
                // still need to find.
                let heat =
                    self.shared.migrator.take_if_on(path, backend_idx as u32).unwrap_or_default();
                Arc::new(FileState {
                    file_id: self.shared.next_file_id.fetch_add(1, Ordering::Relaxed),
                    dev_ino: (meta.dev, meta.ino),
                    path: path.to_string(),
                    size: AtomicU64::new(meta.size),
                    reads: AtomicU64::new(heat.reads),
                    writes: AtomicU64::new(heat.writes),
                    temperature: Mutex::new(heat.temp),
                    radix: OnceLock::new(),
                    open_count: AtomicU32::new(0),
                })
            }))
        };
        if flags.contains(OpenFlags::TRUNC) && flags.writable() {
            file.size.store(0, Ordering::Release);
            self.shared.pool.purge_file(file.file_id);
        }
        if flags.writable() {
            file.radix.get_or_init(Radix::new);
        }
        file.open_count.fetch_add(1, Ordering::AcqRel);
        let slot = {
            let mut slot = self.shared.fd_slots.acquire();
            if slot.is_none() {
                // Reclaim closed descriptors whose entries already drained.
                self.shared.drain_zombies(clock);
                slot = self.shared.fd_slots.acquire();
            }
            if slot.is_none() {
                // Slow path: the table is exhausted right now, but zombies
                // (or concurrently closing descriptors) may give a slot
                // back once their entries drain. Count the stall, drain the
                // log once, then retry only while reclaimable descriptors
                // actually exist — a genuinely full table fails cleanly
                // instead of busy-spinning on an empty zombie list.
                self.shared.stats.fd_slot_waits.fetch_add(1, Ordering::Relaxed);
                self.flush_log(clock);
                loop {
                    self.shared.drain_zombies(clock);
                    slot = self.shared.fd_slots.acquire();
                    if slot.is_some() || self.shared.log.any_poisoned() {
                        // Zombies pinned by a poisoned stripe can never
                        // drain; spinning on them would only delay the
                        // error below.
                        break;
                    }
                    let out_of_descriptors = {
                        let _lz = self.shared.lockcheck.acquire(Class::Zombies, 0);
                        let zombies = self.shared.zombies.lock();
                        zombies.is_empty() && {
                            let _lo = self.shared.lockcheck.acquire(Class::OpenedMap, 0);
                            self.shared
                                .opened
                                .read()
                                .values()
                                .all(|o| !o.closing.load(Ordering::Acquire))
                        }
                    };
                    if out_of_descriptors {
                        break; // genuinely out of descriptors
                    }
                    std::thread::yield_now();
                }
            }
            match slot {
                Some(s) => s,
                None => {
                    file.open_count.fetch_sub(1, Ordering::AcqRel);
                    let _ = inner.close(inner_fd, clock);
                    let cause = if self.shared.log.any_poisoned() {
                        "NVCache fd table exhausted: a poisoned log stripe pins \
                         closed descriptors (recovery required)"
                    } else {
                        "NVCache fd table is full"
                    };
                    return Err(IoError::Other(cause.into()));
                }
            }
        };
        PersistentFdTable::set(
            &self.shared.log.region,
            &self.shared.log.layout,
            slot,
            path,
            backend_idx as u32,
            clock,
        );
        // A reopen inherits the catalog's accumulated temperature; persist
        // it right away so a crash before the first fsync does not forget a
        // known-warm file. Cold opens (the common case) skip the stamp —
        // the slot's zeroed heat word already reads as cold.
        if self.shared.log.layout.heat_slots() && self.shared.track_heat {
            let heat = file.temperature.lock().decayed(clock.now(), self.shared.heat_half_life);
            let q = quantize_heat(heat);
            if q > 0 {
                PersistentFdTable::set_heat(
                    &self.shared.log.region,
                    &self.shared.log.layout,
                    slot,
                    q,
                    clock,
                );
            }
        }
        let opened = Arc::new(OpenedFile {
            slot,
            flags,
            cursor: Mutex::new(0),
            file,
            backend: backend_idx as u32,
            inner_fd,
            closing: AtomicBool::new(false),
        });
        {
            let _lk = self.shared.lockcheck.acquire(Class::OpenedMap, 0);
            self.shared.opened.write().insert(slot, opened);
        }
        Ok(Fd(slot as u64))
    }

    /// Multi-backend `rename`, under the caller's gate leases. Checks POSIX
    /// errno order — a nonexistent source is ENOENT *before* any
    /// cross-device consideration — then renames in place or, across tiers,
    /// fails with EXDEV unless
    /// [`cross_tier_rename`](NvCacheConfig::cross_tier_rename) turns the
    /// call into a migrate-then-rename.
    fn rename_tiered(&self, from: &str, to: &str, clock: &ActorClock) -> IoResult<()> {
        let Some(src) = self.shared.existing_backend(from, clock)? else {
            return Err(IoError::NotFound(from.to_string()));
        };
        if from == to {
            // POSIX: renaming an existing file onto itself succeeds and
            // does nothing — even when the router would place the name on
            // a different tier than the one holding it.
            return Ok(());
        }
        let dst = self.shared.route(to);
        if src == dst {
            // Pending entries logically precede the rename; replaying them
            // after it (recovery) would corrupt the new name's content.
            self.drained_flush(clock)?;
            self.shared.backends[src].rename(from, to, clock)?;
            // rename replaces the destination on the mount's *merged*
            // view: stale copies of the new name on other tiers must go.
            self.scrub_other_copies(to, src, clock)?;
            if self.shared.migration_enabled() {
                if self.shared.path_is_open_or_draining(from) {
                    // The file is still open under its old name —
                    // `FileState.path` keeps `from`, so the open-file
                    // guard could not protect a catalog entry under `to`
                    // and a sweep would migrate a file with live
                    // descriptors. Leave both names uncatalogued (path
                    // ops still reach the file by probing); stale entries
                    // self-heal via the sweep's NotFound handling.
                    self.shared.migrator.forget(from);
                    self.shared.migrator.forget(to);
                } else {
                    self.shared.migrator.rename_entry(from, to, src as u32, &self.shared.stats);
                }
            }
            return Ok(());
        }
        if !self.shared.cfg.cross_tier_rename {
            // The two names live on different tiers: moving the bytes
            // across backends behind a metadata call would break the
            // router's placement invariant. Legacy applications already
            // handle EXDEV (mv falls back to copy+unlink across mount
            // points).
            return Err(IoError::CrossDevice(format!("{from} -> {to}")));
        }
        self.migrate_rename(from, to, src, dst, clock)
    }

    /// Removes stale copies of `path` from every backend except `keep`:
    /// a successful rename must replace the destination on the mount's
    /// merged view, not just on the tier that executed it.
    fn scrub_other_copies(&self, path: &str, keep: usize, clock: &ActorClock) -> IoResult<()> {
        for (b, backend) in self.shared.backends.iter().enumerate() {
            if b == keep {
                continue;
            }
            match backend.unlink(path, clock) {
                Ok(()) | Err(IoError::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Cross-tier rename as a journaled migration: copy `from`@`src` to
    /// `to`@`dst`, fsync, stamp, unlink the source — `mv` semantics across
    /// mount points, not crash-atomic (a crash can briefly leave both
    /// names; recovery converges every name to one authoritative copy).
    fn migrate_rename(
        &self,
        from: &str,
        to: &str,
        src: usize,
        dst: usize,
        clock: &ActorClock,
    ) -> IoResult<()> {
        let shared = &self.shared;
        let gate = &shared.migrator.gate;
        // Trade the caller's path-op leases for exclusive migration claims
        // (a lease blocks a claim, even our own). The unprotected gap is
        // covered by the open/zombie re-check under the claims.
        gate.exit_op(to);
        gate.exit_op(from);
        let claimed_from = gate.try_claim(from);
        let _claim_from =
            claimed_from.then(|| shared.lockcheck.acquire_try(Class::MigrationGate, 0));
        let claimed_to = claimed_from && gate.try_claim(to);
        let _claim_to = claimed_to.then(|| shared.lockcheck.acquire_try(Class::MigrationGate, 0));
        let result = if !claimed_to {
            Err(IoError::Busy(format!("{from} -> {to}: another migration is in flight")))
        } else if shared.path_is_open_or_draining(from) || shared.path_is_open_or_draining(to) {
            Err(IoError::Busy(format!("{from} -> {to}: open or draining descriptors exist")))
        } else {
            self.drained_flush(clock).and_then(|()| {
                let moved = crate::migrate::journaled_move(shared, from, to, src, dst, clock);
                moved.and_then(|bytes| {
                    // The destination name is replaced mount-wide: drop any
                    // stale copy of `to` on tiers other than `dst`.
                    self.scrub_other_copies(to, dst, clock)?;
                    shared.migrator.rename_entry(from, to, dst as u32, &shared.stats);
                    shared.stats.files_migrated.fetch_add(1, Ordering::Relaxed);
                    shared.stats.migration_bytes.fetch_add(bytes, Ordering::Relaxed);
                    // A cross-tier rename is a migration like any other:
                    // keep the fast-tier counters and occupancy gauge in
                    // step with the catalog it just rewrote.
                    if let Some(fast) = shared.placement.fast_tier() {
                        if dst == fast {
                            shared.stats.files_promoted.fetch_add(1, Ordering::Relaxed);
                        } else if src == fast {
                            shared.stats.files_demoted.fetch_add(1, Ordering::Relaxed);
                        }
                        shared.stats.fast_tier_bytes.store(
                            shared.migrator.fast_tier_occupancy(fast as u32),
                            Ordering::Relaxed,
                        );
                    }
                    Ok(())
                })
            })
        };
        if claimed_from {
            gate.release(from);
        }
        if claimed_to {
            gate.release(to);
        }
        // Restore the leases so the caller's exits stay balanced.
        gate.enter_op(from);
        gate.enter_op(to);
        result
    }
}

impl FileSystem for NvCache {
    fn name(&self) -> &str {
        &self.name
    }

    fn open(&self, path: &str, flags: OpenFlags, clock: &ActorClock) -> IoResult<Fd> {
        clock.advance(self.shared.cfg.libc_overhead);
        let path = vfs::normalize_path(path);
        // A file mid-migration must not be opened (the copy is incomplete
        // on the target tier): take a gate lease for the whole open.
        let gated = self.shared.migration_enabled();
        let _gate = gated.then(|| self.shared.lockcheck.acquire(Class::MigrationGate, 0));
        if gated {
            self.shared.migrator.gate.enter_op(&path);
        }
        let result = self.open_at(&path, flags, clock);
        if gated {
            self.shared.migrator.gate.exit_op(&path);
        }
        result
    }

    fn close(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.shared.cfg.libc_overhead);
        let slot = Self::slot_of(fd);
        let opened = self.opened(fd)?;
        if opened.closing.swap(true, Ordering::AcqRel) {
            return Err(IoError::BadFd(fd.0));
        }
        // Wait out in-flight calls on this descriptor, then push this file's
        // pending writes into the kernel page cache (paper §I: close flushes
        // all user-space writes *to the kernel* — durability is already in
        // NVMM, so no fsync and no waiting for the cleanup thread).
        while self.shared.in_flight[slot as usize].load(Ordering::Acquire) > 0 {
            std::thread::yield_now();
        }
        self.shared.kernel_flush_file(&opened, clock);
        // Final temperature summary while the slot is still valid: a crash
        // during the zombie drain window hands the next mount this file's
        // heat (a clean finish clears the slot, heat word included).
        self.stamp_heat(&opened.file, slot, clock);
        // The persistent fd slot must outlive the entries that reference it
        // (recovery resolves paths through it); defer the actual teardown to
        // the cleanup workers if entries are still in flight anywhere.
        let targets = self.shared.log.heads();
        if self.shared.log.drained_to(&targets) {
            self.shared.finish_close(&opened, clock);
        } else {
            {
                let _lk = self.shared.lockcheck.acquire(Class::Zombies, 0);
                self.shared.zombies.lock().push(Zombie { opened, drain_targets: targets });
            }
            self.shared.log.notify_work_all();
        }
        Ok(())
    }

    fn pread(&self, fd: Fd, buf: &mut [u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let (opened, _guard) = self.enter(fd)?;
        self.shared.do_pread(&opened, buf, off, clock)
    }

    fn pwrite(&self, fd: Fd, data: &[u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let (opened, _guard) = self.enter(fd)?;
        self.shared.do_pwrite(&opened, data, off, clock)
    }

    fn fsync(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        // Paper Table III: no operation — the write call already made the
        // data durable in NVMM. A heat-persisting mount piggybacks its
        // temperature summary on the application's own durability points.
        clock.advance(self.shared.cfg.libc_overhead);
        let opened = self.opened(fd)?;
        self.stamp_heat(&opened.file, opened.slot, clock);
        Ok(())
    }

    fn ftruncate(&self, fd: Fd, len: u64, clock: &ActorClock) -> IoResult<()> {
        let (opened, _guard) = self.enter(fd)?;
        if !opened.flags.writable() {
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        clock.advance(self.shared.cfg.libc_overhead);
        // Rare, non-critical path: drain then delegate, keeping NVCache's
        // size authoritative.
        self.drained_flush(clock)?;
        self.shared.inner_of(&opened).ftruncate(opened.inner_fd, len, clock)?;
        opened.file.size.store(len, Ordering::Release);
        self.shared.pool.purge_file(opened.file.file_id);
        Ok(())
    }

    fn fstat(&self, fd: Fd, clock: &ActorClock) -> IoResult<Metadata> {
        clock.advance(self.shared.cfg.libc_overhead);
        let opened = self.opened(fd)?;
        Ok(Metadata {
            dev: opened.file.dev_ino.0,
            ino: opened.file.dev_ino.1,
            size: opened.file.size.load(Ordering::Acquire),
            is_dir: false,
        })
    }

    fn stat(&self, path: &str, clock: &ActorClock) -> IoResult<Metadata> {
        clock.advance(self.shared.cfg.libc_overhead);
        let path = vfs::normalize_path(path);
        // Probe the *recorded* backend first, then the router's placement,
        // then the remaining tiers: a misplaced (or policy-orphaned) file's
        // bytes sit intact on some tier, and routing by the current policy
        // alone would report ENOENT for them. Non-NotFound errors abort the
        // probe — they are real failures, not absence.
        let mut order = self.shared.resolution_order(&path).into_iter();
        loop {
            let Some(backend) = order.next() else {
                return Err(IoError::NotFound(path));
            };
            match self.shared.backends[backend].stat(&path, clock) {
                Ok(mut meta) => {
                    // The kernel's size may be stale; NVCache's own is
                    // authoritative (paper Table III: stat uses NVCache
                    // size).
                    let _lk = self.shared.lockcheck.acquire(Class::FilesMap, 0);
                    if let Some(file) =
                        self.shared.files.lock().get(&(backend as u32, meta.dev, meta.ino))
                    {
                        meta.size = file.size.load(Ordering::Acquire);
                    }
                    return Ok(meta);
                }
                Err(IoError::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn unlink(&self, path: &str, clock: &ActorClock) -> IoResult<()> {
        // Pass-through, as in the paper (Table III does not intercept it).
        // Pending log entries for the victim are neutralized at recovery,
        // which refuses to recreate files that no longer exist. Like
        // `stat`, the probe honours the recorded backend before policy
        // routing, so a misplaced file can actually be removed.
        clock.advance(self.shared.cfg.libc_overhead);
        let path = vfs::normalize_path(path);
        let gated = self.shared.migration_enabled();
        let _gate = gated.then(|| self.shared.lockcheck.acquire(Class::MigrationGate, 0));
        if gated {
            // The victim must not be mid-migration (the copy would
            // resurrect it).
            self.shared.migrator.gate.enter_op(&path);
        }
        // Keep probing after the first hit: a misplaced file plus a shadow
        // created on the routed tier are duplicate copies of one name, and
        // unlinking only one would let the other resurrect it.
        let mut removed = false;
        let mut result = Err(IoError::NotFound(path.clone()));
        for backend in self.shared.resolution_order(&path) {
            match self.shared.backends[backend].unlink(&path, clock) {
                Ok(()) => removed = true,
                Err(IoError::NotFound(_)) => {}
                Err(e) => {
                    result = Err(e);
                    removed = false;
                    break;
                }
            }
        }
        if removed {
            result = Ok(());
        }
        if gated {
            self.shared.migrator.gate.exit_op(&path);
        }
        if result.is_ok() {
            self.shared.migrator.forget(&path);
        }
        result
    }

    fn rename(&self, from: &str, to: &str, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.shared.cfg.libc_overhead);
        let from = vfs::normalize_path(from);
        let to = vfs::normalize_path(to);
        if self.shared.backends.len() == 1 {
            // Single backend: the inner file system owns the whole errno
            // surface (ENOENT included) — no probing, identical to the
            // paper's deployment.
            self.drained_flush(clock)?;
            return self.shared.backends[0].rename(&from, &to, clock);
        }
        let gated = self.shared.migration_enabled();
        let _gate_from = gated.then(|| self.shared.lockcheck.acquire(Class::MigrationGate, 0));
        let _gate_to = gated.then(|| self.shared.lockcheck.acquire(Class::MigrationGate, 0));
        if gated {
            self.shared.migrator.gate.enter_op(&from);
            self.shared.migrator.gate.enter_op(&to);
        }
        let result = self.rename_tiered(&from, &to, clock);
        if gated {
            self.shared.migrator.gate.exit_op(&to);
            self.shared.migrator.gate.exit_op(&from);
        }
        result
    }

    fn list_dir(&self, dir: &str, clock: &ActorClock) -> IoResult<Vec<String>> {
        let dir = vfs::normalize_path(dir);
        if self.shared.backends.len() == 1 {
            return self.shared.backends[0].list_dir(&dir, clock);
        }
        // A directory's children may be spread over several tiers (the
        // router partitions by path, not by subtree): merge every backend's
        // view, deduplicate, and keep a deterministic order. Backends where
        // the directory does not exist contribute nothing; the listing only
        // fails when *no* backend knows the directory.
        let mut merged: Vec<String> = Vec::new();
        let mut found = false;
        for backend in self.shared.backends.iter() {
            match backend.list_dir(&dir, clock) {
                Ok(entries) => {
                    found = true;
                    merged.extend(entries);
                }
                // Absence on one tier is expected; anything else is a real
                // I/O failure and the merged listing would be silently
                // partial — propagate it instead of papering over it.
                Err(IoError::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        if !found {
            return Err(IoError::NotFound(dir));
        }
        merged.sort();
        merged.dedup();
        Ok(merged)
    }

    fn sync(&self, clock: &ActorClock) -> IoResult<()> {
        // Paper Table III: sync/syncfs are no-ops.
        clock.advance(self.shared.cfg.libc_overhead);
        Ok(())
    }

    fn simulate_power_failure(&self) {
        // The faithful crash path goes through `NvDimm::crash_and_restart` +
        // a `Mount::Recover` mount; this in-place approximation only drops
        // the volatile state below NVCache.
        for backend in self.shared.backends.iter() {
            backend.simulate_power_failure();
        }
    }

    fn synchronous_durability(&self) -> bool {
        true // by design: the write call returns after psync (Algorithm 1)
    }

    fn durable_linearizability(&self) -> bool {
        true // the psync precedes the lock release (paper §III)
    }
}
