//! The recovery procedure (paper §III): reopen files from the persistent
//! fd table — each on the backend its slot records (header v3), or on the
//! router-chosen backend when migrating a legacy image — k-way merge-replay
//! every committed log entry in global commit order (per-stripe sorted
//! runs), sync every backend, and empty the log. Idempotent under crashes
//! during recovery itself.

use std::collections::HashMap;
use std::sync::Arc;

use nvmm::{NvRegion, PmemInts};
use simclock::ActorClock;
use vfs::{FileSystem, IoError, IoResult, OpenFlags};

use crate::layout::{self, CommitWord, Layout};
use crate::placement::PlacementPolicy;
use crate::router::Router;

/// Outcome of a recovery run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Committed entries replayed to the inner file system(s).
    pub entries_replayed: u64,
    /// Torn/uncommitted entries skipped.
    pub entries_skipped: u64,
    /// Files reopened from the persistent fd table.
    pub files_reopened: usize,
    /// fd-table slots whose file no longer exists (deliberately unlinked
    /// before the crash); their entries are discarded, not replayed.
    pub files_missing: usize,
    /// Payload bytes replayed.
    pub bytes_replayed: u64,
    /// Distinct inner backends that received replayed files (`1` on a
    /// single-backend mount; up to the tier count on a tiered one).
    pub backends_touched: usize,
    /// Recovered files whose backend disagrees with where the mount's
    /// *placement policy* puts their path — judged cold, with no
    /// accumulated temperature
    /// ([`PlacementPolicy::place_cold`](crate::PlacementPolicy::place_cold));
    /// under the default [`RouterPlacement`](crate::RouterPlacement) this
    /// is the router's current placement (possible after a v2 → v3
    /// migration or a routing-policy change), and under a
    /// [`HeatPolicy`](crate::HeatPolicy) it also counts files the policy
    /// had promoted before the crash (temperature is volatile — they
    /// re-earn promotion as heat accumulates). Their bytes stay fully
    /// reachable — `stat`,
    /// `unlink` and `open` (creating or not) probe the recorded backend
    /// before policy routing, so an existing file is always opened in
    /// place — but they sit on the wrong tier until a repair-mode recovery
    /// ([`Mount::RecoverRepair`](crate::Mount)), a
    /// [`rebalance`](crate::NvCache::rebalance) sweep, or the operator
    /// moves the files. `0` means every recovered file is where the router
    /// expects it; a repair-mode recovery reports the count *after* its
    /// re-homing pass (so `0` on success, with the moves counted in
    /// [`files_repaired`](RecoveryReport::files_repaired)).
    pub files_misplaced: usize,
    /// Misplaced files re-homed to the placement policy's cold target by a
    /// repair-mode recovery (always `0` under plain
    /// [`Mount::Recover`](crate::Mount)).
    pub files_repaired: usize,
    /// Interrupted migrations rolled forward/back from their journal slots
    /// (the crashed mount died inside a copy → stamp → unlink protocol run;
    /// see `migrate.rs`). Each repair leaves exactly one authoritative copy.
    pub migrations_repaired: usize,
}

/// A committed group found by the scan phase: `stripe`'s ring position
/// `first_slot..first_slot+len` (global entry slots, contiguous), ordered
/// globally by the leader's stamped sequence number.
#[derive(Debug, Clone, Copy)]
struct CommittedGroup {
    gseq: u64,
    first_slot: u64,
    len: u64,
}

/// The recovery procedure (paper §III "Recovery procedure"): reopen the
/// files recorded in the NVMM fd table, replay every committed entry from
/// the persistent tail(s) in *global commit order* (skipping torn entries,
/// honouring group commit flags), `sync`, close the files, and empty the
/// log.
///
/// On a single-stripe log (the seed format) the replay is the seed's
/// in-ring-order scan from [`layout::OFF_PTAIL`]. On a striped log each
/// stripe is scanned from its own persistent tail; within a stripe, ring
/// order equals global-sequence order (an allocation invariant), so the
/// per-stripe scans yield sorted runs that a k-way merge by stamped sequence
/// number turns into the exact global commit order.
///
/// **Backend resolution.** A v3 (tiered) image stores each fd slot's backend
/// index; the slot's pending entries replay to exactly that backend — the
/// router is *not* consulted, because its policy may have changed across the
/// reboot while the acknowledged bytes live where they were written. A
/// legacy (v1/v2) image carries no backend word: when recovered into a
/// multi-backend stack, each reopened file goes to the router's placement if
/// it already exists there (a pre-moved file), falling back to backend 0 —
/// the legacy backend that owned every pre-migration file — so acknowledged
/// writes survive any routing policy. This is the v2 → v3 migration path
/// (the caller stamps the header afterwards).
///
/// **Misplacement** is judged by the mount's placement policy: a recovered
/// file has no accumulated temperature (the heat catalog is volatile), so
/// each file is checked against
/// [`PlacementPolicy::place_cold`](crate::PlacementPolicy::place_cold) —
/// the router's current placement under the default
/// [`RouterPlacement`](crate::RouterPlacement).
///
/// **Repair mode** (`repair = true`, a [`Mount::RecoverRepair`](crate::Mount)
/// mount): after the replay is durable and the fd table cleared, every
/// recovered file whose backend disagrees with the policy's cold target is
/// re-homed to that target through the journaled copy → stamp → unlink
/// protocol of `migrate.rs` — so the next mount reports
/// `files_misplaced == 0`. Leftover migration journals from a crash inside
/// the protocol are repaired on *every* recovery, repair mode or not.
///
/// **Persisted heat** ([`NvCacheConfig::persist_heat`](crate::NvCacheConfig)):
/// a heat-format image ([`layout::OFF_HEAT_EPOCH`] = [`layout::HEAT_EPOCH`])
/// carries a quantized temperature summary in each open slot's last word.
/// Recovery dequantizes the summaries and returns them so the mount can
/// re-seed the migrator's heat catalog — a crashed
/// [`HeatPolicy`](crate::HeatPolicy) mount re-promotes its hot set on the
/// next sweep without the files being re-touched. A slot whose summary
/// clears the policy's
/// [`retain_heat_threshold`](crate::PlacementPolicy::retain_heat_threshold)
/// is *not* judged misplaced by the cold-placement check (and not demoted
/// by a repair pass): the persisted temperature says it is exactly where
/// promotion put it.
///
/// Returns the report, the `(path, backend)` pairs still misplaced after
/// recovery (empty in repair mode) — the mount seeds the migrator's catalog
/// with them so a later [`rebalance`](crate::NvCache::rebalance) can find
/// the files — and the `(path, backend, heat)` summaries recovered from a
/// heat-format image (empty otherwise).
///
/// Idempotent: crashing *during* recovery and running it again converges to
/// the same state, because replay only overwrites with logged data and the
/// log is emptied only after the final `sync`.
/// `(path, backend, dequantized heat)` summaries harvested from a
/// heat-format image's fd slots, ready to seed the migrator's catalog.
pub(crate) type HeatSeeds = Vec<(String, u32, f64)>;

/// What [`recover`] hands the mount: the report, the `(path, backend)`
/// pairs still misplaced after recovery, and the recovered heat seeds.
pub(crate) type Recovered = (RecoveryReport, Vec<(String, u32)>, HeatSeeds);

#[allow(clippy::too_many_arguments)] // one slot per mount-configuration axis
pub(crate) fn recover(
    region: &NvRegion,
    backends: &[Arc<dyn FileSystem>],
    router: &dyn Router,
    placement: &dyn PlacementPolicy,
    target_backends: usize,
    target_heat: bool,
    repair: bool,
    clock: &ActorClock,
) -> IoResult<Recovered> {
    // Read the layout back from the header (charged reads: cold caches).
    let mut header = [0u8; 64];
    region.read(0, &mut header, clock);
    let magic = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes"));
    if magic != layout::MAGIC {
        return Err(IoError::InvalidArgument("NVMM region is not a formatted NVCache log".into()));
    }
    let entry_size = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let nb_entries = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let ptail = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
    let fd_slots = u64::from_le_bytes(header[32..40].try_into().expect("8 bytes"));
    // 0 = v1 (seed) header that never wrote the shard word.
    let log_shards = u64::from_le_bytes(header[48..56].try_into().expect("8 bytes")).max(1);
    // 0 = v1/v2 header: single backend, no backend word in the fd slots.
    let image_backends = u64::from_le_bytes(header[56..64].try_into().expect("8 bytes")).max(1);
    if image_backends as usize > backends.len() {
        return Err(IoError::InvalidArgument(format!(
            "region references {image_backends} backends but recovery got only {}",
            backends.len()
        )));
    }
    // 0 = pre-heat header (never written): the fd slots carry no heat word
    // and their full v3 path area is path bytes. Only the current epoch is
    // understood; an unknown epoch is treated as absent (the slots are
    // cleared during recovery anyway, so nothing stale survives).
    let mut epoch_word = [0u8; 8];
    region.read(layout::OFF_HEAT_EPOCH, &mut epoch_word, clock);
    let image_heat_epoch = u64::from_le_bytes(epoch_word);
    let lay = Layout {
        nb_entries,
        entry_size,
        fd_slots,
        log_shards,
        backends: image_backends,
        heat: image_heat_epoch == layout::HEAT_EPOCH,
    };

    // Repair interrupted migrations first (journal slots are invisible to
    // the open-file scan below, but their non-authoritative copies must be
    // gone before anything else looks at the backends). A v1/v2 image
    // cannot hold journals.
    let mut report = RecoveryReport {
        migrations_repaired: crate::migrate::repair_journals(region, &lay, backends, clock)?,
        ..RecoveryReport::default()
    };

    // Reopen the files referenced by the fd table, each on its backend.
    let mut fds: HashMap<u32, (usize, vfs::Fd)> = HashMap::new();
    let mut misplaced: Vec<(String, u32)> = Vec::new();
    // path → (backend, heat): one entry per path (a file open through
    // several descriptors stamps one summary per slot; keep the hottest).
    let mut heat_seeds: HashMap<String, (u32, f64)> = HashMap::new();
    for slot in 0..fd_slots as u32 {
        if let Some((path, stored)) =
            crate::files::PersistentFdTable::get(region, &lay, slot, clock)
        {
            // Candidate backends, in resolution order. A v3 slot's recorded
            // placement is authoritative. A legacy (v1/v2) slot entering a
            // multi-backend stack migrates: prefer the router's placement
            // when the file already exists there (the operator pre-moved
            // it), and fall back to backend 0 — the legacy backend, which
            // owned every file before the migration — so acknowledged
            // writes are never discarded by a routing-policy change.
            let candidates: Vec<usize> = if lay.tiered() {
                vec![stored as usize]
            } else if backends.len() == 1 {
                vec![0]
            } else {
                let routed = router.route(&path, 0);
                if routed == 0 {
                    vec![0]
                } else {
                    vec![routed, 0]
                }
            };
            let mut resolved = None;
            for &backend in &candidates {
                let Some(inner) = backends.get(backend) else {
                    return Err(IoError::InvalidArgument(format!(
                        "fd slot {slot} ({path}) references backend {backend}, \
                         but recovery got only {} backends",
                        backends.len()
                    )));
                };
                // No O_CREAT: a file that disappeared was deliberately
                // unlinked (NVCache opens files on the inner FS
                // synchronously), and its pending writes must not resurrect
                // it.
                match inner.open(&path, OpenFlags::RDWR, clock) {
                    Ok(fd) => {
                        fds.insert(slot, (backend, fd));
                        report.files_reopened += 1;
                        resolved = Some(backend);
                        break;
                    }
                    Err(IoError::NotFound(_)) => {}
                    Err(e) => return Err(e),
                }
            }
            // Replay lands on `resolved`; path operations keep reaching
            // the file there (recorded-backend probing), but it sits on
            // the wrong tier — as judged by the placement policy, with the
            // slot's persisted temperature summary (if any) to go on —
            // until a repair pass, a rebalance sweep, or the operator moves
            // it. Count it so the mismatch is visible instead of silent.
            if let Some(backend) = resolved {
                let heat = if lay.heat_slots() {
                    crate::files::PersistentFdTable::heat(region, &lay, slot, clock)
                        .map(crate::placement::dequantize_heat)
                } else {
                    None
                };
                if let Some(h) = heat {
                    if h > 0.0 {
                        let seed = heat_seeds.entry(path.clone()).or_insert((backend as u32, 0.0));
                        seed.0 = backend as u32;
                        seed.1 = seed.1.max(h);
                    }
                }
                // A summary clearing the retain threshold says promotion
                // put the file here on purpose — not a misplacement, even
                // though cold placement would route the path elsewhere.
                let retained_hot = match (heat, placement.retain_heat_threshold()) {
                    (Some(h), Some(t)) => h >= t,
                    _ => false,
                };
                if backends.len() > 1
                    && !retained_hot
                    && backend != placement.place_cold(&path, backend, router)
                {
                    misplaced.push((path.clone(), backend as u32));
                }
            }
            if resolved.is_none() {
                // The file was deliberately unlinked before the crash: its
                // pending entries are skipped below, and the slot must be
                // cleared here — a stale slot would otherwise survive a
                // v2 → v3 migration and be re-parsed under the v3
                // partitioning on the *next* recovery, where its path bytes
                // masquerade as a (garbage) backend word and wedge the
                // region permanently.
                crate::files::PersistentFdTable::clear(region, &lay, slot, clock);
                report.files_missing += 1;
            }
        }
    }
    // A file open through several descriptors at crash time occupies one
    // fd slot per descriptor: the misplaced list — and the report's count,
    // which the repair pass decrements per *path* and must end at zero —
    // carries each path once.
    misplaced.sort();
    misplaced.dedup();
    report.files_misplaced = misplaced.len();
    let mut touched = vec![false; backends.len()];
    for &(backend, _) in fds.values() {
        touched[backend] = true;
    }
    report.backends_touched = touched.iter().filter(|&&t| t).count();

    // Scan phase: collect committed groups per stripe, in ring order from
    // each stripe's persistent tail. On the seed format this is one scan
    // starting at OFF_PTAIL.
    let mut groups: Vec<CommittedGroup> = Vec::new();
    let per_stripe = lay.stripe_entries();
    for stripe in 0..log_shards {
        let stripe_tail = if log_shards == 1 {
            ptail
        } else {
            let mut t = [0u8; 8];
            region.read(lay.stripe_tail_off(stripe), &mut t, clock);
            u64::from_le_bytes(t)
        };
        let mut i = 0u64;
        while i < per_stripe {
            let slot = lay.stripe_slot(stripe, stripe_tail + i);
            let base = lay.entry(slot);
            let mut ehdr = [0u8; 40];
            region.read(base, &mut ehdr, clock);
            let commit = layout::parse_commit_word(u64::from_le_bytes(
                ehdr[0..8].try_into().expect("8 bytes"),
            ));
            match commit {
                CommitWord::Free => {
                    i += 1;
                }
                CommitWord::Member(_) => {
                    // An orphan member: its leader never committed (or was
                    // freed with the group); skip.
                    report.entries_skipped += 1;
                    i += 1;
                }
                CommitWord::Leader => {
                    let group_len =
                        u32::from_le_bytes(ehdr[24..28].try_into().expect("4 bytes")).max(1) as u64;
                    let group_len = group_len.min(per_stripe - i);
                    let gseq = u64::from_le_bytes(ehdr[32..40].try_into().expect("8 bytes"));
                    groups.push(CommittedGroup { gseq, first_slot: slot, len: group_len });
                    i += group_len;
                }
            }
        }
    }
    // Merge phase: total order by global sequence number. Each stripe's scan
    // produced an already-sorted run, so this is the k-way merge collapsed
    // into one sort of the (few) committed groups.
    groups.sort_by_key(|g| g.gseq);

    // Replay phase, in global commit order, each entry to the backend its
    // fd slot resolved to.
    for group in &groups {
        for g in 0..group.len {
            // Group slots are contiguous in the owning stripe's window and
            // never wrap past it mid-group (allocation keeps groups whole),
            // but the modulo keeps the scan honest at the window edge.
            let stripe = group.first_slot / per_stripe;
            let within = (group.first_slot % per_stripe + g) % per_stripe;
            let gslot = stripe * per_stripe + within;
            let gbase = lay.entry(gslot);
            let mut gh = [0u8; 40];
            region.read(gbase, &mut gh, clock);
            let fd_slot = u32::from_le_bytes(gh[8..12].try_into().expect("4 bytes"));
            let len = u32::from_le_bytes(gh[12..16].try_into().expect("4 bytes"));
            let file_off = u64::from_le_bytes(gh[16..24].try_into().expect("8 bytes"));
            let Some(&(backend, fd)) = fds.get(&fd_slot) else {
                // Entry for a slot missing from the fd table: can only
                // happen if the slot was cleared, which requires a prior
                // full drain — the entry is already on disk.
                report.entries_skipped += 1;
                continue;
            };
            let mut data = vec![0u8; len as usize];
            region.read(lay.entry_data(gslot), &mut data, clock);
            backends[backend].pwrite(fd, &data, file_off, clock)?;
            report.entries_replayed += 1;
            report.bytes_replayed += len as u64;
        }
    }

    // Make the replay durable on every backend, then (and only then) empty
    // the log.
    for backend in backends {
        backend.sync(clock)?;
    }
    for slot in 0..nb_entries {
        let base = lay.entry(slot);
        region.write_u64(base + layout::ENT_COMMIT, 0, clock);
        region.pwb(base + layout::ENT_COMMIT, 8);
    }
    region.write_u64(layout::OFF_PTAIL, 0, clock);
    region.pwb(layout::OFF_PTAIL, 8);
    if log_shards > 1 {
        for stripe in 0..log_shards {
            region.write_u64(lay.stripe_tail_off(stripe), 0, clock);
            region.pwb(lay.stripe_tail_off(stripe), 8);
        }
    }
    region.persist_fence(clock);
    // Close and clear the fd table.
    for (slot, (backend, fd)) in fds {
        backends[backend].close(fd, clock)?;
        crate::files::PersistentFdTable::clear(region, &lay, slot, clock);
    }

    // Stamp the (possibly migrated) backend count: a legacy image mounted
    // over N backends is v3 from here on; a single-backend mount keeps the
    // 0 encoding (bytes unchanged on v1/v2 images). Stamping *before* the
    // repair pass matters: repair journals use the v3 slot partitioning, so
    // a crash mid-repair must find a v3 header on the next mount.
    let backends_word = if target_backends > 1 { target_backends as u64 } else { 0 };
    region.commit_store(layout::OFF_BACKENDS, backends_word, clock);
    // Stamp the heat-format epoch the *mount* will write slots under. Safe
    // at this point for the same reason as the backends word: every fd slot
    // was cleared above, so no slot written under the old partitioning can
    // be re-parsed under the new one. Written only on a change so images
    // that never touch heat persistence stay byte-for-byte unchanged.
    let heat_word_target = if target_heat && target_backends > 1 { layout::HEAT_EPOCH } else { 0 };
    if heat_word_target != image_heat_epoch {
        region.commit_store(layout::OFF_HEAT_EPOCH, heat_word_target, clock);
    }
    region.persist_fence(clock);

    // Repair mode: re-home every misplaced file to the placement policy's
    // cold target with the journaled migration protocol. Every fd slot was
    // cleared above, so slot 0 is free to journal through; the files are
    // closed and the log is empty, so no coordination is needed.
    if repair && backends.len() > 1 {
        let repair_lay = Layout { backends: target_backends as u64, ..lay };
        let mut unrepairable = Vec::new();
        for (path, from) in misplaced.drain(..) {
            let to = placement.place_cold(&path, from as usize, router);
            // Validate the policy's answer before it reaches the protocol
            // (whose asserts would panic the mount): contract violations
            // surface as errors here, exactly like the sweep path.
            if to >= backends.len() {
                return Err(IoError::InvalidArgument(format!(
                    "placement policy re-homed {path} to out-of-range backend {to} \
                     (recovery has {} backends)",
                    backends.len()
                )));
            }
            if to == from as usize {
                // A non-pure policy changed its judgement between the scan
                // and the repair: the file is where the policy now wants it.
                report.files_misplaced -= 1;
                continue;
            }
            match crate::migrate::migrate_bytes(
                region,
                &repair_lay,
                backends,
                0,
                &path,
                &path,
                from as usize,
                to,
                clock,
                None,
            ) {
                Ok(_) => {
                    report.files_repaired += 1;
                    report.files_misplaced -= 1;
                    // A (below-threshold) temperature summary follows the
                    // re-homed file to its new tier.
                    if let Some(seed) = heat_seeds.get_mut(&path) {
                        seed.0 = to as u32;
                    }
                }
                // A legacy path longer than the v3 journal slot capacity
                // cannot be journaled: leave it counted misplaced instead
                // of failing the whole mount.
                Err(IoError::InvalidArgument(_)) => unrepairable.push((path, from)),
                // Already gone from the recorded tier (the source is opened
                // before anything is journaled or touched, so this is
                // side-effect-free): nothing left to repair.
                Err(IoError::NotFound(_)) => report.files_misplaced -= 1,
                Err(e) => return Err(e),
            }
        }
        misplaced = unrepairable;
    }
    // No final psync: every store above was already pwb'd and fenced (the
    // log clear at the persist_fence, the fd-table clears and the repair
    // protocol each end fenced), so the barrier the seed inherited from the
    // paper's recovery sketch covered nothing — the pmcheck redundant-fence
    // counter confirmed an always-empty flush queue here.
    let mut heat_seeds: Vec<(String, u32, f64)> = heat_seeds
        .into_iter()
        .map(|(path, (backend, heat))| (path, backend, heat))
        .collect();
    // HashMap iteration order is not deterministic; catalog admission order
    // must be (the virtual-time oracle replays mounts byte for byte).
    heat_seeds.sort_by(|a, b| a.0.cmp(&b.0));
    Ok((report, misplaced, heat_seeds))
}
