//! Configuration of an NVCache instance: the paper's §IV-A capacity and
//! batching knobs, the striping (`log_shards`) and async-drain
//! (`queue_depth`) extensions, and the scaling rules that shrink capacities
//! for test machines while preserving the saturation dynamics.

use std::sync::Arc;

use simclock::{Bandwidth, SimTime};

use crate::migrate::MigrationPolicy;
use crate::placement::PlacementPolicy;

/// Configuration of an [`NvCache`](crate::NvCache) instance.
///
/// Defaults follow the paper's evaluation settings (§IV-A): 4 KiB log
/// entries, 16 M entries (≈64 GiB of NVMM), a 250 k-page (≈1 GiB) read cache,
/// and cleanup batching between 1 000 and 10 000 entries.
///
/// Full-paper capacities need more NVMM than a test machine has RAM, so
/// [`scaled`](NvCacheConfig::scaled) shrinks every capacity knob by a factor
/// while keeping per-operation latencies untouched — saturation dynamics are
/// capacity/rate ratios and survive the scaling (see DESIGN.md §3).
///
/// # Example
///
/// ```
/// use nvcache::NvCacheConfig;
/// let cfg = NvCacheConfig::default().scaled(64);
/// assert_eq!(cfg.nb_entries, 16 * 1024 * 1024 / 64);
/// ```
#[derive(Debug, Clone)]
pub struct NvCacheConfig {
    /// Bytes of data per log entry (fixed-size entries, paper §II-D).
    pub entry_size: usize,
    /// Number of entries in the circular log.
    pub nb_entries: u64,
    /// Page size of the read cache (powers of two only — radix tree).
    pub page_size: usize,
    /// Capacity of the volatile read cache, in pages.
    pub read_cache_pages: usize,
    /// Minimum committed entries before the cleanup thread starts a batch.
    pub batch_min: usize,
    /// Maximum entries consumed per cleanup batch (one `fsync` per batch).
    pub batch_max: usize,
    /// Concurrent open-file slots in the persistent fd table.
    pub fd_slots: u32,
    /// Independent log stripes the entry array is split into. `1` (the
    /// default) reproduces the paper's single circular log byte for byte;
    /// `N > 1` gives each stripe its own head/tail and cleanup worker,
    /// removing the single-consumer bottleneck under multi-core writes.
    /// Writes are routed to a stripe by `(device, inode, offset/entry_size)`
    /// hash; a global sequence number preserves recoverability (entries from
    /// all stripes merge-replay in total order).
    pub log_shards: usize,
    /// Number of inner backends this cache propagates to. `1` (the default)
    /// is the paper's deployment — one legacy file system below the cache —
    /// and keeps the persistent image seed-compatible. `B > 1` switches the
    /// fd table to the v3 tiered slot layout (each slot records which
    /// backend owns the file) and is set by
    /// [`NvCacheBuilder::backends`](crate::NvCacheBuilder::backends); it
    /// must equal the length of the backend vector handed to the builder.
    ///
    /// Each backend may additionally carry a vertical **layer stack**
    /// ([`NvCacheBuilder::backend_stack`](crate::NvCacheBuilder::backend_stack)
    /// — delay/fault/crypt/RAM-cache wrappers from `vfs::layer`). Stacks
    /// are per-mount, purely volatile state: nothing about them is encoded
    /// in the NVMM image or in this configuration, they are validated at
    /// mount time (depth ≤ [`vfs::MAX_STACK_DEPTH`]), and a region written
    /// through one stack may be recovered through another — recovery
    /// replays through whatever stack the recovering mount supplies, so
    /// remounting an encrypted tier *without* its `CryptLayer` (or with the
    /// wrong key) yields unreadable ciphertext, exactly like a real
    /// encrypted disk.
    pub backends: usize,
    /// Queue depth of each cleanup worker's submission ring. `1` (the
    /// default) reproduces the paper's synchronous drain exactly: every
    /// propagation `pwrite` waits for the previous one. `N > 1` lets each
    /// worker keep up to `N` propagation writes in flight (io_uring-style),
    /// overlapping the inner device's latency across a batch; the batch's
    /// coalesced `fsync`s still act as completion barriers, so the stripe
    /// tail only advances once the whole batch is durable below.
    pub queue_depth: usize,
    /// Number of NVMe-style submission/completion queue pairs on the write
    /// front-end. `0` (the default) does not construct the front-end at all:
    /// every write takes the paper's synchronous `pwrite` path, byte- and
    /// virtual-time-identical to the seed. `N ≥ 1` lets up to `N` simulated
    /// cores each take a [`QueuePair`](crate::QueuePair) via
    /// [`NvCache::queue_pair`](crate::NvCache::queue_pair), enqueue
    /// write/flush ops without per-call overhead, and make everything
    /// submitted durable with one doorbell that batch-reserves a window per
    /// routed stripe — one `pfence`+`psync` pair per stripe group instead of
    /// one per write. The synchronous path stays fully available alongside.
    pub sq_pairs: usize,
    /// How the tier migrator may move files between backends of a tiered
    /// mount. [`MigrationPolicy::Disabled`] (the default) keeps the migrator
    /// fully inert — single-backend mounts stay byte- and
    /// virtual-time-identical to a build without the migrator;
    /// [`MigrationPolicy::OnDemand`] enables explicit
    /// [`rebalance`](crate::NvCache::rebalance)/[`migrate`](crate::NvCache::migrate)
    /// sweeps; [`MigrationPolicy::Background`] additionally runs a worker
    /// thread that re-homes misplaced files on its own.
    pub migration: MigrationPolicy,
    /// Whether a `rename` whose source and destination resolve to different
    /// tiers is executed as a migrate-then-rename (copy → stamp → unlink
    /// through the migration journal) instead of failing with
    /// `EXDEV`. `false` (the default) keeps the legacy mount-point-crossing
    /// fidelity: applications see `EXDEV` and apply their own fallback, as
    /// `mv` does. The migrated rename has `mv` semantics, **not**
    /// `rename(2)` atomicity: a crash can leave both names briefly
    /// (recovery converges every name to one authoritative copy), and a
    /// pre-existing destination is truncated before the copy commits, so a
    /// *failed* cross-tier rename can lose the old destination content —
    /// exactly like `mv` across mount points.
    pub cross_tier_rename: bool,
    /// The placement policy deciding *where* the tier migrator should move
    /// files (the migration protocol decides *how*). `None` (the default)
    /// is [`RouterPlacement`](crate::RouterPlacement) — files belong
    /// wherever the router's static rules put them, exactly the pre-policy
    /// behavior, byte- and virtual-time-identical.
    /// [`HeatPolicy`](crate::HeatPolicy) instead drives placement from
    /// per-file access temperature: hot files are promoted onto a
    /// designated fast tier regardless of path, cold ones demoted back to
    /// the router baseline, with hysteresis and an optional fast-tier byte
    /// budget. Set via
    /// [`with_placement`](NvCacheConfig::with_placement).
    pub placement: Option<Arc<dyn PlacementPolicy>>,
    /// Upper bound on resident entries in the migrator's closed-file
    /// catalog. `None` (the default) keeps the catalog unbounded — every
    /// path ever closed stays tracked, the seed behavior, byte- and
    /// virtual-time-identical. `Some(n)` caps the resident set at `n`
    /// entries with a clock (second-chance) eviction policy that only
    /// evicts *correctly-placed cold* files: an entry that is misplaced
    /// (its recorded tier disagrees with
    /// [`PlacementPolicy::place_cold`](crate::PlacementPolicy::place_cold))
    /// or whose decayed heat sits at or above the policy's promote
    /// threshold is pinned until a sweep acts on it, so a bounded catalog
    /// never loses work the migrator still owes. When the pinned
    /// population alone exceeds `n` the catalog grows past the cap rather
    /// than drop pinned entries (evictions and readmissions are counted in
    /// [`NvCacheStatsSnapshot`](crate::NvCacheStatsSnapshot)). This is the
    /// knob that keeps sweep time and catalog memory O(hot files) instead
    /// of O(total files) on million-file namespaces.
    pub catalog_capacity: Option<usize>,
    /// Whether each fd slot additionally persists a compact per-file
    /// temperature summary (quantized decayed heat + a format epoch) in
    /// the slot bytes past the path field. `false` (the default) keeps
    /// the v3 slot layout and NVMM image byte-identical to the seed.
    /// `true` (tiered mounts only) shortens the on-slot path budget from
    /// `PATH_MAX_V3` (240) to `PATH_MAX_HEAT` (232) bytes and stamps the
    /// summary at close time, so a crash + [`Mount::Recover`](crate::Mount::Recover) remount
    /// re-seeds [`HeatPolicy`](crate::HeatPolicy) promotions instead of
    /// starting every file cold.
    pub persist_heat: bool,
    /// User-space bookkeeping cost charged per intercepted call (NVCache
    /// replaces the syscall with this — the design's core bet).
    pub libc_overhead: SimTime,
    /// DRAM copy bandwidth for read-cache hits and buffer copies.
    pub copy_bandwidth: Bandwidth,
}

impl Default for NvCacheConfig {
    fn default() -> Self {
        NvCacheConfig {
            entry_size: 4096,
            nb_entries: 16 * 1024 * 1024,
            page_size: 4096,
            read_cache_pages: 250_000,
            batch_min: 1_000,
            batch_max: 10_000,
            // Must comfortably exceed the steady-state population of
            // closed-but-not-yet-drained descriptors (one cleanup batch's
            // worth of closes), or opens start forcing log drains.
            fd_slots: 4096,
            log_shards: 1,
            backends: 1,
            queue_depth: 1,
            sq_pairs: 0,
            migration: MigrationPolicy::Disabled,
            cross_tier_rename: false,
            placement: None,
            catalog_capacity: None,
            persist_heat: false,
            libc_overhead: SimTime::from_nanos(1_500),
            copy_bandwidth: Bandwidth::gib_per_sec(8.0),
        }
    }
}

impl NvCacheConfig {
    /// Shrinks capacity knobs (log length, read cache) by `factor`, keeping
    /// latencies, entry/page sizes — and the batching *policy* — unchanged:
    /// the batch size controls fsync amortization (paper Fig. 6), which must
    /// not vary with the experiment scale.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn scaled(mut self, factor: u64) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        self.nb_entries = (self.nb_entries / factor).max(16);
        self.read_cache_pages = ((self.read_cache_pages as u64 / factor) as usize).max(16);
        self
    }

    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        NvCacheConfig {
            nb_entries: 64,
            read_cache_pages: 16,
            batch_min: 1,
            batch_max: 16,
            fd_slots: 16,
            ..NvCacheConfig::default()
        }
    }

    /// Sets the log length in entries.
    pub fn with_log_entries(mut self, n: u64) -> Self {
        self.nb_entries = n;
        self
    }

    /// Sets the number of log stripes, rounding the log length up to the
    /// next multiple of `shards` (each stripe needs an equal share of at
    /// least two entries).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds
    /// [`MAX_LOG_SHARDS`](crate::layout::MAX_LOG_SHARDS).
    pub fn with_log_shards(mut self, shards: usize) -> Self {
        assert!(
            (1..=crate::layout::MAX_LOG_SHARDS).contains(&shards),
            "log_shards must be in 1..={}",
            crate::layout::MAX_LOG_SHARDS
        );
        self.log_shards = shards;
        let shards = shards as u64;
        self.nb_entries = self.nb_entries.max(2 * shards).div_ceil(shards) * shards;
        self
    }

    /// Sets the number of inner backends (normally done by
    /// [`NvCacheBuilder::backends`](crate::NvCacheBuilder::backends), which
    /// keeps it in sync with the backend vector).
    ///
    /// # Panics
    ///
    /// Panics if `backends` is zero or exceeds
    /// [`MAX_BACKENDS`](crate::layout::MAX_BACKENDS).
    pub fn with_backends(mut self, backends: usize) -> Self {
        assert!(
            (1..=crate::layout::MAX_BACKENDS).contains(&backends),
            "backends must be in 1..={}",
            crate::layout::MAX_BACKENDS
        );
        self.backends = backends;
        self
    }

    /// Sets the tier-migration policy (see [`MigrationPolicy`]; normally
    /// paired with a multi-backend
    /// [`NvCacheBuilder::backends`](crate::NvCacheBuilder::backends) mount —
    /// on a single backend every policy is inert).
    pub fn with_migration(mut self, policy: MigrationPolicy) -> Self {
        self.migration = policy;
        self
    }

    /// Allows `rename` across tiers as a migrate-then-rename instead of
    /// `EXDEV` (see [`NvCacheConfig::cross_tier_rename`]).
    pub fn with_cross_tier_rename(mut self, allow: bool) -> Self {
        self.cross_tier_rename = allow;
        self
    }

    /// Installs a [`PlacementPolicy`] deciding where the tier migrator
    /// moves files (see [`NvCacheConfig::placement`]). Without this the
    /// mount uses [`RouterPlacement`](crate::RouterPlacement) — the
    /// router's static rules, the pre-policy behavior.
    ///
    /// Heat tracking and rebalance sweeps only run when migration is
    /// armed: pair a [`HeatPolicy`](crate::HeatPolicy) with a
    /// [`MigrationPolicy`](crate::MigrationPolicy) other than `Disabled`
    /// (or the cross-tier-rename flag), or no file will ever move and the
    /// promotion counters stay at zero. The policy's *cold* judgement
    /// ([`PlacementPolicy::place_cold`]) still applies either way — it
    /// decides `files_misplaced` and the `RecoverRepair` targets at
    /// recovery, which is why a `Disabled` + policy combination is legal
    /// rather than rejected.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use nvcache::{HeatPolicy, MigrationPolicy, NvCacheConfig};
    /// use simclock::SimTime;
    ///
    /// let cfg = NvCacheConfig::tiny()
    ///     .with_migration(MigrationPolicy::Background)
    ///     .with_placement(Arc::new(HeatPolicy::new(
    ///         1,                        // promote onto backend 1
    ///         8.0,                      // promote at 8 units of heat
    ///         2.0,                      // demote below 2
    ///         SimTime::from_secs(30),   // heat halves every 30 s
    ///     )));
    /// assert_eq!(cfg.placement.as_ref().map(|p| p.name().to_string()).as_deref(), Some("heat"));
    /// ```
    pub fn with_placement(mut self, policy: Arc<dyn PlacementPolicy>) -> Self {
        self.placement = Some(policy);
        self
    }

    /// Caps the migrator's closed-file catalog at `n` resident entries
    /// (see [`NvCacheConfig::catalog_capacity`]); without this call the
    /// catalog is unbounded, the seed behavior.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero — a catalog that can hold nothing would
    /// silently disable heat accumulation and misplacement tracking.
    pub fn with_catalog_capacity(mut self, n: usize) -> Self {
        assert!(n >= 1, "catalog_capacity must be at least 1");
        self.catalog_capacity = Some(n);
        self
    }

    /// Persists a compact per-file temperature summary in each fd slot
    /// (see [`NvCacheConfig::persist_heat`]). Tiered mounts only —
    /// [`validate`](NvCacheConfig::validate) rejects the flag on a
    /// single-backend configuration, where there is no placement decision
    /// for the summary to survive into.
    pub fn with_persist_heat(mut self, persist: bool) -> Self {
        self.persist_heat = persist;
        self
    }

    /// Sets the cleanup workers' submission-ring queue depth (`1` =
    /// synchronous drain, the paper's behavior).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "queue_depth must be at least 1");
        self.queue_depth = depth;
        self
    }

    /// Sets the number of submission/completion queue pairs on the write
    /// front-end (`0`, the default, keeps the purely synchronous path; see
    /// [`NvCacheConfig::sq_pairs`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_SQ_PAIRS`](NvCacheConfig::MAX_SQ_PAIRS).
    pub fn with_sq_pairs(mut self, n: usize) -> Self {
        assert!(n <= Self::MAX_SQ_PAIRS, "sq_pairs must be at most {}", Self::MAX_SQ_PAIRS);
        self.sq_pairs = n;
        self
    }

    /// Upper bound on [`sq_pairs`](NvCacheConfig::sq_pairs) — queue pairs
    /// model per-core submission contexts, so the bound mirrors
    /// "one pair per plausible core".
    pub const MAX_SQ_PAIRS: usize = 256;

    /// Sets the cleanup batch window.
    pub fn with_batching(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && max >= min, "invalid batch window {min}..{max}");
        self.batch_min = min;
        self.batch_max = max;
        self
    }

    /// Sets the read-cache capacity in pages.
    pub fn with_read_cache_pages(mut self, pages: usize) -> Self {
        self.read_cache_pages = pages.max(1);
        self
    }

    /// NVMM bytes needed for this configuration (header + fd table + log).
    pub fn required_nvmm_bytes(&self) -> u64 {
        crate::layout::Layout::for_config(self).total_bytes()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent settings (non-power-of-two page size, zero
    /// capacities, batch window inversion).
    pub fn validate(&self) {
        assert!(self.page_size.is_power_of_two(), "page size must be a power of two");
        assert!(self.entry_size > 0, "entry size must be positive");
        assert!(self.nb_entries >= 2, "log needs at least two entries");
        assert!(self.read_cache_pages >= 1, "read cache needs at least one page");
        assert!(self.batch_min >= 1 && self.batch_max >= self.batch_min, "invalid batch window");
        assert!(self.fd_slots >= 1, "need at least one fd slot");
        assert!(
            (1..=crate::layout::MAX_LOG_SHARDS).contains(&self.log_shards),
            "log_shards must be in 1..={}",
            crate::layout::MAX_LOG_SHARDS
        );
        assert!(
            self.nb_entries.is_multiple_of(self.log_shards as u64),
            "nb_entries must divide evenly into {} stripes",
            self.log_shards
        );
        assert!(
            self.nb_entries / self.log_shards as u64 >= 2,
            "each log stripe needs at least two entries"
        );
        assert!(self.queue_depth >= 1, "queue_depth must be at least 1");
        assert!(
            self.sq_pairs <= Self::MAX_SQ_PAIRS,
            "sq_pairs must be at most {}",
            Self::MAX_SQ_PAIRS
        );
        assert!(
            (1..=crate::layout::MAX_BACKENDS).contains(&self.backends),
            "backends must be in 1..={}",
            crate::layout::MAX_BACKENDS
        );
        if let Some(capacity) = self.catalog_capacity {
            assert!(capacity >= 1, "catalog_capacity must be at least 1");
        }
        assert!(
            !self.persist_heat || self.backends > 1,
            "persist_heat requires a tiered mount (backends > 1): a single-backend \
             slot layout has no spare bytes and no placement to re-seed"
        );
        if let Some(fast) = self.placement.as_ref().and_then(|p| p.fast_tier()) {
            assert!(
                fast < self.backends,
                "placement policy promotes onto backend {fast}, \
                 but the mount has only {} backend(s)",
                self.backends
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let cfg = NvCacheConfig::default();
        assert_eq!(cfg.entry_size, 4096);
        assert_eq!(cfg.nb_entries, 16 * 1024 * 1024);
        assert_eq!(cfg.read_cache_pages, 250_000);
        assert_eq!(cfg.batch_min, 1_000);
        assert_eq!(cfg.batch_max, 10_000);
        cfg.validate();
    }

    #[test]
    fn scaling_preserves_sizes() {
        let cfg = NvCacheConfig::default().scaled(64);
        assert_eq!(cfg.entry_size, 4096);
        assert_eq!(cfg.page_size, 4096);
        assert_eq!(cfg.nb_entries, 262_144);
        cfg.validate();
    }

    #[test]
    fn required_bytes_covers_log() {
        let cfg = NvCacheConfig::tiny();
        let need = cfg.required_nvmm_bytes();
        assert!(need > cfg.nb_entries * cfg.entry_size as u64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_panics() {
        let cfg = NvCacheConfig { page_size: 3000, ..NvCacheConfig::tiny() };
        cfg.validate();
    }

    #[test]
    fn default_migration_is_disabled_and_exdev_preserved() {
        let cfg = NvCacheConfig::default();
        assert_eq!(cfg.migration, MigrationPolicy::Disabled);
        assert!(!cfg.cross_tier_rename);
        let cfg = cfg.with_migration(MigrationPolicy::Background).with_cross_tier_rename(true);
        assert_eq!(cfg.migration, MigrationPolicy::Background);
        assert!(cfg.cross_tier_rename);
        cfg.validate();
    }

    #[test]
    fn default_placement_is_router_static() {
        assert!(NvCacheConfig::default().placement.is_none());
        assert!(NvCacheConfig::tiny().placement.is_none());
    }

    #[test]
    #[should_panic(expected = "promotes onto backend")]
    fn out_of_range_fast_tier_panics() {
        let policy = crate::HeatPolicy::new(2, 4.0, 1.0, SimTime::from_secs(1));
        NvCacheConfig::tiny()
            .with_backends(2)
            .with_placement(Arc::new(policy))
            .validate();
    }

    #[test]
    fn default_catalog_is_unbounded_and_heat_volatile() {
        let cfg = NvCacheConfig::default();
        assert_eq!(cfg.catalog_capacity, None);
        assert!(!cfg.persist_heat);
        let cfg = NvCacheConfig::tiny()
            .with_backends(2)
            .with_catalog_capacity(128)
            .with_persist_heat(true);
        assert_eq!(cfg.catalog_capacity, Some(128));
        assert!(cfg.persist_heat);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "catalog_capacity must be at least 1")]
    fn zero_catalog_capacity_panics() {
        NvCacheConfig::tiny().with_catalog_capacity(0);
    }

    #[test]
    #[should_panic(expected = "persist_heat requires a tiered mount")]
    fn persist_heat_on_single_backend_panics() {
        NvCacheConfig::tiny().with_persist_heat(true).validate();
    }

    #[test]
    fn default_is_single_shard() {
        assert_eq!(NvCacheConfig::default().log_shards, 1);
        assert_eq!(NvCacheConfig::tiny().log_shards, 1);
    }

    #[test]
    fn default_is_single_backend() {
        assert_eq!(NvCacheConfig::default().backends, 1);
        let cfg = NvCacheConfig::tiny().with_backends(3);
        assert_eq!(cfg.backends, 3);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "backends must be in")]
    fn zero_backends_panics() {
        NvCacheConfig::tiny().with_backends(0);
    }

    #[test]
    fn default_drain_is_synchronous() {
        assert_eq!(NvCacheConfig::default().queue_depth, 1);
        let cfg = NvCacheConfig::tiny().with_queue_depth(16);
        assert_eq!(cfg.queue_depth, 16);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "queue_depth must be at least 1")]
    fn zero_queue_depth_panics() {
        NvCacheConfig::tiny().with_queue_depth(0);
    }

    #[test]
    fn default_has_no_queue_pairs() {
        assert_eq!(NvCacheConfig::default().sq_pairs, 0);
        assert_eq!(NvCacheConfig::tiny().sq_pairs, 0);
        let cfg = NvCacheConfig::tiny().with_sq_pairs(8);
        assert_eq!(cfg.sq_pairs, 8);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "sq_pairs must be at most")]
    fn excessive_sq_pairs_panics() {
        NvCacheConfig::tiny().with_sq_pairs(NvCacheConfig::MAX_SQ_PAIRS + 1);
    }

    #[test]
    fn with_log_shards_rounds_the_log_up() {
        let cfg = NvCacheConfig { nb_entries: 67, ..NvCacheConfig::tiny() }.with_log_shards(8);
        assert_eq!(cfg.log_shards, 8);
        assert_eq!(cfg.nb_entries, 72);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn indivisible_shard_split_panics() {
        let cfg = NvCacheConfig { nb_entries: 65, log_shards: 4, ..NvCacheConfig::tiny() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "log_shards must be in")]
    fn zero_shards_panics() {
        NvCacheConfig::tiny().with_log_shards(0);
    }
}
