//! Placement policies for tiered mounts: *where* should each closed file
//! live? The [`PlacementPolicy`] trait decides the tier-migration targets
//! the sweep ([`NvCache::rebalance`](crate::NvCache::rebalance), the
//! background worker) and the recovery misplacement judgement
//! ([`Mount::RecoverRepair`](crate::Mount),
//! [`RecoveryReport::files_misplaced`](crate::RecoveryReport)) work
//! toward. The policy only decides *where* a file belongs — the journaled
//! copy → stamp → unlink protocol of `migrate.rs` remains the only way a
//! file actually moves, and open-time placement of *new* files stays with
//! the [`Router`].
//!
//! Two policies ship:
//!
//! * [`RouterPlacement`] (the default) — a file belongs wherever the
//!   router's static rules put its path. This reproduces the pre-policy
//!   migrator exactly: the default configuration is byte- and
//!   virtual-time-identical to a build without this module.
//! * [`HeatPolicy`] — temperature-driven: files whose exponentially
//!   decayed access heat crosses `promote_threshold` belong on the
//!   `fast_tier` regardless of what the router says; files that cool below
//!   `demote_threshold` fall back to the router's baseline. The gap
//!   between the two thresholds is a **hysteresis band** (a file inside it
//!   stays put), and an optional fast-tier byte budget demotes the coldest
//!   residents when the hot set outgrows the fast tier.
//!
//! # Temperature
//!
//! Every intercepted read and write touches the file's temperature: the
//! stored heat is first decayed to the touching call's **virtual** clock
//! (`heat ← heat · 2^(−Δt / half_life)`, no wall clock anywhere), then
//! incremented by one. Temperature survives close → reopen through the
//! migrator catalog, exactly like the raw read/write counters; by default
//! it does **not** survive a remount (the catalog is volatile), so a
//! freshly recovered file is judged by [`PlacementPolicy::place_cold`].
//! [`NvCacheConfig::persist_heat`](crate::NvCacheConfig::persist_heat)
//! relaxes that: each fd slot then carries a quantized summary
//! ([`quantize_heat`]/[`dequantize_heat`]) that recovery feeds back into
//! the catalog, so promotions re-earn themselves from the persisted heat
//! instead of from scratch.

use simclock::SimTime;

use crate::router::Router;

/// A decaying access-heat accumulator: `heat` as of virtual instant
/// `stamp`. Decay is applied lazily — readers fold `2^(−Δt / half_life)`
/// in at observation time — so an untouched file costs nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct Temperature {
    /// Accumulated heat, valid as of `stamp`.
    pub heat: f64,
    /// Virtual instant of the last touch (per-actor clocks: a touch from a
    /// clock behind `stamp` neither decays nor rewinds).
    pub stamp: SimTime,
}

impl Temperature {
    /// The heat decayed to `now`. `half_life = None` disables decay (the
    /// accumulator then equals the lifetime touch count).
    pub fn decayed(&self, now: SimTime, half_life: Option<SimTime>) -> f64 {
        let Some(hl) = half_life else { return self.heat };
        let dt = now.saturating_sub(self.stamp);
        if dt == SimTime::ZERO || self.heat == 0.0 {
            self.heat
        } else {
            self.heat * f64::exp2(-(dt.as_nanos() as f64 / hl.as_nanos().max(1) as f64))
        }
    }

    /// One access at `now`: decay, then add one unit of heat.
    pub fn touch(&mut self, now: SimTime, half_life: Option<SimTime>) {
        self.heat = self.decayed(now, half_life) + 1.0;
        self.stamp = self.stamp.max(now);
    }
}

/// Quantizes a decayed heat value into the 16-bit summary persisted in an
/// fd slot's heat bytes: `min(65535, round(256 · log2(1 + heat)))`. The
/// log keeps the full dynamic range (heat ~10^74 still fits) at a relative
/// precision of ~0.3 %, and the mapping is monotone nondecreasing — a
/// hotter file never persists a colder summary.
pub(crate) fn quantize_heat(heat: f64) -> u16 {
    if heat.is_nan() || heat <= 0.0 {
        // Negative and NaN inputs cannot occur (heat is a sum of decayed
        // positive touches) but must still map to "cold", not wrap.
        return 0;
    }
    let q = (256.0 * (1.0 + heat).log2()).round();
    if q >= u16::MAX as f64 {
        u16::MAX
    } else {
        q as u16
    }
}

/// Inverse of [`quantize_heat`], up to quantization error:
/// `2^(q / 256) − 1`. Monotone nondecreasing in `q`, and `0` maps back to
/// exactly `0.0` — a zeroed (pre-heat-format) slot reads as stone cold.
pub(crate) fn dequantize_heat(q: u16) -> f64 {
    if q == 0 {
        0.0
    } else {
        f64::exp2(q as f64 / 256.0) - 1.0
    }
}

/// The placement policy's view of one catalogued (closed) file — the input
/// of [`PlacementPolicy::assign`].
#[derive(Debug, Clone, PartialEq)]
pub struct FileTemperature {
    /// Normalized absolute path.
    pub path: String,
    /// Backend index currently holding the file.
    pub backend: usize,
    /// Payload bytes at last close (`0` when only recovery has seen the
    /// file — its size is unknown until it is reopened or migrated).
    pub bytes: u64,
    /// Exponentially decayed access heat, decayed to the sweep instant
    /// with the policy's own [`half_life`](PlacementPolicy::half_life).
    pub heat: f64,
    /// Lifetime intercepted reads (undecayed).
    pub reads: u64,
    /// Lifetime intercepted writes (undecayed).
    pub writes: u64,
}

/// Decides where each closed file of a tiered mount belongs. Installed via
/// [`NvCacheConfig::with_placement`](crate::NvCacheConfig::with_placement);
/// the default is [`RouterPlacement`].
///
/// The policy is consulted by the rebalance sweep (all catalogued files at
/// once, so cross-file constraints like a capacity budget can hold) and by
/// recovery (per file, with no temperature — the catalog is volatile). It
/// never changes *how* a file moves: every move still goes through the
/// crash-safe migration protocol, and open-time placement of new files
/// stays with the [`Router`].
///
/// # Example
///
/// ```
/// use nvcache::{FileTemperature, HeatPolicy, PlacementPolicy, SingleBackend};
/// use simclock::SimTime;
///
/// let policy = HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(60));
/// let hot = FileTemperature {
///     path: "/cold/but-busy".into(),
///     backend: 0,
///     bytes: 4096,
///     heat: 9.5,
///     reads: 9,
///     writes: 1,
/// };
/// // The router would keep the file on tier 0; its heat promotes it.
/// assert_eq!(policy.assign(&[hot], &SingleBackend, 2), vec![1]);
/// ```
pub trait PlacementPolicy: Send + Sync + std::fmt::Debug {
    /// The target backend for each file in `files` (parallel vector, same
    /// order). A file whose target equals its current backend is left in
    /// place. `router` provides the static baseline placement and
    /// `backends` the mount's backend count; every returned index must be
    /// `< backends`.
    fn assign(&self, files: &[FileTemperature], router: &dyn Router, backends: usize)
        -> Vec<usize>;

    /// Where a file with **no accumulated temperature** belongs — the
    /// recovery-time judgement (`files_misplaced`,
    /// [`Mount::RecoverRepair`](crate::Mount) re-homing), where the
    /// volatile heat catalog is empty. `current` is the backend holding
    /// the file's bytes.
    fn place_cold(&self, path: &str, current: usize, router: &dyn Router) -> usize;

    /// Half-life of the exponential heat decay. `None` (the default)
    /// accumulates heat without decay — the raw touch count.
    fn half_life(&self) -> Option<SimTime> {
        None
    }

    /// Whether this policy reads [`FileTemperature::heat`] at all. The
    /// default derives it from the decay and fast-tier hooks; override to
    /// return `true` if your policy consumes heat without declaring
    /// either. When `false` the mount skips the per-I/O temperature
    /// bookkeeping entirely — [`RouterPlacement`] routes by path alone, so
    /// the default tiered mount pays nothing on the read/write path.
    fn uses_temperature(&self) -> bool {
        self.half_life().is_some() || self.fast_tier().is_some()
    }

    /// Decayed heat at or above which a catalogued entry must **never** be
    /// evicted from a capacity-bounded migrator catalog
    /// ([`NvCacheConfig::catalog_capacity`](crate::NvCacheConfig::catalog_capacity)):
    /// such an entry is promotion work the next sweep still owes, and
    /// dropping it would silently cancel the promotion. `None` (the
    /// default) pins nothing by heat — entries are then only pinned while
    /// misplaced.
    fn retain_heat_threshold(&self) -> Option<f64> {
        None
    }

    /// The backend this policy promotes hot files onto, if any. Drives the
    /// [`files_promoted`](crate::NvCacheStats::files_promoted) /
    /// [`files_demoted`](crate::NvCacheStats::files_demoted) /
    /// [`fast_tier_bytes`](crate::NvCacheStats::fast_tier_bytes) counters;
    /// `None` (the default) leaves them at zero.
    fn fast_tier(&self) -> Option<usize> {
        None
    }

    /// Short human-readable name (mount banners, bench output).
    fn name(&self) -> &str {
        "placement"
    }
}

/// The default policy: a file belongs exactly where the [`Router`] puts
/// its path. Reproduces the pre-policy migrator byte for byte and
/// nanosecond for nanosecond — the sweep targets, the sweep order and the
/// recovery misplacement judgement are unchanged (pinned by the oracle
/// test in `heat_tests.rs`).
///
/// ```
/// use nvcache::{PathPrefixRouter, PlacementPolicy, RouterPlacement};
/// let router = PathPrefixRouter::new(vec![("/hot".into(), 1)], 0);
/// assert_eq!(RouterPlacement.place_cold("/hot/wal", 0, &router), 1);
/// assert_eq!(RouterPlacement.place_cold("/bulk/seg", 1, &router), 0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RouterPlacement;

impl PlacementPolicy for RouterPlacement {
    fn assign(
        &self,
        files: &[FileTemperature],
        router: &dyn Router,
        _backends: usize,
    ) -> Vec<usize> {
        files.iter().map(|f| router.route(&f.path, 0)).collect()
    }

    fn place_cold(&self, path: &str, _current: usize, router: &dyn Router) -> usize {
        router.route(path, 0)
    }

    fn name(&self) -> &str {
        "router"
    }
}

/// Temperature-driven placement: promote hot files onto one designated
/// fast tier, demote cold ones back to the router's baseline, with
/// hysteresis and an optional fast-tier capacity budget.
///
/// The per-file rule, judged on heat decayed to the sweep instant:
///
/// * `heat ≥ promote_threshold` → the file belongs on `fast_tier`, **no
///   matter where the router routes its path** (that is the whole point:
///   a hot file under a cold-routed prefix still converges onto the fast
///   medium).
/// * `heat ≤ demote_threshold` → the file belongs on the router's
///   baseline placement for its path (which may itself be the fast tier —
///   explicit routing rules keep working).
/// * in between (the **hysteresis band**) → the file stays where it is. A
///   file can therefore only change tier when its heat traverses the
///   whole band, which bounds oscillation to one move per threshold
///   crossing (the proptest in this module pins that down).
///
/// After the per-file pass, the optional **budget** pass sums the bytes
/// assigned to the fast tier and, while the sum exceeds
/// [`with_budget`](HeatPolicy::with_budget), demotes the coldest
/// fast-tier residents to their baseline (or to the lowest-indexed other
/// tier when the baseline *is* the fast tier) — so the hot set can never
/// outgrow the fast medium, at the price of evicting its coldest members
/// even inside the hysteresis band. Note that the hysteresis band does
/// **not** extend to the budget boundary: two near-equal-heat files
/// contending for the last budgeted seat can swap places on consecutive
/// sweeps whenever their decayed-heat order flips. Size the budget with
/// headroom over the expected hot set (or widen the thresholds) if that
/// churn matters for your workload.
#[derive(Debug, Clone)]
pub struct HeatPolicy {
    fast_tier: usize,
    promote_threshold: f64,
    demote_threshold: f64,
    half_life: SimTime,
    fast_tier_budget: u64,
}

impl HeatPolicy {
    /// A policy promoting files hotter than `promote_threshold` onto
    /// backend `fast_tier` and demoting files colder than
    /// `demote_threshold` back to the router baseline, with heat halving
    /// every `half_life` of virtual time. No budget (see
    /// [`with_budget`](HeatPolicy::with_budget)).
    ///
    /// # Panics
    ///
    /// Panics unless `promote_threshold > demote_threshold ≥ 0` (the
    /// hysteresis band must have positive width, or a file at the shared
    /// threshold would ping-pong) or if `half_life` is zero.
    pub fn new(
        fast_tier: usize,
        promote_threshold: f64,
        demote_threshold: f64,
        half_life: SimTime,
    ) -> HeatPolicy {
        assert!(
            promote_threshold > demote_threshold && demote_threshold >= 0.0,
            "hysteresis band must have positive width: promote {promote_threshold} \
             must exceed demote {demote_threshold} >= 0"
        );
        assert!(half_life > SimTime::ZERO, "heat half-life must be positive");
        HeatPolicy {
            fast_tier,
            promote_threshold,
            demote_threshold,
            half_life,
            fast_tier_budget: u64::MAX,
        }
    }

    /// Caps the payload bytes the policy will assign to the fast tier;
    /// when exceeded, the coldest fast-tier residents are demoted first.
    pub fn with_budget(mut self, bytes: u64) -> HeatPolicy {
        self.fast_tier_budget = bytes;
        self
    }

    /// The designated fast tier.
    pub fn fast_tier_index(&self) -> usize {
        self.fast_tier
    }

    /// Where a demoted file goes: its router baseline, unless the baseline
    /// *is* the fast tier — then the lowest-indexed other backend.
    fn spill_tier(&self, baseline: usize, backends: usize) -> usize {
        if baseline != self.fast_tier {
            baseline
        } else {
            (0..backends).find(|&b| b != self.fast_tier).unwrap_or(self.fast_tier)
        }
    }
}

impl PlacementPolicy for HeatPolicy {
    fn assign(
        &self,
        files: &[FileTemperature],
        router: &dyn Router,
        backends: usize,
    ) -> Vec<usize> {
        let mut targets: Vec<usize> = files
            .iter()
            .map(|f| {
                if f.heat >= self.promote_threshold {
                    self.fast_tier
                } else if f.heat <= self.demote_threshold {
                    router.route(&f.path, 0)
                } else {
                    f.backend // hysteresis band: no move
                }
            })
            .collect();
        if self.fast_tier_budget < u64::MAX {
            let mut residents: Vec<usize> = (0..files.len())
                .filter(|&i| targets[i] == self.fast_tier && files[i].bytes > 0)
                .collect();
            let mut occupied: u64 = residents.iter().map(|&i| files[i].bytes).sum();
            // Coldest first; bigger files first within equal heat (frees
            // the budget with the fewest evictions), path as the final
            // deterministic tie-break.
            residents.sort_by(|&a, &b| {
                files[a]
                    .heat
                    .total_cmp(&files[b].heat)
                    .then(files[b].bytes.cmp(&files[a].bytes))
                    .then(files[a].path.cmp(&files[b].path))
            });
            for i in residents {
                if occupied <= self.fast_tier_budget {
                    break;
                }
                targets[i] = self.spill_tier(router.route(&files[i].path, 0), backends);
                occupied -= files[i].bytes;
            }
        }
        targets
    }

    fn place_cold(&self, path: &str, _current: usize, router: &dyn Router) -> usize {
        // No temperature (fresh recovery): the router baseline. Files the
        // policy had promoted before the crash are therefore judged
        // misplaced after it — temperature is volatile by design, and the
        // file re-earns its promotion as heat accumulates.
        router.route(path, 0)
    }

    fn half_life(&self) -> Option<SimTime> {
        Some(self.half_life)
    }

    fn retain_heat_threshold(&self) -> Option<f64> {
        // An entry at or above the promote threshold is a promotion the
        // sweep has not executed yet — a bounded catalog must keep it.
        Some(self.promote_threshold)
    }

    fn fast_tier(&self) -> Option<usize> {
        Some(self.fast_tier)
    }

    fn name(&self) -> &str {
        "heat"
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;
    use crate::router::{PathPrefixRouter, SingleBackend};

    fn file(path: &str, backend: usize, bytes: u64, heat: f64) -> FileTemperature {
        FileTemperature { path: path.into(), backend, bytes, heat, reads: 0, writes: 0 }
    }

    #[test]
    fn temperature_decays_with_the_virtual_clock() {
        let mut t = Temperature::default();
        let hl = Some(SimTime::from_secs(10));
        t.touch(SimTime::ZERO, hl);
        t.touch(SimTime::ZERO, hl);
        assert_eq!(t.decayed(SimTime::ZERO, hl), 2.0);
        // One half-life: exactly half the heat is left.
        assert_eq!(t.decayed(SimTime::from_secs(10), hl), 1.0);
        assert_eq!(t.decayed(SimTime::from_secs(20), hl), 0.5);
        // Touch after a half-life: decayed + 1.
        t.touch(SimTime::from_secs(10), hl);
        assert_eq!(t.decayed(SimTime::from_secs(10), hl), 2.0);
        // Reading without a half-life returns the stored (already decayed
        // at touch time) accumulator as-is.
        assert_eq!(t.decayed(SimTime::from_secs(10), None), 2.0);
    }

    #[test]
    fn temperature_never_rewinds_on_an_older_clock() {
        let mut t = Temperature::default();
        let hl = Some(SimTime::from_secs(1));
        t.touch(SimTime::from_secs(100), hl);
        // A touch from an actor whose clock lags must neither decay (the
        // saturating Δt is zero) nor move the stamp backwards.
        t.touch(SimTime::from_secs(50), hl);
        assert_eq!(t.stamp, SimTime::from_secs(100));
        assert_eq!(t.decayed(SimTime::from_secs(100), hl), 2.0);
    }

    #[test]
    fn router_placement_mirrors_the_router() {
        let router = PathPrefixRouter::new(vec![("/hot".into(), 1)], 0);
        let files = vec![file("/hot/a", 0, 10, 100.0), file("/bulk/b", 1, 10, 100.0)];
        assert_eq!(RouterPlacement.assign(&files, &router, 2), vec![1, 0]);
        assert_eq!(RouterPlacement.place_cold("/hot/a", 0, &router), 1);
        assert_eq!(RouterPlacement.half_life(), None);
        assert_eq!(RouterPlacement.fast_tier(), None);
    }

    #[test]
    fn heat_policy_promotes_demotes_and_holds_the_band() {
        let p = HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(60));
        let router = SingleBackend; // baseline: everything on tier 0
        let files = vec![
            file("/a", 0, 10, 5.0), // hot on slow tier → promote
            file("/b", 1, 10, 0.5), // cold on fast tier → demote to baseline
            file("/c", 0, 10, 2.0), // band, on slow → stay
            file("/d", 1, 10, 2.0), // band, on fast → stay
            file("/e", 1, 10, 4.0), // exactly at promote → fast
            file("/f", 0, 10, 1.0), // exactly at demote → baseline
        ];
        assert_eq!(p.assign(&files, &router, 2), vec![1, 0, 0, 1, 1, 0]);
        assert_eq!(p.fast_tier(), Some(1));
        assert_eq!(p.half_life(), Some(SimTime::from_secs(60)));
    }

    #[test]
    fn heat_policy_respects_explicit_router_rules_for_cold_files() {
        // A cold file whose *router baseline* is the fast tier stays there:
        // explicit placement rules outrank the temperature default.
        let p = HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(60));
        let router = PathPrefixRouter::new(vec![("/wal".into(), 1)], 0);
        let files = vec![file("/wal/0001", 1, 10, 0.0)];
        assert_eq!(p.assign(&files, &router, 2), vec![1]);
    }

    #[test]
    fn budget_demotes_the_coldest_residents_first() {
        let p = HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(60)).with_budget(25);
        let router = SingleBackend;
        let files = vec![
            file("/hottest", 0, 10, 9.0),
            file("/warm", 1, 10, 5.0),
            file("/coolest", 1, 10, 4.5),
            file("/band", 1, 10, 2.0), // band resident also counts toward the budget
        ];
        // 40 bytes want the fast tier, budget is 25: the two coldest
        // residents (/band at 2.0, /coolest at 4.5) are demoted.
        assert_eq!(p.assign(&files, &router, 2), vec![1, 1, 0, 0]);
    }

    #[test]
    fn budget_spills_to_another_tier_when_the_baseline_is_fast() {
        let p = HeatPolicy::new(0, 4.0, 1.0, SimTime::from_secs(60)).with_budget(10);
        // Everything baselines to tier 0 — which *is* the fast tier — so
        // the spill must pick the lowest-indexed other backend; the
        // hotter file keeps its seat under the 10-byte budget.
        let files = vec![file("/a", 0, 10, 9.0), file("/b", 0, 10, 8.0)];
        assert_eq!(p.assign(&files, &SingleBackend, 3), vec![0, 1]);
    }

    #[test]
    fn zero_byte_files_never_soak_up_budget_evictions() {
        let p = HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(60)).with_budget(5);
        // The recovery-seeded entry (unknown size, bytes = 0) occupies no
        // budget; evicting it would free nothing, so it must stay.
        let files = vec![file("/seeded", 1, 0, 2.0), file("/big", 1, 10, 9.0)];
        assert_eq!(p.assign(&files, &SingleBackend, 2), vec![1, 0]);
    }

    #[test]
    fn heat_quantization_is_monotone_and_cold_preserving() {
        assert_eq!(quantize_heat(0.0), 0);
        assert_eq!(quantize_heat(-1.0), 0);
        assert_eq!(quantize_heat(f64::NAN), 0);
        assert_eq!(dequantize_heat(0), 0.0);
        // Saturates instead of wrapping at the top of the range.
        assert_eq!(quantize_heat(f64::INFINITY), u16::MAX);
        assert_eq!(quantize_heat(1e300), u16::MAX);
        // Round trip stays within the ~0.3 % relative quantization error.
        for &h in &[0.5, 1.0, 4.0, 123.456, 1e6, 1e12] {
            let rt = dequantize_heat(quantize_heat(h));
            assert!((rt - h).abs() / h < 0.01, "heat {h} round-tripped to {rt}");
        }
        // Dequantization is strictly monotone over the whole code space.
        for q in 0..u16::MAX {
            assert!(dequantize_heat(q) < dequantize_heat(q + 1));
        }
    }

    #[test]
    fn retain_threshold_follows_the_promote_threshold() {
        assert_eq!(RouterPlacement.retain_heat_threshold(), None);
        let p = HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(60));
        assert_eq!(p.retain_heat_threshold(), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn inverted_thresholds_panic() {
        HeatPolicy::new(1, 1.0, 4.0, SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn zero_width_band_panics() {
        HeatPolicy::new(1, 2.0, 2.0, SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "half-life must be positive")]
    fn zero_half_life_panics() {
        HeatPolicy::new(1, 4.0, 1.0, SimTime::ZERO);
    }

    /// Band state of a heat value: above the promote threshold, below the
    /// demote threshold, or inside the hysteresis band.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Band {
        Hot,
        Cold,
        Within,
    }

    fn band(heat: f64, p: &HeatPolicy) -> Band {
        if heat >= p.promote_threshold {
            Band::Hot
        } else if heat <= p.demote_threshold {
            Band::Cold
        } else {
            Band::Within
        }
    }

    proptest! {
        /// Persisted-heat contract: hotter in ⇒ not-colder out, for any
        /// pair of heats the accumulator can produce.
        #[test]
        fn quantization_is_monotone(a in 0.0f64..1e9, b in 0.0f64..1e9) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(quantize_heat(lo) <= quantize_heat(hi));
            prop_assert!(
                dequantize_heat(quantize_heat(lo)) <= dequantize_heat(quantize_heat(hi))
            );
        }

        /// The hysteresis contract: under ANY access sequence, a file
        /// changes tier at most once per threshold crossing — every
        /// promotion happens at a step whose decayed heat is above the
        /// promote threshold, every demotion at a step below the demote
        /// threshold, and two consecutive moves always have a full band
        /// traversal between them (no ping-pong inside the band).
        #[test]
        fn no_oscillation_without_a_threshold_crossing(
            steps in proptest::collection::vec(
                // (touch the file this step?, virtual-time gap in ms)
                (any::<bool>(), 0u64..5_000),
                1..120,
            ),
            promote in 2.0f64..8.0,
            width in 0.5f64..1.9,
            half_life_ms in 100u64..2_000,
        ) {
            let p = HeatPolicy::new(
                1,
                promote,
                promote - width,
                SimTime::from_millis(half_life_ms),
            );
            let router = SingleBackend; // baseline: tier 0
            let mut temp = Temperature::default();
            let mut now = SimTime::ZERO;
            let mut tier = 0usize;
            let mut moves = 0usize;
            let mut crossings = 0usize;
            let mut last_extreme = Band::Cold; // files start cold
            for (touch, gap_ms) in steps {
                now += SimTime::from_millis(gap_ms);
                if touch {
                    temp.touch(now, p.half_life());
                }
                let heat = temp.decayed(now, p.half_life());
                // Count full band traversals of the heat signal itself.
                match band(heat, &p) {
                    Band::Hot if last_extreme == Band::Cold => {
                        crossings += 1;
                        last_extreme = Band::Hot;
                    }
                    Band::Cold if last_extreme == Band::Hot => {
                        crossings += 1;
                        last_extreme = Band::Cold;
                    }
                    _ => {}
                }
                let f = FileTemperature {
                    path: "/f".into(),
                    backend: tier,
                    bytes: 10,
                    heat,
                    reads: 0,
                    writes: 0,
                };
                let target = p.assign(std::slice::from_ref(&f), &router, 2)[0];
                if target != tier {
                    // Each move must be justified by the heat at this step.
                    if target == 1 {
                        prop_assert!(heat >= p.promote_threshold,
                            "promotion below the promote threshold (heat {heat})");
                    } else {
                        prop_assert!(heat <= p.demote_threshold,
                            "demotion above the demote threshold (heat {heat})");
                    }
                    tier = target;
                    moves += 1;
                }
            }
            prop_assert!(
                moves <= crossings,
                "{moves} tier moves but only {crossings} threshold crossings"
            );
        }
    }
}
