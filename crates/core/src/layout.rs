//! The persistent layout of the NVCache NVMM region.
//!
//! Everything is addressed by explicit byte offsets in little-endian encoding
//! — no struct casts, keeping the crate 100% safe Rust while staying faithful
//! to the paper's layout (Algorithm 1): a header, the fd→path table used only
//! by recovery, and the circular array of fixed-size entries.
//!
//! ```text
//! +-----------+----------------------+--------------------------------+
//! |  header   |  fd table            |  entries                       |
//! |  (4 KiB)  |  fd_slots x 256 B    |  nb_entries x (64 B + entry)   |
//! +-----------+----------------------+--------------------------------+
//! ```
//!
//! # Header versioning
//!
//! The header is versioned implicitly through [`OFF_LOG_SHARDS`] and
//! [`OFF_BACKENDS`]:
//!
//! * **v1 (seed format)** — the word at [`OFF_LOG_SHARDS`] is `0` (never
//!   written). One circular log over the whole entry array, with its single
//!   persistent tail at [`OFF_PTAIL`]. A region formatted with
//!   `log_shards = 1` is byte-for-byte identical to the seed format.
//! * **v2 (striped)** — the word at [`OFF_LOG_SHARDS`] holds `N > 1`. The
//!   entry array is split into `N` equal contiguous stripes; stripe `s` owns
//!   entries `[s·(nb_entries/N), (s+1)·(nb_entries/N))` and persists its own
//!   tail at [`OFF_STRIPE_TAILS`]` + 8·s`. Every entry additionally carries a
//!   globally monotonic sequence number ([`ENT_SEQ`]) so recovery can
//!   merge-replay committed entries from all stripes in total order.
//! * **v3 (tiered)** — the word at [`OFF_BACKENDS`] holds `B > 1`: the mount
//!   propagates to `B` inner backends selected by a
//!   [`Router`](crate::Router). Each fd slot then stores the file's backend
//!   index in a second word ([`FD_BACKEND_OFF`], before the path, which
//!   moves to [`FD_PATH_OFF_V3`] and shrinks to [`PATH_MAX_V3`] bytes) so
//!   recovery replays every pending entry to the backend that acknowledged
//!   it — the router is *not* re-consulted for v3 slots. A v1/v2 image
//!   (backends word `0`) migrates forward on recovery: its slots are
//!   re-routed by path and the backends word is written afterwards.
//!   Orthogonal to v2 — a region can be striped, tiered, both, or neither;
//!   total region size is unchanged (the fd slot is re-partitioned, not
//!   grown). A v3 fd slot whose valid word is [`FD_VALID_MIGRATION`] is a
//!   *migration journal* instead of an open file: it records the
//!   authoritative location of a file mid-move between tiers (see
//!   `core/src/migrate.rs`).
//!
//! Entry commit words (offset 0 of each entry header) encode the paper's
//! packed commit-flag/group-index integer:
//!
//! * `0` — free or not yet committed;
//! * `COMMIT_LEADER` (1) — committed; first (or only) entry of a write;
//! * `MEMBER_BIT | leader_slot` — continuation entry of a multi-entry write;
//!   valid iff its leader is committed.

use crate::NvCacheConfig;

/// Size of the region header.
pub const HEADER_BYTES: u64 = 4096;
/// Bytes per persistent fd slot.
pub const FD_SLOT_BYTES: u64 = 256;
/// Valid word of an fd slot holding an open file (v1/v2/v3 layouts).
pub const FD_VALID_OPEN: u64 = 1;
/// Valid word of an fd slot used as a **migration journal** (v3 layouts
/// only): the slot's path/backend pair names the *authoritative* copy of a
/// file being moved between tiers. Recovery deletes the path from every
/// other backend and clears the slot — the crash-repair half of the
/// copy → stamp → unlink protocol (`core/src/migrate.rs`). No log entry
/// ever references a journal slot (only closed, fully drained files
/// migrate).
pub const FD_VALID_MIGRATION: u64 = 2;
/// Maximum stored path length (rest of the slot after the valid word,
/// v1/v2 slot layout).
pub const PATH_MAX: usize = (FD_SLOT_BYTES - 8) as usize;
/// Maximum stored path length in a v3 (tiered) slot: the backend word takes
/// eight bytes off the front of the path area.
pub const PATH_MAX_V3: usize = (FD_SLOT_BYTES - 16) as usize;
/// Maximum stored path length in a v3 slot that also persists a heat
/// summary ([`NvCacheConfig::persist_heat`](crate::NvCacheConfig)): the
/// heat word takes eight bytes off the *tail* of the path area.
pub const PATH_MAX_HEAT: usize = (FD_SLOT_BYTES - 24) as usize;
/// Offset (within a v3 fd slot) of the backend-index word.
pub const FD_BACKEND_OFF: u64 = 8;
/// Offset (within a heat-format v3 fd slot) of the packed heat-summary
/// word — the last eight bytes of the slot, after the shortened path.
pub const FD_HEAT_OFF: u64 = FD_SLOT_BYTES - 8;
/// Offset (within an fd slot) of the path bytes, v1/v2 layout.
pub const FD_PATH_OFF: u64 = 8;
/// Offset (within an fd slot) of the path bytes, v3 layout.
pub const FD_PATH_OFF_V3: u64 = 16;
/// Bytes of each entry header.
pub const ENTRY_HEADER_BYTES: u64 = 64;

/// Magic value identifying a formatted region ("NVCACHE1").
pub const MAGIC: u64 = u64::from_le_bytes(*b"NVCACHE1");

/// Commit word of a committed leader entry.
pub const COMMIT_LEADER: u64 = 1;
/// Tag bit marking a group-member commit word.
pub const MEMBER_BIT: u64 = 1 << 63;

// Header field offsets.
pub const OFF_MAGIC: u64 = 0;
pub const OFF_ENTRY_SIZE: u64 = 8;
pub const OFF_NB_ENTRIES: u64 = 16;
pub const OFF_PTAIL: u64 = 24;
pub const OFF_FD_SLOTS: u64 = 32;
pub const OFF_PAGE_SIZE: u64 = 40;
/// Number of log stripes; `0` (the seed format, which never writes this
/// word) means one.
pub const OFF_LOG_SHARDS: u64 = 48;
/// Number of inner backends of a tiered mount; `0` (v1/v2 formats, which
/// never write this word) means one.
pub const OFF_BACKENDS: u64 = 56;
/// Base of the per-stripe persistent tail array (v2 format only; stripe `s`
/// persists its tail at `OFF_STRIPE_TAILS + 8 * s`).
pub const OFF_STRIPE_TAILS: u64 = 64;
/// Heat-summary format epoch of the image; `0` (every format that predates
/// heat persistence — the word is simply never written) means the fd
/// slots carry **no** heat word and their full v3 path area is path
/// bytes. `HEAT_EPOCH` marks a heat-format image: each slot's last eight
/// bytes are a packed summary ([`heat_word`]). Placed after the stripe
/// tail array so no existing field moves.
pub const OFF_HEAT_EPOCH: u64 = OFF_STRIPE_TAILS + 8 * MAX_LOG_SHARDS as u64;
/// The current heat-summary format epoch (the only non-zero one so far).
/// Also packed into every slot's heat word, so a summary is only believed
/// when both the header *and* the slot agree on the format — stale path
/// bytes from a pre-heat image can never be misread as temperature.
pub const HEAT_EPOCH: u64 = 1;

/// Upper bound on `log_shards` (the per-stripe tail array must fit in the
/// 4 KiB header with room to spare).
pub const MAX_LOG_SHARDS: usize = 64;

/// Upper bound on the backend count of a tiered mount (the index must fit
/// comfortably in the fd slot's backend word; 64 matches the stripe bound).
pub const MAX_BACKENDS: usize = 64;

// Entry header field offsets (relative to the entry base).
pub const ENT_COMMIT: u64 = 0;
pub const ENT_FD: u64 = 8;
pub const ENT_LEN: u64 = 12;
pub const ENT_FILE_OFF: u64 = 16;
pub const ENT_GROUP_LEN: u64 = 24;
pub const ENT_SEQ: u64 = 32;

/// Resolved byte offsets for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Entries in the circular log (all stripes together).
    pub nb_entries: u64,
    /// Data bytes per entry.
    pub entry_size: u64,
    /// Persistent fd slots.
    pub fd_slots: u64,
    /// Log stripes the entry array is split into (1 = seed format).
    pub log_shards: u64,
    /// Inner backends of the mount (1 = v1/v2 single-backend fd slots,
    /// `B > 1` = v3 slots carrying a backend word).
    pub backends: u64,
    /// Whether fd slots carry the persisted heat summary
    /// ([`OFF_HEAT_EPOCH`] non-zero in the header): the path area shrinks
    /// to [`PATH_MAX_HEAT`] and the slot's last word ([`FD_HEAT_OFF`])
    /// holds a packed [`heat_word`]. Only meaningful on tiered layouts.
    pub heat: bool,
}

impl Layout {
    /// Layout for a configuration.
    pub fn for_config(cfg: &NvCacheConfig) -> Layout {
        Layout {
            nb_entries: cfg.nb_entries,
            entry_size: cfg.entry_size as u64,
            fd_slots: cfg.fd_slots as u64,
            log_shards: cfg.log_shards as u64,
            backends: cfg.backends as u64,
            heat: cfg.persist_heat && cfg.backends > 1,
        }
    }

    /// Whether fd slots use the v3 (tiered) partitioning.
    pub fn tiered(&self) -> bool {
        self.backends > 1
    }

    /// Whether fd slots carry the heat-summary word.
    pub fn heat_slots(&self) -> bool {
        self.tiered() && self.heat
    }

    /// Offset of the path bytes within an fd slot.
    pub fn fd_path_off(&self) -> u64 {
        if self.tiered() {
            FD_PATH_OFF_V3
        } else {
            FD_PATH_OFF
        }
    }

    /// Maximum storable path length for this layout's fd slots.
    pub fn path_max(&self) -> usize {
        if self.heat_slots() {
            PATH_MAX_HEAT
        } else if self.tiered() {
            PATH_MAX_V3
        } else {
            PATH_MAX
        }
    }

    /// Start of the fd table.
    pub fn fd_table_base(&self) -> u64 {
        HEADER_BYTES
    }

    /// Offset of fd slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn fd_slot(&self, slot: u32) -> u64 {
        assert!((slot as u64) < self.fd_slots, "fd slot {slot} out of range");
        self.fd_table_base() + slot as u64 * FD_SLOT_BYTES
    }

    /// Start of the entry array.
    pub fn entries_base(&self) -> u64 {
        self.fd_table_base() + self.fd_slots * FD_SLOT_BYTES
    }

    /// Stride between consecutive entries.
    pub fn entry_stride(&self) -> u64 {
        ENTRY_HEADER_BYTES + self.entry_size
    }

    /// Base offset of the entry in `slot` (a *slot*, i.e. a sequence number
    /// already reduced modulo `nb_entries`).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn entry(&self, slot: u64) -> u64 {
        assert!(slot < self.nb_entries, "entry slot {slot} out of range");
        self.entries_base() + slot * self.entry_stride()
    }

    /// Slot index for a monotonically increasing sequence number.
    pub fn slot_of(&self, seq: u64) -> u64 {
        seq % self.nb_entries
    }

    /// Entries owned by each stripe.
    pub fn stripe_entries(&self) -> u64 {
        self.nb_entries / self.log_shards.max(1)
    }

    /// Global entry slot of stripe-local sequence number `local_seq` in
    /// stripe `stripe`.
    ///
    /// # Panics
    ///
    /// Panics if `stripe` is out of range.
    pub fn stripe_slot(&self, stripe: u64, local_seq: u64) -> u64 {
        assert!(stripe < self.log_shards.max(1), "stripe {stripe} out of range");
        stripe * self.stripe_entries() + local_seq % self.stripe_entries()
    }

    /// Header offset of the persistent tail of `stripe` ([`OFF_PTAIL`] for a
    /// single-stripe log, so the seed format is unchanged).
    pub fn stripe_tail_off(&self, stripe: u64) -> u64 {
        if self.log_shards <= 1 {
            OFF_PTAIL
        } else {
            OFF_STRIPE_TAILS + 8 * stripe
        }
    }

    /// Offset of the data area of the entry in `slot`.
    pub fn entry_data(&self, slot: u64) -> u64 {
        self.entry(slot) + ENTRY_HEADER_BYTES
    }

    /// Total NVMM bytes required.
    pub fn total_bytes(&self) -> u64 {
        self.entries_base() + self.nb_entries * self.entry_stride()
    }
}

/// Encodes a member commit word pointing at `leader_slot`.
pub fn member_commit_word(leader_slot: u64) -> u64 {
    MEMBER_BIT | leader_slot
}

/// Decodes a commit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitWord {
    /// Free slot or not-yet-committed entry.
    Free,
    /// Committed leader (single entry or head of a group).
    Leader,
    /// Member of the group led by the given slot.
    Member(u64),
}

/// Parses an entry commit word.
pub fn parse_commit_word(w: u64) -> CommitWord {
    if w == 0 {
        CommitWord::Free
    } else if w & MEMBER_BIT != 0 {
        CommitWord::Member(w & !MEMBER_BIT)
    } else {
        CommitWord::Leader
    }
}

/// Packs a quantized heat summary into a slot heat word: the current
/// [`HEAT_EPOCH`] in bits 16..32 and the quantized heat in bits 0..16. A
/// packed word is therefore never `0` even for stone-cold files, which is
/// how a written summary is told apart from a never-written (zeroed) one.
pub fn heat_word(qheat: u16) -> u64 {
    (HEAT_EPOCH & 0xFFFF) << 16 | qheat as u64
}

/// Unpacks a slot heat word written by [`heat_word`]. Returns `None` when
/// the word was never written (`0`) or carries an unknown epoch — both mean
/// "no usable summary, treat as cold".
pub fn parse_heat_word(w: u64) -> Option<u16> {
    if (w >> 16) & 0xFFFF == HEAT_EPOCH {
        Some((w & 0xFFFF) as u16)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Layout {
        Layout {
            nb_entries: 8,
            entry_size: 128,
            fd_slots: 4,
            log_shards: 1,
            backends: 1,
            heat: false,
        }
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = layout();
        assert_eq!(l.fd_table_base(), 4096);
        assert_eq!(l.entries_base(), 4096 + 4 * 256);
        assert_eq!(l.entry(0), l.entries_base());
        assert_eq!(l.entry(1) - l.entry(0), 64 + 128);
        assert_eq!(l.total_bytes(), l.entry(7) + l.entry_stride());
    }

    #[test]
    fn slots_wrap() {
        let l = layout();
        assert_eq!(l.slot_of(0), 0);
        assert_eq!(l.slot_of(8), 0);
        assert_eq!(l.slot_of(13), 5);
    }

    #[test]
    fn commit_word_round_trip() {
        assert_eq!(parse_commit_word(0), CommitWord::Free);
        assert_eq!(parse_commit_word(COMMIT_LEADER), CommitWord::Leader);
        assert_eq!(parse_commit_word(member_commit_word(5)), CommitWord::Member(5));
    }

    #[test]
    fn magic_is_ascii() {
        assert_eq!(&MAGIC.to_le_bytes(), b"NVCACHE1");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn entry_bounds_checked() {
        layout().entry(8);
    }

    #[test]
    fn stripes_partition_the_entry_array() {
        let l = Layout { log_shards: 4, ..layout() };
        assert_eq!(l.stripe_entries(), 2);
        // Stripe s owns the contiguous slots [2s, 2s+2), local seqs wrap
        // within the stripe's own window.
        assert_eq!(l.stripe_slot(0, 0), 0);
        assert_eq!(l.stripe_slot(0, 3), 1);
        assert_eq!(l.stripe_slot(3, 0), 6);
        assert_eq!(l.stripe_slot(3, 5), 7);
        // Per-stripe tails live in the v2 header array...
        assert_eq!(l.stripe_tail_off(0), OFF_STRIPE_TAILS);
        assert_eq!(l.stripe_tail_off(3), OFF_STRIPE_TAILS + 24);
        // ...while a single-stripe log keeps the seed's tail word.
        assert_eq!(layout().stripe_tail_off(0), OFF_PTAIL);
    }

    #[test]
    fn stripe_tail_array_fits_the_header() {
        assert!(OFF_STRIPE_TAILS + 8 * MAX_LOG_SHARDS as u64 <= HEADER_BYTES);
    }

    #[test]
    fn backend_word_does_not_collide_with_other_header_fields() {
        const { assert!(OFF_BACKENDS > OFF_LOG_SHARDS) }
        const { assert!(OFF_BACKENDS < OFF_STRIPE_TAILS) }
    }

    #[test]
    fn tiered_slots_repartition_but_do_not_grow() {
        let legacy = layout();
        let tiered = Layout { backends: 3, ..layout() };
        assert!(!legacy.tiered());
        assert!(tiered.tiered());
        // Same slot size and total footprint: only the interior moves.
        assert_eq!(legacy.total_bytes(), tiered.total_bytes());
        assert_eq!(legacy.fd_path_off(), FD_PATH_OFF);
        assert_eq!(tiered.fd_path_off(), FD_PATH_OFF_V3);
        assert_eq!(legacy.path_max(), PATH_MAX);
        assert_eq!(tiered.path_max(), PATH_MAX_V3);
        assert_eq!(tiered.fd_path_off() + tiered.path_max() as u64, FD_SLOT_BYTES);
    }

    #[test]
    fn heat_slots_give_up_path_tail_bytes_only_when_tiered() {
        let tiered = Layout { backends: 3, heat: true, ..layout() };
        assert!(tiered.heat_slots());
        assert_eq!(tiered.path_max(), PATH_MAX_HEAT);
        // Backend word + path + heat word exactly tile the slot.
        assert_eq!(tiered.fd_path_off() + tiered.path_max() as u64 + 8, FD_SLOT_BYTES);
        assert_eq!(tiered.fd_path_off() + tiered.path_max() as u64, FD_HEAT_OFF);
        // A single-backend layout has no spare bytes: the flag is inert.
        let flat = Layout { heat: true, ..layout() };
        assert!(!flat.heat_slots());
        assert_eq!(flat.path_max(), PATH_MAX);
        // The epoch word sits after the stripe-tail array, inside the header.
        const { assert!(OFF_HEAT_EPOCH == 576) }
        const { assert!(OFF_HEAT_EPOCH + 8 <= HEADER_BYTES) }
    }

    #[test]
    fn heat_word_round_trips_and_rejects_foreign_epochs() {
        assert_eq!(parse_heat_word(heat_word(0)), Some(0));
        assert_eq!(parse_heat_word(heat_word(12345)), Some(12345));
        assert_eq!(parse_heat_word(heat_word(u16::MAX)), Some(u16::MAX));
        // A written summary is never the all-zero word, even when cold.
        assert_ne!(heat_word(0), 0);
        // Never-written slots and unknown epochs both read as "no summary".
        assert_eq!(parse_heat_word(0), None);
        assert_eq!(parse_heat_word((HEAT_EPOCH + 1) << 16 | 7), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stripe_bounds_checked() {
        Layout { log_shards: 2, ..layout() }.stripe_slot(2, 0);
    }
}
