//! Lock-order recorder (feature `pmcheck`).
//!
//! Records every tracked lock acquisition into a per-mount **acquisition-edge
//! graph** (node = lock class, edge `A → B` = "B was blocking-acquired while
//! A was held") with online cycle detection, plus an intra-class *ascending
//! `(file_id, page_no)`* rule for the per-page locks. This turns two
//! hand-proved invariants into machine-checked ones:
//!
//! * the cleanup worker's lock protocol (atomic page locks are never taken
//!   while cleanup locks are held in a conflicting order — the PR 1
//!   deadlock);
//! * multi-page operations acquire page locks in ascending
//!   `(file_id, page_no)` order (the PR 6 ordering proof for the multi-queue
//!   submission path).
//!
//! A violation panics at the acquiring call site with the full cycle (or
//! ordering breach) and one example call site per edge.
//!
//! The recorder is **per mount** (each [`Recorder`] is its own graph, and
//! held-lock stacks are tagged with the owning recorder), so two caches in
//! one test process can never manufacture a cycle between each other's
//! locks. `try`-acquisitions never block, so they add no incoming edge —
//! they only appear as the *held* side of later edges; a cycle reported by
//! this module is therefore always closed by blocking acquisitions alone.
//!
//! Without the `pmcheck` feature the whole recorder is a zero-sized no-op.

/// Lock classes tracked by the recorder. `detail` distinguishes instances
/// within a class where nesting across instances is meaningful (the stripe
/// index for the per-stripe locks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Class {
    /// `Stripe::alloc_lock` — head advancement + global sequence draw.
    StripeAlloc,
    /// `Stripe::space_lock` — full-stripe waiting / space publication.
    StripeSpace,
    /// `Stripe::work_lock` — cleanup-worker wakeups.
    StripeWork,
    /// `PageDescriptor::lock()` — the per-page atomic lock.
    PageAtomic,
    /// `PageDescriptor::lock_cleanup()` — the per-page cleanup lock.
    PageCleanup,
    /// `Shared::files` — the path → `FileState` map.
    FilesMap,
    /// `Shared::opened` — the volatile fd table.
    OpenedMap,
    /// `Shared::zombies` — closed-but-draining files.
    Zombies,
    /// Migration gate leases/claims (`MigrationGate`).
    MigrationGate,
    /// The migrator's closed-file catalog.
    MigratorCatalog,
}

#[cfg(feature = "pmcheck")]
impl Class {
    fn name(self) -> &'static str {
        match self {
            Class::StripeAlloc => "StripeAlloc",
            Class::StripeSpace => "StripeSpace",
            Class::StripeWork => "StripeWork",
            Class::PageAtomic => "PageAtomic",
            Class::PageCleanup => "PageCleanup",
            Class::FilesMap => "FilesMap",
            Class::OpenedMap => "OpenedMap",
            Class::Zombies => "Zombies",
            Class::MigrationGate => "MigrationGate",
            Class::MigratorCatalog => "MigratorCatalog",
        }
    }

    /// Whether holding several locks of this class on one thread is legal
    /// without an intra-class order (counted leases; page classes are
    /// instead governed by the ascending rule).
    fn self_nesting_ok(self) -> bool {
        matches!(self, Class::MigrationGate)
    }
}

pub(crate) use imp::Recorder;

#[cfg(not(feature = "pmcheck"))]
mod imp {
    use super::Class;

    /// No-op recorder (feature `pmcheck` disabled): zero-sized, everything
    /// inlines to nothing. Braced (not a unit struct) so `Recorder::default()`
    /// reads the same with the feature on and off.
    #[derive(Debug, Clone, Default)]
    pub(crate) struct Recorder {}

    /// No-op guard.
    #[derive(Debug)]
    pub(crate) struct Held;

    impl Recorder {
        pub fn new() -> Self {
            Recorder {}
        }

        #[inline(always)]
        pub fn acquire(&self, _class: Class, _detail: u64) -> Held {
            Held
        }

        #[inline(always)]
        pub fn acquire_try(&self, _class: Class, _detail: u64) -> Held {
            Held
        }

        #[inline(always)]
        pub fn acquire_page(&self, _class: Class, _file_id: u64, _page_no: u64) -> Held {
            Held
        }
    }
}

#[cfg(feature = "pmcheck")]
mod imp {
    use super::Class;
    use parking_lot::Mutex;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    type Node = (Class, u64);

    fn node_name(n: Node) -> String {
        if n.1 != 0 || matches!(n.0, Class::StripeAlloc | Class::StripeSpace | Class::StripeWork) {
            format!("{}[{}]", n.0.name(), n.1)
        } else {
            n.0.name().to_string()
        }
    }

    #[derive(Clone, Copy)]
    struct Site(&'static Location<'static>);

    impl std::fmt::Display for Site {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}:{}", self.0.file(), self.0.line())
        }
    }

    /// One example of how an edge was created: (held-at, acquired-at).
    struct EdgeExample {
        held_site: Site,
        acq_site: Site,
    }

    #[derive(Default)]
    struct Graph {
        /// Adjacency: `a → b` with one example acquisition per edge.
        edges: HashMap<(Class, u64), HashMap<(Class, u64), EdgeExample>>,
    }

    impl Graph {
        /// Is `to` reachable from `from`?
        fn reaches(&self, from: Node, to: Node) -> bool {
            let mut stack = vec![from];
            let mut seen = std::collections::HashSet::new();
            while let Some(n) = stack.pop() {
                if n == to {
                    return true;
                }
                if !seen.insert(n) {
                    continue;
                }
                if let Some(next) = self.edges.get(&n) {
                    stack.extend(next.keys().copied());
                }
            }
            false
        }

        /// One path `from → … → to` (exists by prior `reaches` check).
        fn path(&self, from: Node, to: Node) -> Vec<(Node, Node)> {
            let mut prev: HashMap<Node, Node> = HashMap::new();
            let mut stack = vec![from];
            let mut seen = std::collections::HashSet::from([from]);
            'outer: while let Some(n) = stack.pop() {
                if let Some(next) = self.edges.get(&n) {
                    for &m in next.keys() {
                        if seen.insert(m) {
                            prev.insert(m, n);
                            if m == to {
                                break 'outer;
                            }
                            stack.push(m);
                        }
                    }
                }
            }
            let mut hops = Vec::new();
            let mut cur = to;
            while cur != from {
                let p = prev[&cur];
                hops.push((p, cur));
                cur = p;
            }
            hops.reverse();
            hops
        }
    }

    struct Inner {
        id: u64,
        graph: Mutex<Graph>,
        violations: Mutex<Vec<String>>,
    }

    /// Per-mount lock-order recorder (real implementation).
    #[derive(Clone)]
    pub(crate) struct Recorder {
        inner: Arc<Inner>,
    }

    impl std::fmt::Debug for Recorder {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Recorder").field("id", &self.inner.id).finish()
        }
    }

    impl Default for Recorder {
        fn default() -> Self {
            Self::new()
        }
    }

    struct HeldEntry {
        rec: u64,
        token: u64,
        node: Node,
        page: Option<(u64, u64)>,
        site: Site,
    }

    thread_local! {
        static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
    }

    static NEXT_REC: AtomicU64 = AtomicU64::new(1);
    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

    /// Removes its held-stack entry on drop (by token, so out-of-order guard
    /// drops are handled).
    pub(crate) struct Held {
        token: u64,
    }

    impl std::fmt::Debug for Held {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Held").field("token", &self.token).finish()
        }
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with(|h| {
                let mut held = h.borrow_mut();
                if let Some(pos) = held.iter().rposition(|e| e.token == self.token) {
                    held.remove(pos);
                }
            });
        }
    }

    impl Recorder {
        pub fn new() -> Self {
            Recorder {
                inner: Arc::new(Inner {
                    id: NEXT_REC.fetch_add(1, Ordering::Relaxed),
                    graph: Mutex::new(Graph::default()),
                    violations: Mutex::new(Vec::new()),
                }),
            }
        }

        /// Violations recorded so far (they also panic when detected).
        #[allow(dead_code)] // test/reporting surface
        pub fn violations(&self) -> Vec<String> {
            self.inner.violations.lock().clone()
        }

        /// Distinct acquisition edges observed (reporting surface).
        #[allow(dead_code)]
        pub fn edge_count(&self) -> usize {
            self.inner.graph.lock().edges.values().map(|m| m.len()).sum()
        }

        fn flag(&self, msg: String) -> ! {
            self.inner.violations.lock().push(msg.clone());
            panic!("{msg}");
        }

        /// Records a *blocking* acquisition of `(class, detail)` and checks
        /// it against everything this thread holds from the same recorder.
        #[track_caller]
        pub fn acquire(&self, class: Class, detail: u64) -> Held {
            self.record(class, detail, None, true)
        }

        /// Records a `try_…` acquisition: it cannot block, so it adds no
        /// incoming edge and is exempt from ordering rules; it still joins
        /// the held stack as a potential *source* of later edges.
        #[track_caller]
        pub fn acquire_try(&self, class: Class, detail: u64) -> Held {
            self.record(class, detail, None, false)
        }

        /// Records a blocking per-page acquisition, enforcing strictly
        /// ascending `(file_id, page_no)` within the class.
        #[track_caller]
        pub fn acquire_page(&self, class: Class, file_id: u64, page_no: u64) -> Held {
            self.record(class, 0, Some((file_id, page_no)), true)
        }

        #[track_caller]
        fn record(
            &self,
            class: Class,
            detail: u64,
            page: Option<(u64, u64)>,
            blocking: bool,
        ) -> Held {
            let site = Site(Location::caller());
            let node: Node = (class, detail);
            let me = self.inner.id;
            let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);

            if blocking {
                // Ordering/nesting rules against the current held stack.
                let conflict = HELD.with(|h| {
                    let held = h.borrow();
                    for e in held.iter().filter(|e| e.rec == me) {
                        if e.node != node {
                            continue;
                        }
                        match (e.page, page) {
                            (Some(hp), Some(np)) => {
                                if np <= hp {
                                    return Some(format!(
                                        "lockcheck violation: {} (file {}, page {}) acquired at \
                                         {site} while already holding {} (file {}, page {}) \
                                         (acquired at {}) — per-page locks must be taken in \
                                         strictly ascending (file_id, page_no) order",
                                        node_name(node),
                                        np.0,
                                        np.1,
                                        node_name(e.node),
                                        hp.0,
                                        hp.1,
                                        e.site,
                                    ));
                                }
                            }
                            _ if class.self_nesting_ok() => {}
                            _ => {
                                return Some(format!(
                                    "lockcheck violation: {} acquired at {site} while already \
                                     held by this thread (acquired at {}) — this class is not \
                                     re-entrant, so this self-deadlocks",
                                    node_name(node),
                                    e.site,
                                ));
                            }
                        }
                    }
                    None
                });
                if let Some(msg) = conflict {
                    self.flag(msg);
                }

                // Cross-class edges + cycle detection.
                let new_edges: Vec<(Node, Site)> = HELD.with(|h| {
                    h.borrow()
                        .iter()
                        .filter(|e| e.rec == me && e.node != node)
                        .map(|e| (e.node, e.site))
                        .collect()
                });
                if !new_edges.is_empty() {
                    let mut graph = self.inner.graph.lock();
                    for (held_node, held_site) in new_edges {
                        let known =
                            graph.edges.get(&held_node).is_some_and(|m| m.contains_key(&node));
                        if known {
                            continue;
                        }
                        // Adding held_node → node: a pre-existing path
                        // node → … → held_node closes a cycle.
                        if graph.reaches(node, held_node) {
                            let path = graph.path(node, held_node);
                            let mut msg = format!(
                                "lockcheck violation: acquiring {} at {site} while holding {} \
                                 (acquired at {held_site}) closes a lock-order cycle:\n  {} -> {} \
                                 (this acquisition)",
                                node_name(node),
                                node_name(held_node),
                                node_name(held_node),
                                node_name(node),
                            );
                            for (a, b) in path {
                                let ex = &graph.edges[&a][&b];
                                msg.push_str(&format!(
                                    "\n  {} -> {} (held at {}, acquired at {})",
                                    node_name(a),
                                    node_name(b),
                                    ex.held_site,
                                    ex.acq_site,
                                ));
                            }
                            drop(graph);
                            self.flag(msg);
                        }
                        graph
                            .edges
                            .entry(held_node)
                            .or_default()
                            .insert(node, EdgeExample { held_site, acq_site: site });
                    }
                }
            }

            HELD.with(|h| h.borrow_mut().push(HeldEntry { rec: me, token, node, page, site }));
            Held { token }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn catch(f: impl FnOnce()) -> String {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_err();
            err.downcast_ref::<String>().cloned().unwrap_or_default()
        }

        #[test]
        fn consistent_order_is_clean() {
            let r = Recorder::new();
            for _ in 0..3 {
                let _a = r.acquire(Class::FilesMap, 0);
                let _b = r.acquire(Class::Zombies, 0);
            }
            assert_eq!(r.edge_count(), 1);
            assert!(r.violations().is_empty());
        }

        #[test]
        fn inverted_order_is_a_cycle() {
            let r = Recorder::new();
            {
                let _a = r.acquire(Class::FilesMap, 0);
                let _b = r.acquire(Class::Zombies, 0);
            }
            let r2 = r.clone();
            let msg = catch(move || {
                let _b = r2.acquire(Class::Zombies, 0);
                let _a = r2.acquire(Class::FilesMap, 0);
            });
            assert!(msg.contains("lock-order cycle"), "{msg}");
            assert!(msg.contains("FilesMap"), "{msg}");
            assert!(msg.contains("Zombies"), "{msg}");
            assert_eq!(r.violations().len(), 1);
        }

        #[test]
        fn three_party_cycle_is_found() {
            let r = Recorder::new();
            {
                let _a = r.acquire(Class::FilesMap, 0);
                let _b = r.acquire(Class::Zombies, 0);
            }
            {
                let _b = r.acquire(Class::Zombies, 0);
                let _c = r.acquire(Class::OpenedMap, 0);
            }
            let r2 = r.clone();
            let msg = catch(move || {
                let _c = r2.acquire(Class::OpenedMap, 0);
                let _a = r2.acquire(Class::FilesMap, 0);
            });
            assert!(msg.contains("lock-order cycle"), "{msg}");
            assert!(msg.contains("OpenedMap"), "{msg}");
        }

        #[test]
        fn ascending_pages_are_clean_descending_flagged() {
            let r = Recorder::new();
            {
                let _p1 = r.acquire_page(Class::PageAtomic, 1, 1);
                let _p2 = r.acquire_page(Class::PageAtomic, 1, 2);
                let _p3 = r.acquire_page(Class::PageAtomic, 2, 0);
            }
            let r2 = r.clone();
            let msg = catch(move || {
                let _p2 = r2.acquire_page(Class::PageAtomic, 1, 2);
                let _p1 = r2.acquire_page(Class::PageAtomic, 1, 1);
            });
            assert!(msg.contains("ascending"), "{msg}");
        }

        #[test]
        fn same_page_twice_is_flagged() {
            let r = Recorder::new();
            let msg = catch(move || {
                let _p = r.acquire_page(Class::PageAtomic, 3, 7);
                let _q = r.acquire_page(Class::PageAtomic, 3, 7);
            });
            assert!(msg.contains("ascending"), "{msg}");
        }

        #[test]
        fn non_reentrant_self_acquire_is_flagged() {
            let r = Recorder::new();
            let msg = catch(move || {
                let _a = r.acquire(Class::FilesMap, 0);
                let _b = r.acquire(Class::FilesMap, 0);
            });
            assert!(msg.contains("not re-entrant"), "{msg}");
        }

        #[test]
        fn gate_leases_may_nest() {
            let r = Recorder::new();
            let _from = r.acquire(Class::MigrationGate, 0);
            let _to = r.acquire(Class::MigrationGate, 0);
            assert!(r.violations().is_empty());
        }

        #[test]
        fn try_acquire_closes_no_cycle() {
            let r = Recorder::new();
            {
                let _a = r.acquire(Class::FilesMap, 0);
                let _b = r.acquire(Class::Zombies, 0);
            }
            // Inverted, but via try: cannot block, must not flag.
            let _b = r.acquire(Class::Zombies, 0);
            let _a = r.acquire_try(Class::FilesMap, 0);
            assert!(r.violations().is_empty());
        }

        #[test]
        fn recorders_are_isolated() {
            let r1 = Recorder::new();
            let r2 = Recorder::new();
            {
                let _a = r1.acquire(Class::FilesMap, 0);
                let _b = r1.acquire(Class::Zombies, 0);
            }
            // The inverse order on a different recorder is a different mount:
            // no cross-mount cycle.
            let _b = r2.acquire(Class::Zombies, 0);
            let _a = r2.acquire(Class::FilesMap, 0);
            assert!(r1.violations().is_empty());
            assert!(r2.violations().is_empty());
        }

        #[test]
        fn stripe_instances_are_distinct_nodes() {
            let r = Recorder::new();
            {
                let _a = r.acquire(Class::StripeAlloc, 0);
                let _b = r.acquire(Class::StripeAlloc, 1);
            }
            assert!(r.violations().is_empty());
        }
    }
}
