//! Mount-level tests of the placement-policy layer: the byte/virtual-time
//! oracle pinning the default (`RouterPlacement`) to the pre-policy
//! behavior, temperature-driven promotion/demotion end to end (decay,
//! hysteresis, close → reopen survival, the fast-tier budget), and
//! recovery consulting the active policy for its misplacement judgement.

use std::sync::Arc;

use nvmm::{NvDimm, NvRegion, NvmmProfile};
use simclock::{ActorClock, SimTime};
use vfs::{FileSystem, MemFs, OpenFlags};

use crate::migrate::MigrationPolicy;
use crate::placement::{FileTemperature, PlacementPolicy};
use crate::router::Router;
use crate::{HeatPolicy, Mount, NvCache, NvCacheConfig, PathPrefixRouter, RouterPlacement};

/// A tiered config with the drain parked (tests flush explicitly, so every
/// comparison point is deterministic) and on-demand migration.
fn parked_cfg() -> NvCacheConfig {
    NvCacheConfig {
        nb_entries: 128,
        batch_min: usize::MAX >> 1,
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::tiny()
    }
    .with_migration(MigrationPolicy::OnDemand)
}

/// A router that sends everything to the bulk tier 0 — the "cold-routed
/// prefix" of the acceptance scenario: no static rule ever places a file
/// on the fast tier, so only a heat policy can.
fn cold_everything() -> Arc<PathPrefixRouter> {
    Arc::new(PathPrefixRouter::new(vec![], 0))
}

type Tiers = (Arc<dyn FileSystem>, Arc<dyn FileSystem>);

fn two_memfs() -> Tiers {
    (Arc::new(MemFs::new()), Arc::new(MemFs::new()))
}

fn mount(
    cfg: NvCacheConfig,
    router: Arc<dyn Router>,
    tiers: &Tiers,
    dimm: &Arc<NvDimm>,
    mode: Mount,
    clock: &ActorClock,
) -> NvCache {
    NvCache::builder(NvRegion::whole(Arc::clone(dimm)))
        .backends(router, vec![Arc::clone(&tiers.0), Arc::clone(&tiers.1)])
        .config(cfg)
        .mode(mode)
        .mount(clock)
        .expect("tiered mount")
}

fn region_bytes(dimm: &NvDimm) -> Vec<u8> {
    let mut buf = vec![0u8; dimm.len() as usize];
    dimm.read_cached(0, &mut buf);
    buf
}

fn on_tier(fs: &Arc<dyn FileSystem>, path: &str, clock: &ActorClock) -> bool {
    fs.stat(path, clock).is_ok()
}

/// Open → read `times` → close, heating the file up.
fn heat_up(cache: &NvCache, path: &str, times: usize, clock: &ActorClock) {
    let fd = cache.open(path, OpenFlags::RDONLY, clock).unwrap();
    let mut buf = [0u8; 64];
    for _ in 0..times {
        cache.pread(fd, &mut buf, 0, clock).unwrap();
    }
    cache.close(fd, clock).unwrap();
}

/// The tentpole oracle: a mount with no placement configured and a mount
/// with an explicit [`RouterPlacement`] must be **byte- and
/// virtual-time-identical** over a workload that exercises writes, reads,
/// explicit migration and a rebalance sweep — i.e. the default config is
/// exactly the pre-policy migrator.
#[test]
fn default_config_is_byte_and_time_identical_to_explicit_router_placement() {
    let run = |cfg: NvCacheConfig| {
        let clock = ActorClock::new();
        let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
        let tiers = two_memfs();
        let router = Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0));
        let cache = mount(cfg, router, &tiers, &dimm, Mount::Format, &clock);
        let mut fds = Vec::new();
        for (path, byte) in [("/hot/a", 1u8), ("/cold/b", 2), ("/cold/c", 3)] {
            let fd = cache.open(path, OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
            cache.pwrite(fd, &[byte; 700], 0, &clock).unwrap();
            fds.push(fd);
        }
        // Drain before closing: a close with entries still pending defers
        // its slot teardown to a zombie drained by whoever gets there
        // first, and that race would make slot reuse — and therefore the
        // region bytes — scheduler-dependent in *both* runs.
        cache.flush_log(&clock);
        for fd in fds {
            cache.close(fd, &clock).unwrap();
        }
        heat_up(&cache, "/cold/c", 5, &clock);
        // Push one file off its routed tier, then let the sweep re-home it.
        let moved = cache.migrate("/cold/c", 1, &clock).unwrap();
        assert_eq!(moved, 700);
        let report = cache.rebalance(&clock).expect("sweep");
        cache.flush_log(&clock);
        let snap = cache.stats().snapshot();
        cache.shutdown(&clock);
        // Compare only the scheduler-independent counters: how the drain
        // happened to batch (cleanup_batches, fsyncs, ring peaks) races
        // the OS scheduler and differs between *any* two runs.
        let stats = (
            snap.writes,
            snap.reads,
            snap.bytes_logged,
            snap.entries_logged,
            snap.entries_propagated,
            snap.per_backend_propagated.clone(),
            snap.files_migrated,
            snap.migration_bytes,
            snap.files_promoted,
            snap.files_demoted,
            snap.fast_tier_bytes,
        );
        (region_bytes(&dimm), clock.now(), report, stats)
    };

    let (bytes_default, time_default, report_default, stats_default) = run(parked_cfg());
    let (bytes_router, time_router, report_router, stats_router) =
        run(parked_cfg().with_placement(Arc::new(RouterPlacement)));

    assert_eq!(bytes_default, bytes_router, "persistent images must be byte-identical");
    assert_eq!(time_default, time_router, "virtual timelines must be identical");
    assert_eq!(report_default, report_router, "sweep reports must agree");
    assert_eq!(stats_default, stats_router, "stats must agree");
    // And the sweep did what the pre-policy sweep would have done.
    assert_eq!(report_default.files_migrated, 1, "the misplaced file went home");
    assert_eq!((report_default.files_promoted, report_default.files_demoted), (0, 0));
    let (.., promoted, demoted, fast_bytes) = stats_default;
    assert_eq!((promoted, demoted), (0, 0));
    assert_eq!(fast_bytes, 0, "no policy, no fast tier");
}

/// The acceptance scenario, end to end: a hot file under a cold-routed
/// prefix is promoted onto the fast tier by heat alone, stays there inside
/// the hysteresis band, and is demoted back once its temperature decays.
#[test]
fn heat_policy_promotes_hot_files_and_demotes_after_decay() {
    let policy = Arc::new(HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(10)));
    let cfg = parked_cfg().with_placement(policy);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let tiers = two_memfs();
    let cache = mount(cfg, cold_everything(), &tiers, &dimm, Mount::Format, &clock);

    for (path, reads) in [("/data/hot", 8usize), ("/data/cold", 0)] {
        let fd = cache.open(path, OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        cache.pwrite(fd, &[0xAB; 512], 0, &clock).unwrap();
        cache.flush_log(&clock);
        cache.close(fd, &clock).unwrap();
        if reads > 0 {
            heat_up(&cache, path, reads, &clock);
        }
    }
    assert!(on_tier(&tiers.0, "/data/hot", &clock), "router placed everything on tier 0");

    // Sweep 1: the hot file crosses the promote threshold (1 write + 8
    // reads ≈ 9 units of barely decayed heat ≥ 4), the cold one (1 unit ≤
    // demote) stays at its baseline.
    let report = cache.rebalance(&clock).expect("sweep");
    assert_eq!((report.files_migrated, report.files_promoted, report.files_demoted), (1, 1, 0));
    assert!(on_tier(&tiers.1, "/data/hot", &clock), "hot file promoted by heat");
    assert!(!on_tier(&tiers.0, "/data/hot", &clock), "source copy unlinked");
    assert!(on_tier(&tiers.0, "/data/cold", &clock), "cold file never moved");
    let snap = cache.stats().snapshot();
    assert_eq!((snap.files_promoted, snap.files_demoted), (1, 0));
    assert_eq!(snap.fast_tier_bytes, 512, "the promoted payload occupies the fast tier");
    // The merged namespace still resolves the promoted file.
    assert_eq!(cache.stat("/data/hot", &clock).unwrap().size, 512);

    // Sweep 2, one half-life later: heat ≈ 4.5 — inside the hysteresis
    // band (1, 4)? No: still ≥ demote, < promote → the file must stay.
    clock.advance(SimTime::from_secs(10));
    let report = cache.rebalance(&clock).expect("hysteresis sweep");
    assert_eq!(report.files_migrated, 0, "inside the band nothing moves");
    assert!(on_tier(&tiers.1, "/data/hot", &clock));

    // Sweep 3, several half-lives later: heat ≈ 0.07 ≤ demote → demoted
    // back to the router baseline.
    clock.advance(SimTime::from_secs(60));
    let report = cache.rebalance(&clock).expect("decay sweep");
    assert_eq!((report.files_migrated, report.files_promoted, report.files_demoted), (1, 0, 1));
    assert!(on_tier(&tiers.0, "/data/hot", &clock), "cooled file demoted to baseline");
    assert!(!on_tier(&tiers.1, "/data/hot", &clock));
    let snap = cache.stats().snapshot();
    assert_eq!((snap.files_promoted, snap.files_demoted), (1, 1));
    assert_eq!(snap.fast_tier_bytes, 0, "the fast tier emptied out");
    cache.shutdown(&clock);
}

/// Temperature must survive close → reopen through the migrator catalog:
/// heat earned across several open generations adds up to a promotion no
/// single generation would have reached.
#[test]
fn temperature_survives_close_and_reopen() {
    let policy = Arc::new(HeatPolicy::new(1, 6.0, 1.0, SimTime::from_secs(3600)));
    let cfg = parked_cfg().with_placement(policy);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let tiers = two_memfs();
    let cache = mount(cfg, cold_everything(), &tiers, &dimm, Mount::Format, &clock);

    let fd = cache.open("/wal", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, &[7; 256], 0, &clock).unwrap();
    cache.flush_log(&clock);
    cache.close(fd, &clock).unwrap();
    // Three generations of 2 reads each: no single generation crosses the
    // 6.0 promote threshold, the accumulated temperature does.
    for gen in 0..3 {
        heat_up(&cache, "/wal", 2, &clock);
        if gen < 2 {
            let report = cache.rebalance(&clock).expect("sweep");
            assert_eq!(
                report.files_migrated, 0,
                "generation {gen} alone must not reach the threshold"
            );
        }
    }
    let report = cache.rebalance(&clock).expect("final sweep");
    assert_eq!(report.files_promoted, 1, "accumulated heat promotes: 1 write + 6 reads ≥ 6");
    assert!(on_tier(&tiers.1, "/wal", &clock));
    cache.shutdown(&clock);
}

/// The fast-tier capacity budget: when the hot set outgrows the budget,
/// only the hottest files keep their seats and the coldest candidate is
/// never promoted at all.
#[test]
fn fast_tier_budget_evicts_the_coldest_resident() {
    let policy = Arc::new(HeatPolicy::new(1, 3.0, 1.0, SimTime::from_secs(3600)).with_budget(1024));
    let cfg = parked_cfg().with_placement(policy);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let tiers = two_memfs();
    let cache = mount(cfg, cold_everything(), &tiers, &dimm, Mount::Format, &clock);

    // Three 512-byte files, all above the promote threshold, 1536 bytes of
    // candidates against a 1024-byte budget — the coldest must lose.
    for (path, reads) in [("/a", 9usize), ("/b", 7), ("/c", 5)] {
        let fd = cache.open(path, OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        cache.pwrite(fd, &[1; 512], 0, &clock).unwrap();
        cache.flush_log(&clock);
        cache.close(fd, &clock).unwrap();
        heat_up(&cache, path, reads, &clock);
    }
    let report = cache.rebalance(&clock).expect("sweep");
    assert_eq!(report.files_promoted, 2, "only two 512-byte files fit the 1024-byte budget");
    assert!(on_tier(&tiers.1, "/a", &clock), "hottest file promoted");
    assert!(on_tier(&tiers.1, "/b", &clock), "second-hottest promoted");
    assert!(on_tier(&tiers.0, "/c", &clock), "coldest candidate stays on the bulk tier");
    assert_eq!(cache.stats().snapshot().fast_tier_bytes, 1024, "budget exactly filled");
    cache.shutdown(&clock);
}

/// The background worker sweeps on its own virtual clock, which starts at
/// zero and is unrelated to the app clocks that stamped the heat: decay
/// must be measured against the mount's observed-time high-water mark, or
/// a sweep on a lagging clock would compute `Δt = 0` forever and cooling
/// would never demote (the `MigrationPolicy::Background` failure mode).
#[test]
fn sweep_on_a_lagging_clock_still_sees_decay() {
    let policy = Arc::new(HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(10)));
    let cfg = parked_cfg().with_placement(policy);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let tiers = two_memfs();
    let cache = mount(cfg, cold_everything(), &tiers, &dimm, Mount::Format, &clock);

    for path in ["/idle", "/later"] {
        let fd = cache.open(path, OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        cache.pwrite(fd, &[6; 128], 0, &clock).unwrap();
        cache.flush_log(&clock);
        cache.close(fd, &clock).unwrap();
    }
    heat_up(&cache, "/idle", 8, &clock);
    cache.rebalance(&clock).expect("promote");
    assert!(on_tier(&tiers.1, "/idle", &clock), "hot file promoted");

    // Virtual time passes on the app clock — witnessed only through a
    // touch of a *different* file (the mount's time high-water mark).
    clock.advance(SimTime::from_secs(100));
    heat_up(&cache, "/later", 1, &clock);

    // A sweep on a brand-new clock (now = 0, like the background worker's)
    // must still see the 100 s of decay and demote the cooled file.
    let lagging = ActorClock::new();
    let report = cache.rebalance(&lagging).expect("lagging sweep");
    assert_eq!(report.files_demoted, 1, "decay must follow observed time, not the sweep clock");
    assert!(on_tier(&tiers.0, "/idle", &lagging), "cooled file demoted to baseline");
    cache.shutdown(&clock);
}

/// A policy that judges every file well-placed wherever it already is —
/// distinguishable from any router-derived judgement.
#[derive(Debug)]
struct PinToCurrent;

impl PlacementPolicy for PinToCurrent {
    fn assign(
        &self,
        files: &[FileTemperature],
        _router: &dyn Router,
        _backends: usize,
    ) -> Vec<usize> {
        files.iter().map(|f| f.backend).collect()
    }

    fn place_cold(&self, _path: &str, current: usize, _router: &dyn Router) -> usize {
        current
    }

    fn name(&self) -> &str {
        "pin"
    }
}

/// Recovery consults the *placement policy*, not the router: with a policy
/// that pins files to their current tier, a routing-policy change across a
/// crash reports nothing misplaced and `RecoverRepair` moves nothing —
/// while the default router judgement reports (and repairs) the same image.
#[test]
fn recovery_judges_misplacement_by_the_active_policy() {
    let build_image = || {
        let clock = ActorClock::new();
        let cfg = parked_cfg();
        let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
        let tiers = two_memfs();
        // Old world: everything routed to tier 0.
        let cache = mount(cfg, cold_everything(), &tiers, &dimm, Mount::Format, &clock);
        let fd = cache.open("/hot/wal", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        cache.pwrite(fd, &[9; 128], 0, &clock).unwrap();
        cache.abort(); // crash with the descriptor open and entries pending
        (clock, Arc::new(dimm.crash_and_restart()), tiers)
    };
    // New world: the router now claims /hot/** for tier 1, so the recovered
    // file (replayed to tier 0, where it was acknowledged) is misplaced by
    // every router-derived judgement...
    let hot_router = || Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0));

    let (clock, dimm, tiers) = build_image();
    let cache = mount(parked_cfg(), hot_router(), &tiers, &dimm, Mount::Recover, &clock);
    let report = cache.recovery_report().unwrap();
    assert_eq!(report.files_misplaced, 1, "the default judgement follows the router");
    cache.shutdown(&clock);

    // ...but a policy that pins files to their current tier judges the
    // very same image clean: nothing misplaced, nothing repaired.
    let (clock, dimm, tiers) = build_image();
    let cache = mount(
        parked_cfg().with_placement(Arc::new(PinToCurrent)),
        hot_router(),
        &tiers,
        &dimm,
        Mount::RecoverRepair,
        &clock,
    );
    let report = cache.recovery_report().unwrap();
    assert_eq!((report.files_misplaced, report.files_repaired), (0, 0));
    assert!(on_tier(&tiers.0, "/hot/wal", &clock), "repair moved nothing");
    cache.shutdown(&clock);
}

/// Temperature is volatile: a file the heat policy promoted before a crash
/// is judged cold at recovery, and a `RecoverRepair` mount demotes it back
/// to the router baseline with intact bytes.
#[test]
fn recover_repair_demotes_a_previously_promoted_file() {
    let policy = || Arc::new(HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(3600)));
    let cfg = parked_cfg().with_placement(policy());
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let tiers = two_memfs();
    let cache = mount(cfg.clone(), cold_everything(), &tiers, &dimm, Mount::Format, &clock);

    let fd = cache.open("/burst", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, &[3; 256], 0, &clock).unwrap();
    cache.flush_log(&clock);
    cache.close(fd, &clock).unwrap();
    heat_up(&cache, "/burst", 8, &clock);
    cache.rebalance(&clock).expect("promote");
    assert!(on_tier(&tiers.1, "/burst", &clock), "promoted before the crash");

    // Reopen on its promoted tier (the fd slot records backend 1), then
    // crash: recovery finds the file on a tier no cold judgement assigns.
    let fd = cache.open("/burst", OpenFlags::RDWR, &clock).unwrap();
    cache.pwrite(fd, &[4; 64], 0, &clock).unwrap();
    cache.abort();
    drop(cache);

    let cache = mount(
        cfg,
        cold_everything(),
        &tiers,
        &Arc::new(dimm.crash_and_restart()),
        Mount::RecoverRepair,
        &clock,
    );
    let report = cache.recovery_report().unwrap();
    assert_eq!(report.files_repaired, 1, "the stale promotion is demoted at recovery");
    assert_eq!(report.files_misplaced, 0);
    assert!(on_tier(&tiers.0, "/burst", &clock), "back on the router baseline");
    assert!(!on_tier(&tiers.1, "/burst", &clock), "fast-tier copy gone");
    // The acknowledged crash write replayed before the demotion.
    let fd = cache.open("/burst", OpenFlags::RDONLY, &clock).unwrap();
    let mut buf = [0u8; 64];
    cache.pread(fd, &mut buf, 0, &clock).unwrap();
    assert_eq!(buf, [4; 64], "replayed bytes survive the repair demotion");
    cache.close(fd, &clock).unwrap();
    cache.shutdown(&clock);
}

/// The persisted-heat remount oracle: with `persist_heat` on, the compact
/// per-slot summaries stamped at `fsync` survive a crash, recovery seeds
/// them back into the catalog, and the next sweep re-promotes the hot set
/// **without a single post-recovery read or write** — placement quality
/// survives the remount on persisted temperature alone.
#[test]
fn recovery_reseeds_persisted_heat_and_repromotes_without_retouching() {
    let policy = || Arc::new(HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(3600)));
    let cfg = parked_cfg().with_placement(policy()).with_persist_heat(true);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let tiers = two_memfs();
    let cache = mount(cfg.clone(), cold_everything(), &tiers, &dimm, Mount::Format, &clock);

    // Two files open at crash time: one read-hot, one written once and
    // left alone. fsync is the app's durability point, so it is also the
    // moment the temperature summary is stamped into the fd slot.
    let hot = cache.open("/wal/hot", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(hot, &[1; 300], 0, &clock).unwrap();
    let cold = cache.open("/wal/cold", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(cold, &[2; 300], 0, &clock).unwrap();
    cache.flush_log(&clock);
    let mut buf = [0u8; 64];
    for _ in 0..8 {
        cache.pread(hot, &mut buf, 0, &clock).unwrap();
    }
    cache.fsync(hot, &clock).unwrap();
    cache.fsync(cold, &clock).unwrap();
    cache.abort();
    drop(cache);

    let cache = mount(
        cfg,
        cold_everything(),
        &tiers,
        &Arc::new(dimm.crash_and_restart()),
        Mount::Recover,
        &clock,
    );
    // No opens, reads or writes since the crash: the sweep decides purely
    // on the summaries recovery harvested from the fd slots.
    let report = cache.rebalance(&clock).expect("post-recovery sweep");
    assert_eq!(
        (report.files_promoted, report.files_demoted),
        (1, 0),
        "the persisted hot set is re-promoted from quantized heat alone"
    );
    assert!(on_tier(&tiers.1, "/wal/hot", &clock), "hot file back on the fast tier");
    assert!(on_tier(&tiers.0, "/wal/cold", &clock), "cold file stays on the baseline");
    cache.shutdown(&clock);
}

/// Forward compatibility with pre-heat images: a tiered v3 image whose
/// spare slot bytes are all zero (written by a mount without
/// `persist_heat`) recovers every file as cold — a zero word parses as "no
/// summary", never as garbage heat. The recovery mount then stamps the
/// heat epoch, upgrading the image in place: from that remount on,
/// summaries persist across crashes.
#[test]
fn pre_heat_images_recover_cold_and_upgrade_in_place() {
    let policy = || Arc::new(HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(3600)));
    let clock = ActorClock::new();
    let volatile_cfg = parked_cfg().with_placement(policy());
    let dimm = Arc::new(NvDimm::new(volatile_cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let tiers = two_memfs();

    // Old world: heat tracked but volatile — the image carries no epoch
    // word and every spare slot byte stays zero.
    let cache = mount(volatile_cfg, cold_everything(), &tiers, &dimm, Mount::Format, &clock);
    let fd = cache.open("/wal", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, &[5; 200], 0, &clock).unwrap();
    cache.flush_log(&clock);
    let mut buf = [0u8; 64];
    for _ in 0..8 {
        cache.pread(fd, &mut buf, 0, &clock).unwrap();
    }
    cache.fsync(fd, &clock).unwrap();
    cache.abort();
    drop(cache);

    // New world: `persist_heat` on. The pre-crash temperature is gone —
    // the zeroed spare bytes must read back as "cold", not as heat.
    let heat_cfg = parked_cfg().with_placement(policy()).with_persist_heat(true);
    let dimm = Arc::new(dimm.crash_and_restart());
    let cache = mount(heat_cfg.clone(), cold_everything(), &tiers, &dimm, Mount::Recover, &clock);
    let report = cache.rebalance(&clock).expect("sweep on the upgraded mount");
    assert_eq!(report.files_promoted, 0, "a pre-heat image recovers cold");
    assert!(on_tier(&tiers.0, "/wal", &clock), "nothing promoted without a summary");

    // The recovery mount stamped the heat epoch: heat earned now survives
    // the *next* crash.
    let fd = cache.open("/wal", OpenFlags::RDONLY, &clock).unwrap();
    for _ in 0..8 {
        cache.pread(fd, &mut buf, 0, &clock).unwrap();
    }
    cache.fsync(fd, &clock).unwrap();
    cache.abort();
    drop(cache);

    let cache = mount(
        heat_cfg,
        cold_everything(),
        &tiers,
        &Arc::new(dimm.crash_and_restart()),
        Mount::Recover,
        &clock,
    );
    let report = cache.rebalance(&clock).expect("post-upgrade sweep");
    assert_eq!(report.files_promoted, 1, "the upgraded image persists heat");
    assert!(on_tier(&tiers.1, "/wal", &clock));
    cache.shutdown(&clock);
}

/// The bounded-catalog identity oracle: a capacity the workload never
/// reaches must change nothing — the run is byte- and
/// virtual-time-identical to the default unbounded mount, sweep reports
/// and stats included, and the eviction counters stay at zero.
#[test]
fn an_unreached_catalog_capacity_is_byte_and_time_identical_to_unbounded() {
    let run = |cfg: NvCacheConfig| {
        let clock = ActorClock::new();
        let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::optane()));
        let tiers = two_memfs();
        let router = Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0));
        let cache = mount(cfg, router, &tiers, &dimm, Mount::Format, &clock);
        let mut fds = Vec::new();
        for (path, byte) in [("/hot/a", 1u8), ("/cold/b", 2), ("/cold/c", 3)] {
            let fd = cache.open(path, OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
            cache.pwrite(fd, &[byte; 700], 0, &clock).unwrap();
            fds.push(fd);
        }
        cache.flush_log(&clock);
        for fd in fds {
            cache.close(fd, &clock).unwrap();
        }
        heat_up(&cache, "/cold/c", 5, &clock);
        let moved = cache.migrate("/cold/c", 1, &clock).unwrap();
        assert_eq!(moved, 700);
        let report = cache.rebalance(&clock).expect("sweep");
        cache.flush_log(&clock);
        let snap = cache.stats().snapshot();
        cache.shutdown(&clock);
        let stats = (
            snap.writes,
            snap.reads,
            snap.bytes_logged,
            snap.entries_logged,
            snap.entries_propagated,
            snap.files_migrated,
            snap.migration_bytes,
            snap.catalog_evictions,
            snap.catalog_readmissions,
        );
        (region_bytes(&dimm), clock.now(), report, stats)
    };

    let (bytes_unbounded, time_unbounded, report_unbounded, stats_unbounded) = run(parked_cfg());
    let (bytes_bounded, time_bounded, report_bounded, stats_bounded) =
        run(parked_cfg().with_catalog_capacity(1 << 20));

    assert_eq!(bytes_unbounded, bytes_bounded, "persistent images must be byte-identical");
    assert_eq!(time_unbounded, time_bounded, "virtual timelines must be identical");
    assert_eq!(report_unbounded, report_bounded, "sweep reports must agree");
    assert_eq!(stats_unbounded, stats_bounded, "stats must agree");
    let (.., evictions, readmissions) = stats_bounded;
    assert_eq!((evictions, readmissions), (0, 0), "an unreached bound never evicts");
}
