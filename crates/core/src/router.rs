//! Backend routing for tiered mounts: the object-safe [`Router`] trait maps
//! a file to one of the mount's inner file systems, plus the three routers
//! every stack needs — [`SingleBackend`] (the paper's one-backend deployment),
//! [`PathPrefixRouter`] (explicit hot/cold placement by directory) and
//! [`HashRouter`] (uniform spreading).
//!
//! Routing is consulted when a file enters the cache (`open`) and for the
//! path-based operations (`stat`, `unlink`, `rename`, `list_dir`); once a
//! file is open, its backend index travels with the descriptor — volatile in
//! [`OpenedFile`](crate::files) and persistent in the NVMM fd table (header
//! v3), so recovery replays every log entry to the backend that was actually
//! written (see `docs/ARCHITECTURE.md`, "The mount stack").
//!
//! A file whose recorded backend disagrees with the router's *current*
//! placement (a policy changed across a reboot, or an explicit
//! [`NvCache::migrate`](crate::NvCache::migrate) moved it) is **misplaced**:
//! `stat`/`unlink` still reach it by probing the recorded backend first,
//! and the tier migrator — [`NvCache::rebalance`](crate::NvCache::rebalance)
//! sweeps, the [`MigrationPolicy::Background`](crate::MigrationPolicy)
//! worker, or a [`Mount::RecoverRepair`](crate::Mount) mount — re-homes it
//! to where `route` says it belongs.

/// Maps files to backend indices in a tiered
/// [`NvCache`](crate::NvCache) mount.
///
/// Implementations must be **path-stable**: the same (normalized) path must
/// always resolve to the same backend index while the mount is up, because
/// `open` routes before the file exists on any backend and the path-based
/// operations re-route on every call. The `ino` argument is a refinement
/// hint — `0` whenever the file is not yet open (so a router must not rely
/// on it for placement, only for e.g. NUMA/affinity tie-breaking).
///
/// The trait is object-safe; tiered mounts hold it as `Arc<dyn Router>`.
///
/// # Example
///
/// ```
/// use nvcache::{PathPrefixRouter, Router};
/// let r = PathPrefixRouter::new(vec![("/hot".into(), 1)], 0);
/// assert_eq!(r.route("/hot/wal.log", 0), 1);
/// assert_eq!(r.route("/cold/archive", 0), 0);
/// ```
pub trait Router: Send + Sync + std::fmt::Debug {
    /// The backend index of the file at `path` (normalized, absolute).
    /// `ino` is the file's inode number when known, `0` otherwise.
    ///
    /// Must return a value in `[0, backends)` for the mount's backend count;
    /// the mount validates this at build time against the router's
    /// [`fan_out`](Router::fan_out) and clamps nothing at run time.
    fn route(&self, path: &str, ino: u64) -> usize;

    /// The number of distinct backend indices this router can return
    /// (`route` must stay in `[0, fan_out)`).
    fn fan_out(&self) -> usize;

    /// Short human-readable name used in the mount's `FileSystem::name`.
    fn name(&self) -> &str {
        "router"
    }
}

/// The degenerate router of a single-backend mount: every file maps to
/// backend `0`. [`NvCacheBuilder::backend`](crate::NvCacheBuilder::backend)
/// installs it implicitly — the paper's plug-and-play deployment.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleBackend;

impl Router for SingleBackend {
    fn route(&self, _path: &str, _ino: u64) -> usize {
        0
    }

    fn fan_out(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "single"
    }
}

/// Routes by longest matching path prefix — the "hot files over NOVA, cold
/// bulk over ext4+HDD" tiering of the ROADMAP, with explicit placement.
///
/// Rules are `(prefix, backend)` pairs; the longest prefix that matches a
/// whole path component wins, and paths matching no rule go to `default`.
/// `/hot` matches `/hot` and `/hot/a` but not `/hotel`.
#[derive(Debug, Clone)]
pub struct PathPrefixRouter {
    /// `(prefix, backend)` rules, sorted longest-prefix-first.
    rules: Vec<(String, usize)>,
    /// Backend of paths matching no rule.
    default: usize,
}

impl PathPrefixRouter {
    /// A router sending paths under each `(prefix, backend)` rule to its
    /// backend and everything else to `default`.
    ///
    /// # Panics
    ///
    /// Panics if a prefix is empty or not absolute.
    pub fn new(mut rules: Vec<(String, usize)>, default: usize) -> Self {
        for (prefix, _) in &rules {
            assert!(
                prefix.starts_with('/') && prefix.len() > 1,
                "prefix rule must be an absolute non-root path: {prefix:?}"
            );
        }
        // Longest first, so the most specific rule wins.
        rules.sort_by_key(|(p, _)| std::cmp::Reverse(p.len()));
        PathPrefixRouter { rules, default }
    }

    fn matches(prefix: &str, path: &str) -> bool {
        let prefix = prefix.trim_end_matches('/');
        path == prefix
            || (path.starts_with(prefix) && path.as_bytes().get(prefix.len()) == Some(&b'/'))
    }
}

impl Router for PathPrefixRouter {
    fn route(&self, path: &str, _ino: u64) -> usize {
        self.rules
            .iter()
            .find(|(prefix, _)| Self::matches(prefix, path))
            .map_or(self.default, |&(_, backend)| backend)
    }

    fn fan_out(&self) -> usize {
        self.rules
            .iter()
            .map(|&(_, b)| b)
            .chain(std::iter::once(self.default))
            .max()
            .unwrap_or(0)
            + 1
    }

    fn name(&self) -> &str {
        "prefix"
    }
}

/// Spreads files uniformly over `n` backends by hashing the path —
/// capacity balancing when no placement policy applies. Uses the same
/// SplitMix64-style mix as the log's stripe routing. The inode hint is
/// deliberately ignored: placement must be path-stable (`open` routes
/// before the inode exists), so hashing `ino` would send path-based calls
/// to a different tier than the one the file was opened on.
#[derive(Debug, Clone, Copy)]
pub struct HashRouter {
    n: usize,
}

impl HashRouter {
    /// A router over `n` backends.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "hash router needs at least one backend");
        HashRouter { n }
    }
}

impl Router for HashRouter {
    fn route(&self, path: &str, _ino: u64) -> usize {
        let mut h = 0x9E37_79B9_7F4A_7C15u64;
        for &b in path.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        }
        h = (h ^ (h >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h % self.n as u64) as usize
    }

    fn fan_out(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_backend_always_routes_to_zero() {
        let r = SingleBackend;
        assert_eq!(r.route("/any/path", 42), 0);
        assert_eq!(r.fan_out(), 1);
    }

    #[test]
    fn prefix_router_matches_whole_components() {
        let r = PathPrefixRouter::new(vec![("/hot".into(), 1), ("/hot/wal".into(), 2)], 0);
        assert_eq!(r.route("/hot", 0), 1);
        assert_eq!(r.route("/hot/data", 0), 1);
        assert_eq!(r.route("/hot/wal/0001", 0), 2, "longest prefix wins");
        assert_eq!(r.route("/hotel", 0), 0, "no partial-component match");
        assert_eq!(r.route("/cold", 0), 0);
        assert_eq!(r.fan_out(), 3);
    }

    #[test]
    fn prefix_router_is_path_stable() {
        let r = PathPrefixRouter::new(vec![("/a".into(), 1)], 0);
        for _ in 0..3 {
            assert_eq!(r.route("/a/f", 0), r.route("/a/f", 7));
        }
    }

    #[test]
    #[should_panic(expected = "absolute non-root path")]
    fn relative_prefix_panics() {
        PathPrefixRouter::new(vec![("hot".into(), 1)], 0);
    }

    #[test]
    fn hash_router_is_deterministic_and_in_range() {
        let r = HashRouter::new(3);
        assert_eq!(r.fan_out(), 3);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let path = format!("/f{i}");
            let a = r.route(&path, 0);
            assert_eq!(a, r.route(&path, 0), "must be deterministic");
            assert!(a < 3);
            seen.insert(a);
        }
        assert_eq!(seen.len(), 3, "64 paths must hit every backend");
    }

    #[test]
    fn hash_router_placement_ignores_the_inode_hint() {
        // `open` routes with ino = 0 and path-based calls may pass the real
        // inode: both must agree, or stat/unlink would hit the wrong tier.
        let r = HashRouter::new(4);
        for i in 0..32 {
            let path = format!("/spread/{i}");
            assert_eq!(r.route(&path, 0), r.route(&path, 7777 + i));
        }
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_way_hash_router_panics() {
        HashRouter::new(0);
    }

    #[test]
    fn routers_are_object_safe() {
        let routers: Vec<Box<dyn Router>> = vec![
            Box::new(SingleBackend),
            Box::new(PathPrefixRouter::new(vec![("/x".into(), 1)], 0)),
            Box::new(HashRouter::new(2)),
        ];
        for r in &routers {
            assert!(r.route("/x/y", 0) < r.fan_out().max(2));
            assert!(!r.name().is_empty());
        }
    }
}
