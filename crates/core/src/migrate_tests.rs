//! Tests of the tier migrator: the copy → stamp → unlink crash matrix
//! (exactly one authoritative copy after a crash at every protocol step,
//! proptest-randomized), live migration/rebalance semantics (busy files,
//! access-heat catalog), the recovery repair mode of the acceptance
//! criteria, and cross-tier rename behind the config flag.

use std::sync::Arc;

use nvmm::{NvDimm, NvRegion, NvmmProfile};
use proptest::prelude::*;
use simclock::ActorClock;
use vfs::{FileSystem, IoError, MemFs, OpenFlags};

use crate::layout::Layout;
use crate::migrate::{self, CrashPoint, MigrationPolicy};
use crate::{Mount, NvCache, NvCacheConfig, PathPrefixRouter};

fn tiny_tiered_cfg() -> NvCacheConfig {
    NvCacheConfig {
        nb_entries: 128,
        batch_min: usize::MAX >> 1, // park the drain unless a test flushes
        batch_max: usize::MAX >> 1,
        ..NvCacheConfig::tiny()
    }
}

fn hot_router() -> Arc<PathPrefixRouter> {
    Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0))
}

/// Formats a two-backend (v3) region and returns it shut down, ready for
/// direct protocol calls: `(clock, dimm, cold, hot)`.
fn formatted_v3_region(
    cfg: &NvCacheConfig,
) -> (ActorClock, Arc<NvDimm>, Arc<dyn FileSystem>, Arc<dyn FileSystem>) {
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cold: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backends(hot_router(), vec![Arc::clone(&cold), Arc::clone(&hot)])
        .config(cfg.clone())
        .mount(&clock)
        .expect("format");
    cache.shutdown(&clock);
    (clock, dimm, cold, hot)
}

fn write_file(fs: &Arc<dyn FileSystem>, path: &str, content: &[u8], clock: &ActorClock) {
    let fd = fs.open(path, OpenFlags::RDWR | OpenFlags::CREATE, clock).unwrap();
    if !content.is_empty() {
        fs.pwrite(fd, content, 0, clock).unwrap();
    }
    fs.fsync(fd, clock).unwrap();
    fs.close(fd, clock).unwrap();
}

fn read_file(fs: &Arc<dyn FileSystem>, path: &str, clock: &ActorClock) -> Option<Vec<u8>> {
    let fd = match fs.open(path, OpenFlags::RDONLY, clock) {
        Ok(fd) => fd,
        Err(IoError::NotFound(_)) => return None,
        Err(e) => panic!("unexpected open error: {e}"),
    };
    let size = fs.fstat(fd, clock).unwrap().size as usize;
    let mut buf = vec![0u8; size];
    if size > 0 {
        fs.pread(fd, &mut buf, 0, clock).unwrap();
    }
    fs.close(fd, clock).unwrap();
    Some(buf)
}

/// Runs one migration with a crash injected after `crash_after` (or to
/// completion for `None`), crashes the NVMM image, recovers, and asserts
/// the exactly-one-copy + content oracle. Returns which backend ended up
/// authoritative.
fn crash_scenario(content: &[u8], from: usize, crash_after: Option<CrashPoint>) -> usize {
    let cfg = tiny_tiered_cfg();
    let (clock, dimm, cold, hot) = formatted_v3_region(&cfg);
    let backends = [Arc::clone(&cold), Arc::clone(&hot)];
    let to = 1 - from;
    // The path routes to tier 1; placement correctness is not what this
    // oracle checks (recovery repair of journals never consults the
    // router), so both directions are exercised with the same name.
    let path = "/hot/victim";
    write_file(&backends[from], path, content, &clock);

    let lay = Layout::for_config(&cfg.clone().with_backends(2));
    let region = NvRegion::whole(Arc::clone(&dimm));
    migrate::migrate_bytes(
        &region,
        &lay,
        &backends,
        3, // any free journal slot
        path,
        path,
        from,
        to,
        &clock,
        crash_after,
    )
    .expect("protocol run");

    // Power failure, then a plain recovery mount (journal repair runs on
    // every recovery, repair mode or not).
    let restarted = Arc::new(dimm.crash_and_restart());
    let recovered = NvCache::builder(NvRegion::whole(restarted))
        .backends(hot_router(), vec![Arc::clone(&cold), Arc::clone(&hot)])
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("recovery");
    let report = recovered.recovery_report().unwrap();
    let expect_journal = crash_after.is_some();
    assert_eq!(
        report.migrations_repaired,
        usize::from(expect_journal),
        "a crash inside the protocol leaves exactly one journal ({crash_after:?})"
    );
    recovered.shutdown(&clock);

    // The oracle: exactly one copy, bytes unchanged.
    let on = [read_file(&backends[0], path, &clock), read_file(&backends[1], path, &clock)];
    let survivors: Vec<usize> = (0..2).filter(|&b| on[b].is_some()).collect();
    assert_eq!(
        survivors.len(),
        1,
        "exactly one authoritative copy must survive {crash_after:?} (found on {survivors:?})"
    );
    let where_ = survivors[0];
    assert_eq!(
        on[where_].as_deref(),
        Some(content),
        "content must be byte-identical after {crash_after:?}"
    );
    where_
}

#[test]
fn crash_matrix_converges_to_exactly_one_copy() {
    let content = b"migration payload: the bytes themselves never change".as_slice();
    for from in [0usize, 1] {
        let to = 1 - from;
        // No crash: the move completes.
        assert_eq!(crash_scenario(content, from, None), to);
        // Before the copy: source stays authoritative.
        assert_eq!(crash_scenario(content, from, Some(CrashPoint::AfterJournal)), from);
        // Copy done but unstamped: source stays authoritative, the full
        // (but uncommitted) target copy is deleted.
        assert_eq!(crash_scenario(content, from, Some(CrashPoint::AfterCopy)), from);
        // Stamped: the target owns the file, the stale source is deleted.
        assert_eq!(crash_scenario(content, from, Some(CrashPoint::AfterStamp)), to);
        // Unlinked but journal not yet cleared: target owns the file.
        assert_eq!(crash_scenario(content, from, Some(CrashPoint::AfterUnlink)), to);
    }
}

#[test]
fn empty_files_migrate_and_repair_too() {
    assert_eq!(crash_scenario(&[], 0, Some(CrashPoint::AfterCopy)), 0);
    assert_eq!(crash_scenario(&[], 0, Some(CrashPoint::AfterStamp)), 1);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The crash-mid-migration property of the ISSUE: random content and a
    /// random kill point at each protocol step always recover to exactly
    /// one copy whose bytes match the oracle.
    #[test]
    fn crash_mid_migration_always_leaves_one_true_copy(
        content in proptest::collection::vec(any::<u8>(), 0..6000),
        from in 0..2usize,
        step in 0..5usize,
    ) {
        let crash_after = [
            None,
            Some(CrashPoint::AfterJournal),
            Some(CrashPoint::AfterCopy),
            Some(CrashPoint::AfterStamp),
            Some(CrashPoint::AfterUnlink),
        ][step];
        let survivor = crash_scenario(&content, from, crash_after);
        // Placement follows the commit point: authoritative copy moves at
        // the stamp, never before.
        let expect = match crash_after {
            None | Some(CrashPoint::AfterStamp) | Some(CrashPoint::AfterUnlink) => 1 - from,
            _ => from,
        };
        prop_assert_eq!(survivor, expect);
    }
}

#[test]
fn live_migration_moves_a_closed_file_and_counts_stats() {
    let cfg = tiny_tiered_cfg().with_migration(MigrationPolicy::OnDemand);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cold: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backends(hot_router(), vec![Arc::clone(&cold), Arc::clone(&hot)])
        .config(cfg)
        .mount(&clock)
        .unwrap();
    let fd = cache.open("/hot/wal", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"hot payload", 0, &clock).unwrap();

    // Open file: migration must refuse with EBUSY.
    assert!(matches!(cache.migrate("/hot/wal", 0, &clock), Err(IoError::Busy(_))));

    cache.flush_log(&clock);
    cache.close(fd, &clock).unwrap();
    // Closed and drained: the explicit move (against the router's wishes)
    // succeeds and the bytes change tier, not value.
    let moved = cache.migrate("/hot/wal", 0, &clock).expect("migrate closed file");
    assert_eq!(moved, 11);
    assert_eq!(read_file(&cold, "/hot/wal", &clock).as_deref(), Some(b"hot payload".as_slice()));
    assert_eq!(read_file(&hot, "/hot/wal", &clock), None);
    let snap = cache.stats().snapshot();
    assert_eq!(snap.files_migrated, 1);
    assert_eq!(snap.migration_bytes, 11);
    // Idempotent: already there.
    assert_eq!(cache.migrate("/hot/wal", 0, &clock).unwrap(), 0);

    // The file is now misplaced by the router's standards; stat/unlink
    // still reach it through the recorded backend (the catalog).
    assert_eq!(cache.stat("/hot/wal", &clock).unwrap().size, 11);
    // And a rebalance sweep brings it home.
    let report = cache.rebalance(&clock).expect("sweep");
    assert_eq!(report.files_migrated, 1);
    assert_eq!(report.bytes_moved, 11);
    assert_eq!(read_file(&hot, "/hot/wal", &clock).as_deref(), Some(b"hot payload".as_slice()));
    assert_eq!(read_file(&cold, "/hot/wal", &clock), None);
    cache.shutdown(&clock);
}

#[test]
fn draining_zombie_blocks_migration_until_drained() {
    let cfg = tiny_tiered_cfg().with_migration(MigrationPolicy::OnDemand);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cold: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::builder(NvRegion::whole(dimm))
        .backends(hot_router(), vec![Arc::clone(&cold), Arc::clone(&hot)])
        .config(cfg)
        .mount(&clock)
        .unwrap();
    let fd = cache.open("/hot/zombie", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"pending", 0, &clock).unwrap();
    // Close with the drain parked: the descriptor lingers as a zombie whose
    // entries are still in NVMM — mid-drain files must not migrate.
    cache.close(fd, &clock).unwrap();
    assert!(cache.pending_entries() > 0, "the drain must still be parked");
    assert!(matches!(cache.migrate("/hot/zombie", 0, &clock), Err(IoError::Busy(_))));
    // Draining unblocks it.
    cache.flush_log(&clock);
    assert_eq!(cache.migrate("/hot/zombie", 0, &clock).unwrap(), 7);
    assert_eq!(read_file(&cold, "/hot/zombie", &clock).as_deref(), Some(b"pending".as_slice()));
    cache.shutdown(&clock);
}

#[test]
fn rebalance_requires_an_enabled_policy() {
    let (clock, dimm, cold, hot) = formatted_v3_region(&tiny_tiered_cfg());
    let cache = NvCache::builder(NvRegion::whole(Arc::new(dimm.crash_and_restart())))
        .backends(hot_router(), vec![cold, hot])
        .config(tiny_tiered_cfg()) // MigrationPolicy::Disabled
        .mode(Mount::Recover)
        .mount(&clock)
        .unwrap();
    assert!(matches!(cache.rebalance(&clock), Err(IoError::InvalidArgument(_))));
    assert!(matches!(cache.migrate("/x", 1, &clock), Err(IoError::InvalidArgument(_))));
    cache.shutdown(&clock);
}

/// The acceptance scenario: crash with files misplaced by a policy change,
/// one `Mount::RecoverRepair` re-homes them all (report shows
/// `files_misplaced == 0`, moves in `files_repaired`), a byte oracle
/// confirms the content, and the *next* crash + recovery reports zero
/// misplaced files.
#[test]
fn recover_repair_rehomes_every_misplaced_file() {
    let cfg = tiny_tiered_cfg();
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let legacy: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    // Phase 1: a single-backend (legacy) mount writes files under /hot —
    // they all land on the only backend — and crashes with the fd slots
    // live.
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend(Arc::clone(&legacy))
        .config(cfg.clone())
        .mount(&clock)
        .unwrap();
    let mut oracle = Vec::new();
    for i in 0..4u32 {
        let path = format!("/hot/f{i}");
        let fd = cache.open(&path, OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
        let content = vec![i as u8 + 1; 100 + 37 * i as usize];
        cache.pwrite(fd, &content, 0, &clock).unwrap();
        oracle.push((path, content));
    }
    cache.abort();
    drop(cache);
    let restarted = Arc::new(dimm.crash_and_restart());

    // Phase 2: repair-mode recovery into a two-tier stack whose router
    // claims /hot/** for tier 1. The legacy files replay to backend 0
    // (acknowledged bytes never re-route) and are then re-homed to tier 1
    // by the repair pass.
    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let recovered = NvCache::builder(NvRegion::whole(Arc::clone(&restarted)))
        .backends(hot_router(), vec![Arc::clone(&legacy), Arc::clone(&hot)])
        .config(cfg.clone())
        .mode(Mount::RecoverRepair)
        .mount(&clock)
        .expect("repair recovery");
    let report = recovered.recovery_report().unwrap();
    assert_eq!(report.entries_replayed, 4);
    assert_eq!(report.files_repaired, 4, "every misplaced file must be re-homed");
    assert_eq!(report.files_misplaced, 0, "none may remain misplaced after repair");
    for (path, content) in &oracle {
        assert_eq!(
            read_file(&hot, path, &clock).as_deref(),
            Some(content.as_slice()),
            "{path} must live on its router tier with intact bytes"
        );
        assert_eq!(read_file(&legacy, path, &clock), None, "{path} must leave the legacy tier");
        // The mount itself sees the file where the router expects it.
        assert_eq!(recovered.stat(path, &clock).unwrap().size, content.len() as u64);
    }

    // Phase 3: reopen through the mount, crash again, recover normally —
    // the next mount must report files_misplaced == 0 (the v3 slots now
    // record the router's placement).
    for (path, _) in &oracle {
        let fd = recovered.open(path, OpenFlags::RDWR, &clock).unwrap();
        recovered.pwrite(fd, b"!", 0, &clock).unwrap();
    }
    recovered.abort();
    drop(recovered);
    let restarted = Arc::new(restarted.crash_and_restart());
    let next = NvCache::builder(NvRegion::whole(restarted))
        .backends(hot_router(), vec![legacy, hot])
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("second recovery");
    assert_eq!(next.recovery_report().unwrap().files_misplaced, 0);
    assert_eq!(next.recovery_report().unwrap().files_repaired, 0);
    next.shutdown(&clock);
}

#[test]
fn background_policy_rehomes_misplaced_files_by_itself() {
    let cfg = tiny_tiered_cfg().with_migration(MigrationPolicy::Background);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let legacy: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::builder(NvRegion::whole(Arc::clone(&dimm)))
        .backend(Arc::clone(&legacy))
        .config(cfg.clone())
        .mount(&clock)
        .unwrap();
    let fd = cache.open("/hot/auto", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"self-healing", 0, &clock).unwrap();
    cache.abort();
    drop(cache);
    let restarted = Arc::new(dimm.crash_and_restart());

    // Plain Recover (no repair pass): the misplaced file seeds the catalog
    // and the background worker must re-home it on its own.
    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let recovered = NvCache::builder(NvRegion::whole(restarted))
        .backends(hot_router(), vec![Arc::clone(&legacy), Arc::clone(&hot)])
        .config(cfg)
        .mode(Mount::Recover)
        .mount(&clock)
        .expect("recovery");
    assert_eq!(recovered.recovery_report().unwrap().files_misplaced, 1);
    for _ in 0..10_000 {
        if recovered.stats().files_migrated.load(std::sync::atomic::Ordering::Relaxed) > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(
        read_file(&hot, "/hot/auto", &clock).as_deref(),
        Some(b"self-healing".as_slice()),
        "the background worker must move the file to its router tier"
    );
    assert_eq!(read_file(&legacy, "/hot/auto", &clock), None);
    recovered.shutdown(&clock);
}

#[test]
fn open_falls_back_to_the_recorded_tier_for_misplaced_files() {
    // A misplaced file must be *readable* through the mount, not just
    // stat-able: a non-creating open probes past the router's tier. A
    // creating open still follows the router (that is the placement
    // decision for new files).
    let cfg = tiny_tiered_cfg().with_migration(MigrationPolicy::OnDemand);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cold: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::builder(NvRegion::whole(dimm))
        .backends(hot_router(), vec![Arc::clone(&cold), Arc::clone(&hot)])
        .config(cfg)
        .mount(&clock)
        .unwrap();
    // Create on the router's tier (1), then migrate away so the file is
    // misplaced relative to the policy.
    let fd = cache.open("/hot/stray", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"stray bytes", 0, &clock).unwrap();
    cache.flush_log(&clock);
    cache.close(fd, &clock).unwrap();
    cache.migrate("/hot/stray", 0, &clock).unwrap();

    let fd = cache.open("/hot/stray", OpenFlags::RDONLY, &clock).expect("fallback open");
    let mut buf = [0u8; 11];
    cache.pread(fd, &mut buf, 0, &clock).unwrap();
    assert_eq!(&buf, b"stray bytes");
    cache.close(fd, &clock).unwrap();
    // The catalog entry survived the open (same tier), so a sweep can
    // still re-home the file.
    let report = cache.rebalance(&clock).unwrap();
    assert_eq!(report.files_migrated, 1);
    assert_eq!(read_file(&hot, "/hot/stray", &clock).as_deref(), Some(b"stray bytes".as_slice()));
    cache.shutdown(&clock);
}

#[test]
fn creating_open_reuses_a_misplaced_file_instead_of_shadowing() {
    // POSIX O_CREAT opens an existing file — it must not shadow a
    // misplaced copy on another tier with a fresh empty file on the
    // routed tier (the shadow would fork the name into two divergent
    // copies). Works with migration disabled too: the probe is part of
    // the path-op routing fix, not the migrator.
    let cfg = tiny_tiered_cfg();
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cold: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    // The file lives on tier 0 while the router claims /hot/** for tier 1.
    write_file(&cold, "/hot/kept", b"original", &clock);
    let cache = NvCache::builder(NvRegion::whole(dimm))
        .backends(hot_router(), vec![Arc::clone(&cold), Arc::clone(&hot)])
        .config(cfg)
        .mount(&clock)
        .unwrap();
    let fd = cache.open("/hot/kept", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    let mut buf = [0u8; 8];
    cache.pread(fd, &mut buf, 0, &clock).unwrap();
    assert_eq!(&buf, b"original", "the existing bytes must be opened, not an empty shadow");
    cache.pwrite(fd, b"UPDATED!", 0, &clock).unwrap();
    cache.flush_log(&clock);
    cache.close(fd, &clock).unwrap();
    assert_eq!(read_file(&hot, "/hot/kept", &clock), None, "no shadow on the routed tier");
    assert_eq!(read_file(&cold, "/hot/kept", &clock).as_deref(), Some(b"UPDATED!".as_slice()));
    // A genuinely new file still follows the router.
    let fd = cache.open("/hot/fresh", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"new", 0, &clock).unwrap();
    cache.flush_log(&clock);
    cache.close(fd, &clock).unwrap();
    assert!(read_file(&hot, "/hot/fresh", &clock).is_some());
    assert_eq!(read_file(&cold, "/hot/fresh", &clock), None);
    cache.shutdown(&clock);
}

#[test]
fn unlink_removes_duplicate_copies_from_every_tier() {
    // A name visible through the merged mount may have duplicate physical
    // copies (a misplaced file plus a shadow created on the routed tier):
    // unlink must remove them all, or the survivor resurrects the name.
    let cfg = tiny_tiered_cfg();
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cold: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    write_file(&cold, "/hot/dup", b"stale copy", &clock);
    write_file(&hot, "/hot/dup", b"fresh copy", &clock);
    let cache = NvCache::builder(NvRegion::whole(dimm))
        .backends(hot_router(), vec![Arc::clone(&cold), Arc::clone(&hot)])
        .config(cfg)
        .mount(&clock)
        .unwrap();
    cache.unlink("/hot/dup", &clock).expect("unlink");
    assert_eq!(read_file(&cold, "/hot/dup", &clock), None, "the stale copy must go too");
    assert_eq!(read_file(&hot, "/hot/dup", &clock), None);
    assert!(matches!(cache.stat("/hot/dup", &clock), Err(IoError::NotFound(_))));
    cache.shutdown(&clock);
}

#[test]
fn rename_onto_itself_succeeds_even_when_misplaced() {
    // POSIX: rename(p, p) of an existing file is a successful no-op. A
    // misplaced file (actual tier != routed tier) used to report EXDEV.
    let cfg = tiny_tiered_cfg();
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cold: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    // The file sits on tier 0 while the router places /hot/** on tier 1.
    write_file(&cold, "/hot/self", b"content", &clock);
    let cache = NvCache::builder(NvRegion::whole(dimm))
        .backends(hot_router(), vec![Arc::clone(&cold), Arc::clone(&hot)])
        .config(cfg)
        .mount(&clock)
        .unwrap();
    cache.rename("/hot/self", "/hot/self", &clock).expect("self-rename is a no-op");
    assert_eq!(read_file(&cold, "/hot/self", &clock).as_deref(), Some(b"content".as_slice()));
    assert!(matches!(cache.rename("/hot/ghost", "/hot/ghost", &clock), Err(IoError::NotFound(_))));
    cache.shutdown(&clock);
}

#[test]
fn rename_replaces_stale_destination_copies_on_other_tiers() {
    // rename must replace the destination on the mount's *merged* view: a
    // stale copy of the destination name on a third location would
    // resurface once the fresh copy is unlinked.
    let cfg = tiny_tiered_cfg().with_cross_tier_rename(true);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cold: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    // Destination name pre-exists, misplaced on the hot tier (routes cold).
    write_file(&hot, "/cold/dest", b"stale destination", &clock);
    let cache = NvCache::builder(NvRegion::whole(dimm))
        .backends(hot_router(), vec![Arc::clone(&cold), Arc::clone(&hot)])
        .config(cfg)
        .mount(&clock)
        .unwrap();
    let fd = cache.open("/hot/src", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"new content", 0, &clock).unwrap();
    cache.flush_log(&clock);
    cache.close(fd, &clock).unwrap();

    cache.rename("/hot/src", "/cold/dest", &clock).expect("cross-tier rename");
    assert_eq!(read_file(&cold, "/cold/dest", &clock).as_deref(), Some(b"new content".as_slice()));
    assert_eq!(read_file(&hot, "/cold/dest", &clock), None, "the stale destination must go");
    assert_eq!(read_file(&hot, "/hot/src", &clock), None);
    assert_eq!(cache.stat("/cold/dest", &clock).unwrap().size, 11);
    cache.shutdown(&clock);
}

#[test]
fn cross_tier_rename_migrates_behind_the_flag() {
    let cfg = tiny_tiered_cfg().with_cross_tier_rename(true);
    let clock = ActorClock::new();
    let dimm = Arc::new(NvDimm::new(cfg.required_nvmm_bytes(), NvmmProfile::instant()));
    let cold: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let hot: Arc<dyn FileSystem> = Arc::new(MemFs::new());
    let cache = NvCache::builder(NvRegion::whole(dimm))
        .backends(hot_router(), vec![Arc::clone(&cold), Arc::clone(&hot)])
        .config(cfg)
        .mount(&clock)
        .unwrap();
    let fd = cache.open("/hot/wal", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
    cache.pwrite(fd, b"renamed across tiers", 0, &clock).unwrap();
    // Open source: EBUSY, like a migration.
    assert!(matches!(cache.rename("/hot/wal", "/cold/wal", &clock), Err(IoError::Busy(_))));
    cache.flush_log(&clock);
    cache.close(fd, &clock).unwrap();

    cache
        .rename("/hot/wal", "/cold/wal", &clock)
        .expect("flagged cross-tier rename");
    assert_eq!(
        read_file(&cold, "/cold/wal", &clock).as_deref(),
        Some(b"renamed across tiers".as_slice())
    );
    assert_eq!(read_file(&hot, "/hot/wal", &clock), None, "the source name must be gone");
    assert_eq!(cache.stats().snapshot().files_migrated, 1);
    // Same-tier renames still go through the inner file system.
    cache.rename("/cold/wal", "/cold/wal2", &clock).expect("same-tier rename");
    assert_eq!(cache.stat("/cold/wal2", &clock).unwrap().size, 20);
    cache.shutdown(&clock);
}
