//! The background tier migrator: moves whole files between the backends of
//! a tiered mount with a crash-safe **copy → stamp → unlink** protocol, so
//! that placement is no longer fixed at open time (the ROADMAP's "tier
//! rebalancing" item — NVLog-style transparent migration between tiers).
//!
//! # The protocol
//!
//! A migration of `path` from tier `A` to tier `B` walks five persistent
//! steps; the *journal* is an ordinary fd slot whose valid word is
//! [`layout::FD_VALID_MIGRATION`] and whose `(path, backend)` pair always
//! names the **authoritative** copy:
//!
//! ```text
//!   step                      crash here recovers to
//!   1. journal (path, A)      one copy on A  (partial copy on B deleted)
//!   2. copy A→B, fsync B      one copy on A  (full-but-unstamped B deleted)
//!   3. stamp backend word = B one copy on B  (stale source on A deleted)
//!   4. unlink source on A     one copy on B
//!   5. clear journal          done
//! ```
//!
//! Step 3 is the commit point: a single aligned 8-byte store (`pwb` +
//! `pfence`). Recovery repairs any leftover journal by deleting `path` from
//! every backend *except* the recorded one and clearing the slot — so a
//! crash at any step converges to exactly one authoritative copy, and the
//! content equals either the pre- or the post-migration state (the bytes
//! themselves never change).
//!
//! # What may migrate
//!
//! Only **closed, fully drained** files: a file with an open descriptor has
//! pending log entries tied to its recorded backend, and a
//! closed-but-undrained descriptor (a zombie) still owns entries too.
//! [`migrate_path`] re-checks both under the [`MigrationGate`] claim, and
//! `open`/`unlink`/`rename` take a gate lease so a path operation can never
//! interleave with a mid-flight copy. Busy files fail with
//! `IoError::Busy` (EBUSY) and are retried on the next sweep.
//!
//! # What drives it
//!
//! The [`Migrator`] keeps a volatile catalog of closed files — path,
//! current backend, size, and per-file access heat (raw counters plus the
//! decaying [`Temperature`]) folded in from the
//! [`FileState`](crate::files) at last close; recovery seeds it with the
//! files it found misplaced. A sweep ([`sweep`], surfaced as
//! [`NvCache::rebalance`](crate::NvCache::rebalance)) asks the mount's
//! [`PlacementPolicy`](crate::PlacementPolicy) for every catalogued file's
//! target — the router's static placement under the default
//! [`RouterPlacement`](crate::RouterPlacement), temperature-driven
//! promotion/demotion under [`HeatPolicy`](crate::HeatPolicy) — and
//! re-homes every file whose backend disagrees, draining the tier with the
//! highest propagated-entry load first
//! ([`NvCacheStats::per_backend_propagated`](crate::NvCacheStats)) and,
//! within a tier, the hottest files first. With
//! [`MigrationPolicy::Background`] a dedicated worker thread runs sweeps on
//! its own virtual clock whenever closes or cleanup batches complete.

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use nvmm::NvRegion;
use parking_lot::{Condvar, Mutex};
use simclock::ActorClock;
use vfs::{FileSystem, IoError, IoResult, OpenFlags};

use crate::cache::Shared;
use crate::files::PersistentFdTable;
use crate::layout::Layout;
use crate::lockcheck::{Class, Recorder};
use crate::placement::{FileTemperature, PlacementPolicy, Temperature};
use crate::router::Router;
use crate::stats::NvCacheStats;

/// How (and whether) the tier migrator may move files between backends.
///
/// The policy is a [`NvCacheConfig`](crate::NvCacheConfig) knob
/// ([`with_migration`](crate::NvCacheConfig::with_migration)); on a
/// single-backend mount every policy is inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrationPolicy {
    /// No migration, ever — the PR-3 behavior. `rebalance`/`migrate` fail
    /// with `EINVAL`; no worker thread is spawned. The default.
    #[default]
    Disabled,
    /// Migration happens only when explicitly requested:
    /// [`NvCache::rebalance`](crate::NvCache::rebalance) sweeps and
    /// [`NvCache::migrate`](crate::NvCache::migrate) single-file moves run
    /// inline on the caller's clock.
    OnDemand,
    /// Everything `OnDemand` allows, plus a background worker thread that
    /// re-homes misplaced closed files automatically whenever file closes or
    /// cleanup batches complete.
    Background,
}

/// Outcome of one rebalancing sweep
/// ([`NvCache::rebalance`](crate::NvCache::rebalance)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebalanceReport {
    /// Files moved to the placement policy's target.
    pub files_migrated: usize,
    /// Payload bytes copied across tiers.
    pub bytes_moved: u64,
    /// Misplaced files skipped because they were open or still draining
    /// (they stay catalogued and are retried on the next sweep).
    pub files_busy: usize,
    /// Catalogued files already on the backend the policy assigns.
    pub files_in_place: usize,
    /// Of the migrated files, how many moved **onto** the policy's fast
    /// tier (always `0` under a policy with no fast tier, e.g. the default
    /// [`RouterPlacement`](crate::RouterPlacement)).
    pub files_promoted: usize,
    /// Of the migrated files, how many moved **off** the fast tier.
    pub files_demoted: usize,
}

/// Where a test-injected crash cuts the migration protocol short (the step
/// *after* which the simulated power failure hits). Exercised by the
/// crash-mid-migration tests; production callers pass `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // "after <step>" is the clearest naming
pub(crate) enum CrashPoint {
    /// After the journal slot is persisted, before any byte is copied.
    AfterJournal,
    /// After the target copy is complete and fsynced, before the stamp.
    AfterCopy,
    /// After the backend word flipped to the target tier.
    AfterStamp,
    /// After the source copy is unlinked, before the journal clears.
    AfterUnlink,
}

/// Serializes migrations against path operations: `open`, `unlink` and
/// `rename` take a *lease* on their (normalized) path, and a migration
/// *claim* on a path excludes — and is excluded by — both leases and other
/// claims. Leases block while the path is claimed (a path op never observes
/// a half-copied file); claims fail fast (`try_claim`) so sweeps skip
/// contended files instead of stalling the application.
#[derive(Default)]
pub(crate) struct MigrationGate {
    state: Mutex<GateState>,
    released: Condvar,
}

#[derive(Default)]
struct GateState {
    /// Paths with a migration claim (at most one claimant each).
    migrating: HashSet<String>,
    /// Path-operation leases currently held, with hold counts (two
    /// concurrent opens of one path are legal).
    leases: HashMap<String, u32>,
}

impl MigrationGate {
    /// Takes a path-operation lease, blocking while `path` is claimed by a
    /// migration.
    pub fn enter_op(&self, path: &str) {
        let mut g = self.state.lock();
        while g.migrating.contains(path) {
            self.released.wait_for(&mut g, Duration::from_millis(1));
        }
        *g.leases.entry(path.to_string()).or_insert(0) += 1;
    }

    /// Releases a path-operation lease.
    pub fn exit_op(&self, path: &str) {
        let mut g = self.state.lock();
        if let Some(n) = g.leases.get_mut(path) {
            *n -= 1;
            if *n == 0 {
                g.leases.remove(path);
            }
        }
        drop(g);
        self.released.notify_all();
    }

    /// Claims `path` for a migration. Fails (without blocking) if any path
    /// operation holds a lease on it or another migration already claimed
    /// it.
    pub fn try_claim(&self, path: &str) -> bool {
        let mut g = self.state.lock();
        if g.leases.contains_key(path) || g.migrating.contains(path) {
            return false;
        }
        g.migrating.insert(path.to_string());
        true
    }

    /// Releases a migration claim and wakes blocked path operations.
    pub fn release(&self, path: &str) {
        self.state.lock().migrating.remove(path);
        self.released.notify_all();
    }
}

/// Access heat of a catalogued (closed) file, folded in from the volatile
/// [`FileState`](crate::files) counters at last close.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FileHeat {
    /// Backend currently holding the file.
    pub backend: u32,
    /// Accumulated intercepted reads across this mount's open generations.
    pub reads: u64,
    /// Accumulated intercepted writes, likewise.
    pub writes: u64,
    /// Payload bytes at last close (`0` for recovery-seeded entries whose
    /// size is unknown until reopen or migration).
    pub bytes: u64,
    /// Decaying temperature snapshot at last close; seeds the fresh
    /// [`FileState`](crate::files) on reopen so heat survives
    /// close → reopen cycles.
    pub temp: Temperature,
}

/// One resident catalog entry: the heat record plus the clock-eviction
/// bookkeeping of a capacity-bounded catalog (see [`Catalog`]).
#[derive(Debug, Clone)]
struct CatalogEntry {
    heat: FileHeat,
    /// Second-chance bit: set on every touch (close, rename, seed), cleared
    /// by one pass of the eviction hand. An entry is only evicted after a
    /// full hand revolution without a touch.
    referenced: bool,
    /// Admission sequence number; a ring occurrence is live only while its
    /// recorded sequence matches (removal + readmission makes the old ring
    /// occurrence a tombstone instead of a duplicate).
    seq: u64,
}

/// The closed-file catalog: `path → CatalogEntry`, plus — only when a
/// [`catalog_capacity`](crate::NvCacheConfig::catalog_capacity) bound is
/// set — the clock-eviction ring and the recently-evicted filter behind
/// the readmission counter. Unbounded catalogs (the default) never touch
/// `ring`/`evicted`, so the seed's memory and timing are unchanged.
#[derive(Default)]
struct Catalog {
    map: HashMap<String, CatalogEntry>,
    /// Clock ring in admission order: `(seq, path)`. Occurrences whose
    /// `seq` no longer matches the map entry are tombstones, dropped when
    /// the hand reaches them (or by [`Catalog::maybe_compact`]).
    ring: VecDeque<(u64, String)>,
    next_seq: u64,
    /// Hashes of recently evicted paths (bounded; cleared wholesale when
    /// it outgrows its budget). A newly admitted path found here counts a
    /// readmission — the thrash signal behind `catalog_readmissions`.
    evicted: HashSet<u64>,
}

impl Catalog {
    fn path_hash(path: &str) -> u64 {
        // DefaultHasher::new() uses fixed keys: deterministic per run.
        let mut h = DefaultHasher::new();
        path.hash(&mut h);
        h.finish()
    }

    /// Remembers an evicted path for readmission detection, keeping the
    /// filter's memory bounded by the catalog capacity.
    fn note_evicted(&mut self, path: &str, capacity: usize) {
        if self.evicted.len() >= capacity.saturating_mul(8).max(1024) {
            // The filter is allowed to forget (a missed readmission only
            // under-counts a diagnostic); unbounded growth is not.
            self.evicted.clear();
        }
        self.evicted.insert(Self::path_hash(path));
    }

    /// Drops tombstoned ring occurrences once they dominate the ring, so
    /// under-capacity churn (open/close of one path leaves a tombstone per
    /// cycle) cannot grow the ring without bound.
    fn maybe_compact(&mut self) {
        if self.ring.len() > 2 * self.map.len() + 64 {
            let map = &self.map;
            self.ring.retain(|(seq, path)| map.get(path).is_some_and(|e| e.seq == *seq));
        }
    }
}

/// The migrator's shared state: the catalog of migratable (closed) files,
/// the [`MigrationGate`], the background worker's wakeup channel and its
/// virtual clock.
pub(crate) struct Migrator {
    /// The background worker's virtual clock (unused timeline under
    /// `Disabled`/`OnDemand`).
    pub clock: Arc<ActorClock>,
    pub gate: MigrationGate,
    /// path → placement + heat for files the mount has seen close (or
    /// recovery reported misplaced). Volatile by design: after a remount
    /// the catalog refills from recovery's misplaced list and new closes.
    catalog: Mutex<Catalog>,
    /// Resident-set bound ([`catalog_capacity`]); `None` = unbounded, the
    /// seed behavior.
    ///
    /// [`catalog_capacity`]: crate::NvCacheConfig::catalog_capacity
    capacity: Option<usize>,
    /// The mount's placement policy — the eviction pin judgement
    /// (misplaced? promote-worthy?) must agree with the sweeps it guards.
    placement: Arc<dyn PlacementPolicy>,
    /// The mount's router, feeding the policy's `place_cold` baseline.
    router: Arc<dyn Router>,
    /// Backend count of the mount (validates `place_cold` inputs).
    backends: usize,
    /// Set by [`Migrator::notify`]; the background worker only runs a
    /// (catalog-cloning, sorting) sweep after taking it, so an idle mount
    /// pays a flag check per condvar timeout instead of a full sweep.
    work_pending: std::sync::atomic::AtomicBool,
    work_lock: Mutex<()>,
    work_cv: Condvar,
    /// High-water mark (nanoseconds) of the virtual time observed on any
    /// heat touch. Per-actor clocks advance independently — in particular
    /// the background worker's own clock starts at zero — so temperature
    /// decay is always measured against `max(caller clock, this mark)`:
    /// without it a background sweep would compute `Δt = 0` against every
    /// app-side stamp and [`HeatPolicy`] cooling would never demote.
    time_high_water: std::sync::atomic::AtomicU64,
    /// The mount's shared lock-order recorder (inert unless `pmcheck`).
    lockcheck: Recorder,
}

impl Migrator {
    pub fn new(
        lockcheck: Recorder,
        capacity: Option<usize>,
        placement: Arc<dyn PlacementPolicy>,
        router: Arc<dyn Router>,
        backends: usize,
    ) -> Migrator {
        Migrator {
            clock: Arc::new(ActorClock::new()),
            gate: MigrationGate::default(),
            catalog: Mutex::new(Catalog::default()),
            capacity,
            placement,
            router,
            backends,
            // Starts pending so a worker sweeps once on mount (recovery may
            // have seeded misplaced files with no close to signal them).
            work_pending: std::sync::atomic::AtomicBool::new(true),
            work_lock: Mutex::new(()),
            work_cv: Condvar::new(),
            time_high_water: std::sync::atomic::AtomicU64::new(0),
            lockcheck,
        }
    }

    /// Folds an observed virtual instant into the decay high-water mark.
    pub fn observe_time(&self, now: simclock::SimTime) {
        self.time_high_water.fetch_max(now.as_nanos(), Ordering::Relaxed);
    }

    /// The latest virtual instant any actor reported — the earliest "now"
    /// a sweep may decay against.
    pub fn observed_time(&self) -> simclock::SimTime {
        simclock::SimTime::from_nanos(self.time_high_water.load(Ordering::Relaxed))
    }

    /// Wakes the background worker (no-op when none is running).
    pub fn notify(&self) {
        self.work_pending.store(true, Ordering::Release);
        let _g = self.work_lock.lock();
        self.work_cv.notify_all();
    }

    /// Consumes the pending-work flag (background worker only).
    pub fn take_work(&self) -> bool {
        self.work_pending.swap(false, Ordering::AcqRel)
    }

    /// Parks the background worker until new work may exist.
    pub fn wait_for_work(&self) {
        self.park(Duration::from_millis(1));
    }

    /// Parks the background worker for up to `timeout` (woken early by
    /// [`Migrator::notify`] — including the one `abort` sends on
    /// shutdown).
    pub fn park(&self, timeout: Duration) {
        let mut g = self.work_lock.lock();
        self.work_cv.wait_for(&mut g, timeout);
    }

    /// Whether a catalogued entry is **pinned** — never evictable from a
    /// bounded catalog. Pinned means the migrator still owes work on it:
    /// the file is misplaced (its recorded tier disagrees with the
    /// policy's cold placement), or its decayed heat sits at or above the
    /// policy's [`retain_heat_threshold`](PlacementPolicy) (a promotion
    /// the next sweep will execute). Entries recording an out-of-range
    /// backend are pinned too — they are inconsistencies the sweep's
    /// NotFound handling must resolve, not eviction.
    fn pinned(&self, path: &str, heat: &FileHeat) -> bool {
        let backend = heat.backend as usize;
        if backend >= self.backends {
            return true;
        }
        if self.backends > 1
            && self.placement.place_cold(path, backend, self.router.as_ref()) != backend
        {
            return true;
        }
        if let Some(threshold) = self.placement.retain_heat_threshold() {
            let now = self.observed_time();
            if heat.temp.decayed(now, self.placement.half_life()) >= threshold {
                return true;
            }
        }
        false
    }

    /// Advances the clock hand until one unpinned, unreferenced resident is
    /// evicted. Returns `false` when a bounded number of steps found no
    /// victim (every resident pinned or just touched — the catalog may
    /// then exceed its capacity rather than drop owed work). Each step
    /// either retires a tombstone (paid for by the removal that left it),
    /// spends a second-chance bit (paid for by the touch that set it), or
    /// skips a pinned entry, so the amortized cost per admission is O(1)
    /// plus the pinned population.
    fn make_room(&self, catalog: &mut Catalog, stats: &NvCacheStats) -> bool {
        let mut steps = 2 * catalog.ring.len();
        while steps > 0 {
            steps -= 1;
            let Some((seq, path)) = catalog.ring.pop_front() else {
                return false;
            };
            match catalog.map.get_mut(&path) {
                Some(e) if e.seq == seq => {
                    if e.referenced {
                        e.referenced = false;
                        catalog.ring.push_back((seq, path));
                    } else if self.pinned(&path, &e.heat) {
                        catalog.ring.push_back((seq, path));
                    } else {
                        catalog.map.remove(&path);
                        if let Some(capacity) = self.capacity {
                            catalog.note_evicted(&path, capacity);
                        }
                        stats.catalog_evictions.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                }
                _ => {} // tombstone: the live occurrence is elsewhere
            }
        }
        false
    }

    /// Admits a path the catalog does not currently hold, enforcing the
    /// capacity bound: at capacity a correctly-placed cold resident is
    /// evicted first; when every resident is pinned, a pinned newcomer is
    /// admitted past the bound (owed work is never dropped) while a cold
    /// newcomer is rejected — which counts as an eviction of itself.
    fn admit_new(&self, catalog: &mut Catalog, path: String, heat: FileHeat, stats: &NvCacheStats) {
        let Some(capacity) = self.capacity else {
            // Unbounded (the default): a plain map insert, no ring, no
            // filter — byte-identical bookkeeping to the seed.
            catalog.map.insert(path, CatalogEntry { heat, referenced: false, seq: 0 });
            return;
        };
        // Evict until back under the bound — more than once when pinned
        // overflow from earlier admissions has since cooled below the
        // retain threshold and become evictable again.
        while catalog.map.len() >= capacity && self.make_room(catalog, stats) {}
        if catalog.map.len() >= capacity && !self.pinned(&path, &heat) {
            stats.catalog_evictions.fetch_add(1, Ordering::Relaxed);
            catalog.note_evicted(&path, capacity);
            return;
        }
        if catalog.evicted.remove(&Catalog::path_hash(&path)) {
            stats.catalog_readmissions.fetch_add(1, Ordering::Relaxed);
        }
        let seq = catalog.next_seq;
        catalog.next_seq += 1;
        catalog.ring.push_back((seq, path.clone()));
        catalog.map.insert(path, CatalogEntry { heat, referenced: false, seq });
        catalog.maybe_compact();
    }

    /// Records a file that just fully closed (it is now migratable),
    /// accumulating the raw counters across open generations; the size and
    /// temperature of the latest close win (the [`FileState`](crate::files)
    /// temperature already folded the catalogued heat back in at open).
    /// New paths go through the capacity-bounded admission path.
    #[allow(clippy::too_many_arguments)] // mirrors the FileState counters
    pub fn record_closed(
        &self,
        path: &str,
        backend: u32,
        reads: u64,
        writes: u64,
        bytes: u64,
        temp: Temperature,
        stats: &NvCacheStats,
    ) {
        let _lk = self.lockcheck.acquire(Class::MigratorCatalog, 0);
        let mut catalog = self.catalog.lock();
        if let Some(e) = catalog.map.get_mut(path) {
            e.heat.backend = backend;
            e.heat.reads += reads;
            e.heat.writes += writes;
            e.heat.bytes = bytes;
            e.heat.temp = temp;
            e.referenced = true;
        } else {
            let heat = FileHeat { backend, reads, writes, bytes, temp };
            self.admit_new(&mut catalog, path.to_string(), heat, stats);
        }
    }

    /// Removes and returns the catalog entry for a path being reopened (its
    /// heat seeds the fresh [`FileState`](crate::files) counters) — but
    /// only when the catalog agrees the file lives on `backend`. An entry
    /// pointing elsewhere tracks a misplaced copy the reopen did not touch
    /// and must survive for later sweeps.
    pub fn take_if_on(&self, path: &str, backend: u32) -> Option<FileHeat> {
        let _lk = self.lockcheck.acquire(Class::MigratorCatalog, 0);
        let mut catalog = self.catalog.lock();
        match catalog.map.get(path) {
            Some(e) if e.heat.backend == backend => catalog.map.remove(path).map(|e| e.heat),
            _ => None,
        }
    }

    /// Drops a path from the catalog (unlinked, or found stale).
    pub fn forget(&self, path: &str) {
        let _lk = self.lockcheck.acquire(Class::MigratorCatalog, 0);
        self.catalog.lock().map.remove(path);
    }

    /// Renames a catalog entry, stamping the backend the file now lives
    /// on. The destination goes through the same admission path as a
    /// close: a resident source just changes key (a rename never grows
    /// the catalog), but stamping a brand-new destination at capacity
    /// must evict or be rejected like any other admission — the
    /// unconditional insert this used to do could grow the catalog past
    /// its bound one rename at a time.
    pub fn rename_entry(&self, from: &str, to: &str, backend: u32, stats: &NvCacheStats) {
        let _lk = self.lockcheck.acquire(Class::MigratorCatalog, 0);
        let mut catalog = self.catalog.lock();
        let moved = catalog.map.remove(from);
        let resident_source = moved.is_some();
        let heat = FileHeat { backend, ..moved.map(|e| e.heat).unwrap_or_default() };
        if let Some(e) = catalog.map.get_mut(to) {
            // The destination name was already catalogued: rename replaces
            // it (the old destination file is gone), keeping its ring seat.
            e.heat = heat;
            e.referenced = true;
        } else if resident_source || self.capacity.is_none() {
            // Net resident count is unchanged (one key out, one key in):
            // no eviction needed, just a fresh ring seat for the new key.
            let seq = catalog.next_seq;
            catalog.next_seq += 1;
            if self.capacity.is_some() {
                catalog.ring.push_back((seq, to.to_string()));
            }
            catalog
                .map
                .insert(to.to_string(), CatalogEntry { heat, referenced: false, seq });
            catalog.maybe_compact();
        } else {
            self.admit_new(&mut catalog, to.to_string(), heat, stats);
        }
    }

    /// The catalogued backend of a closed file, if known.
    pub fn backend_of(&self, path: &str) -> Option<u32> {
        let _lk = self.lockcheck.acquire(Class::MigratorCatalog, 0);
        self.catalog.lock().map.get(path).map(|e| e.heat.backend)
    }

    /// Updates a catalog entry's backend after a successful migration.
    ///
    /// A path the clock hand has already evicted (correctly placed and
    /// cold at the time) re-enters through the admission path: dropping
    /// the stamp instead would strand a file just moved *off* its routed
    /// tier — no catalog record of the misplacement, so no sweep would
    /// ever bring it home.
    pub fn set_backend(&self, path: &str, backend: u32, stats: &NvCacheStats) {
        let _lk = self.lockcheck.acquire(Class::MigratorCatalog, 0);
        let mut catalog = self.catalog.lock();
        if let Some(e) = catalog.map.get_mut(path) {
            e.heat.backend = backend;
        } else {
            let heat = FileHeat { backend, ..FileHeat::default() };
            self.admit_new(&mut catalog, path.to_string(), heat, stats);
        }
    }

    /// Seeds the catalog (recovery's misplaced-file list). Misplaced
    /// entries are pinned, so even a bounded catalog admits every one.
    pub fn seed(&self, entries: impl IntoIterator<Item = (String, u32)>, stats: &NvCacheStats) {
        let _lk = self.lockcheck.acquire(Class::MigratorCatalog, 0);
        let mut catalog = self.catalog.lock();
        for (path, backend) in entries {
            if let Some(e) = catalog.map.get_mut(&path) {
                e.heat.backend = backend;
            } else {
                let heat = FileHeat { backend, ..FileHeat::default() };
                self.admit_new(&mut catalog, path, heat, stats);
            }
        }
    }

    /// Seeds the catalog with temperatures recovered from persisted heat
    /// summaries ([`persist_heat`](crate::NvCacheConfig::persist_heat)):
    /// each file re-enters the catalog on its recorded backend with its
    /// dequantized heat stamped at `now`, so the first sweep judges it
    /// exactly as hot as the crashed mount last persisted it — promotions
    /// re-earn themselves without a single application touch.
    pub fn seed_heat(
        &self,
        entries: impl IntoIterator<Item = (String, u32, f64)>,
        now: simclock::SimTime,
        stats: &NvCacheStats,
    ) {
        self.observe_time(now);
        let _lk = self.lockcheck.acquire(Class::MigratorCatalog, 0);
        let mut catalog = self.catalog.lock();
        for (path, backend, heat) in entries {
            let temp = Temperature { heat, stamp: now };
            if let Some(e) = catalog.map.get_mut(&path) {
                e.heat.backend = backend;
                e.heat.temp = temp;
            } else {
                let heat = FileHeat { backend, temp, ..FileHeat::default() };
                self.admit_new(&mut catalog, path, heat, stats);
            }
        }
    }

    /// Number of resident catalog entries — the population sweeps clone
    /// and sort, the quantity [`catalog_capacity`] bounds.
    ///
    /// [`catalog_capacity`]: crate::NvCacheConfig::catalog_capacity
    pub fn resident(&self) -> usize {
        let _lk = self.lockcheck.acquire(Class::MigratorCatalog, 0);
        self.catalog.lock().map.len()
    }

    /// Snapshot of the catalog (sweep input).
    fn entries(&self) -> Vec<(String, FileHeat)> {
        let _lk = self.lockcheck.acquire(Class::MigratorCatalog, 0);
        self.catalog.lock().map.iter().map(|(p, e)| (p.clone(), e.heat)).collect()
    }

    /// Catalogued payload bytes currently on backend `fast` — the
    /// occupancy behind the
    /// [`fast_tier_bytes`](crate::NvCacheStats::fast_tier_bytes) gauge.
    pub fn fast_tier_occupancy(&self, fast: u32) -> u64 {
        let _lk = self.lockcheck.acquire(Class::MigratorCatalog, 0);
        self.catalog
            .lock()
            .map
            .values()
            .filter(|e| e.heat.backend == fast)
            .map(|e| e.heat.bytes)
            .sum()
    }
}

/// Executes the journaled copy → stamp → unlink protocol, moving the file
/// at `from_path` on backend `from` to `to_path` on backend `to` (the two
/// paths differ only for cross-tier renames). Returns the bytes copied.
///
/// `journal_slot` must be a free fd slot; on return the journal is cleared
/// — and the slot reusable — **except** when the unlink of the source copy
/// failed after the stamp (the journal then survives for recovery repair;
/// callers check [`PersistentFdTable::get_migration`] before recycling the
/// slot). `crash_after` cuts the protocol short after the given step,
/// simulating a power failure for the crash tests.
///
/// # Errors
///
/// Any inner-file-system error; `NotFound` if the source vanished. Errors
/// before the stamp roll the target copy back, so the source stays
/// authoritative.
#[allow(clippy::too_many_arguments)] // mirrors the journal slot contents
pub(crate) fn migrate_bytes(
    region: &NvRegion,
    layout: &Layout,
    backends: &[Arc<dyn FileSystem>],
    journal_slot: u32,
    from_path: &str,
    to_path: &str,
    from: usize,
    to: usize,
    clock: &ActorClock,
    crash_after: Option<CrashPoint>,
) -> IoResult<u64> {
    assert!(from != to, "migration endpoints must differ");
    assert!(from < backends.len() && to < backends.len(), "backend index out of range");
    if to_path.len() > layout.path_max() {
        // Legacy (v1/v2) slots hold up to 248 path bytes but a v3 journal
        // slot only 240: a file with such a path can be recovered, yet
        // never journaled — surface an error instead of panicking the
        // repair pass or the background worker.
        return Err(IoError::InvalidArgument(format!(
            "{to_path}: path exceeds the tiered journal slot capacity ({} bytes)",
            layout.path_max()
        )));
    }
    // Open the source before anything else: a vanished source (stale
    // catalog entry, duplicate repair request) must fail the migration
    // with NotFound *before* the journal is written or the target tier —
    // possibly holding the only good copy — is touched.
    let src = backends[from].open(from_path, OpenFlags::RDONLY, clock)?;

    // Step 1 — journal: the authoritative copy of `to_path` is on `from`
    // (for a plain migration `to_path == from_path`; for a cross-tier
    // rename this reads "nothing at the destination name is valid yet").
    PersistentFdTable::set_migration(region, layout, journal_slot, to_path, from as u32, clock);
    if crash_after == Some(CrashPoint::AfterJournal) {
        let _ = backends[from].close(src, clock);
        return Ok(0);
    }

    // Step 2 — copy the source content to the target tier and make it
    // durable there before anything commits.
    let copied = copy_from(backends, src, from, to_path, to, clock);
    let _ = backends[from].close(src, clock);
    let copied = match copied {
        Ok(n) => n,
        Err(e) => {
            // Roll back: delete the partial target copy, then clear the
            // journal. If even the unlink fails, the journal must survive
            // — it is the only record that the partial copy on the target
            // tier is garbage, and recovery repair will finish the job.
            // The source was never touched either way.
            match backends[to].unlink(to_path, clock) {
                Ok(()) | Err(IoError::NotFound(_)) => {
                    PersistentFdTable::clear(region, layout, journal_slot, clock);
                }
                Err(_) => {}
            }
            return Err(e);
        }
    };
    if crash_after == Some(CrashPoint::AfterCopy) {
        return Ok(copied);
    }

    // Step 3 — commit: one atomic 8-byte stamp flips the authoritative
    // copy to the target tier.
    PersistentFdTable::stamp_backend(region, layout, journal_slot, to as u32, clock);
    if crash_after == Some(CrashPoint::AfterStamp) {
        return Ok(copied);
    }

    // Step 4 — drop the stale source copy.
    match backends[from].unlink(from_path, clock) {
        Ok(()) | Err(IoError::NotFound(_)) => {}
        // The journal stays valid: recovery will finish the unlink. The
        // caller must not recycle the slot (it checks `get_migration`).
        Err(e) => return Err(e),
    }
    if crash_after == Some(CrashPoint::AfterUnlink) {
        return Ok(copied);
    }

    // Step 5 — done: retire the journal.
    PersistentFdTable::clear(region, layout, journal_slot, clock);
    Ok(copied)
}

/// Bytes moved per inner copy call.
const COPY_CHUNK: usize = 1 << 20;

/// Copies the already-open source descriptor to `to_path` on backend `to`
/// and fsyncs it there. The caller owns (and closes) `src`.
fn copy_from(
    backends: &[Arc<dyn FileSystem>],
    src: vfs::Fd,
    from: usize,
    to_path: &str,
    to: usize,
    clock: &ActorClock,
) -> IoResult<u64> {
    let size = backends[from].fstat(src, clock)?.size;
    let dst = backends[to].open(
        to_path,
        OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::TRUNC,
        clock,
    )?;
    let inner = (|| {
        let mut buf = vec![0u8; COPY_CHUNK.min(size.max(1) as usize)];
        let mut off = 0u64;
        while off < size {
            let n = backends[from].pread(src, &mut buf, off, clock)?;
            if n == 0 {
                break; // source shrank underneath us; copy what exists
            }
            backends[to].pwrite(dst, &buf[..n], off, clock)?;
            off += n as u64;
        }
        backends[to].fsync(dst, clock)?;
        Ok(off)
    })();
    let _ = backends[to].close(dst, clock);
    inner
}

/// Deletes every non-authoritative copy named by leftover migration
/// journals and clears them — the recovery half of the protocol. Returns
/// the number of journals repaired. A v1/v2 image cannot hold journals
/// (they need the v3 slot partitioning), so this is a no-op there.
pub(crate) fn repair_journals(
    region: &NvRegion,
    layout: &Layout,
    backends: &[Arc<dyn FileSystem>],
    clock: &ActorClock,
) -> IoResult<usize> {
    if !layout.tiered() {
        return Ok(0);
    }
    let mut repaired = 0;
    for slot in 0..layout.fd_slots as u32 {
        let Some((path, keep)) = PersistentFdTable::get_migration(region, layout, slot, clock)
        else {
            continue;
        };
        for (b, backend) in backends.iter().enumerate() {
            if b == keep as usize {
                continue;
            }
            match backend.unlink(&path, clock) {
                Ok(()) | Err(IoError::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        PersistentFdTable::clear(region, layout, slot, clock);
        repaired += 1;
    }
    Ok(repaired)
}

/// Migrates the closed file at `path` (normalized) to backend `to`,
/// coordinating with path operations and the cleanup workers. Returns the
/// `(source backend, bytes moved)` pair of the move — the source is the
/// one resolved *under the claim*, which callers must prefer over any
/// pre-claim snapshot — or `None` when the file already lives on `to`
/// (a concurrent migration may have beaten this call, and callers must
/// not count such a no-op as a move). With
/// `refresh_gauge` the `fast_tier_bytes` occupancy gauge is recomputed
/// after a successful move; sweeps pass `false` (one catalog scan per
/// moved file would be redundant) and refresh once at sweep end.
///
/// # Errors
///
/// `Busy` (EBUSY) if the file is open, still draining (a zombie
/// descriptor owns pending log entries), or contended by another migration;
/// `NotFound` if no backend holds the file; `InvalidArgument` for an
/// out-of-range target; any inner-file-system error from the copy.
pub(crate) fn migrate_path(
    shared: &Shared,
    path: &str,
    to: usize,
    refresh_gauge: bool,
    clock: &ActorClock,
) -> IoResult<Option<(usize, u64)>> {
    if to >= shared.backends.len() {
        return Err(IoError::InvalidArgument(format!(
            "migration target backend {to} out of range (mount has {})",
            shared.backends.len()
        )));
    }
    if !shared.migrator.gate.try_claim(path) {
        return Err(IoError::Busy(format!("{path}: migration or path operation in flight")));
    }
    let _claim = shared.lockcheck.acquire_try(Class::MigrationGate, 0);
    let mut moved_from = None;
    let result = (|| {
        // Resolve the source *under the claim*: between a pre-claim read
        // and the claim, a concurrent migration could move the file, and
        // journaling the stale location would let the error rollback
        // delete the real copy on the target tier.
        let from = match shared.migrator.backend_of(path) {
            Some(b) => b as usize,
            None => shared
                .existing_backend(path, clock)?
                .ok_or_else(|| IoError::NotFound(path.to_string()))?,
        };
        if from == to {
            return Ok(None); // already in place — not a move
        }
        let bytes = migrate_claimed(shared, path, from, to, clock)?;
        moved_from = Some(from);
        Ok(Some((from, bytes)))
    })();
    if let Some(from) = moved_from {
        if let Ok(Some((_, bytes))) = result {
            // Publish the new placement *before* releasing the claim: a
            // concurrent sweep reading a stale catalog backend would probe
            // the old tier, get NotFound and drop the entry entirely.
            shared.migrator.set_backend(path, to as u32, &shared.stats);
            shared.stats.files_migrated.fetch_add(1, Ordering::Relaxed);
            shared.stats.migration_bytes.fetch_add(bytes, Ordering::Relaxed);
            if let Some(fast) = shared.placement.fast_tier() {
                if to == fast {
                    shared.stats.files_promoted.fetch_add(1, Ordering::Relaxed);
                } else if from == fast {
                    shared.stats.files_demoted.fetch_add(1, Ordering::Relaxed);
                }
                if refresh_gauge {
                    shared
                        .stats
                        .fast_tier_bytes
                        .store(shared.migrator.fast_tier_occupancy(fast as u32), Ordering::Relaxed);
                }
            }
        }
    }
    shared.migrator.gate.release(path);
    result
}

/// The claimed section of [`migrate_path`]: open/drain re-check, journal
/// slot bookkeeping, and the protocol itself.
fn migrate_claimed(
    shared: &Shared,
    path: &str,
    from: usize,
    to: usize,
    clock: &ActorClock,
) -> IoResult<u64> {
    // Zombies whose entries already drained just haven't been reaped yet;
    // finish them so a freshly drained file is immediately migratable.
    shared.drain_zombies(clock);
    // Re-check under the claim: any open that raced us either finished
    // before the claim (visible in the opened/zombie tables) or is still
    // blocked on its gate lease.
    if shared.path_is_open_or_draining(path) {
        return Err(IoError::Busy(format!("{path}: open or draining descriptors exist")));
    }
    journaled_move(shared, path, path, from, to, clock)
}

/// Allocates a journal slot, runs the copy → stamp → unlink protocol, and
/// recycles the slot — but only once the journal is actually clear: a
/// failed unlink (of the source after the stamp, or of a partial target
/// during rollback) leaves it valid for recovery repair, and handing the
/// slot to `open` would overwrite the journal. Shared by live migrations
/// and cross-tier renames.
pub(crate) fn journaled_move(
    shared: &Shared,
    from_path: &str,
    to_path: &str,
    from: usize,
    to: usize,
    clock: &ActorClock,
) -> IoResult<u64> {
    let slot = match shared.take_free_slot(clock) {
        Some(s) => s,
        None => {
            return Err(IoError::Busy(
                "no free fd slot for the migration journal (fd table full)".into(),
            ))
        }
    };
    let result = migrate_bytes(
        &shared.log.region,
        &shared.log.layout,
        &shared.backends,
        slot,
        from_path,
        to_path,
        from,
        to,
        clock,
        None,
    );
    if PersistentFdTable::get_migration(&shared.log.region, &shared.log.layout, slot, clock)
        .is_none()
    {
        shared.fd_slots.release(slot);
    }
    result
}

/// One rebalancing sweep: asks the mount's placement policy for every
/// catalogued file's target backend — decaying each file's temperature to
/// the sweep instant with the policy's half-life — and re-homes every file
/// whose backend disagrees. Candidates drain the backend with the highest
/// propagated-entry load first (`per_backend_propagated`), hottest
/// (decayed) files first within a backend. Busy files are skipped (and
/// stay catalogued); hard inner errors abort the sweep. Under the default
/// [`RouterPlacement`](crate::RouterPlacement) the targets, the order and
/// the timing are identical to the pre-policy sweep.
pub(crate) fn sweep(shared: &Shared, clock: &ActorClock) -> IoResult<RebalanceReport> {
    let mut report = RebalanceReport::default();
    if shared.backends.len() == 1 {
        return Ok(report); // nothing to move between
    }
    // Decay against the most advanced virtual instant any actor reported:
    // the background worker's own clock starts at zero and would otherwise
    // see Δt = 0 against every app-side heat stamp (no cooling, ever).
    let now = clock.now().max(shared.migrator.observed_time());
    let half_life = shared.placement.half_life();
    let views: Vec<FileTemperature> = shared
        .migrator
        .entries()
        .into_iter()
        .map(|(path, h)| FileTemperature {
            path,
            backend: h.backend as usize,
            bytes: h.bytes,
            heat: h.temp.decayed(now, half_life),
            reads: h.reads,
            writes: h.writes,
        })
        .collect();
    let targets = shared.placement.assign(&views, shared.router.as_ref(), shared.backends.len());
    // Contract violations surface as errors, not panics: a panic here
    // would silently kill the background worker thread and stop all
    // migration forever, while an Err is observable (rebalance callers see
    // it; the worker just retries on the next notify).
    if targets.len() != views.len() {
        return Err(IoError::InvalidArgument(format!(
            "placement policy {} assigned {} targets for {} files",
            shared.placement.name(),
            targets.len(),
            views.len()
        )));
    }
    let fast = shared.placement.fast_tier();
    let mut candidates: Vec<(usize, usize)> = Vec::new(); // (view index, target)
    for (i, &target) in targets.iter().enumerate() {
        if target >= shared.backends.len() {
            return Err(IoError::InvalidArgument(format!(
                "placement policy {} assigned {} to out-of-range backend {target}",
                shared.placement.name(),
                views[i].path
            )));
        }
        if target == views[i].backend {
            report.files_in_place += 1;
        } else {
            candidates.push((i, target));
        }
    }
    // Snapshot the per-backend loads once: the comparator must not re-read
    // atomics the cleanup workers are bumping concurrently — values
    // changing mid-sort break the total-order contract and std's sort may
    // panic, which on the background worker thread would kill migration
    // silently and for good.
    let loads: Vec<u64> = shared
        .stats
        .per_backend_propagated
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    candidates.sort_by(|&(a, _), &(b, _)| {
        let (fa, fb) = (&views[a], &views[b]);
        loads[fb.backend]
            .cmp(&loads[fa.backend])
            .then(fb.heat.total_cmp(&fa.heat))
            .then((fb.reads + fb.writes).cmp(&(fa.reads + fa.writes)))
            .then(fa.path.cmp(&fb.path))
    });
    for (i, target) in candidates {
        let view = &views[i];
        match migrate_path(shared, &view.path, target, false, clock) {
            Ok(Some((from, bytes))) => {
                report.files_migrated += 1;
                report.bytes_moved += bytes;
                if let Some(fast) = fast {
                    // Classify by the source migrate_path actually resolved
                    // under its claim — the snapshot backend may be stale
                    // if a concurrent manual move raced this sweep.
                    if target == fast {
                        report.files_promoted += 1;
                    } else if from == fast {
                        report.files_demoted += 1;
                    }
                }
            }
            // A concurrent migration (manual move, another sweep) beat us
            // there: the candidate snapshot was stale, nothing moved now.
            Ok(None) => report.files_in_place += 1,
            Err(IoError::Busy(_)) => report.files_busy += 1,
            // The catalog entry went stale (unlinked below the mount, or a
            // concurrent op removed it), or the path can never fit a v3
            // journal slot: drop it rather than error every sweep.
            Err(IoError::NotFound(_) | IoError::InvalidArgument(_)) => {
                shared.migrator.forget(&view.path)
            }
            Err(e) => return Err(e),
        }
    }
    if let Some(fast) = fast {
        shared
            .stats
            .fast_tier_bytes
            .store(shared.migrator.fast_tier_occupancy(fast as u32), Ordering::Relaxed);
    }
    Ok(report)
}

/// Body of the background migration worker
/// ([`MigrationPolicy::Background`]): sweep whenever closes or cleanup
/// batches signal new work, on the migrator's own virtual clock. Inner
/// errors do not kill the worker — the affected file keeps its catalog
/// entry and the sweep retries later.
pub(crate) fn run_migrator(shared: Arc<Shared>) {
    /// First retry delay after a failed sweep; doubles up to the cap.
    const ERROR_BACKOFF_MIN: Duration = Duration::from_millis(10);
    /// Retry-delay cap while sweeps keep hard-failing.
    const ERROR_BACKOFF_MAX: Duration = Duration::from_secs(1);
    let clock = Arc::clone(&shared.migrator.clock);
    let mut error_backoff = ERROR_BACKOFF_MIN;
    loop {
        if shared.kill.load(Ordering::Acquire) || shared.stop.load(Ordering::Acquire) {
            return;
        }
        if !shared.migrator.take_work() {
            // Idle: cheap flag check per condvar timeout, no sweep.
            shared.migrator.wait_for_work();
            continue;
        }
        match sweep(&shared, &clock) {
            Ok(_) => error_backoff = ERROR_BACKOFF_MIN,
            Err(_) => {
                // take_work consumed the pending flag: re-arm it so the
                // not-yet-migrated files are retried even on an otherwise
                // idle mount (no further closes or cleanup batches to
                // re-signal) — but back off exponentially, or a tier that
                // keeps hard-failing would have this loop re-sorting the
                // catalog and hammering the broken backend ~1000×/s.
                shared.migrator.notify();
                shared.migrator.park(error_backoff);
                error_backoff = (error_backoff * 2).min(ERROR_BACKOFF_MAX);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;
    use simclock::SimTime;

    use super::*;
    use crate::placement::{HeatPolicy, RouterPlacement};
    use crate::router::{PathPrefixRouter, SingleBackend};

    /// An unbounded migrator over a single-backend router (every entry
    /// correctly placed, nothing pinned) — the seed-faithful default.
    fn unbounded() -> (Migrator, NvCacheStats) {
        let m = Migrator::new(
            Recorder::default(),
            None,
            Arc::new(RouterPlacement),
            Arc::new(SingleBackend),
            1,
        );
        (m, NvCacheStats::default())
    }

    /// A capacity-bounded migrator on a two-tier mount: `/hot/**` routes
    /// to tier 1, everything else to tier 0, promote-threshold 4 heat.
    fn bounded(capacity: usize) -> (Migrator, NvCacheStats) {
        let m = Migrator::new(
            Recorder::default(),
            Some(capacity),
            Arc::new(HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(60))),
            Arc::new(PathPrefixRouter::new(vec![("/hot".into(), 1)], 0)),
            2,
        );
        (m, NvCacheStats::default())
    }

    fn close_cold(m: &Migrator, stats: &NvCacheStats, path: &str, backend: u32) {
        m.record_closed(path, backend, 0, 0, 10, Temperature::default(), stats);
    }

    #[test]
    fn gate_leases_and_claims_exclude_each_other() {
        let gate = MigrationGate::default();
        gate.enter_op("/a");
        gate.enter_op("/a"); // concurrent ops on one path are legal
        assert!(!gate.try_claim("/a"), "a leased path cannot be claimed");
        assert!(gate.try_claim("/b"));
        assert!(!gate.try_claim("/b"), "double claim");
        gate.exit_op("/a");
        assert!(!gate.try_claim("/a"), "still one lease left");
        gate.exit_op("/a");
        assert!(gate.try_claim("/a"), "free path claims fine");
        gate.release("/a");
        gate.release("/b");
        assert!(gate.try_claim("/a"), "released claims free the path");
    }

    #[test]
    fn catalog_accumulates_heat_across_generations() {
        let (m, stats) = unbounded();
        let mut temp = Temperature::default();
        temp.touch(SimTime::from_secs(1), None);
        m.record_closed("/f", 1, 10, 4, 100, temp, &stats);
        temp.touch(SimTime::from_secs(2), None);
        m.record_closed("/f", 0, 5, 1, 300, temp, &stats);
        assert!(m.take_if_on("/f", 1).is_none(), "a mismatched tier must not steal the entry");
        let heat = m.take_if_on("/f", 0).expect("catalogued");
        assert_eq!(heat.backend, 0, "latest close wins the placement");
        assert_eq!((heat.reads, heat.writes), (15, 5), "heat accumulates");
        assert_eq!(heat.bytes, 300, "latest close wins the size");
        assert_eq!(heat.temp, temp, "latest close wins the temperature snapshot");
        assert!(m.take_if_on("/f", 0).is_none(), "take removes the entry");
        m.seed([("/g".to_string(), 2u32)], &stats);
        assert_eq!(m.backend_of("/g"), Some(2));
        m.rename_entry("/g", "/h", 1, &stats);
        assert_eq!(m.backend_of("/g"), None);
        assert_eq!(m.backend_of("/h"), Some(1));
        m.forget("/h");
        assert_eq!(m.backend_of("/h"), None);
        assert_eq!(stats.catalog_evictions.load(Ordering::Relaxed), 0);
        assert_eq!(stats.catalog_readmissions.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn fast_tier_occupancy_sums_catalogued_bytes() {
        let (m, stats) = unbounded();
        m.record_closed("/a", 1, 0, 0, 100, Temperature::default(), &stats);
        m.record_closed("/b", 1, 0, 0, 50, Temperature::default(), &stats);
        m.record_closed("/c", 0, 0, 0, 999, Temperature::default(), &stats);
        assert_eq!(m.fast_tier_occupancy(1), 150);
        assert_eq!(m.fast_tier_occupancy(0), 999);
        assert_eq!(m.fast_tier_occupancy(7), 0);
    }

    #[test]
    fn bounded_catalog_evicts_only_correctly_placed_cold_entries() {
        let (m, stats) = bounded(3);
        // A misplaced file (routes to /hot yet sits on tier 0) and a hot
        // file (heat 8 ≥ promote threshold 4) are pinned; two cold,
        // correctly-placed files fill the rest.
        close_cold(&m, &stats, "/hot/misplaced", 0);
        let mut hot = Temperature::default();
        for _ in 0..8 {
            hot.touch(SimTime::from_secs(1), None);
        }
        m.record_closed("/bulk/hot", 0, 8, 0, 10, hot, &stats);
        close_cold(&m, &stats, "/bulk/cold-a", 0);
        assert_eq!(m.resident(), 3);
        // Admitting a fourth entry must evict one of the colds — never the
        // misplaced or the hot entry.
        close_cold(&m, &stats, "/bulk/cold-b", 0);
        assert_eq!(m.resident(), 3, "capacity holds");
        assert_eq!(stats.catalog_evictions.load(Ordering::Relaxed), 1);
        assert_eq!(m.backend_of("/hot/misplaced"), Some(0), "misplaced entry pinned");
        assert_eq!(m.backend_of("/bulk/hot"), Some(0), "hot entry pinned");
        // Re-closing the evicted cold file counts a readmission (it may in
        // turn evict the other cold — the clock hand decides).
        close_cold(&m, &stats, "/bulk/cold-a", 0);
        close_cold(&m, &stats, "/bulk/cold-b", 0);
        assert!(stats.catalog_readmissions.load(Ordering::Relaxed) >= 1);
        assert!(m.resident() <= 3);
    }

    #[test]
    fn pinned_overflow_grows_past_capacity_rather_than_dropping_work() {
        let (m, stats) = bounded(2);
        // Three misplaced files: all pinned, capacity 2.
        close_cold(&m, &stats, "/hot/a", 0);
        close_cold(&m, &stats, "/hot/b", 0);
        close_cold(&m, &stats, "/hot/c", 0);
        assert_eq!(m.resident(), 3, "pinned entries are never dropped");
        assert_eq!(stats.catalog_evictions.load(Ordering::Relaxed), 0);
        // A cold newcomer is rejected while the pinned population holds
        // every seat (its rejection counts as an eviction of itself)...
        close_cold(&m, &stats, "/bulk/cold", 0);
        assert_eq!(m.backend_of("/bulk/cold"), None);
        assert_eq!(stats.catalog_evictions.load(Ordering::Relaxed), 1);
        // ...and once the pinned files are re-homed (set_backend after a
        // migration), they become evictable colds again.
        m.set_backend("/hot/a", 1, &stats);
        m.set_backend("/hot/b", 1, &stats);
        m.set_backend("/hot/c", 1, &stats);
        close_cold(&m, &stats, "/bulk/cold", 0);
        assert_eq!(m.backend_of("/bulk/cold"), Some(0));
        assert!(m.resident() <= 3);
        assert_eq!(stats.catalog_readmissions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn rename_at_capacity_goes_through_admission() {
        let (m, stats) = bounded(2);
        close_cold(&m, &stats, "/hot/a", 0); // pinned (misplaced)
        close_cold(&m, &stats, "/hot/b", 0); // pinned (misplaced)
        assert_eq!(m.resident(), 2);
        // Stamping a brand-new cold destination at capacity must not grow
        // the catalog (the pre-fix code inserted unconditionally).
        m.rename_entry("/bulk/unknown", "/bulk/fresh", 0, &stats);
        assert_eq!(m.resident(), 2, "rename must not grow a full catalog");
        assert_eq!(m.backend_of("/bulk/fresh"), None);
        // A resident source just changes key — never blocked, never grows.
        m.rename_entry("/hot/a", "/hot/a2", 0, &stats);
        assert_eq!(m.resident(), 2);
        assert_eq!(m.backend_of("/hot/a"), None);
        assert_eq!(m.backend_of("/hot/a2"), Some(0));
        // A pinned destination is admitted even at capacity.
        m.rename_entry("/bulk/unknown", "/hot/pinned-dst", 0, &stats);
        assert_eq!(m.backend_of("/hot/pinned-dst"), Some(0));
    }

    #[test]
    fn under_capacity_churn_keeps_the_ring_bounded() {
        let (m, stats) = bounded(64);
        // Open/close churn of few paths leaves one ring tombstone per
        // take_if_on; compaction must keep the ring near the resident set.
        for round in 0..1_000 {
            let path = format!("/bulk/{}", round % 4);
            close_cold(&m, &stats, &path, 0);
            assert!(m.take_if_on(&path, 0).is_some());
        }
        assert_eq!(m.resident(), 0);
        let catalog = m.catalog.lock();
        // Compaction fires once tombstones pass 2·residents + 64; with ≤ 4
        // residents the ring can never coast past ~73 occurrences.
        assert!(
            catalog.ring.len() <= 128,
            "ring grew to {} with {} residents",
            catalog.ring.len(),
            catalog.map.len()
        );
    }

    /// One step of the model interleaving: the same mutation is applied to
    /// a bounded migrator and to an unbounded model map.
    #[derive(Debug, Clone)]
    enum Op {
        /// Full close of path `p` on tier `backend`, with `touches` heat
        /// touches folded in at virtual second `at`.
        Close { p: u8, backend: u32, touches: u8, at: u16 },
        /// Reopen (take_if_on) of path `p` against the tier the model says.
        Open { p: u8 },
        /// Unlink of path `p`.
        Unlink { p: u8 },
        /// Rename `p` → `q` stamping tier `backend`.
        Rename { p: u8, q: u8, backend: u32 },
        /// A migration landed: stamp `p`'s entry onto `backend`.
        SetBackend { p: u8, backend: u32 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..24, 0u32..2, 0u8..10, 0u16..600)
                .prop_map(|(p, backend, touches, at)| Op::Close { p, backend, touches, at }),
            (0u8..24).prop_map(|p| Op::Open { p }),
            (0u8..24).prop_map(|p| Op::Unlink { p }),
            (0u8..24, 0u8..24, 0u32..2).prop_map(|(p, q, backend)| Op::Rename { p, q, backend }),
            (0u8..24, 0u32..2).prop_map(|(p, backend)| Op::SetBackend { p, backend }),
        ]
    }

    fn model_path(p: u8) -> String {
        // Half the namespace routes to the fast tier (/hot), half to the
        // slow baseline — so misplacement and pinning both occur.
        if p.is_multiple_of(2) {
            format!("/hot/f{p}")
        } else {
            format!("/bulk/f{p}")
        }
    }

    proptest! {
        /// Model test: under arbitrary close/open/unlink/rename/migrate
        /// interleavings a bounded catalog (a) never exceeds
        /// `max(capacity, pinned entries)`, (b) never evicts a misplaced
        /// or promote-worthy entry — every such model entry survives with
        /// identical heat — and (c) agrees with the unbounded model on
        /// the sweep targets of every retained entry.
        #[test]
        fn bounded_catalog_matches_the_unbounded_model(
            ops in proptest::collection::vec(op_strategy(), 1..120),
            capacity in 1usize..12,
        ) {
            let (m, stats) = bounded(capacity);
            let policy = HeatPolicy::new(1, 4.0, 1.0, SimTime::from_secs(60));
            let router = PathPrefixRouter::new(vec![("/hot".into(), 1)], 0);
            let mut model: HashMap<String, FileHeat> = HashMap::new();
            let mut now = SimTime::ZERO;
            let mut pinned_high = 0usize;
            for op in ops {
                match op {
                    Op::Close { p, backend, touches, at } => {
                        let path = model_path(p);
                        now = now.max(SimTime::from_secs(at as u64));
                        m.observe_time(now);
                        let mut temp = model
                            .get(&path)
                            .filter(|h| h.backend == backend)
                            .map(|h| h.temp)
                            .unwrap_or_default();
                        for _ in 0..touches {
                            temp.touch(now, policy.half_life());
                        }
                        m.record_closed(&path, backend, 1, 0, 10, temp, &stats);
                        let e = model.entry(path).or_default();
                        e.backend = backend;
                        e.reads += 1;
                        e.bytes = 10;
                        e.temp = temp;
                    }
                    Op::Open { p } => {
                        let path = model_path(p);
                        if let Some(h) = model.get(&path).copied() {
                            let taken = m.take_if_on(&path, h.backend);
                            if taken.is_some() {
                                model.remove(&path);
                            }
                        }
                    }
                    Op::Unlink { p } => {
                        let path = model_path(p);
                        m.forget(&path);
                        model.remove(&path);
                    }
                    Op::Rename { p, q, backend } => {
                        let (from, to) = (model_path(p), model_path(q));
                        // Heat travels with a rename only while the source is
                        // still catalogued: an entry evicted as
                        // correctly-placed-cold has already forgotten its
                        // temperature, so the destination starts cold.
                        let resident = m.backend_of(&from).is_some();
                        m.rename_entry(&from, &to, backend, &stats);
                        let heat = model
                            .remove(&from)
                            .filter(|_| resident)
                            .unwrap_or_default();
                        model.insert(to, FileHeat { backend, ..heat });
                    }
                    Op::SetBackend { p, backend } => {
                        // A sweep-driven migration only lands on catalogued
                        // entries, so the model mirrors the stamp only when
                        // the bounded catalog still holds the path (an entry
                        // evicted as correctly-placed-cold cannot later be
                        // flipped misplaced by a migration it can't start).
                        let path = model_path(p);
                        if m.backend_of(&path).is_some() {
                            m.set_backend(&path, backend, &stats);
                            if let Some(h) = model.get_mut(&path) {
                                h.backend = backend;
                            }
                        }
                    }
                }
                let decay_now = m.observed_time();
                let pinned = model
                    .iter()
                    .filter(|(path, h)| {
                        let cold = RouterPlacement.place_cold(path, h.backend as usize, &router);
                        cold != h.backend as usize
                            || h.temp.decayed(decay_now, policy.half_life()) >= 4.0
                    })
                    .count();
                // Resident only grows at admission, where the bound
                // max(capacity, pinned-at-that-moment) holds; entries that
                // were pinned when admitted past cap may cool afterwards
                // and linger until the next admission drains them, so the
                // running bound is the pinned high-water mark.
                pinned_high = pinned_high.max(pinned);
                prop_assert!(
                    m.resident() <= capacity.max(pinned_high),
                    "{} resident > max(capacity {capacity}, pinned high-water {pinned_high})",
                    m.resident()
                );
            }
            // Every pinned model entry must have survived, bit for bit.
            let decay_now = m.observed_time();
            let retained: HashMap<String, FileHeat> = m.entries().into_iter().collect();
            for (path, h) in &model {
                let cold = RouterPlacement.place_cold(path, h.backend as usize, &router);
                let is_pinned = cold != h.backend as usize
                    || h.temp.decayed(decay_now, policy.half_life()) >= 4.0;
                if is_pinned {
                    let kept = retained.get(path);
                    prop_assert!(kept.is_some(), "pinned entry {path} was evicted");
                    if let Some(kept) = kept {
                        prop_assert_eq!(kept.backend, h.backend);
                        prop_assert_eq!(kept.temp, h.temp, "heat of {} diverged", path);
                    }
                }
            }
            // On the retained set, sweep targets equal the unbounded
            // model's assignment for the same files.
            let mut views: Vec<FileTemperature> = retained
                .iter()
                .map(|(path, h)| FileTemperature {
                    path: path.clone(),
                    backend: h.backend as usize,
                    bytes: h.bytes,
                    heat: h.temp.decayed(decay_now, policy.half_life()),
                    reads: h.reads,
                    writes: h.writes,
                })
                .collect();
            views.sort_by(|a, b| a.path.cmp(&b.path));
            let bounded_targets = policy.assign(&views, &router, 2);
            let model_views: Vec<FileTemperature> = views
                .iter()
                .map(|v| {
                    let h = &model[&v.path];
                    FileTemperature {
                        path: v.path.clone(),
                        backend: h.backend as usize,
                        bytes: h.bytes,
                        heat: h.temp.decayed(decay_now, policy.half_life()),
                        reads: h.reads,
                        writes: h.writes,
                    }
                })
                .collect();
            prop_assert_eq!(bounded_targets, policy.assign(&model_views, &router, 2));
        }
    }
}
