use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use nvmm::{NvRegion, PmemInts};
use parking_lot::{Condvar, Mutex};
use simclock::{ActorClock, SimTime};

use crate::layout::{
    self, CommitWord, Layout, COMMIT_LEADER, ENT_COMMIT, ENT_FD, ENT_FILE_OFF, ENT_GROUP_LEN,
    ENT_LEN, ENT_SEQ,
};
use crate::NvCacheStats;

/// Decoded entry header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EntryHeader {
    pub commit: CommitWord,
    pub fd_slot: u32,
    pub len: u32,
    pub file_off: u64,
    pub group_len: u32,
    pub seq: u64,
}

/// The circular NVMM write log (paper §II-B, Algorithm 1).
///
/// * `head` — volatile allocation index (a monotonically increasing sequence
///   number; the slot is `seq % nb_entries`). Advanced with CAS by writers.
/// * `vtail` — volatile tail: everything below it is free for writers.
/// * persistent tail — stored in the region header, advanced by the cleanup
///   thread after a batch is fsync'ed; the recovery scan starts there.
///
/// Writers that find the log full wait on `space_cv` and, once woken,
/// synchronize their virtual clock with the cleanup thread's publication
/// time (`tail_time`) — this is how SSD back-pressure reaches the
/// application in the simulation, reproducing the saturation collapse of
/// paper Fig. 5.
pub(crate) struct Log {
    pub region: NvRegion,
    pub layout: Layout,
    pub head: AtomicU64,
    pub vtail: AtomicU64,
    /// Virtual commit time of each slot (keeps the cleanup thread causal).
    pub commit_stamps: Box<[AtomicU64]>,
    /// Virtual time at which each slot was last freed by the cleanup thread.
    /// A producer reusing the slot advances to this time first: this is the
    /// coupling that makes the log saturate in *virtual* time (paper Fig. 5)
    /// even though the real cleanup thread may keep up in wall-clock time.
    pub free_stamps: Box<[AtomicU64]>,
    /// Virtual time at which the cleanup thread last freed entries.
    pub tail_time: AtomicU64,
    /// Writers currently blocked on a full log.
    pub space_waiters: AtomicUsize,
    /// Sequence number the cleanup thread must drain to (flush barrier).
    pub flush_target: AtomicU64,
    space_lock: Mutex<()>,
    space_cv: Condvar,
    work_lock: Mutex<()>,
    work_cv: Condvar,
}

impl std::fmt::Debug for Log {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log")
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("vtail", &self.vtail.load(Ordering::Relaxed))
            .field("nb_entries", &self.layout.nb_entries)
            .finish()
    }
}

impl Log {
    pub fn new(region: NvRegion, layout: Layout, start_seq: u64) -> Self {
        let mut stamps = Vec::with_capacity(layout.nb_entries as usize);
        stamps.resize_with(layout.nb_entries as usize, || AtomicU64::new(0));
        let mut free_stamps = Vec::with_capacity(layout.nb_entries as usize);
        free_stamps.resize_with(layout.nb_entries as usize, || AtomicU64::new(0));
        Log {
            region,
            layout,
            head: AtomicU64::new(start_seq),
            vtail: AtomicU64::new(start_seq),
            commit_stamps: stamps.into_boxed_slice(),
            free_stamps: free_stamps.into_boxed_slice(),
            tail_time: AtomicU64::new(0),
            space_waiters: AtomicUsize::new(0),
            flush_target: AtomicU64::new(start_seq),
            space_lock: Mutex::new(()),
            space_cv: Condvar::new(),
            work_lock: Mutex::new(()),
            work_cv: Condvar::new(),
        }
    }

    /// Entries allocated but not yet freed.
    pub fn in_flight(&self) -> u64 {
        self.head.load(Ordering::Acquire) - self.vtail.load(Ordering::Acquire)
    }

    /// Allocates `k` consecutive entries, waiting while the log is full
    /// (`next_entry` of Algorithm 1, generalized to groups). Returns the
    /// first sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the log capacity (such a write can never fit).
    pub fn alloc(&self, k: u64, clock: &ActorClock, stats: &NvCacheStats) -> u64 {
        assert!(
            k <= self.layout.nb_entries,
            "write of {k} entries exceeds log capacity {}",
            self.layout.nb_entries
        );
        let mut waited = false;
        loop {
            let head = self.head.load(Ordering::Acquire);
            let tail = self.vtail.load(Ordering::Acquire);
            if head + k - tail <= self.layout.nb_entries {
                if self
                    .head
                    .compare_exchange_weak(head, head + k, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // Virtual-time coupling: the claimed slots only became
                    // free when the cleanup thread freed them — the producer
                    // cannot be "earlier" than that instant.
                    let mut free_at = 0u64;
                    for i in 0..k {
                        let slot = self.layout.slot_of(head + i) as usize;
                        free_at = free_at.max(self.free_stamps[slot].load(Ordering::Acquire));
                    }
                    if free_at > 0 {
                        clock.advance_to(SimTime::from_nanos(free_at));
                    }
                    if waited {
                        clock.advance_to(SimTime::from_nanos(
                            self.tail_time.load(Ordering::Acquire),
                        ));
                    }
                    return head;
                }
                continue;
            }
            if !waited {
                stats.log_full_waits.fetch_add(1, Ordering::Relaxed);
                waited = true;
            }
            self.space_waiters.fetch_add(1, Ordering::AcqRel);
            self.notify_work();
            {
                let mut guard = self.space_lock.lock();
                // Re-check under the lock to avoid a lost wakeup.
                let head = self.head.load(Ordering::Acquire);
                let tail = self.vtail.load(Ordering::Acquire);
                if head + k - tail > self.layout.nb_entries {
                    self.space_cv.wait_for(&mut guard, Duration::from_millis(1));
                }
            }
            self.space_waiters.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Fills one entry (header + data) without committing it. For group
    /// members (`member_of == Some(leader_slot)`), the member tag is written
    /// as part of the fill, as in the paper: the *leader's* flag commits the
    /// group.
    pub fn fill_entry(
        &self,
        seq: u64,
        fd_slot: u32,
        file_off: u64,
        data: &[u8],
        group_len: u32,
        member_of: Option<u64>,
        clock: &ActorClock,
    ) {
        assert!(data.len() <= self.layout.entry_size as usize, "entry data overflow");
        let slot = self.layout.slot_of(seq);
        let base = self.layout.entry(slot);
        debug_assert_eq!(
            self.region.read_u64(base + ENT_COMMIT),
            0,
            "allocated slot must be free"
        );
        self.region.write_u32(base + ENT_FD, fd_slot, clock);
        self.region.write_u32(base + ENT_LEN, data.len() as u32, clock);
        self.region.write_u64(base + ENT_FILE_OFF, file_off, clock);
        self.region.write_u32(base + ENT_GROUP_LEN, group_len, clock);
        self.region.write_u64(base + ENT_SEQ, seq, clock);
        if let Some(leader_slot) = member_of {
            self.region
                .write_u64(base + ENT_COMMIT, layout::member_commit_word(leader_slot), clock);
        }
        self.region.write(base + layout::ENTRY_HEADER_BYTES, data, clock);
        // Send the uncommitted entry towards NVMM (Algorithm 1, l.22).
        self.region
            .pwb(base, (layout::ENTRY_HEADER_BYTES as usize) + data.len());
    }

    /// Commits the group whose leader is `first_seq`: `pfence` (order fills
    /// before the commit), write the leader's commit flag, flush its cache
    /// line, `psync` (durable linearizability — Algorithm 1, ll.23–27).
    pub fn commit_group(&self, first_seq: u64, k: u64, clock: &ActorClock) {
        self.region.pfence(clock);
        let slot = self.layout.slot_of(first_seq);
        let base = self.layout.entry(slot);
        self.region.write_u64(base + ENT_COMMIT, COMMIT_LEADER, clock);
        self.region.pwb(base + ENT_COMMIT, 8);
        self.region.psync(clock);
        let now = clock.now().as_nanos();
        for i in 0..k {
            let s = self.layout.slot_of(first_seq + i) as usize;
            self.commit_stamps[s].store(now, Ordering::Release);
        }
        self.notify_work();
    }

    /// Reads an entry header (CPU-cache-speed loads: the hot paths touch
    /// lines their thread recently wrote; recovery uses charged reads).
    pub fn read_header(&self, seq: u64) -> EntryHeader {
        let slot = self.layout.slot_of(seq);
        let base = self.layout.entry(slot);
        EntryHeader {
            commit: layout::parse_commit_word(self.region.read_u64(base + ENT_COMMIT)),
            fd_slot: self.region.read_u32(base + ENT_FD),
            len: self.region.read_u32(base + ENT_LEN),
            file_off: self.region.read_u64(base + ENT_FILE_OFF),
            group_len: self.region.read_u32(base + ENT_GROUP_LEN),
            seq: self.region.read_u64(base + ENT_SEQ),
        }
    }

    /// Reads entry data with a charged (media) read.
    pub fn read_data(&self, seq: u64, len: usize, clock: &ActorClock) -> Vec<u8> {
        let slot = self.layout.slot_of(seq);
        let mut buf = vec![0u8; len];
        self.region.read(self.layout.entry_data(slot), &mut buf, clock);
        buf
    }

    /// Reads entry data at CPU-cache speed (dirty-miss fast path for entries
    /// the process wrote recently).
    pub fn read_data_cached(&self, seq: u64, len: usize) -> Vec<u8> {
        let slot = self.layout.slot_of(seq);
        let mut buf = vec![0u8; len];
        self.region.read_cached(self.layout.entry_data(slot), &mut buf);
        buf
    }

    /// Cleanup step 2+3: reset commit flags of `[from, from+count)`, persist
    /// the new tail index, then publish the space to writers (paper §III
    /// "Cleanup thread": volatile tail only moves after the persistent state
    /// is consistent).
    pub fn free_range(&self, from: u64, count: u64, clock: &ActorClock) {
        for i in 0..count {
            let slot = self.layout.slot_of(from + i);
            let base = self.layout.entry(slot);
            self.region.write_u64(base + ENT_COMMIT, 0, clock);
            self.region.pwb(base + ENT_COMMIT, 8);
        }
        let now = clock.now().as_nanos();
        for i in 0..count {
            let slot = self.layout.slot_of(from + i) as usize;
            self.free_stamps[slot].store(now, Ordering::Release);
        }
        self.region.write_u64(layout::OFF_PTAIL, from + count, clock);
        self.region.pwb(layout::OFF_PTAIL, 8);
        self.region.pfence(clock);
        self.tail_time.store(clock.now().as_nanos(), Ordering::Release);
        self.vtail.store(from + count, Ordering::Release);
        self.notify_space();
    }

    /// Wakes the cleanup thread.
    pub fn notify_work(&self) {
        let _g = self.work_lock.lock();
        self.work_cv.notify_all();
    }

    /// Wakes writers blocked on a full log and flush waiters.
    pub fn notify_space(&self) {
        let _g = self.space_lock.lock();
        self.space_cv.notify_all();
    }

    /// Blocks the cleanup thread until there is (potential) work.
    pub fn wait_for_work(&self) {
        let mut guard = self.work_lock.lock();
        self.work_cv.wait_for(&mut guard, Duration::from_millis(1));
    }

    /// Requests a drain to at least `target` and blocks until the volatile
    /// tail passes it. Used by `close`/`flush` (paper: close pushes all
    /// user-space writes to the kernel).
    pub fn flush_to(&self, target: u64, clock: &ActorClock) {
        self.flush_target.fetch_max(target, Ordering::AcqRel);
        self.notify_work();
        loop {
            if self.vtail.load(Ordering::Acquire) >= target {
                clock.advance_to(SimTime::from_nanos(self.tail_time.load(Ordering::Acquire)));
                return;
            }
            let mut guard = self.space_lock.lock();
            if self.vtail.load(Ordering::Acquire) >= target {
                clock.advance_to(SimTime::from_nanos(self.tail_time.load(Ordering::Acquire)));
                return;
            }
            self.space_cv.wait_for(&mut guard, Duration::from_millis(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NvCacheConfig;
    use nvmm::{NvDimm, NvmmProfile};
    use std::sync::Arc;

    fn mk_log(nb: u64) -> (ActorClock, NvCacheStats, Log) {
        let cfg = NvCacheConfig { nb_entries: nb, entry_size: 128, ..NvCacheConfig::tiny() };
        let layout = Layout::for_config(&cfg);
        let dimm = Arc::new(NvDimm::new(layout.total_bytes(), NvmmProfile::instant()));
        let region = NvRegion::whole(dimm);
        (ActorClock::new(), NvCacheStats::default(), Log::new(region, layout, 0))
    }

    #[test]
    fn alloc_is_monotonic_and_contiguous() {
        let (c, s, log) = mk_log(16);
        assert_eq!(log.alloc(1, &c, &s), 0);
        assert_eq!(log.alloc(3, &c, &s), 1);
        assert_eq!(log.alloc(1, &c, &s), 4);
        assert_eq!(log.in_flight(), 5);
    }

    #[test]
    fn fill_and_commit_round_trip() {
        let (c, s, log) = mk_log(16);
        let seq = log.alloc(1, &c, &s);
        log.fill_entry(seq, 7, 4096, b"payload", 1, None, &c);
        let h = log.read_header(seq);
        assert_eq!(h.commit, CommitWord::Free, "not committed yet");
        log.commit_group(seq, 1, &c);
        let h = log.read_header(seq);
        assert_eq!(h.commit, CommitWord::Leader);
        assert_eq!(h.fd_slot, 7);
        assert_eq!(h.len, 7);
        assert_eq!(h.file_off, 4096);
        assert_eq!(h.group_len, 1);
        assert_eq!(log.read_data_cached(seq, 7), b"payload");
    }

    #[test]
    fn group_members_point_to_leader() {
        let (c, s, log) = mk_log(16);
        let first = log.alloc(3, &c, &s);
        let leader_slot = log.layout.slot_of(first);
        for i in 0..3u64 {
            let member = (i > 0).then_some(leader_slot);
            log.fill_entry(first + i, 1, i * 128, &[i as u8; 16], 3, member, &c);
        }
        log.commit_group(first, 3, &c);
        assert_eq!(log.read_header(first).commit, CommitWord::Leader);
        assert_eq!(log.read_header(first + 1).commit, CommitWord::Member(leader_slot));
        assert_eq!(log.read_header(first + 2).commit, CommitWord::Member(leader_slot));
    }

    #[test]
    fn uncommitted_entries_are_lost_on_crash_committed_survive() {
        let (c, s, log) = mk_log(16);
        let a = log.alloc(1, &c, &s);
        log.fill_entry(a, 1, 0, b"committed", 1, None, &c);
        log.commit_group(a, 1, &c);
        let b = log.alloc(1, &c, &s);
        log.fill_entry(b, 1, 0, b"torn!", 1, None, &c);
        // no commit for b
        let crashed = log.region.dimm().crash_and_restart();
        let region = NvRegion::whole(Arc::new(crashed));
        let recovered = Log::new(region, log.layout, 0);
        assert_eq!(recovered.read_header(a).commit, CommitWord::Leader);
        assert_eq!(recovered.read_header(b).commit, CommitWord::Free);
    }

    #[test]
    fn free_range_recycles_and_persists_tail() {
        let (c, s, log) = mk_log(4);
        for i in 0..4u64 {
            let seq = log.alloc(1, &c, &s);
            log.fill_entry(seq, 0, i * 128, &[1; 8], 1, None, &c);
            log.commit_group(seq, 1, &c);
        }
        assert_eq!(log.in_flight(), 4);
        log.free_range(0, 2, &c);
        assert_eq!(log.in_flight(), 2);
        assert_eq!(log.region.read_u64(layout::OFF_PTAIL), 2);
        // Freed slots are reusable.
        let seq = log.alloc(2, &c, &s);
        assert_eq!(seq, 4);
        assert_eq!(log.read_header(4).commit, CommitWord::Free);
    }

    #[test]
    fn alloc_blocks_until_space_is_freed() {
        let (c, s, log) = mk_log(4);
        for _ in 0..4 {
            let seq = log.alloc(1, &c, &s);
            log.fill_entry(seq, 0, 0, &[0; 8], 1, None, &c);
            log.commit_group(seq, 1, &c);
        }
        let log = Arc::new(log);
        let log2 = Arc::clone(&log);
        let waiter = std::thread::spawn(move || {
            let c2 = ActorClock::new();
            let s2 = NvCacheStats::default();
            let seq = log2.alloc(1, &c2, &s2);
            (seq, s2.log_full_waits.load(Ordering::Relaxed))
        });
        std::thread::sleep(Duration::from_millis(30));
        let freeing_clock = ActorClock::starting_at(SimTime::from_secs(9));
        log.free_range(0, 1, &freeing_clock);
        let (seq, waits) = waiter.join().unwrap();
        assert_eq!(seq, 4);
        assert_eq!(waits, 1, "the waiter must record a saturation event");
    }

    #[test]
    fn waiter_clock_syncs_to_cleanup_time() {
        let (c, s, log) = mk_log(2);
        for _ in 0..2 {
            let seq = log.alloc(1, &c, &s);
            log.fill_entry(seq, 0, 0, &[0; 8], 1, None, &c);
            log.commit_group(seq, 1, &c);
        }
        let log = Arc::new(log);
        let log2 = Arc::clone(&log);
        let waiter = std::thread::spawn(move || {
            let c2 = ActorClock::new();
            let s2 = NvCacheStats::default();
            log2.alloc(1, &c2, &s2);
            c2.now()
        });
        std::thread::sleep(Duration::from_millis(30));
        let cleanup_clock = ActorClock::starting_at(SimTime::from_secs(5));
        log.free_range(0, 2, &cleanup_clock);
        let t = waiter.join().unwrap();
        assert!(
            t >= SimTime::from_secs(5),
            "writer resumed at {t}, expected at least the cleanup time"
        );
    }

    #[test]
    fn flush_to_drains() {
        let (c, s, log) = mk_log(8);
        for _ in 0..3 {
            let seq = log.alloc(1, &c, &s);
            log.fill_entry(seq, 0, 0, &[0; 8], 1, None, &c);
            log.commit_group(seq, 1, &c);
        }
        let log = Arc::new(log);
        let log2 = Arc::clone(&log);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let cc = ActorClock::new();
            log2.free_range(0, 3, &cc);
        });
        log.flush_to(3, &c);
        h.join().unwrap();
        assert_eq!(log.vtail.load(Ordering::Relaxed), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds log capacity")]
    fn oversized_group_panics() {
        let (c, s, log) = mk_log(4);
        log.alloc(5, &c, &s);
    }
}
