//! The striped circular NVMM write log: [`Stripe`] (per-stripe heads/tails,
//! commit protocol, virtual-time back-pressure coupling, poisoned-stripe
//! error state) and [`Log`] (hash routing, global sequence assignment,
//! cross-stripe flush barriers).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use nvmm::{NvRegion, PmemInts};
use parking_lot::{Condvar, Mutex};
use simclock::{ActorClock, SimTime};
use vfs::{IoError, IoResult};

use crate::layout::{
    self, CommitWord, Layout, COMMIT_LEADER, ENT_COMMIT, ENT_FD, ENT_FILE_OFF, ENT_GROUP_LEN,
    ENT_LEN, ENT_SEQ,
};
use crate::lockcheck::{Class, Recorder};
use crate::NvCacheStats;

/// Decoded entry header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EntryHeader {
    pub commit: CommitWord,
    pub fd_slot: u32,
    pub len: u32,
    pub file_off: u64,
    pub group_len: u32,
    /// Global sequence number stamped at allocation time (equals the
    /// stripe-local sequence number on a single-stripe log, i.e. the seed
    /// format).
    pub seq: u64,
}

/// One stripe of the circular NVMM write log (paper §II-B, Algorithm 1,
/// applied to the stripe's contiguous share of the entry array).
///
/// * `head` — volatile allocation index (a monotonically increasing
///   *stripe-local* sequence number; the global entry slot is
///   `Layout::stripe_slot(index, seq)`). Advanced under `alloc_lock` so the
///   ring order always matches the global-sequence order within a stripe —
///   the invariant the cross-stripe propagation handoff relies on.
/// * `vtail` — volatile tail: everything below it is free for writers.
/// * persistent tail — stored in the region header (`OFF_PTAIL` for a
///   single-stripe log, the per-stripe tail array otherwise), advanced by
///   this stripe's cleanup worker after a batch is fsync'ed; the recovery
///   scan starts there.
///
/// Writers that find the stripe full wait on `space_cv` and, once woken,
/// synchronize their virtual clock with the cleanup worker's publication
/// time (`tail_time`) — this is how SSD back-pressure reaches the
/// application in the simulation, reproducing the saturation collapse of
/// paper Fig. 5 independently in every stripe.
pub(crate) struct Stripe {
    /// Position of this stripe in [`Log::stripes`].
    pub index: usize,
    pub region: NvRegion,
    pub layout: Layout,
    pub head: AtomicU64,
    pub vtail: AtomicU64,
    /// Virtual commit time of each local slot (keeps the cleanup worker
    /// causal).
    pub commit_stamps: Box<[AtomicU64]>,
    /// Virtual time at which each local slot was last freed by the cleanup
    /// worker. A producer reusing the slot advances to this time first: this
    /// is the coupling that makes the stripe saturate in *virtual* time
    /// (paper Fig. 5) even though the real cleanup worker may keep up in
    /// wall-clock time.
    pub free_stamps: Box<[AtomicU64]>,
    /// Virtual time at which the cleanup worker last freed entries.
    pub tail_time: AtomicU64,
    /// Writers currently blocked on a full stripe.
    pub space_waiters: AtomicUsize,
    /// Stripe-local sequence number the cleanup worker must drain to (flush
    /// barrier).
    pub flush_target: AtomicU64,
    /// Set when this stripe's cleanup worker hit an inner-file-system error
    /// it cannot recover from. A poisoned stripe stops draining (its
    /// entries stay in NVMM for recovery), rejects new writes with an I/O
    /// error, and releases flush waiters instead of blocking them forever.
    poisoned: AtomicBool,
    /// Serializes head advancement with global-sequence assignment, keeping
    /// ring order == global order within the stripe.
    alloc_lock: Mutex<()>,
    space_lock: Mutex<()>,
    space_cv: Condvar,
    work_lock: Mutex<()>,
    work_cv: Condvar,
    /// Lock-order recorder shared with the owning mount (no-op unless the
    /// `pmcheck` feature is on).
    lockcheck: Recorder,
}

impl std::fmt::Debug for Stripe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stripe")
            .field("index", &self.index)
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("vtail", &self.vtail.load(Ordering::Relaxed))
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl Stripe {
    fn new(
        index: usize,
        region: NvRegion,
        layout: Layout,
        start_seq: u64,
        lockcheck: Recorder,
    ) -> Self {
        let cap = layout.stripe_entries() as usize;
        let mut stamps = Vec::with_capacity(cap);
        stamps.resize_with(cap, || AtomicU64::new(0));
        let mut free_stamps = Vec::with_capacity(cap);
        free_stamps.resize_with(cap, || AtomicU64::new(0));
        Stripe {
            index,
            region,
            layout,
            head: AtomicU64::new(start_seq),
            vtail: AtomicU64::new(start_seq),
            commit_stamps: stamps.into_boxed_slice(),
            free_stamps: free_stamps.into_boxed_slice(),
            tail_time: AtomicU64::new(0),
            space_waiters: AtomicUsize::new(0),
            flush_target: AtomicU64::new(start_seq),
            poisoned: AtomicBool::new(false),
            alloc_lock: Mutex::new(()),
            space_lock: Mutex::new(()),
            space_cv: Condvar::new(),
            work_lock: Mutex::new(()),
            work_cv: Condvar::new(),
            lockcheck,
        }
    }

    /// Entries this stripe owns.
    pub fn capacity(&self) -> u64 {
        self.layout.stripe_entries()
    }

    /// Global entry slot of stripe-local sequence number `seq`.
    pub fn slot(&self, seq: u64) -> u64 {
        self.layout.stripe_slot(self.index as u64, seq)
    }

    /// Local slot index (into the stamp arrays) of `seq`.
    fn local_slot(&self, seq: u64) -> usize {
        (seq % self.capacity()) as usize
    }

    /// Entries allocated but not yet freed.
    pub fn in_flight(&self) -> u64 {
        self.head.load(Ordering::Acquire) - self.vtail.load(Ordering::Acquire)
    }

    /// Fills one entry (header + data) without committing it. For group
    /// members (`member_of == Some(leader_global_slot)`), the member tag is
    /// written as part of the fill, as in the paper: the *leader's* flag
    /// commits the group.
    #[allow(clippy::too_many_arguments)] // mirrors the on-NVMM entry header
    pub fn fill_entry(
        &self,
        seq: u64,
        gseq: u64,
        fd_slot: u32,
        file_off: u64,
        data: &[u8],
        group_len: u32,
        member_of: Option<u64>,
        clock: &ActorClock,
    ) {
        assert!(data.len() <= self.layout.entry_size as usize, "entry data overflow");
        let base = self.layout.entry(self.slot(seq));
        debug_assert_eq!(self.region.read_u64(base + ENT_COMMIT), 0, "allocated slot must be free");
        self.region.write_u32(base + ENT_FD, fd_slot, clock);
        self.region.write_u32(base + ENT_LEN, data.len() as u32, clock);
        self.region.write_u64(base + ENT_FILE_OFF, file_off, clock);
        self.region.write_u32(base + ENT_GROUP_LEN, group_len, clock);
        self.region.write_u64(base + ENT_SEQ, gseq, clock);
        if let Some(leader_slot) = member_of {
            self.region.write_u64(
                base + ENT_COMMIT,
                layout::member_commit_word(leader_slot),
                clock,
            );
        }
        self.region.write(base + layout::ENTRY_HEADER_BYTES, data, clock);
        // Mutation hook: a skipped pwb leaves the entry Dirty at the commit
        // fence, which pmcheck must flag there.
        #[cfg(feature = "pmcheck")]
        if crate::pm_mutation::take_skip_pwb() {
            return;
        }
        // Send the uncommitted entry towards NVMM (Algorithm 1, l.22).
        self.region.pwb(base, (layout::ENTRY_HEADER_BYTES as usize) + data.len());
    }

    /// Commits the group whose leader is `first_seq`: `pfence` (order fills
    /// before the commit), write the leader's commit flag, flush its cache
    /// line, `psync` (durable linearizability — Algorithm 1, ll.23–27).
    pub fn commit_group(&self, first_seq: u64, k: u64, clock: &ActorClock) {
        self.commit_batch(&[(first_seq, k)], clock);
    }

    /// Commits several already-filled groups with **one** fence pair: one
    /// `pfence` orders every fill, then each leader's commit flag is written
    /// and flushed, then one `psync` makes them all durable together. This
    /// is the doorbell-batch amortization of the multi-queue front-end: the
    /// per-commit fixed costs (fence + drain latency) are paid once per
    /// doorbell instead of once per write. With a single group the sequence
    /// of NVMM operations is identical to [`Stripe::commit_group`].
    ///
    /// Every group must already be filled; none of the groups is durable (or
    /// acknowledgeable) until this call returns.
    pub fn commit_batch(&self, groups: &[(u64, u64)], clock: &ActorClock) {
        // Mutation hooks: drop the ordering fence, or publish the commit
        // word(s) before it — both must trip pmcheck's commit_store check.
        #[cfg(feature = "pmcheck")]
        let (drop_fence, reorder) =
            (crate::pm_mutation::take_drop_fence(), crate::pm_mutation::take_reorder_commit());
        #[cfg(not(feature = "pmcheck"))]
        let (drop_fence, reorder) = (false, false);
        let commit_words = |clock: &ActorClock| {
            for &(first_seq, _) in groups {
                let base = self.layout.entry(self.slot(first_seq));
                // The annotated publish point: store + pwb of the leader's
                // commit word, checked against the fence that covers the
                // group's fills (Algorithm 1, ll.23–26).
                self.region.commit_store(base + ENT_COMMIT, COMMIT_LEADER, clock);
            }
        };
        if reorder {
            commit_words(clock);
            self.region.persist_fence(clock);
        } else {
            if !drop_fence {
                self.region.persist_fence(clock);
            }
            commit_words(clock);
        }
        self.region.persist_barrier(clock);
        let now = clock.now().as_nanos();
        for &(first_seq, k) in groups {
            for i in 0..k {
                self.commit_stamps[self.local_slot(first_seq + i)].store(now, Ordering::Release);
            }
        }
        self.notify_work();
    }

    /// Reads an entry header (CPU-cache-speed loads: the hot paths touch
    /// lines their thread recently wrote; recovery uses charged reads).
    pub fn read_header(&self, seq: u64) -> EntryHeader {
        let base = self.layout.entry(self.slot(seq));
        EntryHeader {
            commit: layout::parse_commit_word(self.region.read_u64(base + ENT_COMMIT)),
            fd_slot: self.region.read_u32(base + ENT_FD),
            len: self.region.read_u32(base + ENT_LEN),
            file_off: self.region.read_u64(base + ENT_FILE_OFF),
            group_len: self.region.read_u32(base + ENT_GROUP_LEN),
            seq: self.region.read_u64(base + ENT_SEQ),
        }
    }

    /// Reads entry data with a charged (media) read.
    pub fn read_data(&self, seq: u64, len: usize, clock: &ActorClock) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.region.read(self.layout.entry_data(self.slot(seq)), &mut buf, clock);
        buf
    }

    /// Reads entry data at CPU-cache speed (dirty-miss fast path for entries
    /// the process wrote recently).
    pub fn read_data_cached(&self, seq: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.region.read_cached(self.layout.entry_data(self.slot(seq)), &mut buf);
        buf
    }

    /// Cleanup step 2+3: reset commit flags of `[from, from+count)`, persist
    /// the new stripe tail, then publish the space to writers (paper §III
    /// "Cleanup thread": volatile tail only moves after the persistent state
    /// is consistent).
    pub fn free_range(&self, from: u64, count: u64, clock: &ActorClock) {
        for i in 0..count {
            let base = self.layout.entry(self.slot(from + i));
            self.region.write_u64(base + ENT_COMMIT, 0, clock);
            self.region.pwb(base + ENT_COMMIT, 8);
        }
        let now = clock.now().as_nanos();
        for i in 0..count {
            self.free_stamps[self.local_slot(from + i)].store(now, Ordering::Release);
        }
        let tail_off = self.layout.stripe_tail_off(self.index as u64);
        self.region.write_u64(tail_off, from + count, clock);
        self.region.pwb(tail_off, 8);
        self.region.persist_fence(clock);
        self.tail_time.store(clock.now().as_nanos(), Ordering::Release);
        self.vtail.store(from + count, Ordering::Release);
        self.notify_space();
    }

    /// Marks this stripe poisoned after an inner-file-system error and
    /// releases everyone blocked on it (writers, flush barriers, peer
    /// workers in the propagation handoff).
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.notify_space();
        self.notify_work();
    }

    /// Whether this stripe is poisoned (see [`Stripe::poison`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Wakes this stripe's cleanup worker.
    pub fn notify_work(&self) {
        let _lk = self.lockcheck.acquire(Class::StripeWork, self.index as u64);
        let _g = self.work_lock.lock();
        self.work_cv.notify_all();
    }

    /// Wakes writers blocked on a full stripe and flush waiters.
    pub fn notify_space(&self) {
        let _lk = self.lockcheck.acquire(Class::StripeSpace, self.index as u64);
        let _g = self.space_lock.lock();
        self.space_cv.notify_all();
    }

    /// Blocks this stripe's cleanup worker until there is (potential) work.
    pub fn wait_for_work(&self) {
        let _lk = self.lockcheck.acquire(Class::StripeWork, self.index as u64);
        let mut guard = self.work_lock.lock();
        self.work_cv.wait_for(&mut guard, Duration::from_millis(1));
    }

    /// Requests a drain to at least `target` and blocks until the volatile
    /// tail passes it. Used by `close`/`flush` (paper: close pushes all
    /// user-space writes to the kernel). Returns early (without reaching the
    /// target) if the stripe is poisoned — its worker will never drain again
    /// and the pending entries are only reachable through recovery.
    pub fn flush_to(&self, target: u64, clock: &ActorClock) {
        self.flush_target.fetch_max(target, Ordering::AcqRel);
        self.notify_work();
        loop {
            if self.vtail.load(Ordering::Acquire) >= target {
                clock.advance_to(SimTime::from_nanos(self.tail_time.load(Ordering::Acquire)));
                return;
            }
            if self.is_poisoned() {
                return;
            }
            let _lk = self.lockcheck.acquire(Class::StripeSpace, self.index as u64);
            let mut guard = self.space_lock.lock();
            if self.vtail.load(Ordering::Acquire) >= target {
                clock.advance_to(SimTime::from_nanos(self.tail_time.load(Ordering::Acquire)));
                return;
            }
            self.space_cv.wait_for(&mut guard, Duration::from_millis(1));
        }
    }
}

/// The striped NVMM write log: `log_shards` independent [`Stripe`]s over one
/// entry array, plus the global sequence counter that keeps them mergeable.
///
/// With one stripe this is exactly the paper's single circular log (and the
/// stamped sequence numbers coincide with the allocation sequence, making
/// the persistent image byte-for-byte seed-compatible). With `N > 1`:
///
/// * writes are routed to a stripe by [`Log::route`] — a hash of
///   `(device, inode, file_off / entry_size)`, so rewrites of one aligned
///   chunk always land in the same stripe and group commits stay contiguous;
/// * every allocation draws its global sequence numbers *under the stripe's
///   allocation lock*, so within each stripe the ring order equals the
///   global order — the invariant that makes both the cleanup workers'
///   per-page ordered handoff and the recovery k-way merge deadlock- and
///   ambiguity-free.
pub(crate) struct Log {
    pub region: NvRegion,
    pub layout: Layout,
    pub stripes: Box<[Stripe]>,
    /// The mount's lock-order recorder; `Shared` clones this so every
    /// tracked lock in the mount shares one acquisition graph.
    pub lockcheck: Recorder,
    /// Next global sequence number (multi-stripe only; a single stripe
    /// reuses its local sequence, matching the seed format).
    global_seq: AtomicU64,
    /// Cleanup workers currently blocked in the per-page propagation
    /// handoff, waiting for another stripe to drain a smaller sequence
    /// number. While non-zero, every worker runs batches regardless of
    /// `batch_min` — otherwise a stripe with few pending entries could sit
    /// on the sequence number its peers are waiting for.
    pub handoff_waiters: AtomicUsize,
}

impl std::fmt::Debug for Log {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log")
            .field("stripes", &self.stripes.len())
            .field("in_flight", &self.in_flight())
            .field("nb_entries", &self.layout.nb_entries)
            .finish()
    }
}

impl Log {
    pub fn new(region: NvRegion, layout: Layout, start_seq: u64) -> Self {
        let shards = layout.log_shards.max(1) as usize;
        let lockcheck = Recorder::new();
        let stripes: Vec<Stripe> = (0..shards)
            .map(|i| Stripe::new(i, region.clone(), layout, start_seq, lockcheck.clone()))
            .collect();
        Log {
            region,
            layout,
            stripes: stripes.into_boxed_slice(),
            lockcheck,
            global_seq: AtomicU64::new(start_seq),
            handoff_waiters: AtomicUsize::new(0),
        }
    }

    /// Whether this log has a single stripe (seed-compatible mode).
    pub fn single(&self) -> bool {
        self.stripes.len() == 1
    }

    /// The stripe that owns writes of file `dev_ino` starting at `file_off`:
    /// a hash of `(device, inode, file_off / entry_size)`, so repeated
    /// writes of the same aligned chunk keep their stripe (and, with
    /// `entry_size == page_size`, aligned same-page writes keep per-page
    /// ordering within one stripe).
    pub fn route(&self, dev_ino: (u64, u64), file_off: u64) -> &Stripe {
        if self.single() {
            return &self.stripes[0];
        }
        let chunk = file_off / self.layout.entry_size;
        // SplitMix64-style mix of the three routing keys.
        let mut h = dev_ino
            .0
            .rotate_left(32)
            .wrapping_add(dev_ino.1)
            .wrapping_add(chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        &self.stripes[(h % self.stripes.len() as u64) as usize]
    }

    /// Allocates `k` consecutive entries in `stripe`, waiting while it is
    /// full (`next_entry` of Algorithm 1, generalized to groups and
    /// stripes). Returns `(stripe-local sequence, global sequence)` of the
    /// first entry.
    ///
    /// # Errors
    ///
    /// [`IoError::Other`] if the stripe is (or becomes) poisoned: its
    /// cleanup worker died on an inner-file-system error, so waiting for
    /// space could block forever.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the stripe capacity (such a write can never
    /// fit).
    pub fn alloc(
        &self,
        stripe: &Stripe,
        k: u64,
        clock: &ActorClock,
        stats: &NvCacheStats,
    ) -> IoResult<(u64, u64)> {
        self.reserve(stripe, k, clock, stats)
    }

    /// Reserves a window of `k` consecutive entries in `stripe` — the
    /// primitive behind both [`Log::alloc`] (one group per window, the
    /// synchronous path) and the multi-queue doorbell (one window per
    /// doorbell-batch per stripe, carved into per-write groups by the
    /// caller). The window's global sequence numbers are drawn under the
    /// stripe's allocation lock, so ring order == global order within the
    /// stripe holds for any carving; entries inside the window may be
    /// filled and committed out of order with respect to *other* windows
    /// (the cleanup worker waits at the tail and recovery skips
    /// uncommitted gaps).
    ///
    /// Errors and panics as documented on [`Log::alloc`].
    pub fn reserve(
        &self,
        stripe: &Stripe,
        k: u64,
        clock: &ActorClock,
        stats: &NvCacheStats,
    ) -> IoResult<(u64, u64)> {
        let cap = stripe.capacity();
        assert!(k <= cap, "write of {k} entries exceeds stripe capacity {cap}");
        let mut waited = false;
        loop {
            crate::stress_point();
            if stripe.is_poisoned() {
                return Err(IoError::Other(format!(
                    "NVCache log stripe {} is poisoned by an inner I/O error",
                    stripe.index
                )));
            }
            let reserved = {
                let _lk = stripe.lockcheck.acquire(Class::StripeAlloc, stripe.index as u64);
                let _g = stripe.alloc_lock.lock();
                let head = stripe.head.load(Ordering::Acquire);
                let tail = stripe.vtail.load(Ordering::Acquire);
                if head + k - tail <= cap {
                    stripe.head.store(head + k, Ordering::Release);
                    // Global sequence assignment happens under the same lock
                    // so ring order == global order within the stripe.
                    let gseq = if self.single() {
                        head
                    } else {
                        self.global_seq.fetch_add(k, Ordering::AcqRel)
                    };
                    Some((head, gseq))
                } else {
                    None
                }
            };
            if let Some((head, gseq)) = reserved {
                // Virtual-time coupling: the claimed slots only became free
                // when the cleanup worker freed them — the producer cannot be
                // "earlier" than that instant.
                let mut free_at = 0u64;
                for i in 0..k {
                    let slot = stripe.local_slot(head + i);
                    free_at = free_at.max(stripe.free_stamps[slot].load(Ordering::Acquire));
                }
                if free_at > 0 {
                    clock.advance_to(SimTime::from_nanos(free_at));
                }
                if waited {
                    clock.advance_to(SimTime::from_nanos(stripe.tail_time.load(Ordering::Acquire)));
                }
                return Ok((head, gseq));
            }
            if !waited {
                stats.log_full_waits.fetch_add(1, Ordering::Relaxed);
                stats.per_shard[stripe.index].log_full_waits.fetch_add(1, Ordering::Relaxed);
                waited = true;
            }
            stripe.space_waiters.fetch_add(1, Ordering::AcqRel);
            stripe.notify_work();
            {
                let _lk = stripe.lockcheck.acquire(Class::StripeSpace, stripe.index as u64);
                let mut guard = stripe.space_lock.lock();
                // Re-check under the lock to avoid a lost wakeup.
                let head = stripe.head.load(Ordering::Acquire);
                let tail = stripe.vtail.load(Ordering::Acquire);
                if head + k - tail > cap {
                    stripe.space_cv.wait_for(&mut guard, Duration::from_millis(1));
                }
            }
            stripe.space_waiters.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Entries allocated but not yet freed, across all stripes.
    pub fn in_flight(&self) -> u64 {
        self.stripes.iter().map(Stripe::in_flight).sum()
    }

    /// Snapshot of every stripe's allocation head (drain targets for
    /// close/zombie bookkeeping).
    pub fn heads(&self) -> Box<[u64]> {
        self.stripes.iter().map(|s| s.head.load(Ordering::Acquire)).collect()
    }

    /// Whether every stripe has drained at least to the corresponding
    /// target in `targets`.
    pub fn drained_to(&self, targets: &[u64]) -> bool {
        self.stripes
            .iter()
            .zip(targets)
            .all(|(s, &t)| s.vtail.load(Ordering::Acquire) >= t)
    }

    /// Drains every stripe to its current head (full-log flush barrier:
    /// `fsync`-like operations must drain *all* stripes).
    ///
    /// Every stripe's flush target is published *before* the first wait:
    /// draining stripe A may require stripe B to propagate a smaller
    /// sequence number first (per-page handoff), so B must already know it
    /// has to run.
    pub fn flush_all(&self, clock: &ActorClock) {
        let targets = self.heads();
        for (stripe, &target) in self.stripes.iter().zip(targets.iter()) {
            stripe.flush_target.fetch_max(target, Ordering::AcqRel);
            stripe.notify_work();
        }
        for (stripe, &target) in self.stripes.iter().zip(targets.iter()) {
            stripe.flush_to(target, clock);
        }
    }

    /// Wakes every stripe's cleanup worker.
    pub fn notify_work_all(&self) {
        for stripe in self.stripes.iter() {
            stripe.notify_work();
        }
    }

    /// Whether any stripe is poisoned (used to break cross-stripe waits
    /// that could otherwise spin on a dead worker).
    pub fn any_poisoned(&self) -> bool {
        self.stripes.iter().any(Stripe::is_poisoned)
    }

    /// Indices of the poisoned stripes.
    pub fn poisoned_stripes(&self) -> Vec<usize> {
        self.stripes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_poisoned().then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NvCacheConfig;
    use nvmm::{NvDimm, NvmmProfile};
    use std::sync::Arc;

    fn mk_log_sharded(nb: u64, shards: usize) -> (ActorClock, NvCacheStats, Log) {
        let cfg = NvCacheConfig {
            nb_entries: nb,
            entry_size: 128,
            log_shards: shards,
            ..NvCacheConfig::tiny()
        };
        let layout = Layout::for_config(&cfg);
        let dimm = Arc::new(NvDimm::new(layout.total_bytes(), NvmmProfile::instant()));
        let region = NvRegion::whole(dimm);
        (ActorClock::new(), NvCacheStats::with_shards(shards), Log::new(region, layout, 0))
    }

    fn mk_log(nb: u64) -> (ActorClock, NvCacheStats, Log) {
        mk_log_sharded(nb, 1)
    }

    #[test]
    fn alloc_is_monotonic_and_contiguous() {
        let (c, s, log) = mk_log(16);
        let stripe = &log.stripes[0];
        assert_eq!(log.alloc(stripe, 1, &c, &s).unwrap(), (0, 0));
        assert_eq!(log.alloc(stripe, 3, &c, &s).unwrap(), (1, 1));
        assert_eq!(log.alloc(stripe, 1, &c, &s).unwrap(), (4, 4));
        assert_eq!(log.in_flight(), 5);
    }

    #[test]
    fn fill_and_commit_round_trip() {
        let (c, s, log) = mk_log(16);
        let stripe = &log.stripes[0];
        let (seq, gseq) = log.alloc(stripe, 1, &c, &s).unwrap();
        stripe.fill_entry(seq, gseq, 7, 4096, b"payload", 1, None, &c);
        let h = stripe.read_header(seq);
        assert_eq!(h.commit, CommitWord::Free, "not committed yet");
        stripe.commit_group(seq, 1, &c);
        let h = stripe.read_header(seq);
        assert_eq!(h.commit, CommitWord::Leader);
        assert_eq!(h.fd_slot, 7);
        assert_eq!(h.len, 7);
        assert_eq!(h.file_off, 4096);
        assert_eq!(h.group_len, 1);
        assert_eq!(h.seq, gseq);
        assert_eq!(stripe.read_data_cached(seq, 7), b"payload");
    }

    #[test]
    fn group_members_point_to_leader() {
        let (c, s, log) = mk_log(16);
        let stripe = &log.stripes[0];
        let (first, gseq) = log.alloc(stripe, 3, &c, &s).unwrap();
        let leader_slot = stripe.slot(first);
        for i in 0..3u64 {
            let member = (i > 0).then_some(leader_slot);
            stripe.fill_entry(first + i, gseq + i, 1, i * 128, &[i as u8; 16], 3, member, &c);
        }
        stripe.commit_group(first, 3, &c);
        assert_eq!(stripe.read_header(first).commit, CommitWord::Leader);
        assert_eq!(stripe.read_header(first + 1).commit, CommitWord::Member(leader_slot));
        assert_eq!(stripe.read_header(first + 2).commit, CommitWord::Member(leader_slot));
    }

    #[test]
    fn uncommitted_entries_are_lost_on_crash_committed_survive() {
        let (c, s, log) = mk_log(16);
        let stripe = &log.stripes[0];
        let (a, ga) = log.alloc(stripe, 1, &c, &s).unwrap();
        stripe.fill_entry(a, ga, 1, 0, b"committed", 1, None, &c);
        stripe.commit_group(a, 1, &c);
        let (b, gb) = log.alloc(stripe, 1, &c, &s).unwrap();
        stripe.fill_entry(b, gb, 1, 0, b"torn!", 1, None, &c);
        // no commit for b
        let crashed = log.region.dimm().crash_and_restart();
        let region = NvRegion::whole(Arc::new(crashed));
        let recovered = Log::new(region, log.layout, 0);
        assert_eq!(recovered.stripes[0].read_header(a).commit, CommitWord::Leader);
        assert_eq!(recovered.stripes[0].read_header(b).commit, CommitWord::Free);
    }

    #[test]
    fn free_range_recycles_and_persists_tail() {
        let (c, s, log) = mk_log(4);
        let stripe = &log.stripes[0];
        for i in 0..4u64 {
            let (seq, gseq) = log.alloc(stripe, 1, &c, &s).unwrap();
            stripe.fill_entry(seq, gseq, 0, i * 128, &[1; 8], 1, None, &c);
            stripe.commit_group(seq, 1, &c);
        }
        assert_eq!(log.in_flight(), 4);
        stripe.free_range(0, 2, &c);
        assert_eq!(log.in_flight(), 2);
        assert_eq!(log.region.read_u64(layout::OFF_PTAIL), 2);
        // Freed slots are reusable.
        let (seq, _) = log.alloc(stripe, 2, &c, &s).unwrap();
        assert_eq!(seq, 4);
        assert_eq!(stripe.read_header(4).commit, CommitWord::Free);
    }

    #[test]
    fn alloc_blocks_until_space_is_freed() {
        let (c, s, log) = mk_log(4);
        for _ in 0..4 {
            let stripe = &log.stripes[0];
            let (seq, gseq) = log.alloc(stripe, 1, &c, &s).unwrap();
            stripe.fill_entry(seq, gseq, 0, 0, &[0; 8], 1, None, &c);
            stripe.commit_group(seq, 1, &c);
        }
        let log = Arc::new(log);
        let log2 = Arc::clone(&log);
        let waiter = std::thread::spawn(move || {
            let c2 = ActorClock::new();
            let s2 = NvCacheStats::default();
            let (seq, _) = log2.alloc(&log2.stripes[0], 1, &c2, &s2).unwrap();
            (seq, s2.log_full_waits.load(Ordering::Relaxed))
        });
        std::thread::sleep(Duration::from_millis(30));
        let freeing_clock = ActorClock::starting_at(SimTime::from_secs(9));
        log.stripes[0].free_range(0, 1, &freeing_clock);
        let (seq, waits) = waiter.join().unwrap();
        assert_eq!(seq, 4);
        assert_eq!(waits, 1, "the waiter must record a saturation event");
    }

    #[test]
    fn waiter_clock_syncs_to_cleanup_time() {
        let (c, s, log) = mk_log(2);
        for _ in 0..2 {
            let stripe = &log.stripes[0];
            let (seq, gseq) = log.alloc(stripe, 1, &c, &s).unwrap();
            stripe.fill_entry(seq, gseq, 0, 0, &[0; 8], 1, None, &c);
            stripe.commit_group(seq, 1, &c);
        }
        let log = Arc::new(log);
        let log2 = Arc::clone(&log);
        let waiter = std::thread::spawn(move || {
            let c2 = ActorClock::new();
            let s2 = NvCacheStats::default();
            log2.alloc(&log2.stripes[0], 1, &c2, &s2).unwrap();
            c2.now()
        });
        std::thread::sleep(Duration::from_millis(30));
        let cleanup_clock = ActorClock::starting_at(SimTime::from_secs(5));
        log.stripes[0].free_range(0, 2, &cleanup_clock);
        let t = waiter.join().unwrap();
        assert!(
            t >= SimTime::from_secs(5),
            "writer resumed at {t}, expected at least the cleanup time"
        );
    }

    #[test]
    fn flush_to_drains() {
        let (c, s, log) = mk_log(8);
        for _ in 0..3 {
            let stripe = &log.stripes[0];
            let (seq, gseq) = log.alloc(stripe, 1, &c, &s).unwrap();
            stripe.fill_entry(seq, gseq, 0, 0, &[0; 8], 1, None, &c);
            stripe.commit_group(seq, 1, &c);
        }
        let log = Arc::new(log);
        let log2 = Arc::clone(&log);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let cc = ActorClock::new();
            log2.stripes[0].free_range(0, 3, &cc);
        });
        log.stripes[0].flush_to(3, &c);
        h.join().unwrap();
        assert_eq!(log.stripes[0].vtail.load(Ordering::Relaxed), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds stripe capacity")]
    fn oversized_group_panics() {
        let (c, s, log) = mk_log(4);
        log.alloc(&log.stripes[0], 5, &c, &s).unwrap();
    }

    #[test]
    fn single_stripe_global_seq_equals_local_seq() {
        // Seed-format compatibility: on a 1-stripe log the stamped sequence
        // is the allocation sequence itself.
        let (c, s, log) = mk_log(16);
        let stripe = &log.stripes[0];
        for _ in 0..5 {
            let (seq, gseq) = log.alloc(stripe, 1, &c, &s).unwrap();
            assert_eq!(seq, gseq);
        }
    }

    #[test]
    fn stripes_allocate_independently_with_global_order() {
        let (c, s, log) = mk_log_sharded(16, 4);
        assert_eq!(log.stripes.len(), 4);
        assert_eq!(log.stripes[0].capacity(), 4);
        let (l0, g0) = log.alloc(&log.stripes[0], 1, &c, &s).unwrap();
        let (l1, g1) = log.alloc(&log.stripes[2], 2, &c, &s).unwrap();
        let (l2, g2) = log.alloc(&log.stripes[0], 1, &c, &s).unwrap();
        // Local sequences restart per stripe…
        assert_eq!((l0, l1, l2), (0, 0, 1));
        // …while global sequences are unique and monotonic across stripes.
        assert_eq!((g0, g1, g2), (0, 1, 3));
    }

    #[test]
    fn stripes_own_disjoint_entry_windows() {
        let (c, s, log) = mk_log_sharded(8, 2);
        let (a, ga) = log.alloc(&log.stripes[0], 1, &c, &s).unwrap();
        let (b, gb) = log.alloc(&log.stripes[1], 1, &c, &s).unwrap();
        log.stripes[0].fill_entry(a, ga, 1, 0, b"left", 1, None, &c);
        log.stripes[1].fill_entry(b, gb, 2, 0, b"right", 1, None, &c);
        log.stripes[0].commit_group(a, 1, &c);
        log.stripes[1].commit_group(b, 1, &c);
        // Slot 0 belongs to stripe 0, slot 4 (= stripe_entries) to stripe 1.
        assert_eq!(log.stripes[0].slot(a), 0);
        assert_eq!(log.stripes[1].slot(b), 4);
        assert_eq!(log.stripes[0].read_data_cached(a, 4), b"left");
        assert_eq!(log.stripes[1].read_data_cached(b, 5), b"right");
    }

    #[test]
    fn per_stripe_tails_persist_in_the_v2_header() {
        let (c, s, log) = mk_log_sharded(8, 2);
        for stripe in log.stripes.iter() {
            for _ in 0..2 {
                let (seq, gseq) = log.alloc(stripe, 1, &c, &s).unwrap();
                stripe.fill_entry(seq, gseq, 0, 0, &[0; 8], 1, None, &c);
                stripe.commit_group(seq, 1, &c);
            }
        }
        log.stripes[0].free_range(0, 1, &c);
        log.stripes[1].free_range(0, 2, &c);
        assert_eq!(log.region.read_u64(layout::OFF_STRIPE_TAILS), 1);
        assert_eq!(log.region.read_u64(layout::OFF_STRIPE_TAILS + 8), 2);
        // The v1 tail word stays untouched by striped frees.
        assert_eq!(log.region.read_u64(layout::OFF_PTAIL), 0);
    }

    #[test]
    fn routing_is_stable_and_chunk_grained() {
        let (_c, _s, log) = mk_log_sharded(64, 8);
        let file = (3, 77);
        for off in [0u64, 5, 127, 128, 4096] {
            let a = log.route(file, off).index;
            let b = log.route(file, off).index;
            assert_eq!(a, b, "routing must be deterministic");
        }
        // Same 128-byte chunk => same stripe; entry_size is 128 here.
        assert_eq!(log.route(file, 0).index, log.route(file, 127).index);
        // Distinct chunks spread over multiple stripes.
        let distinct: std::collections::HashSet<usize> =
            (0..64u64).map(|i| log.route(file, i * 128).index).collect();
        assert!(distinct.len() > 1, "hash routing must use more than one stripe");
    }

    #[test]
    fn poisoned_stripe_rejects_allocs_and_releases_flushers() {
        let (c, s, log) = mk_log(4);
        let stripe = &log.stripes[0];
        let (seq, gseq) = log.alloc(stripe, 1, &c, &s).unwrap();
        stripe.fill_entry(seq, gseq, 0, 0, &[0; 8], 1, None, &c);
        stripe.commit_group(seq, 1, &c);
        assert!(!log.any_poisoned());
        stripe.poison();
        assert!(stripe.is_poisoned());
        assert_eq!(log.poisoned_stripes(), vec![0]);
        // New allocations fail instead of waiting on the dead worker…
        assert!(log.alloc(stripe, 1, &c, &s).is_err());
        // …and a flush barrier returns instead of blocking forever, leaving
        // the entry in the log for recovery.
        stripe.flush_to(1, &c);
        assert_eq!(log.in_flight(), 1);
    }

    #[test]
    fn full_log_flush_barrier_covers_every_stripe() {
        let (c, s, log) = mk_log_sharded(8, 2);
        for stripe in log.stripes.iter() {
            let (seq, gseq) = log.alloc(stripe, 1, &c, &s).unwrap();
            stripe.fill_entry(seq, gseq, 0, 0, &[0; 8], 1, None, &c);
            stripe.commit_group(seq, 1, &c);
        }
        let log = Arc::new(log);
        let log2 = Arc::clone(&log);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let cc = ActorClock::new();
            log2.stripes[0].free_range(0, 1, &cc);
            log2.stripes[1].free_range(0, 1, &cc);
        });
        log.flush_all(&c);
        h.join().unwrap();
        assert_eq!(log.in_flight(), 0);
        assert!(log.drained_to(&log.heads()));
    }
}
