use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use blockdev::BlockDevice;
use parking_lot::{Mutex, RwLock};
use simclock::{ActorClock, SimTime};

use crate::path::parent_of;
use crate::{
    normalize_path, Fd, FdTable, FileSystem, IoError, IoResult, KernelCosts, Metadata, OpenFlags,
    PageCache, PageCacheConfig,
};

/// Tuning of the simulated Ext4.
#[derive(Debug, Clone)]
pub struct Ext4Profile {
    /// Kernel path costs.
    pub costs: KernelCosts,
    /// Page-cache configuration.
    pub cache: PageCacheConfig,
    /// CPU + sequential-journal-write cost of one jbd2 transaction commit
    /// (the device flush is charged separately through the device).
    pub journal_commit: SimTime,
    /// Pages per extent slab; file pages map onto contiguous device slabs so
    /// sequential file I/O stays sequential on the device.
    pub slab_pages: u64,
}

impl Default for Ext4Profile {
    fn default() -> Self {
        Ext4Profile {
            costs: KernelCosts::default_model(),
            cache: PageCacheConfig::default(),
            journal_commit: SimTime::from_micros(15),
            slab_pages: 256,
        }
    }
}

#[derive(Debug)]
struct Ext4Inode {
    ino: u64,
    size: AtomicU64,
    /// slab index -> device base offset
    slabs: Mutex<HashMap<u64, u64>>,
    meta_dirty: AtomicBool,
}

#[derive(Clone)]
struct Ext4Fd {
    inode: Arc<Ext4Inode>,
    flags: OpenFlags,
}

/// Simulated Ext4 over any block device.
///
/// Reproduces the cost structure of the kernel's default file system as used
/// throughout the paper's evaluation (Table IV rows "SSD" and
/// "DM-WriteCache"): a volatile write-back page cache in front of the device,
/// lazy extent allocation in contiguous slabs, and a jbd2-style journal whose
/// commit (plus a device flush) is what makes `fsync` expensive.
///
/// Instantiate it over an [`SsdDevice`](blockdev::SsdDevice) for the plain
/// SSD baseline or over a [`DmWriteCacheDev`](blockdev::DmWriteCacheDev) for
/// the DM-WriteCache baseline — the file-system code is identical, exactly as
/// in the paper.
pub struct Ext4 {
    name: String,
    dev: Arc<dyn BlockDevice>,
    profile: Ext4Profile,
    cache: PageCache,
    files: RwLock<HashMap<String, Arc<Ext4Inode>>>,
    fds: FdTable<Ext4Fd>,
    next_ino: AtomicU64,
    alloc_next: AtomicU64,
    free_slabs: Mutex<Vec<u64>>,
    journal_commits: AtomicU64,
    dev_id: u64,
}

impl std::fmt::Debug for Ext4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ext4")
            .field("name", &self.name)
            .field("files", &self.files.read().len())
            .finish()
    }
}

impl Ext4 {
    /// Creates an Ext4 instance named `name` over `dev`.
    pub fn new(name: impl Into<String>, dev: Arc<dyn BlockDevice>, profile: Ext4Profile) -> Self {
        Ext4 {
            name: name.into(),
            dev,
            cache: PageCache::new(profile.cache.clone()),
            profile,
            files: RwLock::new(HashMap::new()),
            fds: FdTable::new(),
            next_ino: AtomicU64::new(1),
            alloc_next: AtomicU64::new(0),
            free_slabs: Mutex::new(Vec::new()),
            journal_commits: AtomicU64::new(0),
            dev_id: 0xE4,
        }
    }

    /// Returns an inode's slabs to the allocator (unlink / replace).
    fn reclaim_slabs(&self, inode: &Ext4Inode) {
        let mut slabs = inode.slabs.lock();
        self.free_slabs.lock().extend(slabs.values().copied());
        slabs.clear();
    }

    /// Number of jbd2 commits performed so far.
    pub fn journal_commit_count(&self) -> u64 {
        self.journal_commits.load(Ordering::Relaxed)
    }

    /// The page cache (for stats inspection).
    pub fn page_cache(&self) -> &PageCache {
        &self.cache
    }

    /// The backing device.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.dev
    }

    fn page_size(&self) -> u64 {
        self.profile.cache.page_size as u64
    }

    fn slab_bytes(&self) -> u64 {
        self.profile.slab_pages * self.page_size()
    }

    /// Maps a file page to its device offset, allocating a slab on demand.
    ///
    /// # Errors
    ///
    /// [`IoError::NoSpace`] when the device is exhausted.
    fn map_alloc(&self, inode: &Ext4Inode, page: u64) -> IoResult<u64> {
        let slab = page / self.profile.slab_pages;
        let mut slabs = inode.slabs.lock();
        if let Some(&base) = slabs.get(&slab) {
            return Ok(base + (page % self.profile.slab_pages) * self.page_size());
        }
        let base = match self.free_slabs.lock().pop() {
            Some(base) => base,
            None => {
                let base = self.alloc_next.fetch_add(self.slab_bytes(), Ordering::Relaxed);
                if base + self.slab_bytes() > self.dev.capacity() {
                    return Err(IoError::NoSpace);
                }
                base
            }
        };
        slabs.insert(slab, base);
        inode.meta_dirty.store(true, Ordering::Release);
        Ok(base + (page % self.profile.slab_pages) * self.page_size())
    }

    /// Device offset of `page` if a slab exists (reads of sparse holes skip
    /// the device).
    fn map_existing(&self, inode: &Ext4Inode, page: u64) -> Option<u64> {
        let slab = page / self.profile.slab_pages;
        inode
            .slabs
            .lock()
            .get(&slab)
            .map(|&base| base + (page % self.profile.slab_pages) * self.page_size())
    }

    fn lookup(&self, path: &str) -> Option<Arc<Ext4Inode>> {
        self.files.read().get(path).cloned()
    }

    fn is_dir(&self, path: &str) -> bool {
        if path == "/" {
            return true;
        }
        let prefix = format!("{path}/");
        self.files.read().keys().any(|k| k.starts_with(&prefix))
    }

    fn writeback_evicted(&self, evicted: Vec<crate::pagecache::EvictedPage>, clock: &ActorClock) {
        for e in evicted {
            // The inode may have been unlinked concurrently; its pages are
            // dropped from the cache then, so a lookup miss means skip.
            let target = {
                let files = self.files.read();
                files.values().find(|i| i.ino == e.ino).cloned()
            };
            if let Some(inode) = target {
                if let Ok(dev_off) = self.map_alloc(&inode, e.page) {
                    self.dev.write(dev_off, &e.data, clock);
                }
            }
        }
    }

    fn journal_commit(&self, clock: &ActorClock) {
        clock.advance(self.profile.journal_commit);
        self.dev.flush(clock);
        self.journal_commits.fetch_add(1, Ordering::Relaxed);
    }

    fn fsync_inode(&self, inode: &Ext4Inode, clock: &ActorClock) -> IoResult<()> {
        let dirty = self.cache.take_dirty(inode.ino);
        let mut targets = Vec::with_capacity(dirty.len());
        for (page, data) in dirty {
            targets.push((self.map_alloc(inode, page)?, data));
        }
        // Elevator: issue writebacks in device-offset order.
        targets.sort_by_key(|(off, _)| *off);
        for (off, data) in targets {
            self.dev.write(off, &data, clock);
        }
        self.journal_commit(clock);
        inode.meta_dirty.store(false, Ordering::Release);
        Ok(())
    }

    fn read_page_from_device(&self, inode: &Ext4Inode, page: u64, clock: &ActorClock) -> Vec<u8> {
        let mut buf = vec![0u8; self.page_size() as usize];
        if let Some(off) = self.map_existing(inode, page) {
            self.dev.read(off, &mut buf, clock);
        }
        buf
    }

    fn write_direct(
        &self,
        inode: &Ext4Inode,
        data: &[u8],
        off: u64,
        clock: &ActorClock,
    ) -> IoResult<usize> {
        let ps = self.page_size();
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = off + pos as u64;
            let page = abs / ps;
            let in_page = (abs % ps) as usize;
            let n = (ps as usize - in_page).min(data.len() - pos);
            let dev_off = self.map_alloc(inode, page)?;
            if n == ps as usize {
                self.dev.write(dev_off, &data[pos..pos + n], clock);
            } else {
                // Unaligned O_DIRECT tail: device-level read-modify-write.
                let mut old = vec![0u8; ps as usize];
                self.dev.read(dev_off, &mut old, clock);
                old[in_page..in_page + n].copy_from_slice(&data[pos..pos + n]);
                self.dev.write(dev_off, &old, clock);
            }
            // Keep the page cache coherent, as the kernel invalidates/updates
            // overlapping cached pages on direct I/O.
            self.cache.update(inode.ino, page, in_page, &data[pos..pos + n]);
            pos += n;
        }
        Ok(data.len())
    }

    fn write_buffered(
        &self,
        inode: &Ext4Inode,
        data: &[u8],
        off: u64,
        clock: &ActorClock,
    ) -> IoResult<usize> {
        let ps = self.page_size();
        let size = inode.size.load(Ordering::Acquire);
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = off + pos as u64;
            let page = abs / ps;
            let in_page = (abs % ps) as usize;
            let n = (ps as usize - in_page).min(data.len() - pos);
            clock.advance(self.profile.costs.page_lookup);
            if !self.cache.update(inode.ino, page, in_page, &data[pos..pos + n]) {
                // Page miss. A full overwrite or a page entirely beyond EOF
                // needs no device read.
                let whole = n == ps as usize;
                let beyond_eof = page * ps >= size;
                let mut fresh = if whole || beyond_eof {
                    vec![0u8; ps as usize]
                } else {
                    self.read_page_from_device(inode, page, clock)
                };
                fresh[in_page..in_page + n].copy_from_slice(&data[pos..pos + n]);
                let evicted = self.cache.insert(inode.ino, page, &fresh, true);
                self.writeback_evicted(evicted, clock);
            }
            pos += n;
        }
        clock.advance(self.profile.costs.copy(data.len() as u64));
        Ok(data.len())
    }
}

impl FileSystem for Ext4 {
    fn name(&self) -> &str {
        &self.name
    }

    fn open(&self, path: &str, flags: OpenFlags, clock: &ActorClock) -> IoResult<Fd> {
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let path = normalize_path(path);
        let inode = match self.lookup(&path) {
            Some(inode) => {
                if flags.contains(OpenFlags::CREATE) && flags.contains(OpenFlags::EXCL) {
                    return Err(IoError::AlreadyExists(path));
                }
                if flags.contains(OpenFlags::TRUNC) && flags.writable() {
                    inode.size.store(0, Ordering::Release);
                    self.cache.drop_inode(inode.ino);
                    inode.meta_dirty.store(true, Ordering::Release);
                }
                inode
            }
            None => {
                if !flags.contains(OpenFlags::CREATE) {
                    return Err(IoError::NotFound(path));
                }
                let inode = Arc::new(Ext4Inode {
                    ino: self.next_ino.fetch_add(1, Ordering::Relaxed),
                    size: AtomicU64::new(0),
                    slabs: Mutex::new(HashMap::new()),
                    meta_dirty: AtomicBool::new(true),
                });
                self.files.write().insert(path, Arc::clone(&inode));
                inode
            }
        };
        Ok(self.fds.insert(Ext4Fd { inode, flags }))
    }

    fn close(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.profile.costs.syscall);
        self.fds.remove(fd).map(|_| ())
    }

    fn pread(&self, fd: Fd, buf: &mut [u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let entry = self.fds.get(fd)?;
        if !entry.flags.readable() {
            return Err(IoError::PermissionDenied("fd opened write-only".into()));
        }
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let inode = &entry.inode;
        let size = inode.size.load(Ordering::Acquire);
        if off >= size {
            return Ok(0);
        }
        let total = buf.len().min((size - off) as usize);
        let ps = self.page_size();
        let mut pos = 0usize;
        while pos < total {
            let abs = off + pos as u64;
            let page = abs / ps;
            let in_page = (abs % ps) as usize;
            let n = (ps as usize - in_page).min(total - pos);
            clock.advance(self.profile.costs.page_lookup);
            if !self.cache.read(inode.ino, page, in_page, &mut buf[pos..pos + n]) {
                let fresh = self.read_page_from_device(inode, page, clock);
                buf[pos..pos + n].copy_from_slice(&fresh[in_page..in_page + n]);
                let evicted = self.cache.insert(inode.ino, page, &fresh, false);
                self.writeback_evicted(evicted, clock);
            }
            pos += n;
        }
        clock.advance(self.profile.costs.copy(total as u64));
        Ok(total)
    }

    fn pwrite(&self, fd: Fd, data: &[u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let entry = self.fds.get(fd)?;
        if !entry.flags.writable() {
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let inode = &entry.inode;
        let n = if entry.flags.contains(OpenFlags::DIRECT) {
            self.write_direct(inode, data, off, clock)?
        } else {
            self.write_buffered(inode, data, off, clock)?
        };
        let end = off + n as u64;
        if inode.size.fetch_max(end, Ordering::AcqRel) < end {
            inode.meta_dirty.store(true, Ordering::Release);
        }
        if entry.flags.contains(OpenFlags::SYNC) {
            self.fsync_inode(inode, clock)?;
        }
        Ok(n)
    }

    fn fsync(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        let entry = self.fds.get(fd)?;
        clock.advance(self.profile.costs.syscall);
        self.fsync_inode(&entry.inode, clock)
    }

    fn ftruncate(&self, fd: Fd, len: u64, clock: &ActorClock) -> IoResult<()> {
        let entry = self.fds.get(fd)?;
        if !entry.flags.writable() {
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let old = entry.inode.size.swap(len, Ordering::AcqRel);
        if len < old {
            // Invalidate cached pages wholly beyond the new end.
            self.cache.drop_inode(entry.inode.ino);
        }
        entry.inode.meta_dirty.store(true, Ordering::Release);
        Ok(())
    }

    fn fstat(&self, fd: Fd, clock: &ActorClock) -> IoResult<Metadata> {
        clock.advance(self.profile.costs.syscall);
        let entry = self.fds.get(fd)?;
        Ok(Metadata {
            dev: self.dev_id,
            ino: entry.inode.ino,
            size: entry.inode.size.load(Ordering::Acquire),
            is_dir: false,
        })
    }

    fn stat(&self, path: &str, clock: &ActorClock) -> IoResult<Metadata> {
        clock.advance(self.profile.costs.syscall);
        let path = normalize_path(path);
        if let Some(inode) = self.lookup(&path) {
            return Ok(Metadata {
                dev: self.dev_id,
                ino: inode.ino,
                size: inode.size.load(Ordering::Acquire),
                is_dir: false,
            });
        }
        if self.is_dir(&path) {
            return Ok(Metadata { dev: self.dev_id, ino: 0, size: 0, is_dir: true });
        }
        Err(IoError::NotFound(path))
    }

    fn unlink(&self, path: &str, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let path = normalize_path(path);
        let inode = self.files.write().remove(&path).ok_or(IoError::NotFound(path))?;
        self.cache.drop_inode(inode.ino);
        self.reclaim_slabs(&inode);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let from = normalize_path(from);
        let to = normalize_path(to);
        let mut files = self.files.write();
        let inode = files.remove(&from).ok_or(IoError::NotFound(from))?;
        if let Some(replaced) = files.insert(to, inode) {
            self.cache.drop_inode(replaced.ino);
            self.reclaim_slabs(&replaced);
        }
        Ok(())
    }

    fn list_dir(&self, dir: &str, clock: &ActorClock) -> IoResult<Vec<String>> {
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let dir = normalize_path(dir);
        let mut out: Vec<String> =
            self.files.read().keys().filter(|k| parent_of(k) == dir).cloned().collect();
        out.sort();
        Ok(out)
    }

    fn sync(&self, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.profile.costs.syscall);
        let dirty = self.cache.take_all_dirty();
        let by_ino: Vec<Arc<Ext4Inode>> = self.files.read().values().cloned().collect();
        for e in dirty {
            if let Some(inode) = by_ino.iter().find(|i| i.ino == e.ino) {
                let off = self.map_alloc(inode, e.page)?;
                self.dev.write(off, &e.data, clock);
            }
        }
        self.journal_commit(clock);
        Ok(())
    }

    fn simulate_power_failure(&self) {
        // The page cache is volatile: every un-synced page is gone. Metadata
        // is assumed journaled (the namespace survives); the device keeps
        // whatever reached it.
        self.cache.drop_all();
    }

    fn synchronous_durability(&self) -> bool {
        false // requires O_DIRECT|O_SYNC per fd, not a design default
    }

    fn durable_linearizability(&self) -> bool {
        false // reads can observe page-cache data that is not yet durable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::{SsdDevice, SsdProfile};

    fn fs() -> (ActorClock, Arc<SsdDevice>, Ext4) {
        let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
        let ext4 =
            Ext4::new("ext4+ssd", Arc::clone(&ssd) as Arc<dyn BlockDevice>, Ext4Profile::default());
        (ActorClock::new(), ssd, ext4)
    }

    fn small_cache_fs(capacity_pages: usize) -> (ActorClock, Arc<SsdDevice>, Ext4) {
        let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600()));
        let profile = Ext4Profile {
            cache: PageCacheConfig { capacity_pages, ..PageCacheConfig::default() },
            ..Ext4Profile::default()
        };
        let ext4 = Ext4::new("ext4+ssd", Arc::clone(&ssd) as Arc<dyn BlockDevice>, profile);
        (ActorClock::new(), ssd, ext4)
    }

    #[test]
    fn write_read_round_trip_buffered() {
        let (c, _ssd, fs) = fs();
        let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(fs.pwrite(fd, &data, 100, &c).unwrap(), data.len());
        let mut buf = vec![0u8; data.len()];
        assert_eq!(fs.pread(fd, &mut buf, 100, &c).unwrap(), data.len());
        assert_eq!(buf, data);
    }

    #[test]
    fn buffered_write_touches_no_device_until_fsync() {
        let (c, ssd, fs) = fs();
        let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, &[1u8; 8192], 0, &c).unwrap();
        assert_eq!(ssd.stats().snapshot().bytes_written, 0);
        fs.fsync(fd, &c).unwrap();
        let snap = ssd.stats().snapshot();
        assert_eq!(snap.bytes_written, 8192);
        assert!(snap.flushes >= 1);
    }

    #[test]
    fn fsync_write_combining() {
        let (c, ssd, fs) = fs();
        let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        // 100 small writes into the same page combine into one device write.
        for i in 0..100u64 {
            fs.pwrite(fd, &[i as u8; 8], (i % 32) * 8, &c).unwrap();
        }
        fs.fsync(fd, &c).unwrap();
        assert_eq!(ssd.stats().snapshot().bytes_written, 4096);
    }

    #[test]
    fn o_sync_writes_reach_the_device_immediately() {
        let (c, ssd, fs) = fs();
        let fd = fs
            .open("/f", OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::SYNC, &c)
            .unwrap();
        fs.pwrite(fd, &[7u8; 4096], 0, &c).unwrap();
        let snap = ssd.stats().snapshot();
        assert_eq!(snap.bytes_written, 4096);
        assert!(snap.flushes >= 1);
    }

    #[test]
    fn o_direct_bypasses_page_cache() {
        let (c, ssd, fs) = fs();
        let fd = fs
            .open("/f", OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::DIRECT, &c)
            .unwrap();
        fs.pwrite(fd, &[3u8; 4096], 0, &c).unwrap();
        assert_eq!(ssd.stats().snapshot().bytes_written, 4096);
        // Content is still readable (read goes to the device).
        let mut buf = [0u8; 4096];
        fs.pread(fd, &mut buf, 0, &c).unwrap();
        assert_eq!(buf[0], 3);
    }

    #[test]
    fn crash_loses_unsynced_data_but_keeps_synced() {
        let (c, _ssd, fs) = fs();
        let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, &[1u8; 4096], 0, &c).unwrap();
        fs.fsync(fd, &c).unwrap();
        fs.pwrite(fd, &[2u8; 4096], 0, &c).unwrap(); // not synced
        fs.simulate_power_failure();
        let mut buf = [0u8; 4096];
        fs.pread(fd, &mut buf, 0, &c).unwrap();
        assert_eq!(buf[0], 1, "synced version must survive, unsynced must not");
    }

    #[test]
    fn sequential_file_writes_are_sequential_on_device() {
        let (c, ssd, fs) = fs();
        let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        for i in 0..64u64 {
            fs.pwrite(fd, &[i as u8; 4096], i * 4096, &c).unwrap();
        }
        fs.fsync(fd, &c).unwrap();
        let snap = ssd.stats().snapshot();
        assert!(snap.seq_writes >= 60, "expected mostly sequential writeback, got {snap:?}");
    }

    #[test]
    fn eviction_throttles_buffered_writes_to_device() {
        let (c, ssd, fs) = small_cache_fs(16);
        let fd = fs.open("/big", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        for i in 0..256u64 {
            fs.pwrite(fd, &[i as u8; 4096], i * 4096, &c).unwrap();
        }
        assert!(
            ssd.stats().snapshot().bytes_written > 0,
            "page-cache pressure must force writeback"
        );
    }

    #[test]
    fn sparse_read_returns_zeroes_without_device_io() {
        let (c, ssd, fs) = fs();
        let fd = fs.open("/sparse", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, b"end", 1 << 20, &c).unwrap();
        let mut buf = [9u8; 64];
        fs.pread(fd, &mut buf, 4096, &c).unwrap();
        assert_eq!(buf, [0u8; 64]);
        assert_eq!(ssd.stats().snapshot().bytes_read, 0);
    }

    #[test]
    fn journal_commits_happen_per_fsync() {
        let (c, _ssd, fs) = fs();
        let fd = fs.open("/j", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        for _ in 0..5 {
            fs.pwrite(fd, &[0u8; 512], 0, &c).unwrap();
            fs.fsync(fd, &c).unwrap();
        }
        assert_eq!(fs.journal_commit_count(), 5);
    }

    #[test]
    fn no_space_when_device_full() {
        let ssd = Arc::new(SsdDevice::new(SsdProfile::s4600().with_capacity(1 << 20)));
        let fs = Ext4::new("tiny", ssd as Arc<dyn BlockDevice>, Ext4Profile::default());
        let c = ActorClock::new();
        let fd = fs
            .open("/f", OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::DIRECT, &c)
            .unwrap();
        let res = (0..16u64)
            .map(|i| fs.pwrite(fd, &[0u8; 4096], i * (2 << 20), &c))
            .collect::<Result<Vec<_>, _>>();
        assert!(matches!(res, Err(IoError::NoSpace)));
    }

    #[test]
    fn truncate_then_read_is_bounded() {
        let (c, _ssd, fs) = fs();
        let fd = fs.open("/t", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, &[5u8; 8192], 0, &c).unwrap();
        fs.ftruncate(fd, 100, &c).unwrap();
        let mut buf = [0u8; 8192];
        assert_eq!(fs.pread(fd, &mut buf, 0, &c).unwrap(), 100);
        assert_eq!(fs.fstat(fd, &c).unwrap().size, 100);
    }
}
