use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use nvmm::NvRegion;
use parking_lot::{Mutex, RwLock};
use simclock::{ActorClock, SimTime};

use crate::path::parent_of;
use crate::{
    normalize_path, Fd, FdTable, FileSystem, IoError, IoResult, KernelCosts, Metadata, OpenFlags,
};

/// Tuning of the simulated Ext4-DAX.
#[derive(Debug, Clone)]
pub struct DaxProfile {
    /// Kernel path costs.
    pub costs: KernelCosts,
    /// Per-write extra cost of the ext4 DAX path (block mapping through the
    /// extent tree, `copy_from_iter_flushcache` setup). This is the "Ext4
    /// bottleneck" the paper blames for NOVA outperforming Ext4-DAX (§IV-B).
    pub write_path_overhead: SimTime,
    /// jbd2 commit cost (journal lives in NVMM too).
    pub journal_commit: SimTime,
    /// Page size.
    pub page_size: u64,
    /// Pages per allocation slab.
    pub slab_pages: u64,
}

impl Default for DaxProfile {
    fn default() -> Self {
        DaxProfile {
            costs: KernelCosts::default_model(),
            write_path_overhead: SimTime::from_micros(17),
            journal_commit: SimTime::from_micros(10),
            page_size: 4096,
            slab_pages: 256,
        }
    }
}

#[derive(Debug)]
struct DaxInode {
    ino: u64,
    size: AtomicU64,
    slabs: Mutex<HashMap<u64, u64>>,
    meta_dirty: AtomicBool,
}

#[derive(Clone)]
struct DaxFd {
    inode: Arc<DaxInode>,
    flags: OpenFlags,
}

/// Simulated Ext4-DAX: the Ext4 code paths with file data mapped directly in
/// NVMM (paper Table IV row "Ext4-DAX", refs \[20\], \[56\]).
///
/// Data writes go straight into persistent memory through the CPU caches
/// (no page cache); in-place, not copy-on-write. Storage capacity is limited
/// to the NVMM region — the limitation NVCache exists to remove.
pub struct DaxFs {
    region: NvRegion,
    profile: DaxProfile,
    files: RwLock<HashMap<String, Arc<DaxInode>>>,
    fds: FdTable<DaxFd>,
    next_ino: AtomicU64,
    alloc_next: AtomicU64,
    free_slabs: Mutex<Vec<u64>>,
    dev_id: u64,
}

impl std::fmt::Debug for DaxFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaxFs").field("files", &self.files.read().len()).finish()
    }
}

impl DaxFs {
    /// Creates an Ext4-DAX instance over an NVMM region.
    pub fn new(region: NvRegion, profile: DaxProfile) -> Self {
        DaxFs {
            region,
            profile,
            files: RwLock::new(HashMap::new()),
            fds: FdTable::new(),
            next_ino: AtomicU64::new(1),
            alloc_next: AtomicU64::new(0),
            free_slabs: Mutex::new(Vec::new()),
            dev_id: 0xDA,
        }
    }

    /// Returns an inode's slabs to the allocator (unlink / replace).
    fn reclaim_slabs(&self, inode: &DaxInode) {
        let mut slabs = inode.slabs.lock();
        self.free_slabs.lock().extend(slabs.values().copied());
        slabs.clear();
    }

    fn slab_bytes(&self) -> u64 {
        self.profile.slab_pages * self.profile.page_size
    }

    fn map_alloc(&self, inode: &DaxInode, page: u64) -> IoResult<u64> {
        let slab = page / self.profile.slab_pages;
        let mut slabs = inode.slabs.lock();
        if let Some(&base) = slabs.get(&slab) {
            return Ok(base + (page % self.profile.slab_pages) * self.profile.page_size);
        }
        let base = match self.free_slabs.lock().pop() {
            Some(base) => base,
            None => {
                let base = self.alloc_next.fetch_add(self.slab_bytes(), Ordering::Relaxed);
                if base + self.slab_bytes() > self.region.len() {
                    return Err(IoError::NoSpace);
                }
                base
            }
        };
        slabs.insert(slab, base);
        inode.meta_dirty.store(true, Ordering::Release);
        Ok(base + (page % self.profile.slab_pages) * self.profile.page_size)
    }

    fn map_existing(&self, inode: &DaxInode, page: u64) -> Option<u64> {
        let slab = page / self.profile.slab_pages;
        inode
            .slabs
            .lock()
            .get(&slab)
            .map(|&base| base + (page % self.profile.slab_pages) * self.profile.page_size)
    }

    fn lookup(&self, path: &str) -> Option<Arc<DaxInode>> {
        self.files.read().get(path).cloned()
    }

    fn is_dir(&self, path: &str) -> bool {
        if path == "/" {
            return true;
        }
        let prefix = format!("{path}/");
        self.files.read().keys().any(|k| k.starts_with(&prefix))
    }

    fn journal_commit(&self, clock: &ActorClock) {
        clock.advance(self.profile.journal_commit);
        self.region.psync(clock);
    }
}

impl FileSystem for DaxFs {
    fn name(&self) -> &str {
        "ext4-dax"
    }

    fn open(&self, path: &str, flags: OpenFlags, clock: &ActorClock) -> IoResult<Fd> {
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let path = normalize_path(path);
        let inode = match self.lookup(&path) {
            Some(inode) => {
                if flags.contains(OpenFlags::CREATE) && flags.contains(OpenFlags::EXCL) {
                    return Err(IoError::AlreadyExists(path));
                }
                if flags.contains(OpenFlags::TRUNC) && flags.writable() {
                    inode.size.store(0, Ordering::Release);
                    inode.meta_dirty.store(true, Ordering::Release);
                }
                inode
            }
            None => {
                if !flags.contains(OpenFlags::CREATE) {
                    return Err(IoError::NotFound(path));
                }
                let inode = Arc::new(DaxInode {
                    ino: self.next_ino.fetch_add(1, Ordering::Relaxed),
                    size: AtomicU64::new(0),
                    slabs: Mutex::new(HashMap::new()),
                    meta_dirty: AtomicBool::new(true),
                });
                self.files.write().insert(path, Arc::clone(&inode));
                inode
            }
        };
        Ok(self.fds.insert(DaxFd { inode, flags }))
    }

    fn close(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.profile.costs.syscall);
        self.fds.remove(fd).map(|_| ())
    }

    fn pread(&self, fd: Fd, buf: &mut [u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let entry = self.fds.get(fd)?;
        if !entry.flags.readable() {
            return Err(IoError::PermissionDenied("fd opened write-only".into()));
        }
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let inode = &entry.inode;
        let size = inode.size.load(Ordering::Acquire);
        if off >= size {
            return Ok(0);
        }
        let total = buf.len().min((size - off) as usize);
        let ps = self.profile.page_size;
        let mut pos = 0usize;
        while pos < total {
            let abs = off + pos as u64;
            let page = abs / ps;
            let in_page = (abs % ps) as usize;
            let n = (ps as usize - in_page).min(total - pos);
            match self.map_existing(inode, page) {
                Some(base) => {
                    let mut tmp = vec![0u8; n];
                    self.region.read(base + in_page as u64, &mut tmp, clock);
                    buf[pos..pos + n].copy_from_slice(&tmp);
                }
                None => buf[pos..pos + n].fill(0),
            }
            pos += n;
        }
        clock.advance(self.profile.costs.copy(total as u64));
        Ok(total)
    }

    fn pwrite(&self, fd: Fd, data: &[u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let entry = self.fds.get(fd)?;
        if !entry.flags.writable() {
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        clock.advance(
            self.profile.costs.syscall
                + self.profile.costs.fs_overhead
                + self.profile.write_path_overhead,
        );
        let inode = &entry.inode;
        let ps = self.profile.page_size;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = off + pos as u64;
            let page = abs / ps;
            let in_page = (abs % ps) as usize;
            let n = (ps as usize - in_page).min(data.len() - pos);
            let base = self.map_alloc(inode, page)?;
            // DAX is in-place and byte-addressable: partial pages need no
            // read-modify cycle.
            self.region.write_and_pwb(base + in_page as u64, &data[pos..pos + n], clock);
            pos += n;
        }
        // The kernel's DAX write path flushes data before returning.
        self.region.pfence(clock);
        let end = off + data.len() as u64;
        if inode.size.fetch_max(end, Ordering::AcqRel) < end {
            inode.meta_dirty.store(true, Ordering::Release);
        }
        if entry.flags.contains(OpenFlags::SYNC) {
            self.journal_commit(clock);
            inode.meta_dirty.store(false, Ordering::Release);
        }
        Ok(data.len())
    }

    fn fsync(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        let entry = self.fds.get(fd)?;
        clock.advance(self.profile.costs.syscall);
        if entry.inode.meta_dirty.swap(false, Ordering::AcqRel) {
            self.journal_commit(clock);
        } else {
            self.region.psync(clock);
        }
        Ok(())
    }

    fn ftruncate(&self, fd: Fd, len: u64, clock: &ActorClock) -> IoResult<()> {
        let entry = self.fds.get(fd)?;
        if !entry.flags.writable() {
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        entry.inode.size.store(len, Ordering::Release);
        entry.inode.meta_dirty.store(true, Ordering::Release);
        Ok(())
    }

    fn fstat(&self, fd: Fd, clock: &ActorClock) -> IoResult<Metadata> {
        clock.advance(self.profile.costs.syscall);
        let entry = self.fds.get(fd)?;
        Ok(Metadata {
            dev: self.dev_id,
            ino: entry.inode.ino,
            size: entry.inode.size.load(Ordering::Acquire),
            is_dir: false,
        })
    }

    fn stat(&self, path: &str, clock: &ActorClock) -> IoResult<Metadata> {
        clock.advance(self.profile.costs.syscall);
        let path = normalize_path(path);
        if let Some(inode) = self.lookup(&path) {
            return Ok(Metadata {
                dev: self.dev_id,
                ino: inode.ino,
                size: inode.size.load(Ordering::Acquire),
                is_dir: false,
            });
        }
        if self.is_dir(&path) {
            return Ok(Metadata { dev: self.dev_id, ino: 0, size: 0, is_dir: true });
        }
        Err(IoError::NotFound(path))
    }

    fn unlink(&self, path: &str, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let path = normalize_path(path);
        let inode = self.files.write().remove(&path).ok_or(IoError::NotFound(path))?;
        self.reclaim_slabs(&inode);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let from = normalize_path(from);
        let to = normalize_path(to);
        let mut files = self.files.write();
        let inode = files.remove(&from).ok_or(IoError::NotFound(from))?;
        if let Some(replaced) = files.insert(to, inode) {
            self.reclaim_slabs(&replaced);
        }
        Ok(())
    }

    fn list_dir(&self, dir: &str, clock: &ActorClock) -> IoResult<Vec<String>> {
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let dir = normalize_path(dir);
        let mut out: Vec<String> =
            self.files.read().keys().filter(|k| parent_of(k) == dir).cloned().collect();
        out.sort();
        Ok(out)
    }

    fn sync(&self, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.profile.costs.syscall);
        self.journal_commit(clock);
        Ok(())
    }

    fn simulate_power_failure(&self) {
        // Data writes are flushed on the write path and metadata is assumed
        // journaled; nothing volatile to lose in this model.
    }

    fn synchronous_durability(&self) -> bool {
        false // needs O_DIRECT|O_SYNC per Table IV
    }

    fn durable_linearizability(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::{NvDimm, NvmmProfile};

    fn fs(mib: u64) -> (ActorClock, DaxFs) {
        let dimm = Arc::new(NvDimm::new(mib << 20, NvmmProfile::optane()));
        (ActorClock::new(), DaxFs::new(NvRegion::whole(dimm), DaxProfile::default()))
    }

    #[test]
    fn write_read_round_trip() {
        let (c, fs) = fs(8);
        let fd = fs.open("/d", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        let data: Vec<u8> = (0..9000u32).map(|i| (i % 253) as u8).collect();
        fs.pwrite(fd, &data, 123, &c).unwrap();
        let mut buf = vec![0u8; data.len()];
        fs.pread(fd, &mut buf, 123, &c).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn capacity_is_limited_to_nvmm() {
        let (c, fs) = fs(2);
        let fd = fs.open("/big", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        let mut res = Ok(0);
        for i in 0..512u64 {
            res = fs.pwrite(fd, &[0u8; 4096], i * (1 << 20), &c);
            if res.is_err() {
                break;
            }
        }
        assert!(matches!(res, Err(IoError::NoSpace)), "expected ENOSPC, got {res:?}");
    }

    #[test]
    fn sync_write_is_tens_of_microseconds() {
        let (c, fs) = fs(8);
        let fd = fs
            .open("/s", OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::SYNC, &c)
            .unwrap();
        let before = c.now();
        fs.pwrite(fd, &[1u8; 4096], 0, &c).unwrap();
        let latency = c.now() - before;
        // Paper Fig. 4: Ext4-DAX sustains ~130-140 MiB/s => ~28µs per 4 KiB.
        assert!(latency > SimTime::from_micros(15), "too fast: {latency}");
        assert!(latency < SimTime::from_micros(45), "too slow: {latency}");
    }

    #[test]
    fn data_survives_power_failure() {
        let (c, fs) = fs(8);
        let fd = fs.open("/p", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, b"persisted", 0, &c).unwrap();
        fs.simulate_power_failure();
        let mut buf = [0u8; 9];
        fs.pread(fd, &mut buf, 0, &c).unwrap();
        assert_eq!(&buf, b"persisted");
    }

    #[test]
    fn partial_page_write_is_in_place() {
        let (c, fs) = fs(8);
        let fd = fs.open("/ip", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, &[0xAA; 4096], 0, &c).unwrap();
        fs.pwrite(fd, &[0xBB; 10], 1000, &c).unwrap();
        let mut buf = [0u8; 4096];
        fs.pread(fd, &mut buf, 0, &c).unwrap();
        assert_eq!(buf[999], 0xAA);
        assert_eq!(buf[1000], 0xBB);
        assert_eq!(buf[1010], 0xAA);
    }
}
