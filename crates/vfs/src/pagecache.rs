use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Configuration of a [`PageCache`].
#[derive(Debug, Clone)]
pub struct PageCacheConfig {
    /// Maximum resident pages before eviction kicks in.
    pub capacity_pages: usize,
    /// Page size in bytes.
    pub page_size: usize,
    /// Whether page content is retained (off = timing-only benchmarks).
    pub keep_content: bool,
}

impl Default for PageCacheConfig {
    fn default() -> Self {
        PageCacheConfig { capacity_pages: 262_144, page_size: 4096, keep_content: true }
    }
}

/// Counters exported by the page cache.
#[derive(Debug, Default)]
pub struct PageCacheStats {
    /// Lookups that found the page resident.
    pub hits: AtomicU64,
    /// Lookups that missed.
    pub misses: AtomicU64,
    /// Pages evicted to make room.
    pub evictions: AtomicU64,
    /// Dirty pages handed back for writeback.
    pub writebacks: AtomicU64,
}

/// A page evicted while dirty; the caller must write it back to the device.
#[derive(Debug)]
pub struct EvictedPage {
    /// Inode the page belongs to.
    pub ino: u64,
    /// Page number within the file.
    pub page: u64,
    /// Page content (zeroes when content retention is disabled).
    pub data: Vec<u8>,
}

#[derive(Debug)]
struct Page {
    data: Option<Box<[u8]>>,
    dirty: bool,
    accessed: bool,
}

#[derive(Debug, Default)]
struct Inner {
    pages: HashMap<(u64, u64), Page>,
    /// Second-chance eviction queue (may contain stale keys).
    queue: VecDeque<(u64, u64)>,
}

/// The kernel's volatile write-back page cache.
///
/// This is the component NVCache deliberately keeps *behind* its NVMM write
/// log: the paper's design retains it to combine writes in volatile memory
/// before they reach the mass storage ("the kernel naturally combines the
/// writes by updating the modified page in the volatile page cache before
/// flushing the modified page to disk only once", §I). Overwrites of a dirty
/// resident page therefore cost one device write, not two — the effect the
/// batching experiment (Fig. 6) depends on.
///
/// Eviction is second-chance (CLOCK), the standard approximation of LRU used
/// by Linux. Dirty pages evicted or flushed are returned to the caller — the
/// file system owns the device and the journal.
#[derive(Debug)]
pub struct PageCache {
    cfg: PageCacheConfig,
    inner: Mutex<Inner>,
    stats: PageCacheStats,
}

impl PageCache {
    /// Creates a cache with the given configuration.
    pub fn new(cfg: PageCacheConfig) -> Self {
        PageCache { cfg, inner: Mutex::new(Inner::default()), stats: PageCacheStats::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PageCacheConfig {
        &self.cfg
    }

    /// Cache statistics.
    pub fn stats(&self) -> &PageCacheStats {
        &self.stats
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.inner.lock().pages.len()
    }

    /// Whether the page is resident.
    pub fn contains(&self, ino: u64, page: u64) -> bool {
        self.inner.lock().pages.contains_key(&(ino, page))
    }

    fn make_buf(&self) -> Option<Box<[u8]>> {
        self.cfg.keep_content.then(|| vec![0u8; self.cfg.page_size].into_boxed_slice())
    }

    fn evict_if_needed(
        inner: &mut Inner,
        cfg: &PageCacheConfig,
        stats: &PageCacheStats,
    ) -> Vec<EvictedPage> {
        let mut out = Vec::new();
        while inner.pages.len() > cfg.capacity_pages {
            let Some(key) = inner.queue.pop_front() else { break };
            let Some(p) = inner.pages.get_mut(&key) else { continue };
            if p.accessed {
                p.accessed = false;
                inner.queue.push_back(key);
                continue;
            }
            let p = inner.pages.remove(&key).expect("page present");
            stats.evictions.fetch_add(1, Ordering::Relaxed);
            if p.dirty {
                stats.writebacks.fetch_add(1, Ordering::Relaxed);
                out.push(EvictedPage {
                    ino: key.0,
                    page: key.1,
                    data: p.data.map_or_else(|| vec![0u8; cfg.page_size], |d| d.to_vec()),
                });
            }
        }
        out
    }

    /// Inserts (or replaces) a whole page. Returns dirty pages evicted to
    /// make room; the caller must write them back.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one page.
    pub fn insert(&self, ino: u64, page: u64, data: &[u8], dirty: bool) -> Vec<EvictedPage> {
        assert_eq!(data.len(), self.cfg.page_size, "insert expects a whole page");
        let mut inner = self.inner.lock();
        let mut buf = self.make_buf();
        if let Some(b) = &mut buf {
            b.copy_from_slice(data);
        }
        let fresh = inner
            .pages
            .insert((ino, page), Page { data: buf, dirty, accessed: true })
            .is_none();
        if fresh {
            inner.queue.push_back((ino, page));
        }
        Self::evict_if_needed(&mut inner, &self.cfg, &self.stats)
    }

    /// Updates part of a resident page, marking it dirty. Returns `false` on
    /// a miss (the caller must fill the page first).
    pub fn update(&self, ino: u64, page: u64, in_page: usize, bytes: &[u8]) -> bool {
        assert!(in_page + bytes.len() <= self.cfg.page_size, "update exceeds page");
        let mut inner = self.inner.lock();
        match inner.pages.get_mut(&(ino, page)) {
            Some(p) => {
                if let Some(d) = &mut p.data {
                    d[in_page..in_page + bytes.len()].copy_from_slice(bytes);
                }
                p.dirty = true;
                p.accessed = true;
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Copies part of a resident page into `buf`. Returns `false` on a miss.
    pub fn read(&self, ino: u64, page: u64, in_page: usize, buf: &mut [u8]) -> bool {
        assert!(in_page + buf.len() <= self.cfg.page_size, "read exceeds page");
        let mut inner = self.inner.lock();
        match inner.pages.get_mut(&(ino, page)) {
            Some(p) => {
                match &p.data {
                    Some(d) => buf.copy_from_slice(&d[in_page..in_page + buf.len()]),
                    None => buf.fill(0),
                }
                p.accessed = true;
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Removes and returns all dirty pages of `ino` (sorted by page number),
    /// marking them clean but leaving them resident. Used by `fsync`.
    pub fn take_dirty(&self, ino: u64) -> Vec<(u64, Vec<u8>)> {
        let mut inner = self.inner.lock();
        let mut out = Vec::new();
        let page_size = self.cfg.page_size;
        for (&(i, page), p) in inner.pages.iter_mut() {
            if i == ino && p.dirty {
                p.dirty = false;
                let data = p.data.as_ref().map_or_else(|| vec![0u8; page_size], |d| d.to_vec());
                out.push((page, data));
            }
        }
        out.sort_by_key(|(page, _)| *page);
        self.stats.writebacks.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Removes and returns every dirty page (sorted by inode then page).
    pub fn take_all_dirty(&self) -> Vec<EvictedPage> {
        let mut inner = self.inner.lock();
        let mut out = Vec::new();
        let page_size = self.cfg.page_size;
        for (&(ino, page), p) in inner.pages.iter_mut() {
            if p.dirty {
                p.dirty = false;
                out.push(EvictedPage {
                    ino,
                    page,
                    data: p.data.as_ref().map_or_else(|| vec![0u8; page_size], |d| d.to_vec()),
                });
            }
        }
        out.sort_by_key(|e| (e.ino, e.page));
        self.stats.writebacks.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Drops every page of `ino` (unlink / truncate).
    pub fn drop_inode(&self, ino: u64) {
        self.inner.lock().pages.retain(|&(i, _), _| i != ino);
    }

    /// Power failure: the cache is volatile, everything vanishes.
    pub fn drop_all(&self) {
        let mut inner = self.inner.lock();
        inner.pages.clear();
        inner.queue.clear();
    }

    /// Number of currently dirty pages.
    pub fn dirty_count(&self) -> usize {
        self.inner.lock().pages.values().filter(|p| p.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize) -> PageCache {
        PageCache::new(PageCacheConfig {
            capacity_pages: capacity,
            page_size: 64,
            keep_content: true,
        })
    }

    #[test]
    fn insert_read_update_round_trip() {
        let pc = cache(8);
        pc.insert(1, 0, &[7u8; 64], false);
        let mut buf = [0u8; 16];
        assert!(pc.read(1, 0, 8, &mut buf));
        assert_eq!(buf, [7u8; 16]);
        assert!(pc.update(1, 0, 0, &[9u8; 4]));
        let mut head = [0u8; 4];
        pc.read(1, 0, 0, &mut head);
        assert_eq!(head, [9u8; 4]);
    }

    #[test]
    fn miss_returns_false() {
        let pc = cache(8);
        let mut buf = [0u8; 4];
        assert!(!pc.read(1, 0, 0, &mut buf));
        assert!(!pc.update(1, 0, 0, &[1]));
        assert_eq!(pc.stats().misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn eviction_returns_dirty_pages_only() {
        let pc = cache(2);
        pc.insert(1, 0, &[1u8; 64], true);
        pc.insert(1, 1, &[2u8; 64], false);
        // Third insert overflows; CLOCK clears accessed bits first, so insert
        // a fourth to force a real eviction.
        let mut evicted: Vec<EvictedPage> = Vec::new();
        evicted.extend(pc.insert(1, 2, &[3u8; 64], false));
        evicted.extend(pc.insert(1, 3, &[4u8; 64], false));
        assert!(pc.resident() <= 3);
        for e in &evicted {
            assert_eq!(e.data[0], 1, "only the dirty page should need writeback");
        }
    }

    #[test]
    fn take_dirty_is_sorted_and_clears_dirty() {
        let pc = cache(16);
        pc.insert(5, 3, &[3u8; 64], true);
        pc.insert(5, 1, &[1u8; 64], true);
        pc.insert(5, 2, &[2u8; 64], false);
        pc.insert(6, 0, &[6u8; 64], true);
        let dirty = pc.take_dirty(5);
        assert_eq!(dirty.iter().map(|(p, _)| *p).collect::<Vec<_>>(), vec![1, 3]);
        assert!(pc.take_dirty(5).is_empty(), "second take sees nothing dirty");
        // Pages remain resident and readable.
        let mut buf = [0u8; 1];
        assert!(pc.read(5, 3, 0, &mut buf));
        assert_eq!(buf[0], 3);
    }

    #[test]
    fn write_combining_one_page_many_updates() {
        let pc = cache(16);
        pc.insert(1, 0, &[0u8; 64], true);
        for i in 0..32 {
            assert!(pc.update(1, 0, (i % 64) as usize, &[i as u8]));
        }
        // 33 logical writes, one dirty page to flush: that is the combining
        // effect the paper's Fig. 6 relies on.
        assert_eq!(pc.take_dirty(1).len(), 1);
    }

    #[test]
    fn drop_all_loses_everything() {
        let pc = cache(8);
        pc.insert(1, 0, &[1u8; 64], true);
        pc.drop_all();
        assert_eq!(pc.resident(), 0);
        assert_eq!(pc.dirty_count(), 0);
    }

    #[test]
    fn drop_inode_is_selective() {
        let pc = cache(8);
        pc.insert(1, 0, &[1u8; 64], false);
        pc.insert(2, 0, &[2u8; 64], false);
        pc.drop_inode(1);
        assert!(!pc.contains(1, 0));
        assert!(pc.contains(2, 0));
    }

    #[test]
    fn content_free_mode_tracks_dirtiness_without_bytes() {
        let pc = PageCache::new(PageCacheConfig {
            capacity_pages: 4,
            page_size: 64,
            keep_content: false,
        });
        pc.insert(1, 0, &[9u8; 64], true);
        let mut buf = [1u8; 8];
        assert!(pc.read(1, 0, 0, &mut buf));
        assert_eq!(buf, [0u8; 8], "content-free mode reads zeroes");
        assert_eq!(pc.take_dirty(1).len(), 1);
    }
}
