use std::error::Error;
use std::fmt;

/// Result alias used across the I/O stack.
pub type IoResult<T> = Result<T, IoError>;

/// Errors returned by [`FileSystem`](crate::FileSystem) operations.
///
/// Mirrors the errno values the paper's C implementation would surface
/// through libc.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IoError {
    /// ENOENT — the path does not exist.
    NotFound(String),
    /// EEXIST — the path already exists (with `O_CREAT|O_EXCL`).
    AlreadyExists(String),
    /// EBADF — the file descriptor is not open.
    BadFd(u64),
    /// EBADF variant — fd open without the required access mode.
    PermissionDenied(String),
    /// EINVAL — malformed argument.
    InvalidArgument(String),
    /// ENOSPC — backing store exhausted.
    NoSpace,
    /// EISDIR — the operation needs a regular file.
    IsDirectory(String),
    /// ENOTEMPTY — directory removal with children.
    NotEmpty(String),
    /// EXDEV — the operation would cross file-system (backend) boundaries,
    /// e.g. a rename between two tiers of a multi-backend mount.
    CrossDevice(String),
    /// EBUSY — the file is in use and the operation needs exclusive access,
    /// e.g. migrating a file that is open or whose log entries are still
    /// draining.
    Busy(String),
    /// Any other condition, with context.
    Other(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            IoError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            IoError::BadFd(fd) => write!(f, "bad file descriptor: {fd}"),
            IoError::PermissionDenied(m) => write!(f, "permission denied: {m}"),
            IoError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            IoError::NoSpace => write!(f, "no space left on device"),
            IoError::IsDirectory(p) => write!(f, "is a directory: {p}"),
            IoError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            IoError::CrossDevice(m) => write!(f, "invalid cross-device link: {m}"),
            IoError::Busy(m) => write!(f, "device or resource busy: {m}"),
            IoError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl Error for IoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        assert_eq!(IoError::NotFound("/a".into()).to_string(), "no such file or directory: /a");
        assert_eq!(IoError::BadFd(3).to_string(), "bad file descriptor: 3");
        assert_eq!(IoError::NoSpace.to_string(), "no space left on device");
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(IoError::NoSpace);
    }
}
