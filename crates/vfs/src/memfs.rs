use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use simclock::ActorClock;

use crate::path::parent_of;
use crate::{
    normalize_path, Fd, FdTable, FileSystem, IoError, IoResult, KernelCosts, Metadata, OpenFlags,
};

#[derive(Debug)]
struct MemInode {
    ino: u64,
    data: RwLock<Vec<u8>>,
}

#[derive(Clone)]
struct MemFd {
    inode: Arc<MemInode>,
    flags: OpenFlags,
}

/// tmpfs: files live entirely in DRAM inside the kernel page cache.
///
/// The fastest baseline of the paper's evaluation (Table IV, last row) and
/// the only one with **no durability whatsoever** — a crash loses everything,
/// which [`simulate_power_failure`](FileSystem::simulate_power_failure)
/// reproduces by discarding all content.
///
/// # Example
///
/// ```
/// use simclock::ActorClock;
/// use vfs::{FileSystem, MemFs, OpenFlags};
///
/// # fn main() -> Result<(), vfs::IoError> {
/// let clock = ActorClock::new();
/// let fs = MemFs::new();
/// let fd = fs.open("/tmp/x", OpenFlags::RDWR | OpenFlags::CREATE, &clock)?;
/// fs.pwrite(fd, b"data", 0, &clock)?;
/// let mut buf = [0u8; 4];
/// fs.pread(fd, &mut buf, 0, &clock)?;
/// assert_eq!(&buf, b"data");
/// # Ok(())
/// # }
/// ```
pub struct MemFs {
    costs: KernelCosts,
    files: RwLock<HashMap<String, Arc<MemInode>>>,
    /// Implicit-directory index: each ancestor directory of a live file,
    /// with the number of files beneath it. Keeps `stat` on a missing path
    /// O(depth) instead of scanning the whole namespace — at a million
    /// files the linear scan turned every create-open quadratic.
    dirs: RwLock<HashMap<String, u64>>,
    fds: FdTable<MemFd>,
    next_ino: AtomicU64,
    dev_id: u64,
}

impl std::fmt::Debug for MemFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemFs").field("files", &self.files.read().len()).finish()
    }
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl MemFs {
    /// Creates an empty tmpfs with default kernel costs.
    pub fn new() -> Self {
        Self::with_costs(KernelCosts::default_model())
    }

    /// Creates an empty tmpfs with explicit kernel costs.
    pub fn with_costs(costs: KernelCosts) -> Self {
        MemFs {
            costs,
            files: RwLock::new(HashMap::new()),
            dirs: RwLock::new(HashMap::new()),
            fds: FdTable::new(),
            next_ino: AtomicU64::new(1),
            dev_id: 0xEE,
        }
    }

    fn lookup(&self, path: &str) -> Option<Arc<MemInode>> {
        self.files.read().get(path).cloned()
    }

    fn is_dir(&self, path: &str) -> bool {
        path == "/" || self.dirs.read().contains_key(path)
    }

    /// Counts `path`'s ancestors into the directory index (file created).
    fn index_ancestors(&self, path: &str) {
        let mut dirs = self.dirs.write();
        let mut dir = parent_of(path);
        while dir != "/" {
            *dirs.entry(dir.to_string()).or_insert(0) += 1;
            dir = parent_of(dir);
        }
    }

    /// Uncounts `path`'s ancestors (file removed or renamed away).
    fn unindex_ancestors(&self, path: &str) {
        let mut dirs = self.dirs.write();
        let mut dir = parent_of(path);
        while dir != "/" {
            if let Some(n) = dirs.get_mut(dir) {
                *n -= 1;
                if *n == 0 {
                    dirs.remove(dir);
                }
            }
            dir = parent_of(dir);
        }
    }
}

impl FileSystem for MemFs {
    fn name(&self) -> &str {
        "tmpfs"
    }

    fn open(&self, path: &str, flags: OpenFlags, clock: &ActorClock) -> IoResult<Fd> {
        clock.advance(self.costs.syscall + self.costs.fs_overhead);
        let path = normalize_path(path);
        let inode = match self.lookup(&path) {
            Some(inode) => {
                if flags.contains(OpenFlags::CREATE) && flags.contains(OpenFlags::EXCL) {
                    return Err(IoError::AlreadyExists(path));
                }
                if flags.contains(OpenFlags::TRUNC) && flags.writable() {
                    inode.data.write().clear();
                }
                inode
            }
            None => {
                if !flags.contains(OpenFlags::CREATE) {
                    return Err(IoError::NotFound(path));
                }
                let inode = Arc::new(MemInode {
                    ino: self.next_ino.fetch_add(1, Ordering::Relaxed),
                    data: RwLock::new(Vec::new()),
                });
                let replaced = self.files.write().insert(path.clone(), Arc::clone(&inode));
                if replaced.is_none() {
                    self.index_ancestors(&path);
                }
                inode
            }
        };
        Ok(self.fds.insert(MemFd { inode, flags }))
    }

    fn close(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.costs.syscall);
        self.fds.remove(fd).map(|_| ())
    }

    fn pread(&self, fd: Fd, buf: &mut [u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let entry = self.fds.get(fd)?;
        if !entry.flags.readable() {
            return Err(IoError::PermissionDenied("fd opened write-only".into()));
        }
        clock.advance(self.costs.syscall + self.costs.fs_overhead);
        let data = entry.inode.data.read();
        let size = data.len() as u64;
        if off >= size {
            return Ok(0);
        }
        let n = buf.len().min((size - off) as usize);
        buf[..n].copy_from_slice(&data[off as usize..off as usize + n]);
        clock.advance(self.costs.copy(n as u64));
        Ok(n)
    }

    fn pwrite(&self, fd: Fd, data: &[u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let entry = self.fds.get(fd)?;
        if !entry.flags.writable() {
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        clock.advance(self.costs.syscall + self.costs.fs_overhead);
        let mut content = entry.inode.data.write();
        let end = off as usize + data.len();
        if content.len() < end {
            content.resize(end, 0);
        }
        content[off as usize..end].copy_from_slice(data);
        clock.advance(self.costs.copy(data.len() as u64));
        Ok(data.len())
    }

    fn fsync(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.costs.syscall);
        self.fds.get(fd).map(|_| ()) // nothing durable to do
    }

    fn ftruncate(&self, fd: Fd, len: u64, clock: &ActorClock) -> IoResult<()> {
        let entry = self.fds.get(fd)?;
        if !entry.flags.writable() {
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        clock.advance(self.costs.syscall + self.costs.fs_overhead);
        entry.inode.data.write().resize(len as usize, 0);
        Ok(())
    }

    fn fstat(&self, fd: Fd, clock: &ActorClock) -> IoResult<Metadata> {
        clock.advance(self.costs.syscall);
        let entry = self.fds.get(fd)?;
        let size = entry.inode.data.read().len() as u64;
        Ok(Metadata { dev: self.dev_id, ino: entry.inode.ino, size, is_dir: false })
    }

    fn stat(&self, path: &str, clock: &ActorClock) -> IoResult<Metadata> {
        clock.advance(self.costs.syscall);
        let path = normalize_path(path);
        if let Some(inode) = self.lookup(&path) {
            return Ok(Metadata {
                dev: self.dev_id,
                ino: inode.ino,
                size: inode.data.read().len() as u64,
                is_dir: false,
            });
        }
        if self.is_dir(&path) {
            return Ok(Metadata { dev: self.dev_id, ino: 0, size: 0, is_dir: true });
        }
        Err(IoError::NotFound(path))
    }

    fn unlink(&self, path: &str, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.costs.syscall + self.costs.fs_overhead);
        let path = normalize_path(path);
        if self.files.write().remove(&path).is_none() {
            return Err(IoError::NotFound(path));
        }
        self.unindex_ancestors(&path);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.costs.syscall + self.costs.fs_overhead);
        let from = normalize_path(from);
        let to = normalize_path(to);
        let replaced = {
            let mut files = self.files.write();
            let inode = files.remove(&from).ok_or(IoError::NotFound(from.clone()))?;
            files.insert(to.clone(), inode)
        };
        self.unindex_ancestors(&from);
        if replaced.is_none() {
            self.index_ancestors(&to);
        }
        Ok(())
    }

    fn list_dir(&self, dir: &str, clock: &ActorClock) -> IoResult<Vec<String>> {
        clock.advance(self.costs.syscall + self.costs.fs_overhead);
        let dir = normalize_path(dir);
        let mut out: Vec<String> =
            self.files.read().keys().filter(|k| parent_of(k) == dir).cloned().collect();
        out.sort();
        Ok(out)
    }

    fn sync(&self, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.costs.syscall);
        Ok(())
    }

    fn simulate_power_failure(&self) {
        self.files.write().clear();
        self.dirs.write().clear();
    }

    fn synchronous_durability(&self) -> bool {
        false
    }

    fn durable_linearizability(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> (ActorClock, MemFs) {
        (ActorClock::new(), MemFs::new())
    }

    #[test]
    fn create_write_read() {
        let (c, fs) = fs();
        let fd = fs.open("/a", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        assert_eq!(fs.pwrite(fd, b"hello", 0, &c).unwrap(), 5);
        let mut buf = [0u8; 5];
        assert_eq!(fs.pread(fd, &mut buf, 0, &c).unwrap(), 5);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn sparse_write_zero_fills() {
        let (c, fs) = fs();
        let fd = fs.open("/s", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, b"x", 100, &c).unwrap();
        assert_eq!(fs.fstat(fd, &c).unwrap().size, 101);
        let mut buf = [9u8; 3];
        fs.pread(fd, &mut buf, 0, &c).unwrap();
        assert_eq!(buf, [0, 0, 0]);
    }

    #[test]
    fn crash_loses_everything() {
        let (c, fs) = fs();
        let fd = fs.open("/gone", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, b"data", 0, &c).unwrap();
        fs.fsync(fd, &c).unwrap(); // tmpfs fsync is a no-op
        fs.simulate_power_failure();
        assert!(matches!(fs.stat("/gone", &c), Err(IoError::NotFound(_))));
    }

    #[test]
    fn open_missing_without_create_fails() {
        let (c, fs) = fs();
        assert!(matches!(fs.open("/missing", OpenFlags::RDONLY, &c), Err(IoError::NotFound(_))));
    }

    #[test]
    fn excl_create_conflicts() {
        let (c, fs) = fs();
        fs.open("/e", OpenFlags::WRONLY | OpenFlags::CREATE, &c).unwrap();
        assert!(matches!(
            fs.open("/e", OpenFlags::WRONLY | OpenFlags::CREATE | OpenFlags::EXCL, &c),
            Err(IoError::AlreadyExists(_))
        ));
    }

    #[test]
    fn trunc_clears_content() {
        let (c, fs) = fs();
        let fd = fs.open("/t", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, b"old content", 0, &c).unwrap();
        fs.close(fd, &c).unwrap();
        let fd2 = fs.open("/t", OpenFlags::RDWR | OpenFlags::TRUNC, &c).unwrap();
        assert_eq!(fs.fstat(fd2, &c).unwrap().size, 0);
    }

    #[test]
    fn rename_and_list_dir() {
        let (c, fs) = fs();
        fs.open("/d/a", OpenFlags::WRONLY | OpenFlags::CREATE, &c).unwrap();
        fs.open("/d/b", OpenFlags::WRONLY | OpenFlags::CREATE, &c).unwrap();
        fs.open("/other", OpenFlags::WRONLY | OpenFlags::CREATE, &c).unwrap();
        assert_eq!(fs.list_dir("/d", &c).unwrap(), vec!["/d/a", "/d/b"]);
        fs.rename("/d/a", "/d2/a", &c).unwrap();
        assert_eq!(fs.list_dir("/d", &c).unwrap(), vec!["/d/b"]);
        assert!(fs.stat("/d2/a", &c).is_ok());
    }

    #[test]
    fn dir_stat_is_implicit() {
        let (c, fs) = fs();
        fs.open("/x/y/z", OpenFlags::WRONLY | OpenFlags::CREATE, &c).unwrap();
        assert!(fs.stat("/x/y", &c).unwrap().is_dir);
        assert!(fs.stat("/x", &c).unwrap().is_dir);
        assert!(!fs.stat("/x/y/z", &c).unwrap().is_dir);
    }

    #[test]
    fn permission_checks() {
        let (c, fs) = fs();
        let ro = fs.open("/p", OpenFlags::RDONLY | OpenFlags::CREATE, &c).unwrap();
        assert!(matches!(fs.pwrite(ro, b"x", 0, &c), Err(IoError::PermissionDenied(_))));
        let wo = fs.open("/p", OpenFlags::WRONLY, &c).unwrap();
        let mut b = [0u8; 1];
        assert!(matches!(fs.pread(wo, &mut b, 0, &c), Err(IoError::PermissionDenied(_))));
    }

    #[test]
    fn unlinked_file_remains_readable_via_open_fd() {
        let (c, fs) = fs();
        let fd = fs.open("/u", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, b"still here", 0, &c).unwrap();
        fs.unlink("/u", &c).unwrap();
        let mut buf = [0u8; 10];
        assert_eq!(fs.pread(fd, &mut buf, 0, &c).unwrap(), 10);
        assert_eq!(&buf, b"still here");
    }
}
