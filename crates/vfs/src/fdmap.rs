use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::{Fd, IoError, IoResult};

/// A concurrent file-descriptor table.
///
/// Shared helper for every [`FileSystem`](crate::FileSystem) implementation:
/// allocates monotonically increasing descriptors and maps them to per-open
/// state.
///
/// # Example
///
/// ```
/// use vfs::FdTable;
/// let t: FdTable<String> = FdTable::new();
/// let fd = t.insert("state".to_string());
/// assert_eq!(t.get(fd).unwrap(), "state");
/// t.remove(fd).unwrap();
/// assert!(t.get(fd).is_err());
/// ```
#[derive(Debug)]
pub struct FdTable<T> {
    next: AtomicU64,
    map: RwLock<HashMap<u64, T>>,
}

impl<T: Clone> FdTable<T> {
    /// Creates an empty table; descriptors start at 3 (0–2 are reserved for
    /// the conventional standard streams).
    pub fn new() -> Self {
        FdTable { next: AtomicU64::new(3), map: RwLock::new(HashMap::new()) }
    }

    /// Allocates a descriptor for `state`.
    pub fn insert(&self, state: T) -> Fd {
        let fd = self.next.fetch_add(1, Ordering::Relaxed);
        self.map.write().insert(fd, state);
        Fd(fd)
    }

    /// Returns a clone of the state for `fd`.
    ///
    /// # Errors
    ///
    /// [`IoError::BadFd`] if not open.
    pub fn get(&self, fd: Fd) -> IoResult<T> {
        self.map.read().get(&fd.0).cloned().ok_or(IoError::BadFd(fd.0))
    }

    /// Removes and returns the state for `fd`.
    ///
    /// # Errors
    ///
    /// [`IoError::BadFd`] if not open.
    pub fn remove(&self, fd: Fd) -> IoResult<T> {
        self.map.write().remove(&fd.0).ok_or(IoError::BadFd(fd.0))
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Snapshot of all open states.
    pub fn values(&self) -> Vec<T> {
        self.map.read().values().cloned().collect()
    }
}

impl<T: Clone> Default for FdTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_are_unique_and_start_at_3() {
        let t: FdTable<u32> = FdTable::new();
        let a = t.insert(1);
        let b = t.insert(2);
        assert_eq!(a, Fd(3));
        assert_eq!(b, Fd(4));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_then_get_fails() {
        let t: FdTable<u32> = FdTable::new();
        let fd = t.insert(9);
        assert_eq!(t.remove(fd).unwrap(), 9);
        assert_eq!(t.get(fd), Err(IoError::BadFd(fd.0)));
        assert_eq!(t.remove(fd), Err(IoError::BadFd(fd.0)));
    }

    #[test]
    fn concurrent_inserts_do_not_collide() {
        use std::sync::Arc;
        let t: Arc<FdTable<u64>> = Arc::new(FdTable::new());
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                (0..100).map(|j| t.insert(i * 100 + j).0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }
}
