//! POSIX-like file-system layer and kernel I/O-stack simulator.
//!
//! NVCache (DSN'21) interposes on the libc I/O functions and forwards them —
//! eventually — to the regular kernel I/O stack. Applications in this
//! reproduction are written against the [`FileSystem`] trait, which plays the
//! role of that libc/syscall boundary. The crate then provides all the
//! storage configurations of the paper's evaluation (Table IV):
//!
//! * [`Ext4`] over an SSD (optionally over a
//!   [`DmWriteCacheDev`](blockdev::DmWriteCacheDev)) — a journaling,
//!   page-cached, in-place file system;
//! * [`MemFs`] — tmpfs, DRAM only, no durability;
//! * [`DaxFs`] — Ext4-DAX: the Ext4 code paths with data access directly to
//!   NVMM, bypassing the page cache;
//! * [`NovaFs`] — NOVA: a log-structured NVMM file system with per-inode
//!   logs and copy-on-write data pages (`cow_data` semantics, hence durable
//!   linearizability).
//!
//! `NVCache` itself (crate `nvcache`) implements the same trait by wrapping
//! any of these as its propagation target.
//!
//! Every operation charges modelled kernel costs ([`KernelCosts`]) against
//! the caller's virtual clock; syscall-free user-space paths (the whole point
//! of NVCache's write path) simply skip those charges.

mod conformance;
mod cost;
mod cursor;
mod dax;
mod error;
mod ext4;
mod fdmap;
mod flags;
mod fs;
mod layer;
mod memfs;
mod nova;
mod pagecache;
mod path;

pub use conformance::check_posix_semantics;
pub use cost::KernelCosts;
pub use cursor::{CursorFile, SeekFrom};
pub use dax::{DaxFs, DaxProfile};
pub use error::{IoError, IoResult};
pub use ext4::{Ext4, Ext4Profile};
pub use fdmap::FdTable;
pub use flags::{Metadata, OpenFlags};
pub use fs::{Fd, FileSystem};
pub use layer::{
    stack, validate_stack, CryptLayer, CryptStats, DelayLayer, DelayProfile, DelayStats,
    FaultLayer, FaultOp, FaultRule, FaultTrigger, Layer, RamCacheLayer, RamCacheStats,
    MAX_STACK_DEPTH,
};
pub use memfs::MemFs;
pub use nova::{NovaFs, NovaProfile};
pub use pagecache::{PageCache, PageCacheConfig, PageCacheStats};
pub use path::normalize_path;
