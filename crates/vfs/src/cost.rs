use simclock::{Bandwidth, SimTime};

/// Modelled CPU/kernel overheads charged by the simulated I/O stack.
///
/// These are the costs that differentiate the systems in the paper's Table I
/// and Figure 3/4: a baseline file system pays `syscall` on every operation's
/// critical path, while NVCache's interposed write path pays only its own
/// user-space bookkeeping ("NVCache never calls the system during a write",
/// paper §IV-C).
#[derive(Debug, Clone)]
pub struct KernelCosts {
    /// User→kernel→user transition (trap, vfs dispatch).
    pub syscall: SimTime,
    /// Copy bandwidth between user buffers and the page cache / DRAM.
    pub copy_bandwidth: Bandwidth,
    /// Page-cache radix lookup per page touched.
    pub page_lookup: SimTime,
    /// Per-operation file-system software path (allocation, journaling
    /// bookkeeping in DRAM — not the device I/O itself).
    pub fs_overhead: SimTime,
}

impl KernelCosts {
    /// Defaults calibrated for a ~2.5 GHz Xeon (paper §IV-A hardware).
    pub fn default_model() -> Self {
        KernelCosts {
            syscall: SimTime::from_nanos(1_800),
            copy_bandwidth: Bandwidth::gib_per_sec(8.0),
            page_lookup: SimTime::from_nanos(150),
            fs_overhead: SimTime::from_nanos(900),
        }
    }

    /// Cost of copying `bytes` between user space and the kernel.
    pub fn copy(&self, bytes: u64) -> SimTime {
        self.copy_bandwidth.time_for(bytes)
    }
}

impl Default for KernelCosts {
    fn default() -> Self {
        Self::default_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_scales_with_size() {
        let k = KernelCosts::default_model();
        assert!(k.copy(1 << 20) > k.copy(4096) * 200);
        // 4 KiB at 8 GiB/s is sub-microsecond.
        assert!(k.copy(4096) < SimTime::from_micros(1));
    }

    #[test]
    fn syscall_dominates_small_copies() {
        let k = KernelCosts::default_model();
        assert!(k.syscall > k.copy(512));
    }
}
