use std::sync::Arc;

use parking_lot::Mutex;
use simclock::ActorClock;

use crate::{Fd, FileSystem, IoError, IoResult, Metadata, OpenFlags};

/// Seek origin, as in `lseek(2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekFrom {
    /// Absolute offset.
    Start(u64),
    /// Relative to the end of file.
    End(i64),
    /// Relative to the current position.
    Current(i64),
}

/// A cursor-based file handle over any [`FileSystem`].
///
/// Provides the sequential `read`/`write`/`lseek` POSIX surface on top of the
/// positional trait, including `O_APPEND` semantics. This is the layer the
/// "legacy application" stand-ins use when they don't track offsets
/// themselves.
///
/// Note NVCache maintains *its own* cursor and size bookkeeping internally
/// (paper Table III: `lseek`/`stat` answered from NVCache state); this
/// handle delegates `size` to `fstat`, which each file system answers from
/// its own fresh metadata.
pub struct CursorFile {
    fs: Arc<dyn FileSystem>,
    fd: Fd,
    flags: OpenFlags,
    pos: Mutex<u64>,
    closed: Mutex<bool>,
}

impl std::fmt::Debug for CursorFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CursorFile")
            .field("fd", &self.fd)
            .field("flags", &self.flags.to_string())
            .field("pos", &*self.pos.lock())
            .finish()
    }
}

impl CursorFile {
    /// Opens `path` on `fs`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`FileSystem::open`] error.
    pub fn open(
        fs: Arc<dyn FileSystem>,
        path: &str,
        flags: OpenFlags,
        clock: &ActorClock,
    ) -> IoResult<CursorFile> {
        let fd = fs.open(path, flags, clock)?;
        Ok(CursorFile { fs, fd, flags, pos: Mutex::new(0), closed: Mutex::new(false) })
    }

    /// The raw descriptor.
    pub fn fd(&self) -> Fd {
        self.fd
    }

    /// The flags the file was opened with.
    pub fn flags(&self) -> OpenFlags {
        self.flags
    }

    /// Reads from the cursor, advancing it.
    ///
    /// # Errors
    ///
    /// Propagates [`FileSystem::pread`] errors.
    pub fn read(&self, buf: &mut [u8], clock: &ActorClock) -> IoResult<usize> {
        let mut pos = self.pos.lock();
        let n = self.fs.pread(self.fd, buf, *pos, clock)?;
        *pos += n as u64;
        Ok(n)
    }

    /// Writes at the cursor, advancing it; honours `O_APPEND`.
    ///
    /// # Errors
    ///
    /// Propagates [`FileSystem::pwrite`] errors.
    pub fn write(&self, data: &[u8], clock: &ActorClock) -> IoResult<usize> {
        let mut pos = self.pos.lock();
        if self.flags.contains(OpenFlags::APPEND) {
            *pos = self.fs.fstat(self.fd, clock)?.size;
        }
        let n = self.fs.pwrite(self.fd, data, *pos, clock)?;
        *pos += n as u64;
        Ok(n)
    }

    /// Moves the cursor.
    ///
    /// # Errors
    ///
    /// [`IoError::InvalidArgument`] when seeking before byte 0.
    pub fn seek(&self, from: SeekFrom, clock: &ActorClock) -> IoResult<u64> {
        let mut pos = self.pos.lock();
        let base: i128 = match from {
            SeekFrom::Start(o) => o as i128,
            SeekFrom::End(d) => self.fs.fstat(self.fd, clock)?.size as i128 + d as i128,
            SeekFrom::Current(d) => *pos as i128 + d as i128,
        };
        if base < 0 {
            return Err(IoError::InvalidArgument("seek before start of file".into()));
        }
        *pos = base as u64;
        Ok(*pos)
    }

    /// Current cursor position (`ftell`).
    pub fn tell(&self) -> u64 {
        *self.pos.lock()
    }

    /// Metadata of the open file.
    ///
    /// # Errors
    ///
    /// Propagates [`FileSystem::fstat`] errors.
    pub fn stat(&self, clock: &ActorClock) -> IoResult<Metadata> {
        self.fs.fstat(self.fd, clock)
    }

    /// Forces durability of the file.
    ///
    /// # Errors
    ///
    /// Propagates [`FileSystem::fsync`] errors.
    pub fn fsync(&self, clock: &ActorClock) -> IoResult<()> {
        self.fs.fsync(self.fd, clock)
    }

    /// Closes the handle. Further operations return `BadFd`.
    ///
    /// # Errors
    ///
    /// Propagates [`FileSystem::close`] errors; double close returns
    /// [`IoError::BadFd`].
    pub fn close(&self, clock: &ActorClock) -> IoResult<()> {
        let mut closed = self.closed.lock();
        if *closed {
            return Err(IoError::BadFd(self.fd.0));
        }
        *closed = true;
        self.fs.close(self.fd, clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    fn open_tmp(flags: OpenFlags) -> (ActorClock, CursorFile) {
        let clock = ActorClock::new();
        let fs: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let f = CursorFile::open(fs, "/f", flags | OpenFlags::CREATE, &clock).unwrap();
        (clock, f)
    }

    #[test]
    fn sequential_write_then_read() {
        let (clock, f) = open_tmp(OpenFlags::RDWR);
        f.write(b"hello ", &clock).unwrap();
        f.write(b"world", &clock).unwrap();
        assert_eq!(f.tell(), 11);
        f.seek(SeekFrom::Start(0), &clock).unwrap();
        let mut buf = [0u8; 11];
        assert_eq!(f.read(&mut buf, &clock).unwrap(), 11);
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn append_mode_writes_at_end() {
        let (clock, f) = open_tmp(OpenFlags::RDWR | OpenFlags::APPEND);
        f.write(b"aaa", &clock).unwrap();
        f.seek(SeekFrom::Start(0), &clock).unwrap();
        f.write(b"bbb", &clock).unwrap();
        assert_eq!(f.stat(&clock).unwrap().size, 6);
    }

    #[test]
    fn seek_variants() {
        let (clock, f) = open_tmp(OpenFlags::RDWR);
        f.write(b"0123456789", &clock).unwrap();
        assert_eq!(f.seek(SeekFrom::End(-4), &clock).unwrap(), 6);
        assert_eq!(f.seek(SeekFrom::Current(2), &clock).unwrap(), 8);
        assert!(f.seek(SeekFrom::Current(-100), &clock).is_err());
    }

    #[test]
    fn double_close_is_bad_fd() {
        let (clock, f) = open_tmp(OpenFlags::RDWR);
        f.close(&clock).unwrap();
        assert!(matches!(f.close(&clock), Err(IoError::BadFd(_))));
    }

    #[test]
    fn read_at_eof_is_short() {
        let (clock, f) = open_tmp(OpenFlags::RDWR);
        f.write(b"xy", &clock).unwrap();
        f.seek(SeekFrom::Start(1), &clock).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(f.read(&mut buf, &clock).unwrap(), 1);
        assert_eq!(buf[0], b'y');
        assert_eq!(f.read(&mut buf, &clock).unwrap(), 0);
    }
}
