use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nvmm::NvRegion;
use parking_lot::{Mutex, RwLock};
use simclock::{ActorClock, SimTime};

use crate::path::parent_of;
use crate::{
    normalize_path, Fd, FdTable, FileSystem, IoError, IoResult, KernelCosts, Metadata, OpenFlags,
};

/// Tuning of the simulated NOVA file system.
#[derive(Debug, Clone)]
pub struct NovaProfile {
    /// Kernel path costs (NOVA still pays the syscall on the critical path —
    /// the reason the paper's ideal-case FIO run has NVCache slightly ahead
    /// of NOVA, §IV-C "Comparative behavior").
    pub costs: KernelCosts,
    /// CPU cost of allocating a fresh data page + log entry.
    pub alloc_overhead: SimTime,
    /// Cost of persisting a metadata log entry (create/unlink/rename write
    /// and fence a dentry + inode record in NVMM).
    pub meta_persist: SimTime,
    /// Size of an inode-log entry.
    pub log_entry_bytes: usize,
    /// Page size.
    pub page_size: u64,
}

impl Default for NovaProfile {
    fn default() -> Self {
        NovaProfile {
            costs: KernelCosts::default_model(),
            alloc_overhead: SimTime::from_nanos(200),
            meta_persist: SimTime::from_micros(3),
            log_entry_bytes: 64,
            page_size: 4096,
        }
    }
}

#[derive(Debug)]
struct NovaInode {
    ino: u64,
    size: AtomicU64,
    /// file page -> NVMM offset of the current (CoW) page version
    pages: Mutex<HashMap<u64, u64>>,
    /// entries appended to this inode's log (for stats/debug)
    log_entries: AtomicU64,
}

#[derive(Clone)]
struct NovaFd {
    inode: Arc<NovaInode>,
    flags: OpenFlags,
}

/// Simulated NOVA: a log-structured file system for hybrid volatile /
/// non-volatile main memories (paper Table IV row "NOVA", ref \[57\]).
///
/// Every write allocates fresh NVMM pages (copy-on-write), persists them,
/// then appends and persists a small entry in the per-inode log — after which
/// the write is both synchronously durable and durably linearizable (the
/// `cow_data` mount the paper uses). `fsync` is effectively free. The price:
/// a syscall on every operation and a working set capped by NVMM capacity.
pub struct NovaFs {
    region: NvRegion,
    profile: NovaProfile,
    files: RwLock<HashMap<String, Arc<NovaInode>>>,
    fds: FdTable<NovaFd>,
    next_ino: AtomicU64,
    alloc_next: AtomicU64,
    free_pages: Mutex<Vec<u64>>,
    dev_id: u64,
}

impl std::fmt::Debug for NovaFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NovaFs").field("files", &self.files.read().len()).finish()
    }
}

impl NovaFs {
    /// Creates a NOVA instance over an NVMM region.
    pub fn new(region: NvRegion, profile: NovaProfile) -> Self {
        NovaFs {
            region,
            profile,
            files: RwLock::new(HashMap::new()),
            fds: FdTable::new(),
            next_ino: AtomicU64::new(1),
            alloc_next: AtomicU64::new(0),
            free_pages: Mutex::new(Vec::new()),
            dev_id: 0x0A,
        }
    }

    fn alloc_page(&self) -> IoResult<u64> {
        if let Some(p) = self.free_pages.lock().pop() {
            return Ok(p);
        }
        let off = self.alloc_next.fetch_add(self.profile.page_size, Ordering::Relaxed);
        if off + self.profile.page_size > self.region.len() {
            return Err(IoError::NoSpace);
        }
        Ok(off)
    }

    fn alloc_log_entry(&self) -> IoResult<u64> {
        let n = self.profile.log_entry_bytes as u64;
        let off = self.alloc_next.fetch_add(n, Ordering::Relaxed);
        if off + n > self.region.len() {
            return Err(IoError::NoSpace);
        }
        Ok(off)
    }

    fn lookup(&self, path: &str) -> Option<Arc<NovaInode>> {
        self.files.read().get(path).cloned()
    }

    fn is_dir(&self, path: &str) -> bool {
        if path == "/" {
            return true;
        }
        let prefix = format!("{path}/");
        self.files.read().keys().any(|k| k.starts_with(&prefix))
    }

    fn free_inode_pages(&self, inode: &NovaInode) {
        let mut pages = inode.pages.lock();
        let mut free = self.free_pages.lock();
        free.extend(pages.values().copied());
        pages.clear();
    }
}

impl FileSystem for NovaFs {
    fn name(&self) -> &str {
        "nova"
    }

    fn open(&self, path: &str, flags: OpenFlags, clock: &ActorClock) -> IoResult<Fd> {
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let path = normalize_path(path);
        let inode = match self.lookup(&path) {
            Some(inode) => {
                if flags.contains(OpenFlags::CREATE) && flags.contains(OpenFlags::EXCL) {
                    return Err(IoError::AlreadyExists(path));
                }
                if flags.contains(OpenFlags::TRUNC) && flags.writable() {
                    inode.size.store(0, Ordering::Release);
                    self.free_inode_pages(&inode);
                }
                inode
            }
            None => {
                if !flags.contains(OpenFlags::CREATE) {
                    return Err(IoError::NotFound(path));
                }
                clock.advance(self.profile.meta_persist);
                let inode = Arc::new(NovaInode {
                    ino: self.next_ino.fetch_add(1, Ordering::Relaxed),
                    size: AtomicU64::new(0),
                    pages: Mutex::new(HashMap::new()),
                    log_entries: AtomicU64::new(0),
                });
                self.files.write().insert(path, Arc::clone(&inode));
                inode
            }
        };
        Ok(self.fds.insert(NovaFd { inode, flags }))
    }

    fn close(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.profile.costs.syscall);
        self.fds.remove(fd).map(|_| ())
    }

    fn pread(&self, fd: Fd, buf: &mut [u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let entry = self.fds.get(fd)?;
        if !entry.flags.readable() {
            return Err(IoError::PermissionDenied("fd opened write-only".into()));
        }
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let inode = &entry.inode;
        let size = inode.size.load(Ordering::Acquire);
        if off >= size {
            return Ok(0);
        }
        let total = buf.len().min((size - off) as usize);
        let ps = self.profile.page_size;
        let mut pos = 0usize;
        while pos < total {
            let abs = off + pos as u64;
            let page = abs / ps;
            let in_page = (abs % ps) as usize;
            let n = (ps as usize - in_page).min(total - pos);
            let mapped = inode.pages.lock().get(&page).copied();
            match mapped {
                Some(base) => {
                    let mut tmp = vec![0u8; n];
                    self.region.read(base + in_page as u64, &mut tmp, clock);
                    buf[pos..pos + n].copy_from_slice(&tmp);
                }
                None => buf[pos..pos + n].fill(0),
            }
            pos += n;
        }
        clock.advance(self.profile.costs.copy(total as u64));
        Ok(total)
    }

    fn pwrite(&self, fd: Fd, data: &[u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let entry = self.fds.get(fd)?;
        if !entry.flags.writable() {
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        clock.advance(
            self.profile.costs.syscall
                + self.profile.costs.fs_overhead
                + self.profile.alloc_overhead,
        );
        let inode = &entry.inode;
        let ps = self.profile.page_size;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = off + pos as u64;
            let page = abs / ps;
            let in_page = (abs % ps) as usize;
            let n = (ps as usize - in_page).min(data.len() - pos);
            let new_page = self.alloc_page()?;
            let old = inode.pages.lock().get(&page).copied();
            match old {
                Some(old_page) if n < ps as usize => {
                    // CoW read-modify-write of the previous version.
                    let mut content = vec![0u8; ps as usize];
                    self.region.read(old_page, &mut content, clock);
                    content[in_page..in_page + n].copy_from_slice(&data[pos..pos + n]);
                    self.region.write_and_pwb(new_page, &content, clock);
                }
                _ => {
                    // Whole page (or fresh page): no read needed; zero-fill
                    // tail.
                    let mut content = vec![0u8; ps as usize];
                    content[in_page..in_page + n].copy_from_slice(&data[pos..pos + n]);
                    self.region.write_and_pwb(new_page, &content, clock);
                }
            }
            // Append + persist the inode log entry, then flip the mapping.
            let log_off = self.alloc_log_entry()?;
            let log_entry = vec![0xABu8; self.profile.log_entry_bytes];
            self.region.write_and_pwb(log_off, &log_entry, clock);
            self.region.psync(clock);
            inode.log_entries.fetch_add(1, Ordering::Relaxed);
            let prev = inode.pages.lock().insert(page, new_page);
            if let Some(p) = prev {
                self.free_pages.lock().push(p);
            }
            pos += n;
        }
        let end = off + data.len() as u64;
        inode.size.fetch_max(end, Ordering::AcqRel);
        Ok(data.len())
    }

    fn fsync(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        // Everything is already durable; only the syscall is charged.
        clock.advance(self.profile.costs.syscall);
        self.fds.get(fd).map(|_| ())
    }

    fn ftruncate(&self, fd: Fd, len: u64, clock: &ActorClock) -> IoResult<()> {
        let entry = self.fds.get(fd)?;
        if !entry.flags.writable() {
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        entry.inode.size.store(len, Ordering::Release);
        Ok(())
    }

    fn fstat(&self, fd: Fd, clock: &ActorClock) -> IoResult<Metadata> {
        clock.advance(self.profile.costs.syscall);
        let entry = self.fds.get(fd)?;
        Ok(Metadata {
            dev: self.dev_id,
            ino: entry.inode.ino,
            size: entry.inode.size.load(Ordering::Acquire),
            is_dir: false,
        })
    }

    fn stat(&self, path: &str, clock: &ActorClock) -> IoResult<Metadata> {
        clock.advance(self.profile.costs.syscall);
        let path = normalize_path(path);
        if let Some(inode) = self.lookup(&path) {
            return Ok(Metadata {
                dev: self.dev_id,
                ino: inode.ino,
                size: inode.size.load(Ordering::Acquire),
                is_dir: false,
            });
        }
        if self.is_dir(&path) {
            return Ok(Metadata { dev: self.dev_id, ino: 0, size: 0, is_dir: true });
        }
        Err(IoError::NotFound(path))
    }

    fn unlink(&self, path: &str, clock: &ActorClock) -> IoResult<()> {
        clock.advance(
            self.profile.costs.syscall + self.profile.costs.fs_overhead + self.profile.meta_persist,
        );
        let path = normalize_path(path);
        let inode = self.files.write().remove(&path).ok_or(IoError::NotFound(path))?;
        self.free_inode_pages(&inode);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str, clock: &ActorClock) -> IoResult<()> {
        clock.advance(
            self.profile.costs.syscall + self.profile.costs.fs_overhead + self.profile.meta_persist,
        );
        let from = normalize_path(from);
        let to = normalize_path(to);
        let mut files = self.files.write();
        let inode = files.remove(&from).ok_or(IoError::NotFound(from))?;
        if let Some(replaced) = files.insert(to, inode) {
            self.free_inode_pages(&replaced);
        }
        Ok(())
    }

    fn list_dir(&self, dir: &str, clock: &ActorClock) -> IoResult<Vec<String>> {
        clock.advance(self.profile.costs.syscall + self.profile.costs.fs_overhead);
        let dir = normalize_path(dir);
        let mut out: Vec<String> =
            self.files.read().keys().filter(|k| parent_of(k) == dir).cloned().collect();
        out.sort();
        Ok(out)
    }

    fn sync(&self, clock: &ActorClock) -> IoResult<()> {
        clock.advance(self.profile.costs.syscall);
        Ok(())
    }

    fn simulate_power_failure(&self) {
        // CoW data and log entries are persisted before each write returns;
        // nothing volatile to lose.
    }

    fn synchronous_durability(&self) -> bool {
        true
    }

    fn durable_linearizability(&self) -> bool {
        true // cow_data mount, paper Table IV footnote 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm::{NvDimm, NvmmProfile};

    fn fs(mib: u64) -> (ActorClock, NovaFs) {
        let dimm = Arc::new(NvDimm::new(mib << 20, NvmmProfile::optane()));
        (ActorClock::new(), NovaFs::new(NvRegion::whole(dimm), NovaProfile::default()))
    }

    #[test]
    fn write_read_round_trip() {
        let (c, fs) = fs(8);
        let fd = fs.open("/n", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 241) as u8).collect();
        fs.pwrite(fd, &data, 77, &c).unwrap();
        let mut buf = vec![0u8; data.len()];
        fs.pread(fd, &mut buf, 77, &c).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn write_latency_is_about_ten_microseconds() {
        let (c, fs) = fs(8);
        let fd = fs.open("/w", OpenFlags::WRONLY | OpenFlags::CREATE, &c).unwrap();
        let before = c.now();
        fs.pwrite(fd, &[1u8; 4096], 0, &c).unwrap();
        let latency = c.now() - before;
        // Paper Fig. 4: NOVA sustains ~400 MiB/s => ~10µs per 4 KiB write.
        assert!(latency >= SimTime::from_micros(7), "too fast: {latency}");
        assert!(latency <= SimTime::from_micros(14), "too slow: {latency}");
    }

    #[test]
    fn fsync_is_nearly_free() {
        let (c, fs) = fs(8);
        let fd = fs.open("/s", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, &[1u8; 4096], 0, &c).unwrap();
        let before = c.now();
        fs.fsync(fd, &c).unwrap();
        assert!(c.now() - before < SimTime::from_micros(3));
    }

    #[test]
    fn cow_recycles_old_pages() {
        let (c, fs) = fs(4);
        let fd = fs.open("/cow", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        // Overwrite the same page far more times than raw capacity would
        // allow without recycling: 4 MiB region, 2000 x 4 KiB writes = 8 MiB.
        for i in 0..2000u64 {
            fs.pwrite(fd, &[(i % 255) as u8; 4096], 0, &c).unwrap();
        }
        let mut buf = [0u8; 1];
        fs.pread(fd, &mut buf, 0, &c).unwrap();
        assert_eq!(buf[0], (1999 % 255) as u8);
    }

    #[test]
    fn capacity_limited_to_nvmm() {
        let (c, fs) = fs(2);
        let fd = fs.open("/big", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        let mut res = Ok(0);
        for i in 0..1024u64 {
            res = fs.pwrite(fd, &[0u8; 4096], i * 4096, &c);
            if res.is_err() {
                break;
            }
        }
        assert!(matches!(res, Err(IoError::NoSpace)));
    }

    #[test]
    fn survives_power_failure_without_fsync() {
        let (c, fs) = fs(8);
        let fd = fs.open("/d", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, b"durable without fsync", 0, &c).unwrap();
        fs.simulate_power_failure();
        let mut buf = [0u8; 21];
        fs.pread(fd, &mut buf, 0, &c).unwrap();
        assert_eq!(&buf, b"durable without fsync");
    }

    #[test]
    fn reports_strong_guarantees() {
        let (_c, fs) = fs(1);
        assert!(fs.synchronous_durability());
        assert!(fs.durable_linearizability());
    }
}
