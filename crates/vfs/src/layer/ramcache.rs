//! [`RamCacheLayer`]: a write-through DRAM page read-cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simclock::ActorClock;

use super::Layer;
use crate::{normalize_path, Fd, FileSystem, IoError, IoResult, Metadata, OpenFlags};

const PAGE: u64 = 4096;

/// Deterministic snapshot of a [`RamCacheLayer`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RamCacheStats {
    /// Page lookups served from the cache (no inner `pread`).
    pub hits: u64,
    /// Page lookups that went to the inner backend (and filled the cache).
    pub misses: u64,
    /// Pages evicted to respect the capacity bound.
    pub evictions: u64,
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A [`Layer`] adding a bounded, write-through DRAM read-cache of 4 KiB
/// pages in front of a backend.
///
/// * **Reads** are served page-by-page from the cache when possible; a
///   miss reads the page from the inner backend once and caches it
///   (read-allocate). A hit skips the inner `pread` entirely — and with it
///   the inner device's virtual-time read cost, which is the effect being
///   modelled.
/// * **Writes** always go to the inner backend first (write-through: the
///   layer adds no durability risk and no dirty state), then are spliced
///   into any already-cached pages. The cache never holds data the inner
///   backend has not accepted.
/// * Eviction is least-recently-used at page granularity; `unlink`,
///   `rename`, `ftruncate`, `O_TRUNC` opens and simulated power failures
///   invalidate affected entries (DRAM contents do not survive a crash).
///
/// Cached pages store the page's stored prefix: content past a cached
/// short page is known to be zeroes (all mutation flows through the
/// layer), so sparse-file semantics hold without re-reading.
///
/// [`RamCacheLayer::inert`] (capacity zero) is the inert configuration:
/// `wrap` returns the inner file system unchanged.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use simclock::ActorClock;
/// use vfs::{FileSystem, Layer, MemFs, OpenFlags, RamCacheLayer};
///
/// let layer = RamCacheLayer::new(64);
/// let fs = layer.wrap(Arc::new(MemFs::new()));
/// let clock = ActorClock::new();
/// let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
/// fs.pwrite(fd, &[7u8; 4096], 0, &clock).unwrap();
/// let mut buf = [0u8; 4096];
/// fs.pread(fd, &mut buf, 0, &clock).unwrap(); // miss: fills the cache
/// fs.pread(fd, &mut buf, 0, &clock).unwrap(); // hit: no inner read
/// assert_eq!(layer.stats().hits, 1);
/// assert_eq!(layer.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct RamCacheLayer {
    capacity: usize,
    state: Arc<CacheState>,
}

#[derive(Debug)]
struct CachedPage {
    /// The page's stored prefix (length ≤ 4096); bytes past it are zeroes.
    data: Vec<u8>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    counters: Counters,
    pages: Mutex<PageMap>,
}

#[derive(Debug, Default)]
struct PageMap {
    map: HashMap<(String, u64), CachedPage>,
    tick: u64,
}

impl RamCacheLayer {
    /// A cache holding at most `pages` 4 KiB pages. `pages == 0` is the
    /// inert configuration (see [`RamCacheLayer::inert`]).
    pub fn new(pages: usize) -> Self {
        RamCacheLayer { capacity: pages, state: Arc::new(CacheState::default()) }
    }

    /// The inert configuration: zero capacity, [`wrap`](Layer::wrap)
    /// returns the inner file system unchanged.
    pub fn inert() -> Self {
        Self::new(0)
    }

    /// Capacity bound in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deterministic counters: hits, misses and evictions.
    pub fn stats(&self) -> RamCacheStats {
        RamCacheStats {
            hits: self.state.counters.hits.load(Ordering::Acquire),
            misses: self.state.counters.misses.load(Ordering::Acquire),
            evictions: self.state.counters.evictions.load(Ordering::Acquire),
        }
    }
}

impl Layer for RamCacheLayer {
    fn name(&self) -> &str {
        "ramcache"
    }

    fn wrap(&self, inner: Arc<dyn FileSystem>) -> Arc<dyn FileSystem> {
        if self.capacity == 0 {
            // Inert mode: the identity layer.
            return inner;
        }
        Arc::new(RamCacheFs {
            name: format!("ramcache({})", inner.name()),
            capacity: self.capacity,
            state: Arc::clone(&self.state),
            fds: Mutex::new(HashMap::new()),
            inner,
        })
    }
}

struct FdEntry {
    path: String,
    flags: OpenFlags,
}

struct RamCacheFs {
    name: String,
    capacity: usize,
    state: Arc<CacheState>,
    fds: Mutex<HashMap<u64, FdEntry>>,
    inner: Arc<dyn FileSystem>,
}

impl RamCacheFs {
    fn check(&self, fd: Fd) -> IoResult<(String, OpenFlags)> {
        let fds = self.fds.lock();
        let e = fds.get(&fd.0).ok_or(IoError::BadFd(fd.0))?;
        Ok((e.path.clone(), e.flags))
    }

    fn invalidate_path(&self, path: &str) {
        self.state.pages.lock().map.retain(|(p, _), _| p != path);
    }

    fn insert(&self, pages: &mut PageMap, key: (String, u64), data: Vec<u8>) {
        while pages.map.len() >= self.capacity {
            if let Some(victim) =
                pages.map.iter().min_by_key(|(_, p)| p.last_used).map(|(k, _)| k.clone())
            {
                pages.map.remove(&victim);
                self.state.counters.evictions.fetch_add(1, Ordering::AcqRel);
            } else {
                break;
            }
        }
        pages.tick += 1;
        let last_used = pages.tick;
        pages.map.insert(key, CachedPage { data, last_used });
    }
}

impl FileSystem for RamCacheFs {
    fn name(&self) -> &str {
        &self.name
    }

    fn open(&self, path: &str, flags: OpenFlags, clock: &ActorClock) -> IoResult<Fd> {
        let path = normalize_path(path);
        let fd = self.inner.open(&path, flags, clock)?;
        if flags.contains(OpenFlags::TRUNC) && flags.writable() {
            self.invalidate_path(&path);
        }
        self.fds.lock().insert(fd.0, FdEntry { path, flags });
        Ok(fd)
    }

    fn close(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        self.fds.lock().remove(&fd.0).ok_or(IoError::BadFd(fd.0))?;
        self.inner.close(fd, clock)
    }

    fn pread(&self, fd: Fd, buf: &mut [u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let (path, flags) = self.check(fd)?;
        if !flags.readable() {
            return Err(IoError::PermissionDenied("fd opened write-only".into()));
        }
        if buf.is_empty() {
            return Ok(0);
        }
        let size = self.inner.fstat(fd, clock)?.size;
        if off >= size {
            return Ok(0);
        }
        let n = buf.len().min((size - off) as usize);
        let (first, last) = (off / PAGE, (off + n as u64 - 1) / PAGE);
        for page_no in first..=last {
            let base = page_no * PAGE;
            let avail = (size - base).min(PAGE) as usize;
            let lo = off.max(base);
            let hi = (off + n as u64).min(base + avail as u64);
            let key = (path.clone(), page_no);
            let mut pages = self.state.pages.lock();
            if pages.map.contains_key(&key) {
                // Hit. Bytes past a cached short page are zeroes (every
                // mutation flows through this layer).
                pages.tick += 1;
                let tick = pages.tick;
                let p = pages.map.get_mut(&key).unwrap();
                p.last_used = tick;
                let dst = &mut buf[(lo - off) as usize..(hi - off) as usize];
                for (i, b) in dst.iter_mut().enumerate() {
                    let idx = (lo - base) as usize + i;
                    *b = p.data.get(idx).copied().unwrap_or(0);
                }
                self.state.counters.hits.fetch_add(1, Ordering::AcqRel);
            } else {
                drop(pages);
                let mut page_buf = vec![0u8; avail];
                let got = self.inner.pread(fd, &mut page_buf, base, clock)?;
                page_buf.truncate(got);
                buf[(lo - off) as usize..(hi - off) as usize].copy_from_slice(
                    &{
                        let mut full = page_buf.clone();
                        full.resize(avail, 0);
                        full
                    }[(lo - base) as usize..(hi - base) as usize],
                );
                let mut pages = self.state.pages.lock();
                self.insert(&mut pages, key, page_buf);
                self.state.counters.misses.fetch_add(1, Ordering::AcqRel);
            }
        }
        Ok(n)
    }

    fn pwrite(&self, fd: Fd, data: &[u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let (path, flags) = self.check(fd)?;
        if !flags.writable() {
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        // Write-through: the inner backend accepts the bytes first.
        let n = self.inner.pwrite(fd, data, off, clock)?;
        if n == 0 {
            return Ok(n);
        }
        let end = off + n as u64;
        let (first, last) = (off / PAGE, (end - 1) / PAGE);
        let mut pages = self.state.pages.lock();
        for page_no in first..=last {
            let base = page_no * PAGE;
            if let Some(p) = pages.map.get_mut(&(path.clone(), page_no)) {
                let w_lo = (off.max(base) - base) as usize;
                let w_hi = (end.min(base + PAGE) - base) as usize;
                if p.data.len() < w_hi {
                    p.data.resize(w_hi, 0);
                }
                let d_lo = (off.max(base) - off) as usize;
                p.data[w_lo..w_hi].copy_from_slice(&data[d_lo..d_lo + (w_hi - w_lo)]);
            }
        }
        Ok(n)
    }

    fn fsync(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        self.check(fd)?;
        self.inner.fsync(fd, clock)
    }

    fn ftruncate(&self, fd: Fd, len: u64, clock: &ActorClock) -> IoResult<()> {
        let (path, flags) = self.check(fd)?;
        if !flags.writable() {
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        self.inner.ftruncate(fd, len, clock)?;
        self.invalidate_path(&path);
        Ok(())
    }

    fn fstat(&self, fd: Fd, clock: &ActorClock) -> IoResult<Metadata> {
        self.check(fd)?;
        self.inner.fstat(fd, clock)
    }

    fn stat(&self, path: &str, clock: &ActorClock) -> IoResult<Metadata> {
        self.inner.stat(path, clock)
    }

    fn unlink(&self, path: &str, clock: &ActorClock) -> IoResult<()> {
        let path = normalize_path(path);
        self.inner.unlink(&path, clock)?;
        self.invalidate_path(&path);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str, clock: &ActorClock) -> IoResult<()> {
        let from = normalize_path(from);
        let to = normalize_path(to);
        self.inner.rename(&from, &to, clock)?;
        self.invalidate_path(&from);
        self.invalidate_path(&to);
        Ok(())
    }

    fn list_dir(&self, dir: &str, clock: &ActorClock) -> IoResult<Vec<String>> {
        self.inner.list_dir(dir, clock)
    }

    fn sync(&self, clock: &ActorClock) -> IoResult<()> {
        self.inner.sync(clock)
    }

    fn simulate_power_failure(&self) {
        // DRAM does not survive: drop everything, then crash the backend.
        self.state.pages.lock().map.clear();
        self.inner.simulate_power_failure();
    }

    fn synchronous_durability(&self) -> bool {
        self.inner.synchronous_durability()
    }

    fn durable_linearizability(&self) -> bool {
        self.inner.durable_linearizability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    #[test]
    fn hits_skip_the_inner_read_and_are_counted() {
        let layer = RamCacheLayer::new(16);
        let fs = layer.wrap(Arc::new(MemFs::new()));
        let c = ActorClock::new();
        let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, &[3u8; 8192], 0, &c).unwrap();
        let mut buf = [0u8; 8192];
        fs.pread(fd, &mut buf, 0, &c).unwrap(); // two misses
        let t_miss = c.now();
        fs.pread(fd, &mut buf, 0, &c).unwrap(); // two hits
        let t_hit = c.now() - t_miss;
        assert_eq!(buf, [3u8; 8192]);
        assert_eq!(layer.stats().hits, 2);
        assert_eq!(layer.stats().misses, 2);
        // The hit round must be strictly cheaper in virtual time than the
        // miss round (it skipped the inner device reads).
        assert!(t_hit < t_miss, "hits ({t_hit:?}) should undercut misses ({t_miss:?})");
    }

    #[test]
    fn writes_are_write_through_and_splice_cached_pages() {
        let layer = RamCacheLayer::new(16);
        let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let fs = layer.wrap(Arc::clone(&inner));
        let c = ActorClock::new();
        let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, &[1u8; 4096], 0, &c).unwrap();
        let mut buf = [0u8; 4096];
        fs.pread(fd, &mut buf, 0, &c).unwrap(); // cache the page
        fs.pwrite(fd, &[2u8; 100], 50, &c).unwrap();
        // The inner backend has the new bytes immediately (write-through)…
        let raw = inner.open("/f", OpenFlags::RDONLY, &c).unwrap();
        let mut rest = [0u8; 100];
        inner.pread(raw, &mut rest, 50, &c).unwrap();
        assert_eq!(rest, [2u8; 100]);
        // …and the cached page was spliced, so the hit serves fresh data.
        fs.pread(fd, &mut buf, 0, &c).unwrap();
        assert_eq!(&buf[50..150], &[2u8; 100][..]);
        assert_eq!(&buf[..50], &[1u8; 50][..]);
        assert!(layer.stats().hits >= 1);
    }

    #[test]
    fn eviction_respects_capacity() {
        let layer = RamCacheLayer::new(2);
        let fs = layer.wrap(Arc::new(MemFs::new()));
        let c = ActorClock::new();
        let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, &[9u8; 4096 * 4], 0, &c).unwrap();
        let mut buf = [0u8; 4096];
        for page in 0..4 {
            fs.pread(fd, &mut buf, page * 4096, &c).unwrap();
        }
        assert_eq!(layer.stats().misses, 4);
        assert_eq!(layer.stats().evictions, 2);
        assert_eq!(buf, [9u8; 4096]);
    }

    #[test]
    fn truncate_and_power_failure_invalidate() {
        let layer = RamCacheLayer::new(16);
        let fs = layer.wrap(Arc::new(MemFs::new()));
        let c = ActorClock::new();
        let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, &[5u8; 4096], 0, &c).unwrap();
        let mut buf = [0u8; 4096];
        fs.pread(fd, &mut buf, 0, &c).unwrap();
        fs.ftruncate(fd, 10, &c).unwrap();
        assert_eq!(fs.pread(fd, &mut buf, 0, &c).unwrap(), 10, "truncated size must win");
        fs.ftruncate(fd, 4096, &c).unwrap();
        fs.pread(fd, &mut buf, 0, &c).unwrap();
        assert_eq!(&buf[..10], &[5u8; 10][..]);
        assert!(buf[10..].iter().all(|&b| b == 0), "extension must read as zeroes");
    }

    #[test]
    fn inert_configuration_is_the_identity() {
        let layer = RamCacheLayer::inert();
        let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let fs = layer.wrap(Arc::clone(&inner));
        assert!(Arc::ptr_eq(&fs, &inner));
        assert_eq!(layer.stats(), RamCacheStats::default());
    }
}
