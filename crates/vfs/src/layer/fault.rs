//! [`FaultLayer`]: deterministic fault injection for chaos and crash tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simclock::ActorClock;

use super::Layer;
use crate::{Fd, FileSystem, IoError, IoResult, Metadata, OpenFlags};

/// The operation kind a [`FaultRule`] matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// `open`.
    Open,
    /// `close`.
    Close,
    /// `pread`.
    Read,
    /// `pwrite`.
    Write,
    /// `fsync`.
    Fsync,
    /// `ftruncate`.
    Truncate,
    /// `fstat`.
    Fstat,
    /// `stat`.
    Stat,
    /// `unlink`.
    Unlink,
    /// `rename` (the path predicate tests the *source* name).
    Rename,
    /// `list_dir`.
    ListDir,
    /// `sync`.
    Sync,
}

/// When a [`FaultRule`] fires. All triggers are deterministic: the same
/// operation sequence produces the same faults, every run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTrigger {
    /// The first `n` matching operations succeed; every later one fails
    /// (`AfterBudget(0)` fails them all — the old `FailingFs` semantics).
    AfterBudget(u64),
    /// Exactly the `n`-th matching operation fails (1-based); all others
    /// pass.
    OnNth(u64),
    /// Every matching operation on a path starting with this prefix fails.
    /// Descriptor-based operations use the path recorded at `open`.
    PathPrefix(String),
}

/// One fault schedule entry: which op kind, when, and what error.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Operation kind the rule matches.
    pub op: FaultOp,
    /// Firing condition over the sequence of matching operations.
    pub trigger: FaultTrigger,
    /// The error returned when the rule fires.
    pub error: IoError,
}

impl FaultRule {
    /// A rule with the default injected error message.
    pub fn new(op: FaultOp, trigger: FaultTrigger) -> Self {
        FaultRule { error: IoError::Other(format!("injected {op:?} fault")), op, trigger }
    }

    /// Replaces the injected error.
    #[must_use]
    pub fn with_error(mut self, error: IoError) -> Self {
        self.error = error;
        self
    }
}

#[derive(Debug)]
struct FaultState {
    rules: Vec<FaultRule>,
    /// Per-rule count of *matching* operations observed while armed.
    seen: Vec<AtomicU64>,
    /// Per-rule count of injected faults.
    fired: Vec<AtomicU64>,
    injected: AtomicU64,
    armed: AtomicBool,
    /// `fd → path`, maintained only when a [`FaultTrigger::PathPrefix`]
    /// rule exists (the map is host-side bookkeeping: no clock effect).
    fd_paths: Mutex<HashMap<u64, String>>,
    track_paths: bool,
}

/// A [`Layer`] injecting deterministic faults per a schedule of
/// [`FaultRule`]s — the first matching rule that fires wins.
///
/// This is the first-class generalization of the test-private `FailingFs`:
/// op-count budgets, exact nth-op triggers, and path predicates, with
/// per-layer injected-fault counters and a runtime [`arm`](FaultLayer::arm)
/// / [`disarm`](FaultLayer::disarm) switch. While disarmed (or with an
/// empty schedule — [`inert`](FaultLayer::inert)) the layer is a pure
/// call-forwarder: no clock effect, no counter movement, byte- and
/// virtual-time-identical to the bare backend.
///
/// Faults fail the call **before** it reaches the inner file system — the
/// inner state is untouched, exactly like an I/O error surfacing from a
/// device queue.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use simclock::ActorClock;
/// use vfs::{FaultLayer, Layer, MemFs, OpenFlags};
///
/// let layer = FaultLayer::failing_pwrites(1); // one write allowed, then EIO
/// let fs = layer.wrap(Arc::new(MemFs::new()));
/// let clock = ActorClock::new();
/// let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
/// assert!(fs.pwrite(fd, b"ok", 0, &clock).is_ok());
/// assert!(fs.pwrite(fd, b"boom", 2, &clock).is_err());
/// assert_eq!(layer.faults_injected(), 1);
/// ```
#[derive(Debug)]
pub struct FaultLayer {
    state: Arc<FaultState>,
}

impl FaultLayer {
    /// A layer with the given fault schedule, armed.
    pub fn new(rules: Vec<FaultRule>) -> Self {
        let track_paths = rules.iter().any(|r| matches!(r.trigger, FaultTrigger::PathPrefix(_)));
        let n = rules.len();
        FaultLayer {
            state: Arc::new(FaultState {
                rules,
                seen: (0..n).map(|_| AtomicU64::new(0)).collect(),
                fired: (0..n).map(|_| AtomicU64::new(0)).collect(),
                injected: AtomicU64::new(0),
                armed: AtomicBool::new(true),
                fd_paths: Mutex::new(HashMap::new()),
                track_paths,
            }),
        }
    }

    /// The inert configuration: an empty schedule, a pure call-forwarder.
    pub fn inert() -> Self {
        Self::new(Vec::new())
    }

    /// The old `FailingFs` schedule: the first `allowed` `pwrite`s succeed,
    /// every later one fails with an injected I/O error.
    pub fn failing_pwrites(allowed: u64) -> Self {
        Self::new(vec![FaultRule::new(FaultOp::Write, FaultTrigger::AfterBudget(allowed))
            .with_error(IoError::Other("injected inner pwrite failure".into()))])
    }

    /// Starts (or resumes) injecting faults. New layers start armed.
    pub fn arm(&self) {
        self.state.armed.store(true, Ordering::Release);
    }

    /// Stops injecting faults and freezes the schedule counters; the layer
    /// forwards everything until re-armed.
    pub fn disarm(&self) {
        self.state.armed.store(false, Ordering::Release);
    }

    /// Whether faults are currently being injected.
    pub fn is_armed(&self) -> bool {
        self.state.armed.load(Ordering::Acquire)
    }

    /// Total faults injected by this layer.
    pub fn faults_injected(&self) -> u64 {
        self.state.injected.load(Ordering::Acquire)
    }

    /// Faults injected by the rule at `idx` (schedule order).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn faults_injected_by(&self, idx: usize) -> u64 {
        self.state.fired[idx].load(Ordering::Acquire)
    }
}

impl Layer for FaultLayer {
    fn name(&self) -> &str {
        "fault"
    }

    fn wrap(&self, inner: Arc<dyn FileSystem>) -> Arc<dyn FileSystem> {
        Arc::new(FaultFs {
            name: format!("fault({})", inner.name()),
            state: Arc::clone(&self.state),
            inner,
        })
    }
}

struct FaultFs {
    name: String,
    state: Arc<FaultState>,
    inner: Arc<dyn FileSystem>,
}

impl FaultFs {
    /// Checks the schedule for `op`; `path` is the affected path when one
    /// is known (path ops directly, fd ops via the recorded open path).
    fn check(&self, op: FaultOp, path: Option<&str>) -> IoResult<()> {
        let st = &self.state;
        if st.rules.is_empty() || !st.armed.load(Ordering::Acquire) {
            return Ok(());
        }
        for (i, rule) in st.rules.iter().enumerate() {
            if rule.op != op {
                continue;
            }
            let n = st.seen[i].fetch_add(1, Ordering::AcqRel) + 1;
            let fires = match &rule.trigger {
                FaultTrigger::AfterBudget(b) => n > *b,
                FaultTrigger::OnNth(k) => n == *k,
                FaultTrigger::PathPrefix(p) => path.is_some_and(|s| s.starts_with(p.as_str())),
            };
            if fires {
                st.fired[i].fetch_add(1, Ordering::AcqRel);
                st.injected.fetch_add(1, Ordering::AcqRel);
                return Err(rule.error.clone());
            }
        }
        Ok(())
    }

    fn path_of(&self, fd: Fd) -> Option<String> {
        if !self.state.track_paths {
            return None;
        }
        self.state.fd_paths.lock().get(&fd.0).cloned()
    }
}

impl FileSystem for FaultFs {
    fn name(&self) -> &str {
        &self.name
    }

    fn open(&self, path: &str, flags: OpenFlags, clock: &ActorClock) -> IoResult<Fd> {
        self.check(FaultOp::Open, Some(path))?;
        let fd = self.inner.open(path, flags, clock)?;
        if self.state.track_paths {
            self.state.fd_paths.lock().insert(fd.0, path.to_string());
        }
        Ok(fd)
    }

    fn close(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        self.check(FaultOp::Close, self.path_of(fd).as_deref())?;
        self.inner.close(fd, clock)?;
        if self.state.track_paths {
            self.state.fd_paths.lock().remove(&fd.0);
        }
        Ok(())
    }

    fn pread(&self, fd: Fd, buf: &mut [u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        self.check(FaultOp::Read, self.path_of(fd).as_deref())?;
        self.inner.pread(fd, buf, off, clock)
    }

    fn pwrite(&self, fd: Fd, data: &[u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        self.check(FaultOp::Write, self.path_of(fd).as_deref())?;
        self.inner.pwrite(fd, data, off, clock)
    }

    fn fsync(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        self.check(FaultOp::Fsync, self.path_of(fd).as_deref())?;
        self.inner.fsync(fd, clock)
    }

    fn ftruncate(&self, fd: Fd, len: u64, clock: &ActorClock) -> IoResult<()> {
        self.check(FaultOp::Truncate, self.path_of(fd).as_deref())?;
        self.inner.ftruncate(fd, len, clock)
    }

    fn fstat(&self, fd: Fd, clock: &ActorClock) -> IoResult<Metadata> {
        self.check(FaultOp::Fstat, self.path_of(fd).as_deref())?;
        self.inner.fstat(fd, clock)
    }

    fn stat(&self, path: &str, clock: &ActorClock) -> IoResult<Metadata> {
        self.check(FaultOp::Stat, Some(path))?;
        self.inner.stat(path, clock)
    }

    fn unlink(&self, path: &str, clock: &ActorClock) -> IoResult<()> {
        self.check(FaultOp::Unlink, Some(path))?;
        self.inner.unlink(path, clock)
    }

    fn rename(&self, from: &str, to: &str, clock: &ActorClock) -> IoResult<()> {
        self.check(FaultOp::Rename, Some(from))?;
        self.inner.rename(from, to, clock)
    }

    fn list_dir(&self, dir: &str, clock: &ActorClock) -> IoResult<Vec<String>> {
        self.check(FaultOp::ListDir, Some(dir))?;
        self.inner.list_dir(dir, clock)
    }

    fn sync(&self, clock: &ActorClock) -> IoResult<()> {
        self.check(FaultOp::Sync, None)?;
        self.inner.sync(clock)
    }

    fn simulate_power_failure(&self) {
        self.inner.simulate_power_failure();
    }

    fn synchronous_durability(&self) -> bool {
        self.inner.synchronous_durability()
    }

    fn durable_linearizability(&self) -> bool {
        self.inner.durable_linearizability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    fn rig(layer: &FaultLayer) -> (ActorClock, Arc<dyn FileSystem>) {
        (ActorClock::new(), layer.wrap(Arc::new(MemFs::new())))
    }

    #[test]
    fn budget_allows_then_fails_forever() {
        let layer = FaultLayer::failing_pwrites(2);
        let (c, fs) = rig(&layer);
        let fd = fs.open("/b", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        assert!(fs.pwrite(fd, b"1", 0, &c).is_ok());
        assert!(fs.pwrite(fd, b"2", 1, &c).is_ok());
        for _ in 0..3 {
            assert!(matches!(fs.pwrite(fd, b"x", 2, &c), Err(IoError::Other(_))));
        }
        assert_eq!(layer.faults_injected(), 3);
        assert_eq!(layer.faults_injected_by(0), 3);
    }

    #[test]
    fn nth_op_trigger_fails_exactly_once() {
        let layer = FaultLayer::new(vec![FaultRule::new(FaultOp::Fsync, FaultTrigger::OnNth(2))]);
        let (c, fs) = rig(&layer);
        let fd = fs.open("/n", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        assert!(fs.fsync(fd, &c).is_ok());
        assert!(fs.fsync(fd, &c).is_err());
        assert!(fs.fsync(fd, &c).is_ok());
        assert_eq!(layer.faults_injected(), 1);
    }

    #[test]
    fn path_predicate_hits_fd_ops_through_the_recorded_open_path() {
        let layer = FaultLayer::new(vec![FaultRule::new(
            FaultOp::Write,
            FaultTrigger::PathPrefix("/victim".into()),
        )]);
        let (c, fs) = rig(&layer);
        let ok = fs.open("/bystander", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        let bad = fs.open("/victim/f", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        assert!(fs.pwrite(ok, b"fine", 0, &c).is_ok());
        assert!(fs.pwrite(bad, b"nope", 0, &c).is_err());
        // Unlink and stat on the same prefix are unaffected (different op).
        assert!(fs.stat("/victim/f", &c).is_ok());
        assert_eq!(layer.faults_injected(), 1);
    }

    #[test]
    fn disarm_freezes_the_schedule_and_forwards() {
        let layer = FaultLayer::failing_pwrites(0);
        let (c, fs) = rig(&layer);
        let fd = fs.open("/d", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        assert!(fs.pwrite(fd, b"no", 0, &c).is_err());
        layer.disarm();
        assert!(fs.pwrite(fd, b"yes", 0, &c).is_ok());
        layer.arm();
        assert!(fs.pwrite(fd, b"no", 0, &c).is_err());
        assert_eq!(layer.faults_injected(), 2);
    }

    #[test]
    fn inert_layer_is_time_identical_to_bare() {
        let layer = FaultLayer::inert();
        let fs = layer.wrap(Arc::new(MemFs::new()));
        let bare: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let (c1, c2) = (ActorClock::new(), ActorClock::new());
        for (fs, c) in [(&fs, &c1), (&bare, &c2)] {
            let fd = fs.open("/a", OpenFlags::RDWR | OpenFlags::CREATE, c).unwrap();
            fs.pwrite(fd, &[3; 512], 0, c).unwrap();
            fs.fsync(fd, c).unwrap();
            fs.close(fd, c).unwrap();
        }
        assert_eq!(c1.now(), c2.now());
        assert_eq!(layer.faults_injected(), 0);
    }
}
