//! Composable backend **layers**: behavior stacked *vertically* over a
//! [`FileSystem`].
//!
//! The mount stack composes backends *side-by-side* — a router picks one
//! tier per file. Layers compose **vertically**: each wraps an inner
//! `Arc<dyn FileSystem>` and returns another `Arc<dyn FileSystem>`, so a
//! tier can be `crypt(delay(ssd))` and everything above it (cache drains,
//! the tier migrator, recovery) works unchanged, because a layered backend
//! *is* a plain `FileSystem`.
//!
//! ```text
//!           NvCache mount
//!                │ Router picks a tier per file
//!       ┌────────┴────────┐
//!    tier 0            tier 1
//!   CryptLayer        RamCacheLayer      ← outermost layer
//!       │                 │
//!   DelayLayer         Ext4+SSD          ← … down to the base backend
//!       │
//!    Ext4+SSD
//! ```
//!
//! Four first-class layers ship with the crate:
//!
//! * [`DelayLayer`] — deterministic per-op virtual-time latency (device
//!   parameterization, what-if modelling);
//! * [`FaultLayer`] — deterministic fault schedules (op budgets, nth-op
//!   triggers, path predicates) for chaos/crash testing;
//! * [`CryptLayer`] — simulated-fidelity encryption-at-rest: per-page
//!   XOR keystream plus a stored per-page auth tag, verified on read;
//! * [`RamCacheLayer`] — a write-through DRAM page read-cache with
//!   hit/miss statistics.
//!
//! # The inertness contract
//!
//! Every layer type has an **inert configuration** (its `inert()`
//! constructor, or equivalent zero/empty settings) under which the wrapper
//! is a pure call-forwarder: it never touches the caller's virtual clock,
//! never alters arguments, results, errors, or stored bytes, and never
//! reorders operations. A mount whose tiers are wrapped in inert layers is
//! therefore **byte- and virtual-time-identical** to the unlayered mount —
//! the conformance matrix in `tests/layer_matrix.rs` pins this down on
//! region bytes, the application clock, and the deterministic statistics.
//! Active layers must still preserve application-visible *content* (the
//! byte oracle); only their timing and their storage representation may
//! differ.
//!
//! Layer handles stay usable after wrapping: the same [`FaultLayer`] value
//! that built a stack can `arm()`/`disarm()` faults mid-run and report
//! [`faults_injected`](FaultLayer::faults_injected) — the wrapper shares
//! its state. One layer value should wrap one stack; wrapping several
//! stacks with the same handle shares counters (and, for
//! [`RamCacheLayer`], the cache itself) across them.

mod crypt;
mod delay;
mod fault;
mod ramcache;

use std::sync::Arc;

use crate::{FileSystem, IoError, IoResult};

pub use crypt::{CryptLayer, CryptStats};
pub use delay::{DelayLayer, DelayProfile, DelayStats};
pub use fault::{FaultLayer, FaultOp, FaultRule, FaultTrigger};
pub use ramcache::{RamCacheLayer, RamCacheStats};

/// Deepest supported layer stack per tier. Stacks are hand-assembled and
/// shallow in practice; the bound exists to catch accidentally cyclic or
/// programmatically exploded stacks at mount time instead of at run time.
pub const MAX_STACK_DEPTH: usize = 8;

/// A vertically composable file-system layer.
///
/// Object-safe: a stack is a `Vec<Arc<dyn Layer>>`. [`wrap`](Layer::wrap)
/// consumes nothing — the layer value keeps its shared state (counters,
/// fault schedules, cache contents) and stays usable as a live handle to
/// the wrapper it produced.
pub trait Layer: Send + Sync + std::fmt::Debug {
    /// Short human-readable name (e.g. `"delay"`, `"crypt"`).
    fn name(&self) -> &str;

    /// Wraps `inner`, returning the layered file system.
    fn wrap(&self, inner: Arc<dyn FileSystem>) -> Arc<dyn FileSystem>;
}

/// Validates a layer stack without applying it: currently the depth bound
/// ([`MAX_STACK_DEPTH`]).
///
/// # Errors
///
/// [`IoError::InvalidArgument`] naming the offending stack depth.
pub fn validate_stack(layers: &[Arc<dyn Layer>]) -> IoResult<()> {
    if layers.len() > MAX_STACK_DEPTH {
        return Err(IoError::InvalidArgument(format!(
            "layer stack of depth {} exceeds MAX_STACK_DEPTH ({MAX_STACK_DEPTH})",
            layers.len()
        )));
    }
    Ok(())
}

/// Applies a stack of layers over `inner`: the **first** element becomes
/// the outermost wrapper, so `stack(&[crypt, delay], ssd)` builds
/// `crypt(delay(ssd))`. An empty stack returns `inner` unchanged.
///
/// # Errors
///
/// [`IoError::InvalidArgument`] if the stack fails [`validate_stack`].
pub fn stack(
    layers: &[Arc<dyn Layer>],
    inner: Arc<dyn FileSystem>,
) -> IoResult<Arc<dyn FileSystem>> {
    validate_stack(layers)?;
    let mut fs = inner;
    for layer in layers.iter().rev() {
        fs = layer.wrap(fs);
    }
    Ok(fs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_posix_semantics, MemFs};

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_l: &dyn Layer) {}
    }

    #[test]
    fn empty_stack_is_identity() {
        let mem: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let stacked = stack(&[], Arc::clone(&mem)).unwrap();
        assert!(Arc::ptr_eq(&mem, &stacked));
    }

    #[test]
    fn stack_applies_first_layer_outermost() {
        let crypt = Arc::new(CryptLayer::new(7));
        let delay = Arc::new(DelayLayer::inert());
        let layers: Vec<Arc<dyn Layer>> = vec![crypt, delay];
        let fs = stack(&layers, Arc::new(MemFs::new())).unwrap();
        assert_eq!(fs.name(), "crypt(delay(tmpfs))");
    }

    #[test]
    fn over_deep_stack_is_rejected() {
        let layers: Vec<Arc<dyn Layer>> =
            (0..MAX_STACK_DEPTH + 1).map(|_| Arc::new(DelayLayer::inert()) as _).collect();
        assert!(matches!(stack(&layers, Arc::new(MemFs::new())), Err(IoError::InvalidArgument(_))));
        assert!(validate_stack(&layers[..MAX_STACK_DEPTH]).is_ok());
    }

    #[test]
    fn every_inert_layer_passes_posix_conformance() {
        let layers: Vec<Arc<dyn Layer>> = vec![
            Arc::new(DelayLayer::inert()),
            Arc::new(FaultLayer::inert()),
            Arc::new(CryptLayer::passthrough()),
            Arc::new(RamCacheLayer::inert()),
        ];
        for layer in &layers {
            check_posix_semantics(layer.wrap(Arc::new(MemFs::new())).as_ref());
        }
        // And the whole inert stack at once.
        check_posix_semantics(stack(&layers, Arc::new(MemFs::new())).unwrap().as_ref());
    }

    #[test]
    fn every_active_layer_passes_posix_conformance() {
        let layers: Vec<Arc<dyn Layer>> = vec![
            Arc::new(DelayLayer::fixed(simclock::SimTime::from_micros(3))),
            Arc::new(CryptLayer::new(0xC0FFEE)),
            Arc::new(RamCacheLayer::new(8)),
        ];
        for layer in &layers {
            check_posix_semantics(layer.wrap(Arc::new(MemFs::new())).as_ref());
        }
        check_posix_semantics(stack(&layers, Arc::new(MemFs::new())).unwrap().as_ref());
    }
}
