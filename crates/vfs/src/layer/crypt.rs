//! [`CryptLayer`]: simulated-fidelity encryption-at-rest with per-page
//! authentication tags.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simclock::ActorClock;

use super::Layer;
use crate::{normalize_path, Fd, FileSystem, IoError, IoResult, Metadata, OpenFlags};

/// Suffix of the hidden per-file tag sidecar (one 8-byte tag per page).
const TAG_SUFFIX: &str = ".#crypt-tags";

/// Deterministic snapshot of a [`CryptLayer`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CryptStats {
    /// Pages encrypted and (re-)tagged on the write path.
    pub pages_sealed: u64,
    /// Pages whose tag verified and which were decrypted on the read path.
    pub pages_opened: u64,
    /// Pages whose stored tag failed verification (tampering detected).
    pub tamper_detected: u64,
}

#[derive(Debug, Default)]
struct Counters {
    pages_sealed: AtomicU64,
    pages_opened: AtomicU64,
    tamper_detected: AtomicU64,
}

/// A [`Layer`] modelling encryption-at-rest: stored bytes are XORed with a
/// keyed per-page keystream, and every page carries an authentication tag
/// in a hidden sidecar file, verified on read.
///
/// The cipher is **simulated-fidelity** — a keyed XOR keystream plus a
/// keyed 64-bit tag, not real cryptography — but it reproduces the
/// *system-level* properties of AEAD disk encryption that matter to the
/// stack above:
///
/// * the inner file system only ever sees ciphertext (content at rest is
///   unintelligible without the key);
/// * any modification of stored bytes behind the layer's back is detected
///   on the next read of the affected page
///   ([`CryptStats::tamper_detected`]);
/// * partial-page writes pay a read-modify-write, and sizes/offsets are
///   otherwise preserved (XOR is length-preserving), so `fstat`, sparse
///   holes and truncation keep exact POSIX semantics.
///
/// The **write path is verify-free**: read-modify-write trusts the
/// positional keystream instead of the stored tag, so crash-torn states
/// (data page durable, tag write lost, or vice versa) are self-healing —
/// replaying the acknowledged writes over the torn pages recomputes
/// consistent tags. Tampering on a never-rewritten page is therefore
/// reported at read time, which is when the damaged bytes could first leak
/// into the application.
///
/// A page whose stored tag is zero (sidecar hole) is a **plaintext hole**
/// and reads as zeroes — sparse files keep POSIX semantics without
/// encrypting untouched pages.
///
/// [`CryptLayer::passthrough`] is the inert configuration: `wrap` returns
/// the inner file system unchanged (no sidecars, no keystream, no
/// counters), byte- and virtual-time-identical to an unlayered stack.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use simclock::ActorClock;
/// use vfs::{CryptLayer, FileSystem, Layer, MemFs, OpenFlags};
///
/// let layer = CryptLayer::new(0xDEADBEEF);
/// let inner = Arc::new(MemFs::new());
/// let fs = layer.wrap(inner.clone());
/// let clock = ActorClock::new();
/// let fd = fs.open("/secret", OpenFlags::RDWR | OpenFlags::CREATE, &clock).unwrap();
/// fs.pwrite(fd, b"plaintext", 0, &clock).unwrap();
/// let mut through = [0u8; 9];
/// fs.pread(fd, &mut through, 0, &clock).unwrap();
/// assert_eq!(&through, b"plaintext"); // transparent through the layer…
/// let raw = inner.open("/secret", OpenFlags::RDONLY, &clock).unwrap();
/// let mut at_rest = [0u8; 9];
/// inner.pread(raw, &mut at_rest, 0, &clock).unwrap();
/// assert_ne!(&at_rest, b"plaintext"); // …ciphertext at rest below it.
/// ```
#[derive(Debug)]
pub struct CryptLayer {
    /// `None` = passthrough (inert) mode.
    key: Option<u64>,
    page: usize,
    counters: Arc<Counters>,
}

impl CryptLayer {
    /// An active layer encrypting with `key` over 4 KiB pages.
    pub fn new(key: u64) -> Self {
        CryptLayer { key: Some(key), page: 4096, counters: Arc::new(Counters::default()) }
    }

    /// The inert configuration: [`wrap`](Layer::wrap) returns the inner
    /// file system unchanged (identity — for oracle tests and staged
    /// rollouts).
    pub fn passthrough() -> Self {
        CryptLayer { key: None, page: 4096, counters: Arc::new(Counters::default()) }
    }

    /// Overrides the page granularity (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `page` is zero or not a power of two.
    #[must_use]
    pub fn with_page_size(mut self, page: usize) -> Self {
        assert!(page.is_power_of_two(), "crypt page size must be a power of two");
        self.page = page;
        self
    }

    /// Deterministic counters: pages sealed/opened and tampering events.
    pub fn stats(&self) -> CryptStats {
        CryptStats {
            pages_sealed: self.counters.pages_sealed.load(Ordering::Acquire),
            pages_opened: self.counters.pages_opened.load(Ordering::Acquire),
            tamper_detected: self.counters.tamper_detected.load(Ordering::Acquire),
        }
    }
}

impl Layer for CryptLayer {
    fn name(&self) -> &str {
        "crypt"
    }

    fn wrap(&self, inner: Arc<dyn FileSystem>) -> Arc<dyn FileSystem> {
        match self.key {
            // Inert mode: the identity layer — nothing to add, so add
            // nothing (not even a forwarding frame).
            None => inner,
            Some(key) => Arc::new(CryptFs {
                name: format!("crypt({})", inner.name()),
                key,
                page: self.page as u64,
                counters: Arc::clone(&self.counters),
                fds: Mutex::new(HashMap::new()),
                locks: Mutex::new(HashMap::new()),
                inner,
            }),
        }
    }
}

/// splitmix64 — the keyed PRF behind the keystream and the tag mask.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice (the integrity checksum under the tag mask).
fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

struct CryptFdEntry {
    path: String,
    flags: OpenFlags,
    tag_fd: Fd,
    lock: Arc<Mutex<()>>,
}

struct CryptFs {
    name: String,
    key: u64,
    page: u64,
    counters: Arc<Counters>,
    fds: Mutex<HashMap<u64, Arc<CryptFdEntry>>>,
    /// One lock per open path: read-modify-write must be atomic per file
    /// (POSIX read/write atomicity).
    locks: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    inner: Arc<dyn FileSystem>,
}

fn tag_path(path: &str) -> String {
    format!("{path}{TAG_SUFFIX}")
}

fn is_tag_path(path: &str) -> bool {
    path.ends_with(TAG_SUFFIX)
}

impl CryptFs {
    /// XORs `buf` (page-local offset 0) with the keystream of `page_no`.
    fn xor_keystream(&self, page_no: u64, buf: &mut [u8]) {
        for (i, chunk) in buf.chunks_mut(8).enumerate() {
            let ks =
                splitmix64(self.key ^ page_no.wrapping_mul(0xA24B_AED4_963E_E407) ^ (i as u64))
                    .to_le_bytes();
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    /// The authentication tag over a page's ciphertext. Keyed and
    /// page-bound (a valid page copied to another page number fails), and
    /// never zero — zero is the hole sentinel.
    fn tag_of(&self, page_no: u64, cipher: &[u8]) -> u64 {
        (fnv1a64(cipher)
            ^ splitmix64(self.key ^ page_no.wrapping_mul(0x9FB2_1C65_1E98_DF25) ^ 0x7461_6773))
            | 1
    }

    fn entry(&self, fd: Fd) -> IoResult<Arc<CryptFdEntry>> {
        self.fds.lock().get(&fd.0).cloned().ok_or(IoError::BadFd(fd.0))
    }

    fn read_tag(&self, tag_fd: Fd, page_no: u64, clock: &ActorClock) -> IoResult<u64> {
        let mut buf = [0u8; 8];
        let n = self.inner.pread(tag_fd, &mut buf, page_no * 8, clock)?;
        if n < 8 {
            return Ok(0); // sidecar hole / short file = untagged hole page
        }
        Ok(u64::from_le_bytes(buf))
    }

    fn write_tag(&self, tag_fd: Fd, page_no: u64, tag: u64, clock: &ActorClock) -> IoResult<()> {
        self.inner.pwrite(tag_fd, &tag.to_le_bytes(), page_no * 8, clock)?;
        Ok(())
    }

    /// Reads and decrypts the `avail` stored bytes of `page_no`, verifying
    /// the tag. A zero tag is a hole: `avail` zeroes without touching the
    /// stored bytes.
    fn open_page(
        &self,
        e: &CryptFdEntry,
        data_fd: Fd,
        page_no: u64,
        avail: usize,
        clock: &ActorClock,
    ) -> IoResult<Vec<u8>> {
        let tag = self.read_tag(e.tag_fd, page_no, clock)?;
        if tag == 0 {
            return Ok(vec![0u8; avail]);
        }
        let mut buf = vec![0u8; avail];
        self.inner.pread(data_fd, &mut buf, page_no * self.page, clock)?;
        if self.tag_of(page_no, &buf) != tag {
            self.counters.tamper_detected.fetch_add(1, Ordering::AcqRel);
            return Err(IoError::Other(format!(
                "crypt: page {page_no} of {} failed authentication (tampered or corrupt)",
                e.path
            )));
        }
        self.xor_keystream(page_no, &mut buf);
        self.counters.pages_opened.fetch_add(1, Ordering::AcqRel);
        Ok(buf)
    }

    /// Decrypts the stored prefix of a page for read-modify-write
    /// **without verification** (see the type-level docs: the write path
    /// must self-heal crash-torn tag/data pairs).
    fn open_page_unverified(
        &self,
        e: &CryptFdEntry,
        data_fd: Fd,
        page_no: u64,
        avail: usize,
        clock: &ActorClock,
    ) -> IoResult<Vec<u8>> {
        let tag = self.read_tag(e.tag_fd, page_no, clock)?;
        if tag == 0 {
            return Ok(vec![0u8; avail]);
        }
        let mut buf = vec![0u8; avail];
        self.inner.pread(data_fd, &mut buf, page_no * self.page, clock)?;
        self.xor_keystream(page_no, &mut buf);
        Ok(buf)
    }

    /// Encrypts `plain` as the full new content of `page_no`, writes it
    /// and its tag.
    fn seal_page(
        &self,
        e: &CryptFdEntry,
        data_fd: Fd,
        page_no: u64,
        plain: &mut [u8],
        clock: &ActorClock,
    ) -> IoResult<()> {
        self.xor_keystream(page_no, plain);
        self.inner.pwrite(data_fd, plain, page_no * self.page, clock)?;
        let tag = self.tag_of(page_no, plain);
        self.write_tag(e.tag_fd, page_no, tag, clock)?;
        self.counters.pages_sealed.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    fn file_size(&self, data_fd: Fd, clock: &ActorClock) -> IoResult<u64> {
        Ok(self.inner.fstat(data_fd, clock)?.size)
    }
}

impl FileSystem for CryptFs {
    fn name(&self) -> &str {
        &self.name
    }

    fn open(&self, path: &str, flags: OpenFlags, clock: &ActorClock) -> IoResult<Fd> {
        let path = normalize_path(path);
        if is_tag_path(&path) {
            return Err(IoError::InvalidArgument(format!(
                "crypt: {path} is a reserved tag-sidecar name"
            )));
        }
        // Writable opens need inner read access for read-modify-write; the
        // layer itself enforces the caller's access mode.
        let mut inner_flags = if flags.writable() { OpenFlags::RDWR } else { OpenFlags::RDONLY };
        for bit in [OpenFlags::CREATE, OpenFlags::EXCL, OpenFlags::TRUNC, OpenFlags::APPEND] {
            if flags.contains(bit) {
                inner_flags |= bit;
            }
        }
        let data_fd = self.inner.open(&path, inner_flags, clock)?;
        let tag_fd =
            match self.inner.open(&tag_path(&path), OpenFlags::RDWR | OpenFlags::CREATE, clock) {
                Ok(fd) => fd,
                Err(e) => {
                    let _ = self.inner.close(data_fd, clock);
                    return Err(e);
                }
            };
        if flags.contains(OpenFlags::TRUNC) && flags.writable() {
            // The inner open already truncated the data; drop the tags too.
            self.inner.ftruncate(tag_fd, 0, clock)?;
        }
        let lock = Arc::clone(
            self.locks
                .lock()
                .entry(path.clone())
                .or_insert_with(|| Arc::new(Mutex::new(()))),
        );
        self.fds
            .lock()
            .insert(data_fd.0, Arc::new(CryptFdEntry { path, flags, tag_fd, lock }));
        Ok(data_fd)
    }

    fn close(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        let e = self.fds.lock().remove(&fd.0).ok_or(IoError::BadFd(fd.0))?;
        let res = self.inner.close(fd, clock);
        let _ = self.inner.close(e.tag_fd, clock);
        // Drop the per-path lock when the last descriptor on it closes.
        let mut locks = self.locks.lock();
        if !self.fds.lock().values().any(|o| o.path == e.path) {
            locks.remove(&e.path);
        }
        res
    }

    fn pread(&self, fd: Fd, buf: &mut [u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let e = self.entry(fd)?;
        if !e.flags.readable() {
            return Err(IoError::PermissionDenied("fd opened write-only".into()));
        }
        let _guard = e.lock.lock();
        let size = self.file_size(fd, clock)?;
        if off >= size || buf.is_empty() {
            return Ok(0);
        }
        let n = buf.len().min((size - off) as usize);
        let (first, last) = (off / self.page, (off + n as u64 - 1) / self.page);
        for page_no in first..=last {
            let base = page_no * self.page;
            let avail = (size - base).min(self.page) as usize;
            let plain = self.open_page(&e, fd, page_no, avail, clock)?;
            // Intersection of [off, off+n) with this page.
            let lo = off.max(base);
            let hi = (off + n as u64).min(base + avail as u64);
            buf[(lo - off) as usize..(hi - off) as usize]
                .copy_from_slice(&plain[(lo - base) as usize..(hi - base) as usize]);
        }
        Ok(n)
    }

    fn pwrite(&self, fd: Fd, data: &[u8], off: u64, clock: &ActorClock) -> IoResult<usize> {
        let e = self.entry(fd)?;
        if !e.flags.writable() {
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        if data.is_empty() {
            return Ok(0);
        }
        let _guard = e.lock.lock();
        let size = self.file_size(fd, clock)?;
        let end = off + data.len() as u64;
        let (first, last) = (off / self.page, (end - 1) / self.page);
        for page_no in first..=last {
            let base = page_no * self.page;
            let old_in_page = size.saturating_sub(base).min(self.page) as usize;
            // This write's extent within the page.
            let w_lo = (off.max(base) - base) as usize;
            let w_hi = (end.min(base + self.page) - base) as usize;
            let new_len = old_in_page.max(w_hi);
            let mut plain = if old_in_page > 0 {
                let mut p = self.open_page_unverified(&e, fd, page_no, old_in_page, clock)?;
                p.resize(new_len, 0);
                p
            } else {
                vec![0u8; new_len]
            };
            let d_lo = (off.max(base) - off) as usize;
            plain[w_lo..w_hi].copy_from_slice(&data[d_lo..d_lo + (w_hi - w_lo)]);
            self.seal_page(&e, fd, page_no, &mut plain, clock)?;
        }
        Ok(data.len())
    }

    fn fsync(&self, fd: Fd, clock: &ActorClock) -> IoResult<()> {
        let e = self.entry(fd)?;
        self.inner.fsync(fd, clock)?;
        self.inner.fsync(e.tag_fd, clock)
    }

    fn ftruncate(&self, fd: Fd, len: u64, clock: &ActorClock) -> IoResult<()> {
        let e = self.entry(fd)?;
        if !e.flags.writable() {
            return Err(IoError::PermissionDenied("fd opened read-only".into()));
        }
        let _guard = e.lock.lock();
        let old = self.file_size(fd, clock)?;
        self.inner.ftruncate(fd, len, clock)?;
        self.inner.ftruncate(e.tag_fd, 8 * len.div_ceil(self.page), clock)?;
        // The page containing the old or new boundary changes content
        // length: re-seal it so its tag matches the bytes now stored.
        if len < old && !len.is_multiple_of(self.page) {
            // Shrink into a page: the stored prefix stays valid ciphertext
            // (the keystream is positional); only the tag must shrink.
            let page_no = len / self.page;
            if self.read_tag(e.tag_fd, page_no, clock)? != 0 {
                let avail = (len - page_no * self.page) as usize;
                let mut buf = vec![0u8; avail];
                self.inner.pread(fd, &mut buf, page_no * self.page, clock)?;
                let tag = self.tag_of(page_no, &buf);
                self.write_tag(e.tag_fd, page_no, tag, clock)?;
            }
        } else if len > old && !old.is_multiple_of(self.page) {
            // Extend from inside a tagged page: the inner zero-fill is
            // wrong ciphertext for plaintext zeroes — re-encrypt the page
            // with its zero extension.
            let page_no = old / self.page;
            if self.read_tag(e.tag_fd, page_no, clock)? != 0 {
                let old_avail = (old - page_no * self.page) as usize;
                let new_avail = (len - page_no * self.page).min(self.page) as usize;
                let mut plain = self.open_page_unverified(&e, fd, page_no, old_avail, clock)?;
                plain.resize(new_avail, 0);
                self.seal_page(&e, fd, page_no, &mut plain, clock)?;
            }
        }
        Ok(())
    }

    fn fstat(&self, fd: Fd, clock: &ActorClock) -> IoResult<Metadata> {
        self.entry(fd)?;
        self.inner.fstat(fd, clock)
    }

    fn stat(&self, path: &str, clock: &ActorClock) -> IoResult<Metadata> {
        let path = normalize_path(path);
        if is_tag_path(&path) {
            return Err(IoError::NotFound(path));
        }
        self.inner.stat(&path, clock)
    }

    fn unlink(&self, path: &str, clock: &ActorClock) -> IoResult<()> {
        let path = normalize_path(path);
        if is_tag_path(&path) {
            return Err(IoError::NotFound(path));
        }
        self.inner.unlink(&path, clock)?;
        match self.inner.unlink(&tag_path(&path), clock) {
            Ok(()) | Err(IoError::NotFound(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn rename(&self, from: &str, to: &str, clock: &ActorClock) -> IoResult<()> {
        let from = normalize_path(from);
        let to = normalize_path(to);
        if is_tag_path(&from) || is_tag_path(&to) {
            return Err(IoError::InvalidArgument("crypt: reserved tag-sidecar name".into()));
        }
        self.inner.rename(&from, &to, clock)?;
        match self.inner.rename(&tag_path(&from), &tag_path(&to), clock) {
            Ok(()) => Ok(()),
            Err(IoError::NotFound(_)) => {
                // The source had no tags (never written): stale destination
                // tags would authenticate the wrong bytes — drop them.
                match self.inner.unlink(&tag_path(&to), clock) {
                    Ok(()) | Err(IoError::NotFound(_)) => Ok(()),
                    Err(e) => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    fn list_dir(&self, dir: &str, clock: &ActorClock) -> IoResult<Vec<String>> {
        let mut entries = self.inner.list_dir(dir, clock)?;
        entries.retain(|p| !is_tag_path(p));
        Ok(entries)
    }

    fn sync(&self, clock: &ActorClock) -> IoResult<()> {
        self.inner.sync(clock)
    }

    fn simulate_power_failure(&self) {
        self.inner.simulate_power_failure();
    }

    fn synchronous_durability(&self) -> bool {
        self.inner.synchronous_durability()
    }

    fn durable_linearizability(&self) -> bool {
        self.inner.durable_linearizability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    fn rig(key: u64) -> (ActorClock, Arc<dyn FileSystem>, Arc<dyn FileSystem>, CryptLayer) {
        let layer = CryptLayer::new(key);
        let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let fs = layer.wrap(Arc::clone(&inner));
        (ActorClock::new(), inner, fs, layer)
    }

    #[test]
    fn content_is_transparent_but_ciphertext_at_rest() {
        let (c, inner, fs, layer) = rig(42);
        let fd = fs.open("/s", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        let msg = b"attack at dawn, page one";
        fs.pwrite(fd, msg, 0, &c).unwrap();
        let mut back = vec![0u8; msg.len()];
        assert_eq!(fs.pread(fd, &mut back, 0, &c).unwrap(), msg.len());
        assert_eq!(&back, msg);
        // At rest: same length, different bytes, sidecar present.
        let raw = inner.open("/s", OpenFlags::RDONLY, &c).unwrap();
        let mut rest = vec![0u8; msg.len()];
        assert_eq!(inner.pread(raw, &mut rest, 0, &c).unwrap(), msg.len());
        assert_ne!(&rest, msg);
        assert!(inner.stat(&tag_path("/s"), &c).is_ok());
        assert!(layer.stats().pages_sealed >= 1);
        assert_eq!(layer.stats().tamper_detected, 0);
    }

    #[test]
    fn tampering_is_detected_on_read() {
        let (c, inner, fs, layer) = rig(7);
        let fd = fs.open("/t", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, &[0x11; 5000], 0, &c).unwrap(); // spans two pages
                                                      // Flip one stored byte in page 0 behind the layer's back.
        let raw = inner.open("/t", OpenFlags::RDWR, &c).unwrap();
        let mut b = [0u8; 1];
        inner.pread(raw, &mut b, 100, &c).unwrap();
        inner.pwrite(raw, &[b[0] ^ 0xA5], 100, &c).unwrap();
        inner.close(raw, &c).unwrap();

        let mut buf = [0u8; 64];
        let err = fs.pread(fd, &mut buf, 64, &c);
        assert!(matches!(err, Err(IoError::Other(_))), "tampered page must not read: {err:?}");
        assert_eq!(layer.stats().tamper_detected, 1);
        // The untampered second page still reads fine.
        assert_eq!(fs.pread(fd, &mut buf, 4096, &c).unwrap(), 64);
        // Rewriting the tampered page heals it.
        fs.pwrite(fd, &[0x22; 4096], 0, &c).unwrap();
        assert_eq!(fs.pread(fd, &mut buf, 64, &c).unwrap(), 64);
        assert_eq!(buf, [0x22; 64]);
    }

    #[test]
    fn cross_page_rmw_and_sparse_holes() {
        let (c, _inner, fs, _layer) = rig(99);
        let fd = fs.open("/x", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        // Sparse write far into page 2; pages 0-1 are holes.
        fs.pwrite(fd, b"tail", 4096 * 2 + 100, &c).unwrap();
        let mut hole = [9u8; 32];
        fs.pread(fd, &mut hole, 4096 + 50, &c).unwrap();
        assert_eq!(hole, [0u8; 32], "hole pages must read as zeroes");
        // Cross-page write over the hole boundary.
        fs.pwrite(fd, &[0xAB; 5000], 2000, &c).unwrap();
        let mut back = vec![0u8; 5000];
        fs.pread(fd, &mut back, 2000, &c).unwrap();
        assert!(back.iter().all(|&b| b == 0xAB));
        // The tail write is still intact.
        let mut tail = [0u8; 4];
        fs.pread(fd, &mut tail, 4096 * 2 + 100, &c).unwrap();
        assert_eq!(&tail, b"tail");
    }

    #[test]
    fn truncate_shrink_and_extend_keep_tags_consistent() {
        let (c, _inner, fs, layer) = rig(3);
        let fd = fs.open("/tr", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, &[0x5A; 6000], 0, &c).unwrap();
        fs.ftruncate(fd, 4500, &c).unwrap();
        let mut buf = vec![0u8; 6000];
        assert_eq!(fs.pread(fd, &mut buf, 0, &c).unwrap(), 4500);
        assert!(buf[..4500].iter().all(|&b| b == 0x5A));
        // Extend back: the grown range must read as zeroes.
        fs.ftruncate(fd, 6000, &c).unwrap();
        assert_eq!(fs.pread(fd, &mut buf, 0, &c).unwrap(), 6000);
        assert!(buf[..4500].iter().all(|&b| b == 0x5A));
        assert!(buf[4500..].iter().all(|&b| b == 0), "extension must read as zeroes");
        assert_eq!(layer.stats().tamper_detected, 0);
    }

    #[test]
    fn rename_and_unlink_carry_the_sidecar() {
        let (c, inner, fs, _layer) = rig(1);
        let fd = fs.open("/dir/a", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
        fs.pwrite(fd, b"payload", 0, &c).unwrap();
        fs.close(fd, &c).unwrap();
        fs.rename("/dir/a", "/dir/b", &c).unwrap();
        assert!(inner.stat(&tag_path("/dir/b"), &c).is_ok());
        assert!(inner.stat(&tag_path("/dir/a"), &c).is_err());
        // The listing through the layer hides sidecars.
        assert_eq!(fs.list_dir("/dir", &c).unwrap(), vec!["/dir/b".to_string()]);
        // Content still authenticates after the rename.
        let fd = fs.open("/dir/b", OpenFlags::RDONLY, &c).unwrap();
        let mut buf = [0u8; 7];
        fs.pread(fd, &mut buf, 0, &c).unwrap();
        assert_eq!(&buf, b"payload");
        fs.close(fd, &c).unwrap();
        fs.unlink("/dir/b", &c).unwrap();
        assert!(inner.stat(&tag_path("/dir/b"), &c).is_err(), "unlink must drop the sidecar");
    }

    #[test]
    fn different_keys_produce_different_ciphertext() {
        let read_rest = |key: u64| {
            let (c, inner, fs, _l) = rig(key);
            let fd = fs.open("/k", OpenFlags::RDWR | OpenFlags::CREATE, &c).unwrap();
            fs.pwrite(fd, &[0u8; 64], 0, &c).unwrap();
            let raw = inner.open("/k", OpenFlags::RDONLY, &c).unwrap();
            let mut rest = [0u8; 64];
            inner.pread(raw, &mut rest, 0, &c).unwrap();
            rest
        };
        assert_ne!(read_rest(1), read_rest(2));
    }

    #[test]
    fn passthrough_mode_is_the_identity() {
        let layer = CryptLayer::passthrough();
        let inner: Arc<dyn FileSystem> = Arc::new(MemFs::new());
        let fs = layer.wrap(Arc::clone(&inner));
        assert!(Arc::ptr_eq(&fs, &inner));
        assert_eq!(layer.stats(), CryptStats::default());
    }
}
